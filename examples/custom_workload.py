#!/usr/bin/env python3
"""Bring your own out-of-core application.

The library is not limited to the paper's six benchmarks: any array-based
loop nest can be expressed in the IR, compiled, and run under the four hint
policies.  This example builds an out-of-core *stream triad with a reused
coefficient table* —

    for (r = 0; r < REPS; r++)
      for (i = 0; i < N; i++)
        c[i] = a[i] + scale[i % T] * b[i];

— where ``a``, ``b`` and ``c`` stream through memory within one sweep but
are re-swept on every repetition.  The compiler correctly detects that
repeat-carried reuse, so every release carries a *positive* Equation-2
priority — which makes this workload a miniature FFTPDE: under the
buffering policy everything is retained "for reuse", the pressure trigger's
hysteresis disarms, and the paging daemon ends up doing the freeing, while
aggressive releasing keeps it idle.  Compare the ``daemon_runs`` and
``released`` columns of R and B in the output.

Run:  python examples/custom_workload.py
"""

from repro.config import small
from repro.core.compiler import (
    Array,
    ArrayRef,
    Loop,
    Nest,
    Program,
    Stmt,
    affine,
    compile_program,
)
from repro.core.runtime.policies import VERSIONS
from repro.experiments.harness import run_multiprogram
from repro.experiments.report import format_table
from repro.workloads.base import OutOfCoreWorkload, WorkloadInstance


class TriadWorkload(OutOfCoreWorkload):
    """An out-of-core stream triad, built entirely from the public IR."""

    name = "TRIAD"
    description = "out-of-core stream triad with a hot coefficient table"
    analysis_hazard = "none — streaming with known bounds"
    repeats = 2

    def build(self, scale):
        page_elements = scale.machine.page_elements
        stream_pages = max(4, scale.out_of_core_pages // 3)
        n = stream_pages * page_elements
        table_pages = max(1, scale.machine.total_frames // 100)

        a = Array("a", (n,))
        b = Array("b", (n,))
        c = Array("c", (n,))
        coeff = Array("coeff", (table_pages * page_elements,))
        # The i % T table access is approximated by its page behaviour: the
        # table is touched throughout the sweep; model the hot table with a
        # slow-moving wrapped stride.
        triad = Stmt(
            refs=(
                ArrayRef(c, (affine("i"),), is_write=True),
                ArrayRef(a, (affine("i"),)),
                ArrayRef(b, (affine("i"),)),
                ArrayRef(coeff, (affine("r"),)),
            ),
            flops=2.0,
        )
        nest = Nest(
            "triad",
            Loop("r", 0, table_pages, body=(Loop("i", 0, n, body=(triad,)),)),
        )
        program = Program("triad", (a, b, c, coeff), (nest,))
        return WorkloadInstance(
            name=self.name,
            program=program,
            env={},
            repeats=self.repeats,
            invocations=[("triad", {})],
            rng_seed=scale.rng_seed,
        )


def main() -> None:
    scale = small()
    workload = TriadWorkload()
    instance = workload.build(scale)

    compiled = compile_program(instance.program, scale.compiler)
    print("Hint plan:")
    for name, summary in compiled.summary().items():
        print(f"  {name}: {summary}")
    print()

    rows = []
    for version in "OPRB":
        run = run_multiprogram(scale, workload, VERSIONS[version])
        rows.append(
            (
                version,
                round(run.elapsed_s, 2),
                round(run.app_buckets.stall_io, 2),
                run.vm.daemon_runs,
                run.vm.releaser_pages_freed,
                round(run.mean_response() * 1e3, 2),
            )
        )
    print(
        format_table(
            ["ver", "app_s", "io_stall_s", "daemon_runs", "released", "interactive_ms"],
            rows,
            title="Custom out-of-core triad under the four hint policies",
        )
    )


if __name__ == "__main__":
    main()
