#!/usr/bin/env python3
"""The paper's headline demo: protecting an interactive task from a hog.

Reproduces the Figure 1 / Figure 10(a) experiment on the 'small' machine:
the interactive task (touch a data set, sleep, repeat) shares the machine
with MATVEC in each of its four versions, across a sweep of sleep times.
Response times are printed per sleep time, next to the dedicated-machine
baseline.

Run:  python examples/interactive_protection.py
"""

from repro.config import small
from repro.core.runtime.policies import VERSIONS
from repro.experiments.harness import interactive_alone, run_multiprogram
from repro.experiments.report import format_table
from repro.workloads.matvec import MatvecWorkload


def main() -> None:
    scale = small()
    workload = MatvecWorkload()
    sleep_times = scale.figure_sleep_times_s[:5]

    rows = []
    for sleep in sleep_times:
        alone = interactive_alone(scale, sleep, sweeps=6)
        alone_ms = (
            sum(s.response_time for s in alone[1:]) / max(1, len(alone) - 1) * 1e3
        )
        row = [round(sleep, 3), round(alone_ms, 3)]
        for version in "OPRB":
            run = run_multiprogram(
                scale, workload, VERSIONS[version], sleep_time_s=sleep
            )
            row.append(round(run.mean_response() * 1e3, 3))
        rows.append(row)

    print(
        format_table(
            ["sleep_s", "alone_ms", "O_ms", "P_ms", "R_ms", "B_ms"],
            rows,
            title=(
                "Interactive response time (ms) vs. sleep time, sharing the "
                "machine with MATVEC"
            ),
        )
    )
    print(
        "\nThe shape to look for (paper Figures 1 and 10(a)):\n"
        "  - alone: flat — the task always finds its pages resident;\n"
        "  - O: rises once sleeps exceed the clock hands' revolution time;\n"
        "  - P: rises at much shorter sleeps and to a higher level —\n"
        "       aggressive prefetching keeps the paging daemon sweeping;\n"
        "  - R and B: indistinguishable from running alone."
    )


if __name__ == "__main__":
    main()
