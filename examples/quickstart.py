#!/usr/bin/env python3
"""Quickstart: compile an out-of-core kernel and watch releasing pay off.

This walks the full pipeline on a small simulated machine:

1. build the loop-nest IR for a matrix-vector kernel whose data set is far
   larger than memory;
2. run the compiler pass (reuse analysis → locality analysis → prefetch and
   release insertion);
3. execute the four program versions the paper compares — original,
   prefetch-only, aggressive releasing, buffered releasing — against the
   simulated IRIX VM, concurrently with an interactive task;
4. print the paper-style comparison.

Run:  python examples/quickstart.py
"""

from repro.config import small
from repro.core.compiler import compile_program
from repro.core.runtime.policies import VERSIONS
from repro.experiments.harness import run_multiprogram
from repro.experiments.report import format_table
from repro.workloads.matvec import MatvecWorkload


def main() -> None:
    scale = small()
    workload = MatvecWorkload()
    instance = workload.build(scale)

    # -- what the compiler decided ---------------------------------------
    compiled = compile_program(instance.program, scale.compiler)
    nest = compiled.nest("multiply")
    print("Compiler decisions for the `multiply` nest:")
    for spec in nest.plan.prefetches:
        print(f"  prefetch {spec.target.ref!r}  distance={spec.distance_pages} pages")
    for spec in nest.plan.releases:
        reuse = " (despite reuse)" if spec.despite_reuse else ""
        print(f"  release  {spec.target.ref!r}  priority={spec.priority}{reuse}")
    print()

    # -- the four versions, sharing the machine with an interactive task --
    rows = []
    for version_name in "OPRB":
        run = run_multiprogram(scale, workload, VERSIONS[version_name])
        buckets = run.app_buckets
        rows.append(
            (
                version_name,
                VERSIONS[version_name].label,
                round(run.elapsed_s, 2),
                round(buckets.stall_io, 2),
                run.app_stats.rescues,
                run.vm.daemon_pages_stolen,
                round(run.mean_response() * 1e3, 2),
            )
        )
    print(
        format_table(
            [
                "ver",
                "policy",
                "app_time_s",
                "io_stall_s",
                "rescues",
                "daemon_stole",
                "interactive_ms",
            ],
            rows,
            title=f"MATVEC on the '{scale.name}' machine "
            f"({scale.machine.total_frames} frames, "
            f"{scale.out_of_core_pages}-page data set)",
        )
    )
    print()
    print(
        "Reading the table: prefetching (P) speeds the hog up but wrecks the\n"
        "interactive task; adding releases (R/B) keeps the paging daemon idle,\n"
        "so both the hog *and* the interactive task win.  Buffering (B) also\n"
        "avoids aggressively releasing the reused vector (compare `rescues`)."
    )


if __name__ == "__main__":
    main()
