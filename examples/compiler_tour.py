#!/usr/bin/env python3
"""A tour of the compiler pass on the paper's Section 2.4 example.

The paper's running example is a nearest-neighbour averaging stencil:

    for (i = 0; i < N; i++)
      for (j = 0; j < N; j++)
        a[i][j] = (a[i+1][j-1] + a[i+1][j] + a[i+1][j+1] +
                   a[i][j-1]   + a[i][j]   + a[i][j+1]   +
                   a[i-1][j-1] + a[i-1][j] + a[i-1][j+1]) / 9.0;

This script builds that nest in the IR, runs reuse and locality analysis,
and shows how the pass finds the group structure the paper describes: the
leading edge (`a[i+1][*]`) is prefetched and the trailing edge
(`a[i-1][*]`) is released.

Run:  python examples/compiler_tour.py
"""

from repro.config import CompilerParams
from repro.core.compiler import (
    Array,
    ArrayRef,
    Loop,
    Nest,
    Program,
    Stmt,
    affine,
    compile_program,
)


def build_stencil(n: int) -> Program:
    a = Array("a", (n, n))
    refs = []
    for di in (1, 0, -1):
        for dj in (-1, 0, 1):
            refs.append(
                ArrayRef(
                    a,
                    (affine("i", const_term=di), affine("j", const_term=dj)),
                    is_write=(di == 0 and dj == 0),
                )
            )
    stencil = Stmt(refs=tuple(refs), flops=9.0)
    nest = Nest(
        "average",
        Loop("i", 1, n - 1, body=(Loop("j", 1, n - 1, body=(stencil,)),)),
    )
    return Program("nearest_neighbour", (a,), (nest,))


def main() -> None:
    n = 8192  # a 512 MB matrix: far larger than the 75 MB machine
    program = build_stencil(n)
    params = CompilerParams()
    compiled = compile_program(program, params)
    nest = compiled.nest("average")

    print("== Reuse analysis")
    for group in nest.reuse.groups:
        offsets = sorted(
            tuple(s.const for s in member.ref.subscripts)
            for member in group.members
        )
        print(
            f"  group on {group.array.name}: {len(group.members)} refs, "
            f"constant offsets {offsets}"
        )
        print(f"    leader (prefetch target):  {group.leader.ref!r}")
        print(f"    trailer (release target):  {group.trailer.ref!r}")
        print(f"    temporal reuse carried by: {group.temporal_loops or '(none)'}")
        print(f"    spatial reuse carried by:  {group.leader.spatial_loops}")

    print("\n== Locality analysis")
    print(f"  memory the compiler counts on: {nest.locality.effective_pages} pages")
    for verdict in nest.locality.by_group:
        print(
            f"  {verdict.group.array.name}: reuse volumes {verdict.reuse_volumes} "
            f"pages, captured loops: {verdict.locality_loops or '(none)'}"
        )

    print("\n== Inserted hints (the paper's Figure 5 output)")
    for spec in nest.plan.prefetches:
        print(f"  prefetch(&{spec.target.ref!r}, distance={spec.distance_pages})")
    for spec in nest.plan.releases:
        print(
            f"  release(&{spec.target.ref!r}, priority={spec.priority}, "
            f"tag={spec.tag})"
        )

    print(
        "\nAll nine references collapse into one locality group: the leading\n"
        "edge a[i+1][j+1] is the only reference prefetched and the trailing\n"
        "edge a[i-1][j-1] the only one released — Section 2.4's first-level\n"
        "working set.  Holding three matrix rows (the second-level set) would\n"
        "capture the group reuse across i, but on a multiprogrammed machine\n"
        "the compiler prefers the smallest working set, so the trailing edge\n"
        "is released and the run-time layer arbitrates from there."
    )


if __name__ == "__main__":
    main()
