"""The instrumentation bus: disabled by default, faithful when enabled."""

import pytest

from repro.machine import ExperimentSpec, Machine
from repro.obs import Bus, MetricsAggregator, TraceRecorder
from repro.sim.engine import Engine
from repro.vm.system import FaultKind


def test_obs_is_disabled_by_default(kernel, engine):
    assert engine.obs is None
    assert kernel.obs is None
    assert kernel.vm.obs is None
    assert kernel.swap.obs is None


def test_bus_requires_a_sink(engine):
    with pytest.raises(ValueError):
        Bus(engine, [])


def test_machine_without_sinks_has_no_bus(scale):
    machine = Machine(scale)
    assert machine.bus is None
    assert machine.engine.obs is None


def test_bus_stamps_events_with_engine_time():
    engine = Engine()
    recorder = TraceRecorder()
    bus = Bus(engine, [recorder])
    engine._now = 1.5
    bus.emit("vm.clock_pass", {"stolen": 3})
    (event,) = recorder.events
    assert event.time == 1.5
    assert event.kind == "vm.clock_pass"
    assert event.payload == {"stolen": 3}


def test_trace_recorder_is_bounded():
    recorder = TraceRecorder(limit=10)
    for index in range(25):
        recorder.on_event(float(index), "engine.dispatch", None)
    assert recorder.seen == 25
    assert len(recorder.events) == 10
    assert recorder.dropped == 15
    assert recorder.events[0].time == 15.0
    assert "15 earlier events dropped" in recorder.format()


def test_trace_recorder_kind_filter():
    recorder = TraceRecorder(kinds={"vm.fault"})
    recorder.on_event(0.0, "engine.dispatch", None)
    recorder.on_event(0.1, "vm.fault", {"kind": "hard"})
    assert [e.kind for e in recorder.events] == ["vm.fault"]


def _run_instrumented(scale, *sinks):
    machine = Machine.from_spec(
        ExperimentSpec.multiprogram(scale, "MATVEC", "R"), sinks=sinks
    )
    machine.run()
    return machine


def test_metrics_aggregator_matches_subsystem_stats(scale):
    metrics = MetricsAggregator()
    machine = _run_instrumented(scale, metrics)
    result = machine.result()

    hard = sum(p.stats.hard_faults for p in result.processes)
    soft = sum(p.stats.soft_faults for p in result.processes)
    assert metrics.faults_by_kind.get(FaultKind.HARD, 0) == hard
    assert metrics.faults_by_kind.get(FaultKind.SOFT, 0) == soft
    assert metrics.pages_released == result.vm.releaser_pages_freed
    assert metrics.pages_stolen == result.vm.daemon_pages_stolen
    demand = metrics.disk_requests.get("demand", 0)
    assert demand == result.swap["demand_reads"]
    if demand:
        assert metrics.mean_disk_latency("demand") == pytest.approx(
            result.swap["mean_demand_latency_s"]
        )
    assert metrics.counts["engine.dispatch"] == result.engine_steps
    snapshot = metrics.snapshot()
    assert snapshot["pages_released"] == result.vm.releaser_pages_freed


def test_instrumented_run_is_identical_to_bare_run(scale):
    """Observation must never perturb the simulation itself."""
    from repro.machine import run_experiment

    spec = ExperimentSpec.multiprogram(scale, "MATVEC", "B")
    bare = run_experiment(spec)
    observed = run_experiment(spec, sinks=(MetricsAggregator(),))
    assert observed.elapsed_s == bare.elapsed_s
    assert observed.engine_steps == bare.engine_steps
    assert observed.primary.buckets.as_dict() == bare.primary.buckets.as_dict()


def test_trace_contains_cross_layer_events(scale):
    recorder = TraceRecorder(limit=200_000)
    _run_instrumented(scale, recorder)
    kinds = {event.kind for event in recorder.events}
    assert "engine.dispatch" in kinds
    assert "engine.switch" in kinds
    assert "disk.issue" in kinds
    assert "disk.complete" in kinds
    assert "vm.fault" in kinds
    assert "kernel.syscall" in kinds
    assert "kernel.shared_page" in kinds


class _NarrowSink:
    """A sink subscribing to a fixed kind set (exercises Bus.wants)."""

    def __init__(self, kinds):
        self.kinds = kinds
        self.seen = []

    def on_event(self, time, kind, payload):
        self.seen.append(kind)


def test_bus_wants_honours_sink_subscriptions():
    engine = Engine()
    bus = Bus(engine, [_NarrowSink({"vm.fault"})])
    assert bus.wants("vm.fault")
    assert not bus.wants("engine.dispatch")
    assert not bus.wants("kernel.shared_page")


def test_bus_wants_everything_for_unfiltered_sinks():
    engine = Engine()
    bus = Bus(engine, [TraceRecorder()])
    assert bus.wants("engine.dispatch")
    assert bus.wants("anything.at.all")


def test_bus_wants_is_the_union_across_sinks():
    engine = Engine()
    bus = Bus(
        engine, [_NarrowSink({"vm.fault"}), _NarrowSink({"swap.read"})]
    )
    assert bus.wants("vm.fault")
    assert bus.wants("swap.read")
    assert not bus.wants("engine.dispatch")


def test_unwanted_hot_kinds_are_not_emitted(scale):
    """The hot emit sites (per-event dispatch, per-quantum switch, the
    shared-page refresh) gate on wants() and skip their payload builds
    when no sink subscribes; cold sites still fan out unconditionally."""
    narrow = _NarrowSink({"vm.fault"})
    _run_instrumented(scale, narrow)
    kinds = set(narrow.seen)
    assert "vm.fault" in kinds
    assert "engine.dispatch" not in kinds
    assert "engine.switch" not in kinds
    assert "kernel.shared_page" not in kinds


def test_default_trace_recorder_still_sees_engine_dispatch(scale):
    """An unfiltered sink keeps the engine.dispatch firehose flowing —
    the wants() fast path must not silence it."""
    recorder = TraceRecorder(limit=100_000)
    _run_instrumented(scale, recorder)
    kinds = {event.kind for event in recorder.events}
    assert "engine.dispatch" in kinds
    assert "vm.fault" in kinds
