"""Unit tests for time buckets, counters, and histograms."""

import pytest

from repro.sim.engine import Engine
from repro.sim.stats import Counter, Histogram, TimeBuckets
from repro.sim.task import SimTask


class TestTimeBuckets:
    def test_starts_zeroed(self):
        buckets = TimeBuckets()
        assert buckets.total == 0.0

    def test_add_accumulates(self):
        buckets = TimeBuckets()
        buckets.add("user", 1.5)
        buckets.add("user", 0.5)
        assert buckets.user == pytest.approx(2.0)

    def test_unknown_bucket_rejected(self):
        with pytest.raises(KeyError):
            TimeBuckets().add("gpu", 1.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            TimeBuckets().add("user", -1.0)

    def test_total_sums_all_components(self):
        buckets = TimeBuckets(user=1, system=2, stall_memory=3, stall_io=4)
        assert buckets.total == 10

    def test_as_dict(self):
        buckets = TimeBuckets(user=1.0)
        snapshot = buckets.as_dict()
        assert snapshot["user"] == 1.0
        assert set(snapshot) == {"user", "system", "stall_memory", "stall_io"}

    def test_normalized_to(self):
        base = TimeBuckets(user=5, stall_io=5)
        other = TimeBuckets(user=2, stall_io=3)
        normalized = other.normalized_to(base)
        assert normalized["user"] == pytest.approx(0.2)
        assert normalized["stall_io"] == pytest.approx(0.3)

    def test_normalized_to_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            TimeBuckets().normalized_to(TimeBuckets())

    def test_merged_with(self):
        merged = TimeBuckets(user=1).merged_with(TimeBuckets(system=2))
        assert merged.user == 1
        assert merged.system == 2


class TestCounter:
    def test_increment(self):
        counter = Counter("faults")
        counter.increment()
        counter.increment(4)
        assert int(counter) == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").increment(-1)


class TestHistogram:
    def test_empty_statistics(self):
        histogram = Histogram()
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.percentile(0.5) == 0.0

    def test_mean_min_max(self):
        histogram = Histogram()
        histogram.extend([1.0, 2.0, 3.0])
        assert histogram.mean == pytest.approx(2.0)
        assert histogram.minimum == 1.0
        assert histogram.maximum == 3.0

    def test_percentiles_exact(self):
        histogram = Histogram()
        histogram.extend(float(i) for i in range(1, 101))
        assert histogram.percentile(0.5) == 50.0
        assert histogram.percentile(0.99) == 99.0
        assert histogram.percentile(1.0) == 100.0

    def test_percentile_bounds_checked(self):
        with pytest.raises(ValueError):
            Histogram().percentile(1.5)


class TestSimTask:
    def test_spend_charges_bucket(self):
        engine = Engine()
        task = SimTask(engine, "t")

        def proc():
            yield from task.user(1.0)
            yield from task.system(0.5)

        engine.run_process(proc())
        assert task.buckets.user == pytest.approx(1.0)
        assert task.buckets.system == pytest.approx(0.5)
        assert engine.now == pytest.approx(1.5)

    def test_zero_spend_creates_no_event(self):
        engine = Engine()
        task = SimTask(engine, "t")

        def proc():
            yield from task.user(0.0)
            yield engine.timeout(0.0)

        engine.run_process(proc())
        assert task.buckets.user == 0.0

    def test_wait_io_charges_stall(self):
        engine = Engine()
        task = SimTask(engine, "t")

        def proc():
            value = yield from task.wait_io(engine.timeout(2.0, value="io"))
            return value

        assert engine.run_process(proc()) == "io"
        assert task.buckets.stall_io == pytest.approx(2.0)

    def test_wait_memory_charges_stall(self):
        engine = Engine()
        task = SimTask(engine, "t")

        def proc():
            yield from task.wait_memory(engine.timeout(1.0))

        engine.run_process(proc())
        assert task.buckets.stall_memory == pytest.approx(1.0)

    def test_lock_acquire_charges_queueing_only(self):
        from repro.sim.sync import Lock

        engine = Engine()
        task = SimTask(engine, "waiter")
        lock = Lock(engine)

        def holder():
            yield lock.acquire()
            yield engine.timeout(3.0)
            lock.release()

        def waiter():
            yield engine.timeout(1.0)
            yield from task.lock_acquire(lock)
            lock.release()

        engine.process(holder())
        engine.process(waiter())
        engine.run()
        assert task.buckets.stall_memory == pytest.approx(2.0)

    def test_sleep_charges_nothing(self):
        engine = Engine()
        task = SimTask(engine, "t")

        def proc():
            yield from task.sleep(5.0)

        engine.run_process(proc())
        assert task.buckets.total == 0.0
        assert engine.now == 5.0
