"""Integration tests: the paper's qualitative claims, end to end.

These run whole benchmark × version experiments at the tiny scale (and a
couple at small scale) and assert the *relationships* the paper reports —
who wins, and why — not absolute numbers.
"""

import pytest

from repro.config import small, tiny
from repro.core.runtime.policies import VERSIONS
from repro.experiments.harness import (
    interactive_alone,
    run_multiprogram,
    run_version_suite,
)
from repro.workloads import BENCHMARKS


@pytest.fixture(scope="module")
def matvec_suite():
    return run_version_suite(tiny(), BENCHMARKS["MATVEC"], "OPRB")


@pytest.fixture(scope="module")
def small_matvec_suite():
    return run_version_suite(small(), BENCHMARKS["MATVEC"], "OPRB")


class TestOutOfCorePerformance:
    def test_original_is_io_stall_dominated(self, matvec_suite):
        buckets = matvec_suite["O"].app_buckets
        assert buckets.stall_io > 0.5 * buckets.total

    def test_releasing_beats_prefetching_alone(self, matvec_suite):
        assert matvec_suite["R"].elapsed_s < matvec_suite["P"].elapsed_s
        assert matvec_suite["B"].elapsed_s < matvec_suite["P"].elapsed_s

    def test_releasing_beats_original(self, matvec_suite):
        assert matvec_suite["R"].elapsed_s < matvec_suite["O"].elapsed_s

    def test_buffering_beats_aggressive_for_matvec(self, small_matvec_suite):
        """'The benefit of buffering and prioritizing releases is
        dramatic' — aggressive releasing fights over the vector."""
        assert (
            small_matvec_suite["B"].elapsed_s < small_matvec_suite["R"].elapsed_s
        )

    def test_aggressive_matvec_rescues_the_vector(self, small_matvec_suite):
        """'Approximately half of the pages released are for the vector and
        need to be rescued from the free list.'"""
        aggressive = small_matvec_suite["R"]
        buffered = small_matvec_suite["B"]
        assert aggressive.app_stats.rescues > 10 * max(1, buffered.app_stats.rescues)
        fraction = aggressive.vm.rescued_from_release / max(
            1, aggressive.vm.freed_by_release
        )
        assert 0.25 < fraction < 0.75

    def test_io_stall_mostly_hidden_by_prefetching(self, small_matvec_suite):
        """'Over 85% of the I/O stall eliminated in all cases.'"""
        original = small_matvec_suite["O"].app_buckets.stall_io
        prefetch = small_matvec_suite["P"].app_buckets.stall_io
        assert prefetch < 0.3 * original


class TestDaemonActivity:
    def test_releasing_idles_the_paging_daemon(self, small_matvec_suite):
        assert small_matvec_suite["P"].vm.daemon_pages_stolen > 0
        assert (
            small_matvec_suite["R"].vm.daemon_pages_stolen
            < 0.05 * small_matvec_suite["P"].vm.daemon_pages_stolen
        )

    def test_soft_faults_eliminated_by_releasing(self, small_matvec_suite):
        assert small_matvec_suite["P"].app_stats.soft_faults > 0
        assert (
            small_matvec_suite["R"].app_stats.soft_faults
            < small_matvec_suite["P"].app_stats.soft_faults
        )

    def test_releases_do_the_freeing(self, small_matvec_suite):
        vm = small_matvec_suite["R"].vm
        assert vm.freed_by_release > 10 * max(1, vm.freed_by_daemon)


class TestInteractiveImpact:
    def test_prefetching_hurts_interactive(self, small_matvec_suite):
        alone = interactive_alone(small(), small().intermediate_sleep_s, sweeps=6)
        alone_mean = sum(s.response_time for s in alone[1:]) / (len(alone) - 1)
        prefetch = small_matvec_suite["P"].mean_response()
        assert prefetch > 20 * alone_mean

    def test_releasing_restores_interactive(self, small_matvec_suite):
        prefetch = small_matvec_suite["P"].mean_response()
        for version in "RB":
            assert small_matvec_suite[version].mean_response() < 0.05 * prefetch

    def test_interactive_hard_faults_bounded_by_data_set(
        self, small_matvec_suite
    ):
        pages = small().interactive_pages
        for version, run in small_matvec_suite.items():
            assert run.mean_interactive_hard_faults() <= pages

    def test_prefetch_interactive_faults_high(self, small_matvec_suite):
        pages = small().interactive_pages
        assert small_matvec_suite["P"].mean_interactive_hard_faults() > 0.3 * pages
        assert small_matvec_suite["R"].mean_interactive_hard_faults() < 0.05 * pages


class TestBukReplacementPolicy:
    @pytest.fixture(scope="class")
    def buk(self):
        return run_version_suite(tiny(), BENCHMARKS["BUK"], "PR")

    def test_random_array_stays_resident_with_releasing(self, buk):
        """The compiler's decision not to release the random array keeps it
        in memory: far fewer faults than under global replacement."""
        assert (
            buk["R"].app_stats.soft_faults + buk["R"].app_stats.hard_faults
            < buk["P"].app_stats.soft_faults + buk["P"].app_stats.hard_faults
        )

    def test_releasing_faster(self, buk):
        assert buk["R"].elapsed_s < buk["P"].elapsed_s


class TestFftpdeBufferingException:
    @pytest.fixture(scope="class")
    def fftpde(self):
        return run_version_suite(tiny(), BENCHMARKS["FFTPDE"], "RB")

    def test_buffering_performs_few_releases(self, fftpde):
        """'FFTPDE with release buffering performs very few useful
        releases due to incorrectly attempting to retain pages.'"""
        assert (
            fftpde["B"].vm.releaser_pages_freed
            < 0.2 * fftpde["R"].vm.releaser_pages_freed
        )

    def test_buffering_leaves_daemon_engaged(self, fftpde):
        """With buffering the paging daemon does nearly all the freeing;
        with aggressive releasing the releaser does most of it."""
        buffered = fftpde["B"].vm
        aggressive = fftpde["R"].vm
        buffered_daemon_share = buffered.freed_by_daemon / max(
            1, buffered.freed_total()
        )
        aggressive_daemon_share = aggressive.freed_by_daemon / max(
            1, aggressive.freed_total()
        )
        assert buffered_daemon_share > 0.7
        assert aggressive_daemon_share < 0.5


class TestRuntimeFiltering:
    def test_cgm_hint_flood_is_filtered(self):
        """CGM's unknown bounds produce a very large number of unnecessary
        requests that the run-time layer filters."""
        run = run_multiprogram(tiny(), BENCHMARKS["CGM"], VERSIONS["R"])
        stats = run.runtime
        filtered = (
            stats.prefetch_filtered_bitmap
            + stats.prefetch_filtered_inflight
            + stats.release_filtered_same_page
            + stats.release_filtered_bitmap
        )
        assert filtered > stats.release_pages_issued
        assert stats.prefetch_filtered_bitmap > 0.5 * stats.prefetch_hints


class TestDeterminism:
    def test_runs_are_reproducible(self):
        first = run_multiprogram(tiny(), BENCHMARKS["MATVEC"], VERSIONS["R"])
        second = run_multiprogram(tiny(), BENCHMARKS["MATVEC"], VERSIONS["R"])
        assert first.elapsed_s == second.elapsed_s
        assert first.app_stats.hard_faults == second.app_stats.hard_faults
        assert first.vm.releaser_pages_freed == second.vm.releaser_pages_freed
