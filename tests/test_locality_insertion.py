"""Unit tests for locality analysis and hint insertion."""


from repro.config import CompilerParams
from repro.core.compiler.insertion import plan_hints, prefetch_distance, release_priority
from repro.core.compiler.ir import (
    Array,
    ArrayRef,
    IndirectRef,
    Loop,
    Nest,
    Program,
    Stmt,
    Symbol,
    affine,
)
from repro.core.compiler.locality import analyze_locality
from repro.core.compiler.pipeline import compile_program
from repro.core.compiler.reuse import analyze_reuse

PARAMS = CompilerParams()


def analyse(nest):
    reuse = analyze_reuse(nest, PARAMS.page_size)
    locality = analyze_locality(reuse, PARAMS)
    plan = plan_hints(reuse, locality, PARAMS)
    return reuse, locality, plan


def matvec(rows, cols):
    a = Array("A", (rows, cols))
    x = Array("x", (cols,))
    y = Array("y", (rows,))
    stmt = Stmt(
        refs=(
            ArrayRef(a, (affine("i"), affine("j"))),
            ArrayRef(x, (affine("j"),)),
            ArrayRef(y, (affine("i"),), is_write=True),
        )
    )
    return (
        Nest("mv", Loop("i", 0, rows, body=(Loop("j", 0, cols, body=(stmt,)),))),
        a,
        x,
        y,
    )


class TestLocality:
    def test_effective_pages_floor(self):
        tiny_params = CompilerParams(memory_bytes=16 * 1024)
        nest, *_ = matvec(64, 4096)
        reuse = analyze_reuse(nest, tiny_params.page_size)
        locality = analyze_locality(reuse, tiny_params)
        assert locality.effective_pages >= 8

    def test_small_inner_volume_is_captured(self):
        nest, a, x, y = matvec(64, 4096)
        reuse, locality, _plan = analyse(nest)
        y_group = next(g for g in reuse.groups if g.array is y)
        verdict = locality.for_group(y_group)
        # y's reuse is carried by j with a 3-page volume: captured.
        assert "j" in verdict.locality_loops
        assert verdict.nearest_reuse_captured(reuse.depth_of)

    def test_large_volume_not_captured(self):
        # A row far larger than the memory the compiler counts on.
        nest, a, x, y = matvec(64, 4 * 1024 * 1024)
        reuse, locality, _plan = analyse(nest)
        x_group = next(g for g in reuse.groups if g.array is x)
        verdict = locality.for_group(x_group)
        assert "i" not in verdict.locality_loops

    def test_unknown_bounds_disable_locality(self):
        a = Array("a", (4096,))
        x = Array("x", (4096,))
        stmt = Stmt(
            refs=(
                ArrayRef(a, (affine("j"),)),
                ArrayRef(x, (affine("j"),)),
            )
        )
        unknown = Symbol("n", estimate=16, known=False)
        nest = Nest(
            "n",
            Loop("r", 0, 4, body=(Loop("j", 0, unknown, body=(stmt,)),)),
        )
        reuse = analyze_reuse(nest, PARAMS.page_size)
        locality = analyze_locality(reuse, PARAMS)
        for verdict in locality.by_group:
            # tiny estimated volume, but untrusted: no locality claimed.
            assert verdict.locality_loops == ()
            assert not verdict.bounds_known

    def test_volumes_recorded_per_loop(self):
        nest, a, x, y = matvec(64, 131072)
        reuse, locality, _plan = analyse(nest)
        x_group = next(g for g in reuse.groups if g.array is x)
        verdict = locality.for_group(x_group)
        assert "i" in verdict.reuse_volumes
        # one row of A (64 pages) + x (64 pages) + y (1 page)
        assert verdict.reuse_volumes["i"] == 129


class TestEquation2:
    def test_priority_zero_without_reuse(self):
        nest, a, x, y = matvec(64, 131072)
        reuse, _locality, plan = analyse(nest)
        a_spec = next(s for s in plan.releases if s.target.ref.array is a)
        assert a_spec.priority == 0
        assert not a_spec.despite_reuse

    def test_priority_counts_loop_depths(self):
        nest, a, x, y = matvec(64, 131072)
        reuse, _locality, plan = analyse(nest)
        x_spec = next(s for s in plan.releases if s.target.ref.array is x)
        # temporal reuse carried by i at depth 0: 2^0 == 1
        assert x_spec.priority == 1
        assert x_spec.despite_reuse

    def test_deeper_loops_give_larger_priorities(self):
        a = Array("a", (1 << 22,))
        stmt = Stmt(refs=(ArrayRef(a, (affine("k"),)),))
        inner = Loop("k", 0, 1 << 22, body=(stmt,))
        nest = Nest(
            "n",
            Loop("r", 0, 4, body=(Loop("m", 0, 4, body=(inner,)),)),
        )
        reuse = analyze_reuse(nest, PARAMS.page_size)
        group = reuse.groups[0]
        # temporal in r (depth 0) and m (depth 1): 1 + 2 = 3
        assert release_priority(group, reuse.depth_of) == 3


class TestInsertion:
    def test_captured_groups_get_no_hints(self):
        nest, a, x, y = matvec(64, 4096)
        _reuse, _locality, plan = analyse(nest)
        assert not any(s.target.ref.array is y for s in plan.prefetches)
        assert not any(s.target.ref.array is y for s in plan.releases)

    def test_indirect_refs_prefetched_never_released(self):
        target = Array("t", (1 << 22,))
        keys = Array("k", (1 << 22,))
        key_ref = ArrayRef(keys, (affine("i"),))
        stmt = Stmt(refs=(key_ref, IndirectRef(target, key_ref, is_write=True)))
        nest = Nest("n", Loop("i", 0, 1 << 22, body=(stmt,)))
        _reuse, _locality, plan = analyse(nest)
        assert any(s.target.ref.array is target for s in plan.prefetches)
        assert not any(s.target.ref.array is target for s in plan.releases)

    def test_group_leader_prefetched_trailer_released(self):
        a = Array("a", (1 << 12, 1 << 12))
        refs = tuple(
            ArrayRef(a, (affine("i", const_term=d), affine("j")))
            for d in (1, 0, -1)
        )
        stmt = Stmt(refs=refs)
        nest = Nest(
            "n",
            Loop("i", 1, (1 << 12) - 1, body=(Loop("j", 0, 1 << 12, body=(stmt,)),)),
        )
        _reuse, _locality, plan = analyse(nest)
        assert len(plan.prefetches) == 1
        assert len(plan.releases) == 1
        assert plan.prefetches[0].target.ref.subscripts[0].const == 1
        assert plan.releases[0].target.ref.subscripts[0].const == -1

    def test_tags_unique_across_program(self):
        nest, a, x, y = matvec(64, 131072)
        a2 = Array("B", (1 << 22,))
        stmt2 = Stmt(refs=(ArrayRef(a2, (affine("k"),)),))
        nest2 = Nest("second", Loop("k", 0, 1 << 22, body=(stmt2,)))
        program = Program("p", (a, x, y, a2), (nest, nest2))
        compiled = compile_program(program, PARAMS)
        tags = [s.tag for s in compiled.all_prefetch_specs()] + [
            s.tag for s in compiled.all_release_specs()
        ]
        assert len(tags) == len(set(tags))

    def test_prefetch_distance_respects_clamps(self):
        short = CompilerParams(page_fault_latency_s=1e-9)
        assert prefetch_distance(short) == short.min_prefetch_distance_pages
        long = CompilerParams(page_fault_latency_s=10.0)
        assert prefetch_distance(long) == long.max_prefetch_distance_pages

    def test_dedicated_machine_inserts_fewer_releases(self):
        """memory_confidence=1.0 (the earlier paper's dedicated-machine
        assumption) captures the vector's reuse: no release for x."""
        nest, a, x, y = matvec(400, 131072)
        dedicated = CompilerParams(memory_confidence=1.0)
        reuse = analyze_reuse(nest, dedicated.page_size)
        locality = analyze_locality(reuse, dedicated)
        plan = plan_hints(reuse, locality, dedicated)
        assert not any(s.target.ref.array is x for s in plan.releases)
        # The streaming matrix is still released.
        assert any(s.target.ref.array is a for s in plan.releases)

    def test_compiled_program_summary(self):
        nest, a, x, y = matvec(64, 131072)
        program = Program("p", (a, x, y), (nest,))
        compiled = compile_program(program, PARAMS)
        summary = compiled.summary()["mv"]
        assert summary["prefetch_sites"] == 2
        assert summary["release_sites"] == 2
        assert summary["zero_priority_releases"] == 1
