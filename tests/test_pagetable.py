"""Unit tests for address spaces and the shared page."""

import pytest

from repro.vm.frames import FrameTable
from repro.vm.pagetable import AddressSpace


def make_aspace(engine, nframes=8):
    table = FrameTable(nframes)
    return AddressSpace(engine, 1, "p", table), table


class TestAddressSpace:
    def test_map_segment_contiguous(self, engine):
        aspace, _table = make_aspace(engine)
        a = aspace.map_segment("a", 10)
        b = aspace.map_segment("b", 5)
        assert a == range(0, 10)
        assert b == range(10, 15)
        assert aspace.mapped_pages == 15
        # The flat page table is pre-sized to the mapped span.
        assert len(aspace.pt) == 15
        assert all(entry == -1 for entry in aspace.pt)

    def test_segment_lookup(self, engine):
        aspace, _table = make_aspace(engine)
        aspace.map_segment("data", 3)
        assert aspace.segment("data") == range(0, 3)

    def test_duplicate_segment_rejected(self, engine):
        aspace, _table = make_aspace(engine)
        aspace.map_segment("a", 1)
        with pytest.raises(ValueError):
            aspace.map_segment("a", 1)

    def test_empty_segment_rejected(self, engine):
        aspace, _table = make_aspace(engine)
        with pytest.raises(ValueError):
            aspace.map_segment("a", 0)

    def test_attach_detach_cycle(self, engine):
        aspace, table = make_aspace(engine)
        aspace.attach(5, 0)
        assert aspace.resident == 1
        assert aspace.is_present(5)
        assert aspace.frame_index(5) == 0
        assert table.owner[0] is aspace
        assert table.vpn[0] == 5
        detached = aspace.detach(5)
        assert detached == 0
        assert aspace.resident == 0
        assert aspace.frame_index(5) == -1

    def test_double_attach_rejected(self, engine):
        aspace, _table = make_aspace(engine)
        aspace.attach(1, 0)
        with pytest.raises(ValueError):
            aspace.attach(1, 1)

    def test_detach_missing_raises(self, engine):
        aspace, _table = make_aspace(engine)
        aspace.map_segment("a", 4)
        with pytest.raises(KeyError):
            aspace.detach(2)

    def test_frame_for_missing_is_none(self, engine):
        aspace, _table = make_aspace(engine)
        assert aspace.frame_for(3) is None
        assert aspace.frame_index(3) == -1

    def test_frame_for_returns_view(self, engine):
        aspace, table = make_aspace(engine)
        aspace.attach(2, 4)
        view = aspace.frame_for(2)
        assert view is not None
        assert view.index == 4
        assert view.owner is aspace

    def test_resident_vpns_sorted(self, engine):
        aspace, _table = make_aspace(engine)
        aspace.attach(9, 0)
        aspace.attach(2, 1)
        aspace.attach(5, 2)
        assert aspace.resident_vpns() == [2, 5, 9]


class TestSharedPage:
    @pytest.fixture
    def vm(self, kernel):
        return kernel.vm

    def test_bits_track_attach_detach(self, kernel):
        proc = kernel.create_process("app")
        proc.aspace.map_segment("a", 10)
        pm = kernel.attach_paging_directed(proc)
        shared = pm.shared_page
        assert not shared.bit(0)
        frame = kernel.vm.freelist.pop()
        proc.aspace.attach(0, frame)
        assert shared.bit(0)
        proc.aspace.detach(0)
        assert not shared.bit(0)

    def test_bits_outside_range_ignored(self, kernel):
        proc = kernel.create_process("app")
        proc.aspace.map_segment("a", 4)
        pm = kernel.attach_paging_directed(proc)
        pm.shared_page.set_bit(100)
        assert not pm.shared_page.bit(100)

    def test_equation_1_upper_limit(self, kernel, scale):
        proc = kernel.create_process("app")
        proc.aspace.map_segment("a", 10)
        pm = kernel.attach_paging_directed(proc)
        shared = pm.shared_page
        shared.refresh()
        tunables = scale.tunables
        frames = scale.machine.total_frames
        expected = min(
            tunables.maxrss_pages(frames),
            proc.aspace.resident
            + kernel.vm.freelist.free_count
            - tunables.min_freemem_pages,
        )
        assert shared.upper_limit == expected

    def test_refresh_is_lazy(self, kernel):
        proc = kernel.create_process("app")
        proc.aspace.map_segment("a", 10)
        pm = kernel.attach_paging_directed(proc)
        shared = pm.shared_page
        before = shared.current_usage
        # Mutate residency without going through the kernel: the usage word
        # does not move until the next refresh.
        frame = kernel.vm.freelist.pop()
        proc.aspace.attach(3, frame)
        assert shared.current_usage == before
        shared.refresh()
        assert shared.current_usage == before + 1

    def test_headroom(self, kernel):
        proc = kernel.create_process("app")
        proc.aspace.map_segment("a", 10)
        pm = kernel.attach_paging_directed(proc)
        shared = pm.shared_page
        assert shared.headroom() == shared.upper_limit - shared.current_usage
