"""Tests for the repro.trace subsystem: format, record/replay, import, diff.

The load-bearing property is round-trip fidelity: a recorded trace must
(1) decode to exactly the op stream the driver played (floats bit-exact),
(2) replay through a Machine to byte-identical experiment results, and
(3) reject any truncation or bit flip with a clear, typed error.
"""

import json
import random

import pytest

from repro.bench import serialize_result
from repro.config import tiny
from repro.ioutil import atomic_open, atomic_write_json, atomic_write_text
from repro.machine import (
    INTERACTIVE,
    ExperimentSpec,
    SpecError,
    WorkloadProcessSpec,
    run_experiment,
)
from repro.trace import (
    TraceCaptureSink,
    TraceChecksumError,
    TraceError,
    TraceFormatError,
    TraceHeader,
    TraceImportError,
    TraceReader,
    TraceTruncatedError,
    TraceWorkload,
    diff_traces,
    import_text,
    read_header,
    read_trace,
    record_experiment,
    trace_process_spec,
    verify_against_code,
    write_trace,
)
from repro.trace.analyze import regenerate_ops, trace_info
from repro.trace.importer import parse_text
from repro.workloads import BENCHMARKS

HEADER = TraceHeader(
    process="synthetic",
    workload="SYNTH",
    version="B",
    scale="tiny",
    page_size=16384,
    layout=(("a", 4096), ("b", 512)),
)


def synthetic_ops(seed=0, count=2000):
    """A stream exercising every record type, including negative deltas,
    large jumps, repeated and one-off floats, and fault annotations."""
    rng = random.Random(seed)
    ops = []
    vpn = 0
    for _ in range(count):
        roll = rng.random()
        if roll < 0.35:
            vpn = rng.randrange(0, 4600)
            ops.append(("t", vpn, rng.random() < 0.3, 0.0))
        elif roll < 0.55:
            ops.append(("w", rng.choice([1e-6, 2e-6, rng.random() * 1e-3])))
        elif roll < 0.7:
            start = rng.randrange(0, 4000)
            ops.append(("T", start, rng.randrange(1, 64), rng.random() < 0.5, 1e-6))
        elif roll < 0.8:
            vpns = tuple(rng.randrange(0, 4600) for _ in range(rng.randrange(1, 5)))
            ops.append(("p", rng.randrange(0, 32), vpns))
        elif roll < 0.9:
            vpns = tuple(rng.randrange(0, 4600) for _ in range(rng.randrange(1, 5)))
            ops.append(("r", rng.randrange(0, 32), vpns, rng.randrange(1, 4)))
        else:
            ops.append(("f", rng.randrange(0, 4600), rng.choice(["hard", "soft"])))
    return ops


# -- codec ------------------------------------------------------------------
def test_codec_round_trip_synthetic(tmp_path):
    ops = synthetic_ops()
    path = tmp_path / "synth.trace"
    count = write_trace(path, HEADER, ops)
    assert count == len(ops)
    header, decoded = read_trace(path)
    assert header == HEADER
    assert decoded == ops
    # Bit-exactness, not almost-equality: the types must survive too.
    for original, round_tripped in zip(ops, decoded):
        assert type(original) is type(round_tripped)
        for a, b in zip(original, round_tripped):
            assert type(a) is type(b)


def test_reader_and_header_only_read(tmp_path):
    ops = synthetic_ops(seed=3, count=50)
    path = tmp_path / "r.trace"
    write_trace(path, HEADER, ops)
    reader = TraceReader(path)
    assert len(reader) == 50
    assert list(reader) == ops
    assert read_header(path) == HEADER


def test_empty_trace_round_trips(tmp_path):
    path = tmp_path / "empty.trace"
    assert write_trace(path, HEADER, []) == 0
    header, ops = read_trace(path)
    assert header == HEADER
    assert ops == []


def test_truncation_rejected_at_every_boundary(tmp_path):
    path = tmp_path / "t.trace"
    write_trace(path, HEADER, synthetic_ops(seed=1, count=200))
    data = path.read_bytes()
    # Cut at a spread of points: inside the magic, the header, the body,
    # and the footer.  All must fail loudly with a TraceError subclass.
    for cut in [4, 10, len(data) // 4, len(data) // 2, len(data) - 5, len(data) - 1]:
        (tmp_path / "cut.trace").write_bytes(data[:cut])
        with pytest.raises((TraceTruncatedError, TraceChecksumError)):
            read_trace(tmp_path / "cut.trace")


def test_bit_flips_rejected_by_checksum(tmp_path):
    path = tmp_path / "b.trace"
    write_trace(path, HEADER, synthetic_ops(seed=2, count=200))
    data = bytearray(path.read_bytes())
    # Flip one byte in the header, early body, late body, and the CRC.
    for offset in [15, len(data) // 3, 2 * len(data) // 3, len(data) - 2]:
        damaged = bytearray(data)
        damaged[offset] ^= 0xFF
        (tmp_path / "flip.trace").write_bytes(bytes(damaged))
        with pytest.raises(TraceChecksumError):
            read_trace(tmp_path / "flip.trace")


def test_not_a_trace_file_rejected(tmp_path):
    path = tmp_path / "nope.trace"
    path.write_bytes(b"definitely not a trace, long enough to have a crc")
    with pytest.raises(TraceFormatError, match="bad magic"):
        read_trace(path)
    path.write_bytes(b"RPRO")  # shorter than the magic itself
    with pytest.raises(TraceTruncatedError):
        read_trace(path)


def test_missing_file_is_trace_error(tmp_path):
    with pytest.raises(TraceError, match="cannot read"):
        read_trace(tmp_path / "missing.trace")


def test_writer_abort_leaves_nothing(tmp_path):
    path = tmp_path / "aborted.trace"
    with pytest.raises(RuntimeError):
        from repro.trace import TraceWriter

        with TraceWriter(path, HEADER) as writer:
            writer.write_op(("t", 1, False, 0.0))
            raise RuntimeError("boom")
    assert not path.exists()
    assert list(tmp_path.iterdir()) == []  # no temp file leaked either


# -- record -> replay round trip -------------------------------------------
@pytest.mark.parametrize("workload", sorted(BENCHMARKS))
def test_recorded_stream_matches_interpreter(tmp_path, workload):
    """Property: for every benchmark, the recorded op stream equals the
    interpreter's regenerated stream op-for-op, floats bit-exact."""
    spec = ExperimentSpec.multiprogram(tiny(), workload, version="B")
    _result, paths = record_experiment(spec, tmp_path / "traces")
    header, recorded = read_trace(paths[workload])
    assert recorded == list(regenerate_ops(header))
    summary = verify_against_code(paths[workload])
    assert summary["equal"]


@pytest.mark.parametrize("version", ["O", "P", "R", "B"])
def test_replay_is_byte_identical(tmp_path, version):
    """Replaying a recorded trace alongside the same interactive task must
    reproduce the live run's serialized result exactly."""
    spec = ExperimentSpec.multiprogram(tiny(), "MATVEC", version=version)
    live, paths = record_experiment(spec, tmp_path / "traces")
    replay_spec = ExperimentSpec(
        scale=tiny(),
        processes=(
            trace_process_spec(paths["MATVEC"]),
            WorkloadProcessSpec(workload=INTERACTIVE),
        ),
    )
    replayed = run_experiment(replay_spec)
    assert serialize_result(replayed) == serialize_result(live)
    hog = replayed.primary
    assert hog.workload == "MATVEC"
    assert hog.version == version


def test_recording_does_not_perturb_the_run(tmp_path):
    spec = ExperimentSpec.multiprogram(tiny(), "EMBAR", version="R")
    plain = run_experiment(spec)
    recorded, _paths = record_experiment(spec, tmp_path / "traces")
    assert serialize_result(recorded) == serialize_result(plain)


def test_fault_annotations_recorded_and_ignored_on_replay(tmp_path):
    spec = ExperimentSpec.multiprogram(tiny(), "MATVEC", version="B")
    live, paths = record_experiment(
        spec, tmp_path / "traces", include_faults=True
    )
    header, ops = read_trace(paths["MATVEC"])
    fault_ops = [op for op in ops if op[0] == "f"]
    assert fault_ops, "a tiny MATVEC run must fault at least once"
    allowed = {"hard", "soft", "prefetch_validate", "release_revalidate", "rescue"}
    assert all(op[2] in allowed for op in fault_ops)
    replay_spec = ExperimentSpec(
        scale=tiny(),
        processes=(
            trace_process_spec(paths["MATVEC"]),
            WorkloadProcessSpec(workload=INTERACTIVE),
        ),
    )
    assert serialize_result(run_experiment(replay_spec)) == serialize_result(live)


def test_single_file_capture_and_process_filter(tmp_path):
    spec = ExperimentSpec.multiprogram(tiny(), "MATVEC", version="B")
    _result, paths = record_experiment(spec, tmp_path / "one.trace")
    assert set(paths) == {"MATVEC"}
    assert paths["MATVEC"] == tmp_path / "one.trace"
    with pytest.raises(TraceError, match="captured no process"):
        record_experiment(
            spec, tmp_path / "none", processes=["NOT-THERE"]
        )


def test_capture_sink_refuses_two_processes_in_single_file_mode(tmp_path):
    sink = TraceCaptureSink(tmp_path / "one.trace")
    payload = {
        "process": "A",
        "workload": "MATVEC",
        "version": "B",
        "scale": "tiny",
        "page_size": 4096,
        "layout": (("a", 8),),
    }
    sink.on_event(0.0, "trace.spawn", payload)
    with pytest.raises(TraceError, match="second"):
        sink.on_event(0.0, "trace.spawn", {**payload, "process": "B"})
    sink.abort()


# -- replay spec handling ---------------------------------------------------
def test_trace_spec_validates(tmp_path):
    with pytest.raises(SpecError, match="trace_path"):
        WorkloadProcessSpec(workload="TRACE").validate()
    with pytest.raises(SpecError, match="trace_digest"):
        WorkloadProcessSpec(workload="TRACE", trace_path="x.trace").validate()


def test_replay_refuses_changed_trace(tmp_path):
    spec = ExperimentSpec.multiprogram(tiny(), "MATVEC", version="O")
    _result, paths = record_experiment(spec, tmp_path / "traces")
    wspec = trace_process_spec(paths["MATVEC"])
    # Re-record under a different version to change the file contents.
    spec2 = ExperimentSpec.multiprogram(tiny(), "MATVEC", version="B")
    record_experiment(spec2, tmp_path / "traces")
    replay = ExperimentSpec(scale=tiny(), processes=(wspec,))
    with pytest.raises(SpecError, match="changed on disk"):
        run_experiment(replay)


def test_replay_refuses_page_size_mismatch(tmp_path):
    spec = ExperimentSpec.multiprogram(tiny(), "MATVEC", version="O")
    _result, paths = record_experiment(spec, tmp_path / "traces")
    import dataclasses

    scale = tiny()
    shrunk = scale.with_overrides(
        machine=dataclasses.replace(
            scale.machine, page_size=scale.machine.page_size // 2
        )
    )
    replay = ExperimentSpec(
        scale=shrunk, processes=(trace_process_spec(paths["MATVEC"]),)
    )
    with pytest.raises(SpecError, match="page_size"):
        run_experiment(replay)


def test_spec_key_is_trace_content_addressed(tmp_path):
    from repro.experiments.runner import spec_key

    spec = ExperimentSpec.multiprogram(tiny(), "MATVEC", version="O")
    _result, paths = record_experiment(spec, tmp_path / "a")
    source = paths["MATVEC"]
    copy = tmp_path / "elsewhere" / "copy.trace"
    copy.parent.mkdir()
    copy.write_bytes(source.read_bytes())
    spec_a = ExperimentSpec(scale=tiny(), processes=(trace_process_spec(source),))
    spec_b = ExperimentSpec(scale=tiny(), processes=(trace_process_spec(copy),))
    # Same content at a different path -> same cache identity.
    assert spec_key(spec_a) == spec_key(spec_b)
    assert spec_a.processes[0].trace_path != spec_b.processes[0].trace_path


def test_runner_caches_trace_replays(tmp_path):
    from repro.experiments.runner import run_specs

    spec = ExperimentSpec.multiprogram(tiny(), "MATVEC", version="O")
    _result, paths = record_experiment(spec, tmp_path / "traces")
    replay = ExperimentSpec(
        scale=tiny(),
        processes=(
            trace_process_spec(paths["MATVEC"]),
            WorkloadProcessSpec(workload=INTERACTIVE),
        ),
    )
    cache = tmp_path / "cache"
    first = run_specs([replay], cache_dir=cache)[0]
    assert not first.from_cache
    second = run_specs([replay], cache_dir=cache)[0]
    assert second.from_cache
    assert serialize_result(second) == serialize_result(first)


def test_trace_workload_accessors(tmp_path):
    spec = ExperimentSpec.multiprogram(tiny(), "CGM", version="B")
    _result, paths = record_experiment(spec, tmp_path / "traces")
    workload = TraceWorkload(paths["CGM"])
    assert workload.name == "CGM"
    assert workload.header.workload == "CGM"
    assert workload.header.version == "B"
    assert workload.header.footprint_pages > 0
    ops = workload.ops()
    assert ops and ops is workload.ops()  # memoized


# -- diff -------------------------------------------------------------------
def test_diff_equal_and_tampered(tmp_path):
    ops = synthetic_ops(seed=5, count=300)
    a = tmp_path / "a.trace"
    b = tmp_path / "b.trace"
    write_trace(a, HEADER, ops)
    write_trace(b, HEADER, ops)
    diff = diff_traces(a, b)
    assert diff.equal and diff.ops_equal and diff.first_mismatch is None

    tampered = list(ops)
    index = next(i for i, op in enumerate(tampered) if op[0] == "t")
    tampered[index] = ("t", tampered[index][1] + 1, tampered[index][2], 0.0)
    write_trace(b, HEADER, tampered)
    diff = diff_traces(a, b)
    assert not diff.equal
    # Fault annotations are stripped by default, so the reported index is
    # in the stripped stream; it must still point at the tampered touch.
    mismatch_index, op_a, op_b = diff.first_mismatch
    assert op_a[1] + 1 == op_b[1]


def test_diff_expand_normalizes_batches(tmp_path):
    batched = [("w", 1e-6), ("T", 10, 3, False, 2e-6), ("t", 13, True, 0.0)]
    expanded = [
        ("w", 1e-6),
        ("w", 2e-6),
        ("t", 10, False, 0.0),
        ("w", 2e-6),
        ("t", 11, False, 0.0),
        ("w", 2e-6),
        ("t", 12, False, 0.0),
        ("t", 13, True, 0.0),
    ]
    a = tmp_path / "a.trace"
    b = tmp_path / "b.trace"
    write_trace(a, HEADER, batched)
    write_trace(b, HEADER, expanded)
    assert not diff_traces(a, b).ops_equal
    assert diff_traces(a, b, expand=True).ops_equal


def test_diff_reports_header_mismatch(tmp_path):
    ops = [("t", 1, False, 0.0)]
    a = tmp_path / "a.trace"
    b = tmp_path / "b.trace"
    write_trace(a, HEADER, ops)
    import dataclasses

    write_trace(b, dataclasses.replace(HEADER, version="O"), ops)
    diff = diff_traces(a, b)
    assert diff.ops_equal
    assert not diff.equal
    assert any("version" in m for m in diff.header_mismatches)


def test_diff_include_faults(tmp_path):
    with_faults = [("t", 1, False, 0.0), ("f", 1, "hard"), ("t", 2, False, 0.0)]
    without = [("t", 1, False, 0.0), ("t", 2, False, 0.0)]
    a = tmp_path / "a.trace"
    b = tmp_path / "b.trace"
    write_trace(a, HEADER, with_faults)
    write_trace(b, HEADER, without)
    assert diff_traces(a, b).ops_equal
    assert not diff_traces(a, b, include_faults=True).ops_equal


# -- info -------------------------------------------------------------------
def test_trace_info_counts(tmp_path):
    ops = [
        ("w", 1e-6),
        ("t", 0, False, 0.0),
        ("w", 1e-6),
        ("t", 1, True, 0.0),
        ("T", 2, 4, False, 2e-6),
        ("p", 0, (6, 7)),
        ("r", 1, (0, 1, 2), 2),
        ("f", 3, "hard"),
    ]
    path = tmp_path / "info.trace"
    write_trace(path, HEADER, ops)
    info = trace_info(path)
    assert info["ops"] == len(ops)
    assert info["touches"] == 6  # 2 singles + the 4-page run
    assert info["write_fraction"] == pytest.approx(1 / 6, abs=1e-4)
    assert info["distinct_pages"] == 6
    assert info["user_s"] == pytest.approx(2e-6 + 4 * 2e-6)
    assert info["prefetch_pages"] == 2
    assert info["release_pages"] == 3
    assert info["fault_annotations"] == 1
    assert info["sequential_fraction"] == 1.0  # 0->1->2, then the run's strides
    assert info["footprint_pages"] == HEADER.footprint_pages


# -- import -----------------------------------------------------------------
def test_import_text_happy_path(tmp_path):
    source = tmp_path / "scan.txt"
    source.write_text(
        "# comment\n"
        "!name SCAN\n"
        "!page-cost 2e-6\n"
        "!segment data 64\n"
        "0 r\n"
        "1 w prefetch=2,3\n"
        "2 r release=0,1@2\n"
    )
    header, path, count = import_text(source, tmp_path / "scan.trace")
    assert header.process == "SCAN"
    assert header.version == "B"  # hints present -> B
    assert header.source == "import"
    assert header.page_size == 0
    assert header.layout == (("data", 64),)
    _header, ops = read_trace(path)
    assert count == len(ops)
    assert ops == [
        ("w", 2e-6),
        ("t", 0, False, 0.0),
        ("p", 0, (2, 3)),
        ("w", 2e-6),
        ("t", 1, True, 0.0),
        ("w", 2e-6),
        ("t", 2, False, 0.0),
        ("r", 1, (0, 1), 2),
    ]


def test_import_defaults(tmp_path):
    header, ops = parse_text(["0 r", "5 w"], "stem")
    assert header.process == "stem"
    assert header.version == "O"  # no hints -> O
    assert header.layout == (("data", 6),)  # max vpn + 1


@pytest.mark.parametrize(
    "lines, match",
    [
        (["x r"], "expected a vpn"),
        (["0 z"], "expected 'r' or 'w'"),
        (["0 r bogus=1"], "unknown field"),
        (["!nonsense 1", "0 r"], "unknown directive"),
        (["!version Q", "0 r"], "unknown version"),
        (["!segment data 4", "10 r"], "outside the declared layout"),
        (["0 r release=1@zero"], "bad release priority"),
        (["0 r prefetch="], "empty vpn"),
        (["# only a comment"], "no touch lines"),
        (["!page-cost -1", "0 r"], "negative page cost"),
        (["!segment a 4", "!segment a 4", "0 r"], "duplicate segment"),
    ],
)
def test_import_errors_name_the_line(lines, match):
    with pytest.raises(TraceImportError, match=match):
        parse_text(lines, "x")


def test_imported_trace_replays(tmp_path):
    source = tmp_path / "scan.txt"
    source.write_text("!segment data 8\n" + "\n".join(f"{i} r" for i in range(8)))
    _header, path, _count = import_text(source, tmp_path / "scan.trace")
    spec = ExperimentSpec(scale=tiny(), processes=(trace_process_spec(path),))
    result = run_experiment(spec)
    assert result.primary.completed
    assert result.primary.workload == "scan"
    assert result.primary.stats.hard_faults > 0


def test_import_missing_source(tmp_path):
    with pytest.raises(TraceImportError, match="cannot read"):
        import_text(tmp_path / "missing.txt", tmp_path / "out.trace")


def test_verify_refuses_imported_traces(tmp_path):
    source = tmp_path / "scan.txt"
    source.write_text("0 r\n")
    _header, path, _count = import_text(source, tmp_path / "scan.trace")
    with pytest.raises(TraceError, match="imported"):
        verify_against_code(path)


# -- atomic writes ----------------------------------------------------------
def test_atomic_write_creates_parents_and_trailing_newline(tmp_path):
    path = tmp_path / "deep" / "nested" / "out.json"
    atomic_write_json(path, {"b": 2, "a": 1})
    text = path.read_text()
    assert text.endswith("\n")
    assert json.loads(text) == {"a": 1, "b": 2}
    assert list(json.loads(text)) == ["a", "b"]  # sorted keys


def test_atomic_open_failure_leaves_target_untouched(tmp_path):
    path = tmp_path / "out.txt"
    atomic_write_text(path, "original")
    with pytest.raises(RuntimeError):
        with atomic_open(path, "w") as handle:
            handle.write("partial garbage")
            raise RuntimeError("interrupted")
    assert path.read_text() == "original"
    # And no temp file survives the failure.
    assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]


def test_atomic_open_rejects_read_modes(tmp_path):
    with pytest.raises(ValueError, match="atomic_open"):
        with atomic_open(tmp_path / "x", "rb"):
            pass


# -- column decoding and byte-level verification ----------------------------
def _columns_to_ops(cols):
    """Reconstruct the tuple stream from a :class:`ReplayColumns`."""
    from repro.trace.format import (
        K_COMPUTE,
        K_PREFETCH,
        K_RELEASE,
        K_RUN_READ,
        K_RUN_WRITE,
        K_TOUCH_READ,
        K_TOUCH_WRITE,
    )

    ops = []
    rel_cursor = 0
    for i in range(len(cols)):
        kind = cols.kinds[i]
        if kind in (K_TOUCH_READ, K_TOUCH_WRITE):
            ops.append(("t", cols.arg0[i], kind == K_TOUCH_WRITE, 0.0))
        elif kind == K_COMPUTE:
            ops.append(("w", cols.floats[cols.arg0[i]]))
        elif kind in (K_RUN_READ, K_RUN_WRITE):
            ops.append(
                (
                    "T",
                    cols.arg0[i],
                    cols.arg1[i],
                    kind == K_RUN_WRITE,
                    cols.floats[cols.arg2[i]],
                )
            )
        elif kind == K_PREFETCH:
            pages = tuple(cols.hint_vpns[cols.arg1[i] : cols.arg2[i]])
            ops.append(("p", cols.arg0[i], pages))
        elif kind == K_RELEASE:
            pages = tuple(cols.hint_vpns[cols.arg1[i] : cols.arg2[i]])
            ops.append(
                ("r", cols.arg0[i], pages, cols.rel_priorities[rel_cursor])
            )
            rel_cursor += 1
        else:
            ops.append(("f", cols.arg0[i], cols.strings[cols.arg1[i]]))
    return ops


def test_columns_decode_matches_tuple_decode(tmp_path):
    """``read_columns`` is a lossless twin of ``read_trace`` on a stream
    exercising every record type (negative deltas, interned floats and
    fault kinds, multi-page hints)."""
    from repro.trace.format import read_columns

    ops = synthetic_ops(seed=11)
    path = tmp_path / "cols.trace"
    write_trace(path, HEADER, ops)
    header, cols = read_columns(path)
    assert header == HEADER
    assert len(cols) == len(ops)
    assert _columns_to_ops(cols) == ops


def test_columns_rejects_corruption_like_tuple_decoder(tmp_path):
    from repro.trace.format import read_columns

    path = tmp_path / "c.trace"
    write_trace(path, HEADER, synthetic_ops(seed=12, count=200))
    data = bytearray(path.read_bytes())
    data[len(data) // 2] ^= 0xFF
    (tmp_path / "bad.trace").write_bytes(bytes(data))
    with pytest.raises(TraceChecksumError):
        read_columns(tmp_path / "bad.trace")
    (tmp_path / "cut.trace").write_bytes(bytes(data[: len(data) // 2]))
    with pytest.raises((TraceTruncatedError, TraceChecksumError)):
        read_columns(tmp_path / "cut.trace")


def test_encode_body_matches_streaming_writer(tmp_path):
    """``encode_body`` (the verification fast path) must produce the exact
    bytes ``TraceWriter`` streams out — same interning, same deltas."""
    from repro.trace.format import encode_body

    ops = synthetic_ops(seed=13)
    path = tmp_path / "enc.trace"
    write_trace(path, HEADER, ops)
    data = path.read_bytes()
    header_len = int.from_bytes(data[8:12], "little")
    body, count = encode_body(iter(ops))
    assert count == len(ops)
    assert body == data[12 + header_len : -4]


def test_verify_bytes_takes_fast_path_on_clean_trace(tmp_path):
    from repro.trace.analyze import verify_bytes_against_code

    spec = ExperimentSpec.multiprogram(tiny(), "MATVEC", version="B")
    _result, paths = record_experiment(spec, tmp_path / "v")
    for path in paths.values():
        summary = verify_bytes_against_code(path)
        assert summary["equal"] is True
        assert summary["method"] == "bytes"
        assert summary["recorded_ops"] == summary["regenerated_ops"]


def test_verify_bytes_falls_back_on_fault_annotations(tmp_path):
    """'f' records perturb the delta/float chains, so the byte compare
    cannot match — the verifier must fall back to the tuple-level diff,
    which strips annotations, and still verify the trace."""
    from repro.trace.analyze import verify_bytes_against_code

    spec = ExperimentSpec.multiprogram(tiny(), "MATVEC", version="B")
    _result, paths = record_experiment(
        spec, tmp_path / "vf", include_faults=True
    )
    for path in paths.values():
        summary = verify_bytes_against_code(path)
        assert summary["equal"] is True
        assert summary["method"] == "ops"


def test_verify_bytes_propagates_corruption_errors(tmp_path):
    from repro.trace.analyze import verify_bytes_against_code

    spec = ExperimentSpec.multiprogram(tiny(), "MATVEC", version="B")
    _result, paths = record_experiment(spec, tmp_path / "vc")
    path = next(iter(paths.values()))
    data = bytearray(path.read_bytes())
    data[-2] ^= 0xFF  # corrupt the CRC
    path.write_bytes(bytes(data))
    with pytest.raises(TraceChecksumError):
        verify_bytes_against_code(path)
