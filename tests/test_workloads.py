"""Tests for the benchmark workloads: structure, compilation, and the
per-benchmark hint behaviour Table 2 of the paper implies."""

import pytest

from repro.config import paper, small, tiny
from repro.core.compiler import compile_program
from repro.core.compiler.ir import IndirectRef, VaryingStrideRef
from repro.workloads import BENCHMARKS, benchmark, table2_rows
from repro.workloads.base import build_layout
from repro.workloads.buk import BukWorkload
from repro.workloads.cgm import CgmWorkload
from repro.workloads.embar import EmbarWorkload
from repro.workloads.fftpde import FftpdeWorkload
from repro.workloads.matvec import MatvecWorkload
from repro.workloads.mgrid import MgridWorkload


ALL_SCALES = [tiny(), small(), paper()]


class TestRegistry:
    def test_all_six_benchmarks_present(self):
        assert set(BENCHMARKS) == {
            "EMBAR",
            "MATVEC",
            "BUK",
            "CGM",
            "MGRID",
            "FFTPDE",
        }

    def test_lookup_case_insensitive(self):
        assert benchmark("matvec") is BENCHMARKS["MATVEC"]

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            benchmark("SORT")

    def test_table2_rows(self, scale):
        rows = table2_rows(scale)
        assert len(rows) == 6
        for row in rows:
            assert row["data_set_pages"] > 0
            assert row["analysis_hazard"]


class TestBuildAtAllScales:
    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    @pytest.mark.parametrize("sim_scale", ALL_SCALES, ids=lambda s: s.name)
    def test_builds_and_compiles(self, name, sim_scale):
        workload = BENCHMARKS[name]
        instance = workload.build(sim_scale)
        compiled = compile_program(instance.program, sim_scale.compiler)
        assert compiled.nests
        for nest in compiled.nests.values():
            assert nest.refs

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_dataset_exceeds_memory(self, name, small_scale):
        """Every benchmark is genuinely out-of-core."""
        workload = BENCHMARKS[name]
        pages = workload.dataset_pages(small_scale)
        assert pages > small_scale.machine.total_frames


class TestMatvecAnalysis:
    def test_paper_priorities(self, small_scale):
        instance = MatvecWorkload().build(small_scale)
        compiled = compile_program(instance.program, small_scale.compiler)
        releases = compiled.nest("multiply").plan.releases
        by_array = {s.target.ref.array.name: s for s in releases}
        assert by_array["A"].priority == 0
        assert by_array["x"].priority == 1
        assert by_array["x"].despite_reuse
        # y's inner reuse is captured: no release at all.
        assert "y" not in by_array


class TestEmbarAnalysis:
    def test_all_releases_zero_priority(self, small_scale):
        instance = EmbarWorkload().build(small_scale)
        compiled = compile_program(instance.program, small_scale.compiler)
        for spec in compiled.all_release_specs():
            assert spec.priority == 0


class TestBukAnalysis:
    def test_random_array_never_released(self, small_scale):
        instance = BukWorkload().build(small_scale)
        compiled = compile_program(instance.program, small_scale.compiler)
        for spec in compiled.all_release_specs():
            assert spec.target.ref.array.name != "rank"

    def test_random_array_prefetched(self, small_scale):
        instance = BukWorkload().build(small_scale)
        compiled = compile_program(instance.program, small_scale.compiler)
        prefetched = {s.target.ref.array.name for s in compiled.all_prefetch_specs()}
        assert "rank" in prefetched

    def test_rank_fits_in_memory(self, small_scale):
        """The random array must be able to remain 'mostly in memory' once
        the sequential arrays are released."""
        instance = BukWorkload().build(small_scale)
        rank = instance.program.array("rank")
        assert (
            rank.pages(instance.env, small_scale.machine.page_size)
            < small_scale.machine.total_frames
        )

    def test_indirect_reference_present(self, small_scale):
        instance = BukWorkload().build(small_scale)
        refs = [
            ref
            for nest in instance.program.nests
            for _c, _s, ref in nest.references()
        ]
        assert any(isinstance(ref, IndirectRef) for ref in refs)


class TestCgmAnalysis:
    def test_unknown_bounds_everywhere(self, small_scale):
        from repro.core.compiler.ir import bound_known

        instance = CgmWorkload().build(small_scale)
        for nest in instance.program.nests:
            for _depth, loop in nest.loops_by_depth():
                assert not bound_known(loop.upper)

    def test_gather_target_never_released(self, small_scale):
        instance = CgmWorkload().build(small_scale)
        compiled = compile_program(instance.program, small_scale.compiler)
        spmv = compiled.nest("sparse_matvec")
        released = {s.target.ref.array.name for s in spmv.plan.releases}
        assert "p" not in released


class TestMgridAnalysis:
    def test_coarse_levels_use_miscompiled_hints(self, small_scale):
        instance = MgridWorkload().build(small_scale)
        for nest in instance.program.nests:
            varying = [
                ref
                for _c, _s, ref in nest.references()
                if isinstance(ref, VaryingStrideRef)
            ]
            if nest.name == "smooth0":
                assert not varying  # the compiled version fits the fine grid
            else:
                assert varying
                assert all(ref.hints_follow_apparent for ref in varying)

    def test_v_cycle_invocation_order(self, small_scale):
        instance = MgridWorkload().build(small_scale)
        names = [name for name, _env in instance.invocations]
        assert names == [
            "smooth0",
            "smooth1",
            "smooth2",
            "smooth3",
            "smooth2",
            "smooth1",
            "smooth0",
        ]

    def test_all_releases_zero_priority(self, small_scale):
        instance = MgridWorkload().build(small_scale)
        compiled = compile_program(instance.program, small_scale.compiler)
        for spec in compiled.all_release_specs():
            assert spec.priority == 0


class TestFftpdeAnalysis:
    def test_misclassified_reuse_gets_positive_priority(self, small_scale):
        instance = FftpdeWorkload().build(small_scale)
        compiled = compile_program(instance.program, small_scale.compiler)
        releases = compiled.nest("fft_stages").plan.releases
        by_array = {s.target.ref.array.name: s for s in releases}
        assert by_array["fftdata"].priority == 3  # 2^0 + 2^1
        assert by_array["fftdata"].despite_reuse
        assert by_array["chksum"].priority == 0

    def test_hops_coprime_to_stripe(self, small_scale):
        import math

        from repro.workloads.fftpde import _HOPS

        for hop in _HOPS:
            assert math.gcd(hop, small_scale.disk.disks) == 1

    def test_actual_strides_change_per_stage(self, small_scale):
        instance = FftpdeWorkload().build(small_scale)
        nest = instance.program.nest("fft_stages")
        ref = next(
            ref
            for _c, _s, ref in nest.references()
            if isinstance(ref, VaryingStrideRef)
        )
        subs_s0 = ref.actual_subscripts({"s": 0, "m": 0})
        subs_s1 = ref.actual_subscripts({"s": 1, "m": 0})
        assert subs_s0[0].coeff("b") != subs_s1[0].coeff("b")


class TestLayout:
    def test_layout_covers_all_arrays(self, kernel, scale):
        instance = MatvecWorkload().build(scale)
        proc = kernel.create_process("app")
        layout = build_layout(proc, instance, scale.machine.page_size)
        assert set(layout) == {a.name for a in instance.program.arrays}

    def test_layout_segments_disjoint(self, kernel, scale):
        instance = MatvecWorkload().build(scale)
        proc = kernel.create_process("app")
        build_layout(proc, instance, scale.machine.page_size)
        segments = [
            proc.aspace.segment(a.name) for a in instance.program.arrays
        ]
        covered = set()
        for segment in segments:
            pages = set(segment)
            assert not (covered & pages)
            covered |= pages
