"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--benchmark", "NOPE"])

    def test_benchmark_case_insensitive(self):
        args = build_parser().parse_args(["run", "--benchmark", "matvec"])
        assert args.benchmark == "MATVEC"

    def test_version_case_insensitive(self):
        args = build_parser().parse_args(
            ["run", "--benchmark", "MATVEC", "--version", "b"]
        )
        assert args.version == "B"

    def test_scale_default(self):
        args = build_parser().parse_args(["list"])
        assert args.scale == "small"

    def test_figure_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "12"])
        args = build_parser().parse_args(["figure", "10bc"])
        assert args.number == "10bc"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list", "--scale", "tiny"]) == 0
        output = capsys.readouterr().out
        assert "MATVEC" in output
        assert "FFTPDE" in output

    def test_compile(self, capsys):
        assert main(["compile", "--benchmark", "MATVEC", "--scale", "tiny"]) == 0
        output = capsys.readouterr().out
        assert "prefetch" in output
        assert "priority=1 " in output or "priority=1" in output

    def test_table_1(self, capsys):
        assert main(["table", "1", "--scale", "tiny"]) == 0
        assert "swap_disks" in capsys.readouterr().out

    def test_table_2(self, capsys):
        assert main(["table", "2", "--scale", "tiny"]) == 0
        assert "hazard" in capsys.readouterr().out

    def test_run(self, capsys):
        assert (
            main(
                [
                    "run",
                    "--benchmark",
                    "MATVEC",
                    "--version",
                    "R",
                    "--scale",
                    "tiny",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "elapsed_s" in output
        assert "pages_released" in output

    def test_suite(self, capsys):
        assert (
            main(
                [
                    "suite",
                    "--benchmark",
                    "MATVEC",
                    "--versions",
                    "PR",
                    "--scale",
                    "tiny",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "daemon_stole" in output

    def test_table_3(self, capsys):
        assert main(["table", "3", "--scale", "tiny"]) == 0
        assert "stolen_O" in capsys.readouterr().out


class TestTraceCommands:
    @pytest.fixture()
    def recorded(self, tmp_path, capsys):
        """One tiny MATVEC/B recording; returns the trace path."""
        rc = main(
            [
                "trace",
                "record",
                "--benchmark",
                "MATVEC",
                "--version",
                "B",
                "--scale",
                "tiny",
                "--out",
                str(tmp_path / "traces"),
            ]
        )
        assert rc == 0
        assert "recorded MATVEC" in capsys.readouterr().out
        return tmp_path / "traces" / "MATVEC.trace"

    def test_record_replay_diff_round_trip(self, recorded, tmp_path, capsys):
        rc = main(
            [
                "trace",
                "replay",
                str(recorded),
                "--interactive",
                "--scale",
                "tiny",
                "--record-to",
                str(tmp_path / "replayed"),
            ]
        )
        assert rc == 0
        assert "trace replay" in capsys.readouterr().out
        rc = main(
            [
                "trace",
                "diff",
                str(recorded),
                str(tmp_path / "replayed" / "MATVEC.trace"),
            ]
        )
        assert rc == 0
        assert "identical" in capsys.readouterr().out

    def test_diff_exit_1_on_difference(self, recorded, tmp_path, capsys):
        from repro.trace import read_trace, write_trace

        header, ops = read_trace(recorded)
        index = next(i for i, op in enumerate(ops) if op[0] == "t")
        ops[index] = ("t", ops[index][1] + 1, ops[index][2], 0.0)
        other = tmp_path / "tampered.trace"
        write_trace(other, header, ops)
        assert main(["trace", "diff", str(recorded), str(other)]) == 1
        assert "differ at index" in capsys.readouterr().out

    def test_info_text_and_json(self, recorded, capsys):
        assert main(["trace", "info", str(recorded)]) == 0
        assert "MATVEC" in capsys.readouterr().out
        assert main(["trace", "info", "--json", str(recorded)]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["workload"] == "MATVEC"
        assert data["ops"] > 0

    def test_verify(self, recorded, capsys):
        assert main(["trace", "verify", str(recorded)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_import(self, tmp_path, capsys):
        source = tmp_path / "scan.txt"
        source.write_text("0 r\n1 w prefetch=2\n2 r\n")
        out = tmp_path / "scan.trace"
        assert main(["trace", "import", str(source), "--out", str(out)]) == 0
        assert "imported" in capsys.readouterr().out
        assert main(["trace", "info", str(out)]) == 0
        assert "source=import" in capsys.readouterr().out

    def test_run_spec_with_trace_entry(self, recorded, capsys):
        spec = json.dumps(
            {
                "scale": "tiny",
                "processes": [
                    {"trace": str(recorded)},
                    {"workload": "interactive"},
                ],
            }
        )
        assert main(["run", "--spec", spec]) == 0
        output = capsys.readouterr().out
        assert "MATVEC" in output


class TestStructuredErrors:
    """Bad input exits 2 with a one-line message, never a traceback."""

    def assert_error(self, argv, capsys, needle):
        assert main(argv) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("repro: error:")
        assert needle in captured.err
        assert "Traceback" not in captured.err

    def test_missing_spec_file(self, capsys):
        self.assert_error(
            ["run", "--spec", "/nonexistent/mix.json"], capsys, "no such file"
        )

    def test_bad_inline_spec_json(self, capsys):
        self.assert_error(["run", "--spec", "{broken"], capsys, "invalid")

    def test_spec_entry_without_workload_or_trace(self, capsys):
        self.assert_error(
            ["run", "--spec", '{"processes": [{"version": "B"}]}'],
            capsys,
            "'workload' or 'trace'",
        )

    def test_missing_trace_file(self, capsys):
        self.assert_error(
            ["trace", "info", "/nonexistent.trace"], capsys, "cannot read"
        )

    def test_corrupt_trace_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.trace"
        bad.write_bytes(b"RPROTRC1" + b"\xff" * 64)
        self.assert_error(["trace", "info", str(bad)], capsys, "corrupt")

    def test_truncated_trace_file(self, tmp_path, capsys):
        from repro.trace import TraceHeader, write_trace

        path = tmp_path / "full.trace"
        header = TraceHeader(
            process="x",
            workload="x",
            version="O",
            scale="tiny",
            page_size=0,
            layout=(("data", 4),),
        )
        write_trace(path, header, [("t", 1, False, 0.0)])
        cut = tmp_path / "cut.trace"
        cut.write_bytes(path.read_bytes()[:-6])
        assert main(["trace", "replay", str(cut), "--scale", "tiny"]) == 2

    def test_bad_import_source(self, tmp_path, capsys):
        source = tmp_path / "bad.txt"
        source.write_text("not-a-vpn r\n")
        self.assert_error(
            ["trace", "import", str(source), "--out", str(tmp_path / "o.trace")],
            capsys,
            "line 1",
        )

    def test_record_without_target(self, capsys):
        self.assert_error(
            ["trace", "record", "--out", "/tmp/x"],
            capsys,
            "give --benchmark or --spec",
        )

    def test_bad_fault_plan_file(self, capsys):
        self.assert_error(
            [
                "run",
                "--benchmark",
                "MATVEC",
                "--scale",
                "tiny",
                "--faults",
                "/nonexistent/faults.json",
            ],
            capsys,
            "no such file",
        )


class TestSweepCommands:
    """`repro sweep run|resume|status` and `repro ensemble`."""

    def test_synthetic_run_resume_status(self, tmp_path, capsys):
        state = str(tmp_path / "sweep")
        assert main(["sweep", "run", "--state-dir", state, "--synthetic", "8"]) == 0
        first = capsys.readouterr().out
        assert "8/8 ok" in first
        assert main(["sweep", "status", "--state-dir", state, "--digest"]) == 0
        status = capsys.readouterr().out
        assert "pending" in status
        # Both surfaces agree on the merged digest.
        digest = [
            line for line in first.splitlines() if line.startswith("merged digest:")
        ][0]
        assert digest in status
        assert main(["sweep", "resume", "--state-dir", state]) == 0
        assert digest in capsys.readouterr().out

    def test_failures_exit_nonzero(self, tmp_path, capsys):
        state = str(tmp_path / "sweep")
        code = main(
            [
                "sweep", "run", "--state-dir", state,
                "--synthetic", "6", "--synthetic-fail-every", "3",
            ]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "4/6 ok" in captured.out
        assert "synthetic failure" in captured.err

    def test_rerun_without_resume_is_an_error(self, tmp_path, capsys):
        state = str(tmp_path / "sweep")
        assert main(["sweep", "run", "--state-dir", state, "--synthetic", "2"]) == 0
        capsys.readouterr()
        assert main(["sweep", "run", "--state-dir", state, "--synthetic", "2"]) == 2
        assert "resume" in capsys.readouterr().err

    def test_grid_run(self, tmp_path, capsys):
        state = str(tmp_path / "sweep")
        grid = '{"axes": {"benchmark": ["MATVEC"], "version": ["R"]}}'
        code = main(
            ["sweep", "run", "--state-dir", state, "--grid", grid, "--scale", "tiny"]
        )
        assert code == 0
        assert "1/1 ok" in capsys.readouterr().out
        # The recorded grid lets resume rebuild the specs by itself.
        assert main(["sweep", "resume", "--state-dir", state]) == 0
        assert "1/1 ok" in capsys.readouterr().out

    def test_ensemble_deterministic_table(self, tmp_path, capsys):
        argv = [
            "ensemble", "--benchmark", "MATVEC", "--scale", "tiny",
            "--seeds", "3", "--resamples", "50",
            "--faults", '{"disk": {"io_error_prob": 0.02}}',
            "--fault-seed", "5",
        ]
        assert main(argv + ["--state-dir", str(tmp_path / "a")]) == 0
        first = capsys.readouterr().out
        assert "3/3 fault seeds" in first
        assert "ci95_lo" in first
        assert main(argv + ["--state-dir", str(tmp_path / "b")]) == 0
        # Fixed --fault-seed: the whole table (members + CIs) reproduces.
        assert capsys.readouterr().out == first


class TestComparePoliciesExit:
    def test_failed_cells_exit_nonzero(self, capsys):
        code = main(
            [
                "compare-policies", "--benchmark", "MATVEC", "--scale", "tiny",
                "--timeout", "0.0001",
            ]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "FAILED(timeout)" in captured.out
        assert "policy cells failed" in captured.err


class TestVersionFlag:
    def test_version_matches_package(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out


class TestScenarioCommands:
    def test_validate_template_ok(self, capsys):
        assert main(["validate", "standard-mix"]) == 0
        output = capsys.readouterr().out
        assert "OK" in output
        assert "digest" in output

    def test_validate_bad_file_exits_2_with_path(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps({"scenario": 1, "benchmark": "MATVEC", "version": "Z"}),
            encoding="utf-8",
        )
        assert main(["validate", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro: error: version:")
        assert "Z" in err

    def test_validate_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["validate", str(tmp_path / "nope.json")]) == 2
        assert "no such scenario file" in capsys.readouterr().err

    def test_scenarios_listing(self, capsys):
        assert main(["scenarios"]) == 0
        assert "standard-mix" in capsys.readouterr().out

    def test_scenarios_json(self, capsys):
        assert main(["scenarios", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = {row["name"] for row in payload["scenarios"]}
        assert "version-suite" in names

    def test_run_scenario_digest_matches_service_formula(self, capsys):
        from repro.scenarios import builtin_registry, compile_scenario
        from repro.service import run_direct

        assert main(["run", "--scenario", "standard-mix", "--digest"]) == 0
        output = capsys.readouterr().out
        registry = builtin_registry()
        compiled = compile_scenario(
            registry.get("standard-mix"), registry=registry, name="standard-mix"
        )
        _outcomes, digest = run_direct(compiled)
        assert f"scenario digest: {digest}" in output


class TestJsonOutputs:
    def test_cache_list_json(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert (
            main(
                [
                    "run", "--scenario", "standard-mix",
                    "--cache-dir", str(cache),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["cache", "list", "--cache-dir", str(cache), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"]
        assert payload["entries"][0]["status"] == "ok"

    def test_sweep_status_json_and_expect_gate(self, tmp_path, capsys):
        state = str(tmp_path / "sweep")
        assert main(["sweep", "run", "--state-dir", state, "--synthetic", "2"]) == 0
        capsys.readouterr()
        assert (
            main(["sweep", "status", "--state-dir", state, "--digest", "--json"])
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["done"] == 2
        digest = payload["digest"]
        # The gate: matching digest exits 0, anything else exits non-zero.
        assert (
            main(
                [
                    "sweep", "status", "--state-dir", state,
                    "--digest", "--expect", digest,
                ]
            )
            == 0
        )
        capsys.readouterr()
        code = main(
            [
                "sweep", "status", "--state-dir", state,
                "--digest", "--expect", "0" * 64,
            ]
        )
        assert code == 1
        assert "digest mismatch" in capsys.readouterr().err

    def test_sweep_status_expect_requires_digest(self, tmp_path, capsys):
        state = str(tmp_path / "sweep")
        assert main(["sweep", "run", "--state-dir", state, "--synthetic", "1"]) == 0
        capsys.readouterr()
        assert (
            main(["sweep", "status", "--state-dir", state, "--expect", "x"]) == 2
        )
        assert "--expect needs --digest" in capsys.readouterr().err

    def test_compare_policies_json(self, capsys):
        code = main(
            [
                "compare-policies", "--benchmark", "MATVEC", "--scale", "tiny",
                "--policy", "paging-directed", "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rows"][0]["policy"] == "paging-directed"
        assert payload["rows"][0]["failed"] is False


class TestServiceCommands:
    def test_submit_requires_server_location(self, capsys):
        assert main(["submit", "standard-mix"]) == 2
        assert "--url or --state-dir" in capsys.readouterr().err

    def test_unreachable_server_exits_2(self, capsys):
        assert main(["jobs", "--url", "http://127.0.0.1:1"]) == 2
        assert "cannot reach" in capsys.readouterr().err

    def test_serve_submit_watch_fetch_roundtrip(self, tmp_path, capsys):
        from repro.service import ExperimentServer

        state = tmp_path / "state"
        with ExperimentServer(state, workers=1) as server:
            url = server.url
            assert main(["submit", "standard-mix", "--url", url, "--json"]) == 0
            snap = json.loads(capsys.readouterr().out)
            assert main(["watch", snap["id"], "--url", url]) == 0
            watched = capsys.readouterr().out
            assert "job.finished" in watched
            assert main(["jobs", "--url", url]) == 0
            assert "standard-mix" in capsys.readouterr().out
            assert (
                main(["fetch", snap["id"], "--url", url, "--what", "result"])
                == 0
            )
            payload = json.loads(capsys.readouterr().out)
            assert payload["status"] == "done"
            assert payload["digest"]
