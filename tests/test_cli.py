"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--benchmark", "NOPE"])

    def test_benchmark_case_insensitive(self):
        args = build_parser().parse_args(["run", "--benchmark", "matvec"])
        assert args.benchmark == "MATVEC"

    def test_version_case_insensitive(self):
        args = build_parser().parse_args(
            ["run", "--benchmark", "MATVEC", "--version", "b"]
        )
        assert args.version == "B"

    def test_scale_default(self):
        args = build_parser().parse_args(["list"])
        assert args.scale == "small"

    def test_figure_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "12"])
        args = build_parser().parse_args(["figure", "10bc"])
        assert args.number == "10bc"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list", "--scale", "tiny"]) == 0
        output = capsys.readouterr().out
        assert "MATVEC" in output
        assert "FFTPDE" in output

    def test_compile(self, capsys):
        assert main(["compile", "--benchmark", "MATVEC", "--scale", "tiny"]) == 0
        output = capsys.readouterr().out
        assert "prefetch" in output
        assert "priority=1 " in output or "priority=1" in output

    def test_table_1(self, capsys):
        assert main(["table", "1", "--scale", "tiny"]) == 0
        assert "swap_disks" in capsys.readouterr().out

    def test_table_2(self, capsys):
        assert main(["table", "2", "--scale", "tiny"]) == 0
        assert "hazard" in capsys.readouterr().out

    def test_run(self, capsys):
        assert (
            main(
                [
                    "run",
                    "--benchmark",
                    "MATVEC",
                    "--version",
                    "R",
                    "--scale",
                    "tiny",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "elapsed_s" in output
        assert "pages_released" in output

    def test_suite(self, capsys):
        assert (
            main(
                [
                    "suite",
                    "--benchmark",
                    "MATVEC",
                    "--versions",
                    "PR",
                    "--scale",
                    "tiny",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "daemon_stole" in output

    def test_table_3(self, capsys):
        assert main(["table", "3", "--scale", "tiny"]) == 0
        assert "stolen_O" in capsys.readouterr().out
