"""The parallel runner: spec hashing, caching, and fan-out."""

import pytest

from repro.experiments.runner import run_specs, spec_key
from repro.machine import ExperimentSpec
from repro.sim.engine import Engine


def _spec(scale, version="R"):
    return ExperimentSpec.multiprogram(scale, "MATVEC", version)


def test_spec_key_is_stable_and_discriminating(scale):
    assert spec_key(_spec(scale)) == spec_key(_spec(scale))
    assert spec_key(_spec(scale, "R")) != spec_key(_spec(scale, "B"))
    assert spec_key(_spec(scale)) != spec_key(
        _spec(scale.with_overrides(max_engine_steps=123))
    )


def test_run_specs_preserves_input_order(scale):
    specs = [_spec(scale, v) for v in "RB"]
    results = run_specs(specs)
    assert [r.primary.version for r in results] == ["R", "B"]
    assert all(not r.from_cache for r in results)


def test_cached_rerun_performs_zero_simulation_steps(scale, tmp_path, monkeypatch):
    cache = tmp_path / "cache"
    spec = _spec(scale)
    first = run_specs([spec], cache_dir=cache)[0]
    assert not first.from_cache
    assert first.engine_steps > 0

    # Any attempt to simulate would now blow up: the result must come
    # entirely from the cache.
    def forbidden(self, *args, **kwargs):
        raise AssertionError("engine stepped on a cached spec")

    monkeypatch.setattr(Engine, "step", forbidden)
    monkeypatch.setattr(Engine, "run_until_triggered", forbidden)
    second = run_specs([spec], cache_dir=cache)[0]
    assert second.from_cache
    assert second.elapsed_s == first.elapsed_s
    assert second.engine_steps == first.engine_steps
    assert second.primary.stats.hard_faults == first.primary.stats.hard_faults


def test_cache_is_shared_across_overlapping_grids(scale, tmp_path, monkeypatch):
    cache = tmp_path / "cache"
    run_specs([_spec(scale, v) for v in "OR"], cache_dir=cache)
    # A different grid overlapping on R: only B may simulate.
    real_run = Engine.run_until_triggered
    stepped = {"count": 0}

    def counting(self, event, max_steps=None):
        before = self.steps
        try:
            return real_run(self, event, max_steps)
        finally:
            stepped["count"] += self.steps - before

    monkeypatch.setattr(Engine, "run_until_triggered", counting)
    results = run_specs([_spec(scale, v) for v in "RB"], cache_dir=cache)
    assert results[0].from_cache and not results[1].from_cache
    assert stepped["count"] == results[1].engine_steps


def test_corrupt_cache_entry_is_recomputed(scale, tmp_path):
    cache = tmp_path / "cache"
    spec = _spec(scale)
    run_specs([spec], cache_dir=cache)
    entry = cache / f"{spec_key(spec)}.pkl"
    entry.write_bytes(b"not a pickle")
    result = run_specs([spec], cache_dir=cache)[0]
    assert not result.from_cache
    assert result.engine_steps > 0


def test_parallel_pool_path_matches_serial(scale):
    specs = [_spec(scale, v) for v in "RB"]
    serial = run_specs(specs, jobs=1)
    parallel = run_specs(specs, jobs=2)
    assert [r.elapsed_s for r in parallel] == [r.elapsed_s for r in serial]
    assert [r.engine_steps for r in parallel] == [r.engine_steps for r in serial]


def test_rejects_nonpositive_jobs(scale):
    with pytest.raises(ValueError):
        run_specs([_spec(scale)], jobs=0)
