"""The parallel runner: spec hashing, caching, fan-out, and containment."""

import pathlib
import signal
import time

import pytest

from repro.experiments import runner as runner_mod
from repro.experiments.runner import (
    ExperimentFailure,
    cache_entries,
    execute_guarded,
    prune_cache,
    run_specs,
    spec_key,
    store_cached,
)
from repro.machine import ExperimentSpec
from repro.sim.engine import Engine


def _spec(scale, version="R"):
    return ExperimentSpec.multiprogram(scale, "MATVEC", version)


def test_spec_key_is_stable_and_discriminating(scale):
    assert spec_key(_spec(scale)) == spec_key(_spec(scale))
    assert spec_key(_spec(scale, "R")) != spec_key(_spec(scale, "B"))
    assert spec_key(_spec(scale)) != spec_key(
        _spec(scale.with_overrides(max_engine_steps=123))
    )


def test_run_specs_preserves_input_order(scale):
    specs = [_spec(scale, v) for v in "RB"]
    results = run_specs(specs)
    assert [r.primary.version for r in results] == ["R", "B"]
    assert all(not r.from_cache for r in results)


def test_cached_rerun_performs_zero_simulation_steps(scale, tmp_path, monkeypatch):
    cache = tmp_path / "cache"
    spec = _spec(scale)
    first = run_specs([spec], cache_dir=cache)[0]
    assert not first.from_cache
    assert first.engine_steps > 0

    # Any attempt to simulate would now blow up: the result must come
    # entirely from the cache.
    def forbidden(self, *args, **kwargs):
        raise AssertionError("engine stepped on a cached spec")

    monkeypatch.setattr(Engine, "step", forbidden)
    monkeypatch.setattr(Engine, "run_until_triggered", forbidden)
    second = run_specs([spec], cache_dir=cache)[0]
    assert second.from_cache
    assert second.elapsed_s == first.elapsed_s
    assert second.engine_steps == first.engine_steps
    assert second.primary.stats.hard_faults == first.primary.stats.hard_faults


def test_cache_is_shared_across_overlapping_grids(scale, tmp_path, monkeypatch):
    cache = tmp_path / "cache"
    run_specs([_spec(scale, v) for v in "OR"], cache_dir=cache)
    # A different grid overlapping on R: only B may simulate.
    real_run = Engine.run_until_triggered
    stepped = {"count": 0}

    def counting(self, event, max_steps=None):
        before = self.steps
        try:
            return real_run(self, event, max_steps)
        finally:
            stepped["count"] += self.steps - before

    monkeypatch.setattr(Engine, "run_until_triggered", counting)
    results = run_specs([_spec(scale, v) for v in "RB"], cache_dir=cache)
    assert results[0].from_cache and not results[1].from_cache
    assert stepped["count"] == results[1].engine_steps


def test_corrupt_cache_entry_is_recomputed(scale, tmp_path):
    cache = tmp_path / "cache"
    spec = _spec(scale)
    run_specs([spec], cache_dir=cache)
    entry = cache / f"{spec_key(spec)}.pkl"
    entry.write_bytes(b"not a pickle")
    result = run_specs([spec], cache_dir=cache)[0]
    assert not result.from_cache
    assert result.engine_steps > 0


def test_parallel_pool_path_matches_serial(scale):
    specs = [_spec(scale, v) for v in "RB"]
    serial = run_specs(specs, jobs=1)
    parallel = run_specs(specs, jobs=2)
    assert [r.elapsed_s for r in parallel] == [r.elapsed_s for r in serial]
    assert [r.engine_steps for r in parallel] == [r.engine_steps for r in serial]


def test_rejects_nonpositive_jobs(scale):
    with pytest.raises(ValueError):
        run_specs([_spec(scale)], jobs=0)


# -- SIGALRM deadline hygiene ------------------------------------------------


@pytest.fixture
def sentinel_alarm():
    """Install a recognisable SIGALRM handler; restore it afterwards."""

    def handler(signum, frame):  # pragma: no cover - must never fire
        raise AssertionError("sentinel SIGALRM handler invoked")

    previous = signal.signal(signal.SIGALRM, handler)
    try:
        yield handler
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _assert_alarm_pristine(handler):
    assert signal.getsignal(signal.SIGALRM) is handler
    # The itimer must be fully disarmed, not merely rescheduled.
    assert signal.setitimer(signal.ITIMER_REAL, 0.0) == (0.0, 0.0)


class TestDeadlineHygiene:
    """``_run_with_deadline`` must restore the caller's SIGALRM state on
    *every* exit path — success, timeout, and error (a leaked handler or
    armed timer fires into unrelated code minutes later)."""

    def test_success_path(self, scale, sentinel_alarm):
        result = execute_guarded(_spec(scale), timeout_s=120.0)
        assert not isinstance(result, ExperimentFailure)
        _assert_alarm_pristine(sentinel_alarm)

    def test_timeout_path(self, scale, sentinel_alarm, monkeypatch):
        monkeypatch.setattr(
            runner_mod, "run_experiment", lambda spec: time.sleep(30)
        )
        failure = execute_guarded(_spec(scale), timeout_s=0.05)
        assert isinstance(failure, ExperimentFailure)
        assert failure.kind == "timeout"
        _assert_alarm_pristine(sentinel_alarm)

    def test_error_path(self, scale, sentinel_alarm, monkeypatch):
        def explode(spec):
            raise RuntimeError("boom")

        monkeypatch.setattr(runner_mod, "run_experiment", explode)
        failure = execute_guarded(_spec(scale), timeout_s=120.0)
        assert isinstance(failure, ExperimentFailure)
        assert failure.kind == "error" and "boom" in failure.message
        _assert_alarm_pristine(sentinel_alarm)

    def test_failures_are_not_cached(self, scale, tmp_path):
        spec = _spec(scale)
        failure = ExperimentFailure(spec, "error", "synthetic")
        store_cached(tmp_path, spec_key(spec), failure)
        assert list(tmp_path.iterdir()) == []

    def test_backcompat_aliases(self):
        assert runner_mod._load_cached is runner_mod.load_cached
        assert runner_mod._store_cached is runner_mod.store_cached
        assert runner_mod._execute_guarded is runner_mod.execute_guarded


# -- cache inspection under concurrent writers -------------------------------


class TestCacheRaces:
    """``cache_entries``/``prune_cache`` share a directory with live
    workers and other pruners: entries may vanish between listing and
    inspection, and partial writes may appear at any time."""

    def test_missing_directory(self, tmp_path):
        assert cache_entries(tmp_path / "nope") == []
        assert prune_cache(tmp_path / "nope") == []

    def test_entry_vanishing_before_stat_is_skipped(
        self, scale, tmp_path, monkeypatch
    ):
        run_specs([_spec(scale)], cache_dir=tmp_path)
        (tmp_path / "vanishing.pkl").write_bytes(b"soon gone")
        real_stat = pathlib.Path.stat

        def racing_stat(self, **kwargs):
            if self.name == "vanishing.pkl":
                self.unlink(missing_ok=True)  # a concurrent pruner won
                raise FileNotFoundError(str(self))
            return real_stat(self, **kwargs)

        monkeypatch.setattr(pathlib.Path, "stat", racing_stat)
        entries = cache_entries(tmp_path)
        assert [e.status for e in entries] == ["ok"]

    def test_entry_vanishing_before_open_is_skipped(
        self, scale, tmp_path, monkeypatch
    ):
        run_specs([_spec(scale)], cache_dir=tmp_path)
        victim = tmp_path / "vanishing.pkl"
        victim.write_bytes(b"soon gone")
        real_open = pathlib.Path.open

        def racing_open(self, *args, **kwargs):
            if self.name == "vanishing.pkl":
                raise FileNotFoundError(str(self))
            return real_open(self, *args, **kwargs)

        monkeypatch.setattr(pathlib.Path, "open", racing_open)
        entries = cache_entries(tmp_path)
        assert [e.status for e in entries] == ["ok"]

    def test_torn_partial_write_classifies_corrupt(self, scale, tmp_path):
        run_specs([_spec(scale)], cache_dir=tmp_path)
        (tmp_path / "torn.pkl").write_bytes(b"\x80\x05")  # truncated pickle
        orphan = tmp_path / "x.pkl.tmp.123"
        orphan.write_bytes(b"half-renamed")
        statuses = sorted(e.status for e in cache_entries(tmp_path))
        assert statuses == ["corrupt", "ok", "orphan"]
        removed = prune_cache(tmp_path)
        assert sorted(e.status for e in removed) == ["corrupt", "orphan"]
        assert [e.status for e in cache_entries(tmp_path)] == ["ok"]
