"""Shared fixtures: a fresh engine, kernel, and the tiny scale."""

import pytest

from repro.config import small, tiny
from repro.kernel import Kernel
from repro.sim.engine import Engine


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def scale():
    return tiny()


@pytest.fixture
def small_scale():
    return small()


@pytest.fixture
def kernel(engine, scale):
    return Kernel.boot(engine, scale)
