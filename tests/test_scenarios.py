"""Tests for the scenario registry: format, inheritance, validation."""

import json

import pytest

from repro.machine import INTERACTIVE
from repro.scenarios import (
    BUILTIN_TEMPLATES,
    ScenarioError,
    ScenarioRegistry,
    builtin_registry,
    compile_scenario,
    load_scenario_file,
    scenario_digest,
    validate_scenario,
)


def doc(**extra):
    base = {"scenario": 1, "name": "t", "scale": "tiny"}
    base.update(extra)
    return base


class TestCompile:
    def test_benchmark_shorthand(self):
        compiled = compile_scenario(doc(benchmark="MATVEC", version="B"))
        assert len(compiled.specs) == 1
        spec = compiled.specs[0]
        workloads = [p.workload for p in spec.processes]
        assert "MATVEC" in workloads
        assert INTERACTIVE in workloads

    def test_processes_form(self):
        compiled = compile_scenario(
            doc(
                processes=[
                    {"workload": "MATVEC", "version": "R"},
                    {"workload": "interactive", "sweeps": 4},
                ]
            )
        )
        assert len(compiled.specs[0].processes) == 2

    def test_sweep_expansion_order_matches_grid(self):
        compiled = compile_scenario(
            doc(sweep={"axes": {"benchmark": ["MATVEC"], "version": ["O", "B"]}})
        )
        assert len(compiled.specs) == 2
        versions = [
            next(p.version for p in spec.processes if p.workload == "MATVEC")
            for spec in compiled.specs
        ]
        assert versions == ["O", "B"]

    def test_policy_applied(self):
        compiled = compile_scenario(
            doc(benchmark="MATVEC", version="R", policy="global-clock")
        )
        assert compiled.specs[0].policy is not None

    def test_overrides_applied(self):
        compiled = compile_scenario(
            doc(benchmark="MATVEC", overrides={"max_engine_steps": 123456})
        )
        assert compiled.specs[0].scale.max_engine_steps == 123456

    def test_digest_is_canonical(self):
        a = doc(benchmark="MATVEC", version="B")
        b = dict(reversed(list(a.items())))  # same content, other key order
        assert scenario_digest(a) == scenario_digest(b)

    def test_record_trace_flag(self):
        compiled = compile_scenario(doc(benchmark="MATVEC", record_trace=True))
        assert compiled.record_trace


class TestInheritance:
    def test_extends_builtin(self):
        registry = builtin_registry()
        compiled = compile_scenario(registry.get("release-only"), registry=registry)
        spec = compiled.specs[0]
        version = next(
            p.version for p in spec.processes if p.workload == "MATVEC"
        )
        assert version == "R"

    def test_child_overrides_win(self):
        registry = ScenarioRegistry()
        registry.register("base", doc(name="base", benchmark="MATVEC", version="O"))
        child = doc(name="child", extends="base", version="B")
        del child["scale"]
        compiled = compile_scenario(child, registry=registry)
        version = next(
            p.version
            for p in compiled.specs[0].processes
            if p.workload == "MATVEC"
        )
        assert version == "B"

    def test_extends_cycle_rejected(self):
        registry = ScenarioRegistry()
        registry.register("a", doc(name="a", extends="b", benchmark="MATVEC"))
        registry.register("b", doc(name="b", extends="a", benchmark="MATVEC"))
        with pytest.raises(ScenarioError, match="cycle"):
            compile_scenario(registry.get("a"), registry=registry)

    def test_unknown_parent_rejected(self):
        with pytest.raises(ScenarioError, match="extends"):
            compile_scenario(doc(extends="nope", benchmark="MATVEC"))


class TestValidation:
    def test_missing_format_version(self):
        with pytest.raises(ScenarioError, match="scenario"):
            validate_scenario({"benchmark": "MATVEC"})

    def test_unknown_top_level_key_named(self):
        with pytest.raises(ScenarioError, match="bogus"):
            validate_scenario(doc(benchmark="MATVEC", bogus=1))

    def test_unknown_benchmark_path_precise(self):
        with pytest.raises(ScenarioError) as excinfo:
            validate_scenario(doc(benchmark="NOPE"))
        assert excinfo.value.path == "benchmark"
        assert "NOPE" in str(excinfo.value)

    def test_unknown_version_path_precise(self):
        with pytest.raises(ScenarioError) as excinfo:
            validate_scenario(doc(benchmark="MATVEC", version="Z"))
        assert excinfo.value.path == "version"

    def test_sweep_axis_path_precise(self):
        with pytest.raises(ScenarioError) as excinfo:
            validate_scenario(doc(sweep={"axes": {"nope": [1]}}))
        assert "sweep.axes" in excinfo.value.path

    def test_process_entry_path_precise(self):
        with pytest.raises(ScenarioError) as excinfo:
            validate_scenario(doc(processes=[{"workload": "MATVEC"}, {"bad": 1}]))
        assert "processes[1]" in excinfo.value.path

    def test_override_path_precise(self):
        with pytest.raises(ScenarioError) as excinfo:
            validate_scenario(doc(benchmark="MATVEC", overrides={"nope": 1}))
        assert excinfo.value.path == "overrides.nope"

    def test_shape_must_be_exclusive(self):
        with pytest.raises(ScenarioError, match="exactly one"):
            validate_scenario(
                doc(benchmark="MATVEC", sweep={"axes": {"version": ["O"]}})
            )

    def test_load_scenario_file_errors(self, tmp_path):
        with pytest.raises(ScenarioError, match="no such scenario file"):
            load_scenario_file(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(ScenarioError, match="not valid JSON"):
            load_scenario_file(bad)


class TestRegistry:
    def test_builtin_templates_all_compile(self):
        registry = builtin_registry()
        for name in registry.names():
            compiled = compile_scenario(
                registry.get(name), registry=registry, name=name
            )
            assert compiled.specs, name

    def test_builtin_names(self):
        assert set(BUILTIN_TEMPLATES) == set(builtin_registry().names())

    def test_scenario_dir_loading(self, tmp_path):
        path = tmp_path / "custom.json"
        path.write_text(
            json.dumps(doc(name="custom-mix", benchmark="MATVEC")),
            encoding="utf-8",
        )
        registry = builtin_registry(scenario_dirs=[tmp_path])
        assert "custom-mix" in registry
        origins = {row["name"]: row["origin"] for row in registry.entries()}
        assert origins["custom-mix"] != "builtin"

    def test_get_returns_copy(self):
        registry = builtin_registry()
        registry.get("standard-mix")["benchmark"] = "MUTATED"
        assert registry.get("standard-mix")["benchmark"] == "MATVEC"
