"""The composition root: specs, determinism, budgets, and custom mixes."""

import math

import pytest

from repro.experiments.harness import run_multiprogram, to_multiprogram
from repro.experiments.report import format_table
from repro.machine import (
    ExperimentSpec,
    Machine,
    SpecError,
    StepBudgetExceeded,
    WorkloadProcessSpec,
    run_experiment,
)


def test_spec_validation_rejects_unknown_workload(scale):
    spec = ExperimentSpec(
        scale=scale, processes=(WorkloadProcessSpec(workload="NOPE"),)
    )
    with pytest.raises(SpecError):
        spec.validate()


def test_spec_validation_rejects_unknown_version(scale):
    spec = ExperimentSpec(
        scale=scale,
        processes=(WorkloadProcessSpec(workload="MATVEC", version="X"),),
    )
    with pytest.raises(SpecError):
        spec.validate()


def test_spec_validation_requires_a_bounded_process(scale):
    spec = ExperimentSpec(
        scale=scale,
        processes=(WorkloadProcessSpec(workload="interactive"),),
    )
    with pytest.raises(SpecError):
        spec.validate()


def test_spec_is_hashable_and_reusable(scale):
    spec = ExperimentSpec.multiprogram(scale, "MATVEC", "R")
    assert hash(spec) == hash(ExperimentSpec.multiprogram(scale, "MATVEC", "R"))


def test_same_spec_runs_are_deterministic(scale):
    spec = ExperimentSpec.multiprogram(scale, "MATVEC", "B")
    first = run_experiment(spec)
    second = run_experiment(spec)
    assert first.elapsed_s == second.elapsed_s
    assert first.engine_steps == second.engine_steps
    assert first.primary.buckets.as_dict() == second.primary.buckets.as_dict()
    assert first.primary.stats.hard_faults == second.primary.stats.hard_faults
    assert [s.response_time for s in first.interactives[0].sweeps] == [
        s.response_time for s in second.interactives[0].sweeps
    ]


def test_machine_matches_legacy_harness_wiring(scale):
    """The spec path reproduces the pre-refactor harness bit-for-bit."""
    via_spec = to_multiprogram(
        run_experiment(ExperimentSpec.multiprogram(scale, "MATVEC", "R"))
    )
    via_harness = run_multiprogram(scale, "MATVEC", "R")
    assert via_spec.elapsed_s == via_harness.elapsed_s
    assert via_spec.app_stats.hard_faults == via_harness.app_stats.hard_faults
    assert via_spec.mean_response() == via_harness.mean_response()


def test_two_hog_mix_both_complete(scale):
    spec = ExperimentSpec(
        scale=scale,
        processes=(
            WorkloadProcessSpec(workload="MATVEC", version="R"),
            WorkloadProcessSpec(workload="EMBAR", version="R"),
        ),
    )
    result = run_experiment(spec)
    assert [p.name for p in result.processes] == ["MATVEC", "EMBAR"]
    assert all(p.completed for p in result.processes)
    assert all(p.buckets.total > 0 for p in result.processes)


def test_duplicate_workloads_get_unique_names(scale):
    spec = ExperimentSpec(
        scale=scale,
        processes=(
            WorkloadProcessSpec(workload="EMBAR", version="O"),
            WorkloadProcessSpec(workload="EMBAR", version="R"),
        ),
    )
    result = run_experiment(spec)
    assert [p.name for p in result.processes] == ["EMBAR", "EMBAR-2"]
    assert result.process("EMBAR-2").version == "R"


def test_start_offset_delays_the_process(scale):
    offset = 0.05
    spec = ExperimentSpec(
        scale=scale,
        processes=(
            WorkloadProcessSpec(workload="MATVEC", version="R"),
            WorkloadProcessSpec(
                workload="interactive", sleep_time_s=0.01, start_offset_s=offset
            ),
        ),
    )
    result = run_experiment(spec)
    sweeps = result.interactives[0].sweeps
    assert sweeps, "interactive task never ran"
    assert sweeps[0].start_time >= offset


def test_step_budget_exceeded_carries_diagnostics(scale):
    spec = ExperimentSpec.multiprogram(
        scale.with_overrides(max_engine_steps=1000), "MATVEC", "O"
    )
    with pytest.raises(StepBudgetExceeded) as excinfo:
        run_experiment(spec)
    exc = excinfo.value
    assert exc.budget == 1000
    assert exc.elapsed_s >= 0.0
    assert "MATVEC" in exc.buckets and "interactive" in exc.buckets
    assert "MATVEC" in str(exc)


def test_machine_rejects_running_with_no_bounded_process(scale):
    machine = Machine(scale)
    with pytest.raises(SpecError):
        machine.run()


def test_mean_response_is_nan_without_sweeps(scale):
    result = run_multiprogram(scale, "MATVEC", "R", with_interactive=False)
    assert result.sweeps == []
    assert math.isnan(result.mean_response())
    assert math.isnan(result.mean_interactive_hard_faults())


def test_formatter_renders_nan_as_not_available():
    table = format_table(["x"], [(float("nan"),)])
    assert "n/a" in table
