"""Per-policy smoke matrix: every registered policy completes, deterministically.

CI runs this file once per registered policy with ``REPRO_POLICY=<name>`` so
a broken competitor policy fails its own matrix cell instead of hiding inside
a monolithic job.  Without the variable set, all policies run (so plain
``pytest`` still covers everything).
"""

import os

import pytest

from repro import bench
from repro.config import tiny
from repro.experiments.harness import multiprogram_spec
from repro.machine import run_experiment
from repro.policies import policy_names

_SELECTED = os.environ.get("REPRO_POLICY")
POLICIES = [
    name
    for name in policy_names()
    if _SELECTED is None or name == _SELECTED
]

if _SELECTED is not None and not POLICIES:
    raise RuntimeError(
        f"REPRO_POLICY={_SELECTED!r} is not a registered policy; "
        f"registered: {', '.join(policy_names())}"
    )


def _spec(policy, version="R"):
    return multiprogram_spec(tiny(), "MATVEC", version).with_policy(policy)


@pytest.mark.parametrize("policy", POLICIES)
def test_policy_completes_standard_hog(policy):
    result = run_experiment(_spec(policy))
    assert all(p.completed for p in result.out_of_core)
    assert result.elapsed_s > 0
    assert result.spec.policy.name == policy


@pytest.mark.parametrize("policy", POLICIES)
def test_policy_is_deterministic(policy):
    spec = _spec(policy)
    first = bench.serialize_result(run_experiment(spec))
    second = bench.serialize_result(run_experiment(spec))
    assert first == second


@pytest.mark.parametrize("policy", POLICIES)
def test_policy_samples_fragmentation(policy):
    result = run_experiment(_spec(policy))
    frag = result.vm.frag
    assert frag.samples >= 1
    assert 0.0 <= frag.mean_unusable_free_index <= 1.0
    assert frag.last.free_frames >= 0


@pytest.mark.parametrize("policy", POLICIES)
def test_policy_handles_unhinted_build(policy):
    """Version O carries no release hints; every policy must still finish."""
    result = run_experiment(_spec(policy, version="O"))
    assert all(p.completed for p in result.out_of_core)
