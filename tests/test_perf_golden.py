"""Golden equivalence and determinism for the hot-path optimizations.

The op-stream batching ('T' runs), the engine fast lane, and the driver's
tight touch loop are pure performance work: they must not move a single
simulated event.  These tests pin that down three ways:

1. **Stream equality** — for every benchmark nest and hint configuration,
   ``expand_ops(batched stream)`` equals the ``batch=False`` stream
   op-for-op (floats compared bit-exactly, not approximately);
2. **Metric equivalence** — full experiments run with batching disabled
   produce byte-identical serialized results;
3. **Determinism** — the standard mix serializes identically across
   repeated runs and under a parallel runner (``jobs=2``).
"""

import functools

import pytest

from repro.bench import serialize_result
from repro.config import tiny
from repro.core.compiler.interp import expand_ops, nest_ops
from repro.experiments.harness import multiprogram_spec
from repro.experiments.runner import run_specs
from repro.machine import run_experiment
from repro.workloads import BENCHMARKS


def _layout_for(instance, page_size):
    """Contiguous array layout, mirroring ``build_layout``'s assignment."""
    layout = {}
    start = 0
    for array in instance.program.arrays:
        layout[array.name] = start
        start += array.pages(instance.env, page_size)
    return layout


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
@pytest.mark.parametrize("hints", [False, True], ids=["no-hints", "hints"])
def test_batched_stream_expands_to_unbatched(name, hints):
    scale = tiny()
    machine = scale.machine
    instance = BENCHMARKS[name].build(scale)
    compiled = instance.compiled(scale)
    layout = _layout_for(instance, machine.page_size)
    for nest_name, overrides in instance.invocations:
        env = dict(instance.env)
        env.update(overrides)
        kwargs = dict(
            rng_seed=instance.rng_seed,
            emit_prefetch=hints,
            emit_release=hints,
        )
        batched = list(
            nest_ops(compiled.nests[nest_name], env, layout, machine, **kwargs)
        )
        unbatched = list(
            nest_ops(
                compiled.nests[nest_name],
                env,
                layout,
                machine,
                batch=False,
                **kwargs,
            )
        )
        assert all(op[0] != "T" for op in unbatched)
        assert list(expand_ops(batched)) == unbatched


def test_hint_free_unit_stride_actually_batches():
    """Guard against the fast path silently never firing.

    EMBAR's nests walk one array at unit stride with no second reference,
    which is exactly the shape the 'T' fast path targets.
    """
    scale = tiny()
    instance = BENCHMARKS["EMBAR"].build(scale)
    compiled = instance.compiled(scale)
    layout = _layout_for(instance, scale.machine.page_size)
    nest_name, overrides = instance.invocations[0]
    env = dict(instance.env)
    env.update(overrides)
    ops = nest_ops(
        compiled.nests[nest_name],
        env,
        layout,
        scale.machine,
        rng_seed=instance.rng_seed,
        emit_prefetch=False,
        emit_release=False,
    )
    assert any(op[0] == "T" for op in ops)


@pytest.mark.parametrize("workload", ["EMBAR", "MATVEC", "BUK"])
@pytest.mark.parametrize("version", ["O", "B"])
def test_experiment_metrics_identical_without_batching(
    monkeypatch, workload, version
):
    """Simulated results are byte-identical with the fast path disabled.

    EMBAR exercises the batched unit-stride ('T') path, BUK the
    indirect-reference path (chunk sampling and its cache), MATVEC the
    multi-reference affine loop.  Version O runs hint-free (maximally
    batchable), B with the full hint machinery.
    """
    spec = multiprogram_spec(tiny(), workload, version)
    golden = serialize_result(run_experiment(spec))

    import repro.workloads.base as wbase

    monkeypatch.setattr(
        wbase, "nest_ops", functools.partial(nest_ops, batch=False)
    )
    unbatched = serialize_result(run_experiment(spec))
    assert golden == unbatched


def test_standard_mix_is_deterministic_and_parallel_safe():
    specs = [multiprogram_spec(tiny(), "MATVEC", v) for v in "OPRB"]
    first = [serialize_result(run_experiment(spec)) for spec in specs]
    second = [serialize_result(run_experiment(spec)) for spec in specs]
    assert first == second

    parallel = run_specs(specs, jobs=2)
    assert [serialize_result(result) for result in parallel] == first
