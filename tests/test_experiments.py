"""Tests for the harness and the figure/table modules."""

import pytest

from repro.config import tiny
from repro.core.runtime.policies import VERSIONS
from repro.experiments import (
    format_figure1,
    format_figure7,
    format_figure8,
    format_figure9,
    format_figure10a,
    format_figure10bc,
    format_table3,
    interactive_alone,
    run_figure1,
    run_figure7,
    run_figure8,
    run_figure9,
    run_figure10a,
    run_figure10bc,
    run_multiprogram,
    run_table3,
)
from repro.experiments.report import format_table, normalize, percent
from repro.workloads import BENCHMARKS


SCALE = tiny()
SUBSET = [BENCHMARKS["MATVEC"]]


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [(1, 2.5), (300, 0.001)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_normalize(self):
        values = normalize({"O": 10.0, "P": 5.0}, "O")
        assert values == {"O": 1.0, "P": 0.5}

    def test_normalize_zero_baseline(self):
        with pytest.raises(ValueError):
            normalize({"O": 0.0}, "O")

    def test_percent(self):
        assert percent(0.5) == "50.0%"


class TestHarness:
    def test_result_carries_all_sections(self):
        run = run_multiprogram(SCALE, BENCHMARKS["MATVEC"], VERSIONS["R"])
        assert run.elapsed_s > 0
        assert run.app_buckets.total > 0
        assert run.vm.total_allocations > 0
        assert run.sweeps  # the interactive task sampled
        assert run.swap["prefetch_reads"] > 0

    def test_without_interactive(self):
        run = run_multiprogram(
            SCALE, BENCHMARKS["MATVEC"], VERSIONS["O"], with_interactive=False
        )
        assert run.interactive_stats is None
        assert run.sweeps == []

    def test_interactive_alone_baseline(self):
        samples = interactive_alone(SCALE, sleep_time_s=0.01, sweeps=5)
        assert len(samples) >= 5
        # After the cold start, sweeps are fault-free and fast.
        for sample in samples[1:]:
            assert sample.hard_faults == 0
            assert sample.response_time < 0.01

    def test_interactive_alone_cold_start_faults(self):
        samples = interactive_alone(SCALE, sleep_time_s=0.01, sweeps=3)
        assert samples[0].hard_faults == SCALE.interactive_pages


class TestFigureModules:
    def test_figure1_shapes(self):
        result = run_figure1(SCALE, sleep_times=[0.0, 0.08])
        assert len(result.points) == 2
        assert len(result.series("alone")) == 2
        text = format_figure1(result)
        assert "Figure 1" in text

    def test_figure7_bars_normalized(self):
        result = run_figure7(SCALE, workloads=SUBSET)
        o_bar = result.bar("MATVEC", "O")
        assert o_bar.total == pytest.approx(1.0)
        r_bar = result.bar("MATVEC", "R")
        assert r_bar.total < o_bar.total
        assert "MATVEC" in format_figure7(result)

    def test_figure7_speedup_metric(self):
        result = run_figure7(SCALE, workloads=SUBSET)
        assert result.speedup_of_release_over_prefetch("MATVEC") > 0

    def test_figure8_reduction(self):
        result = run_figure8(SCALE, workloads=SUBSET)
        assert result.reduction_with_release("MATVEC") >= 1.0
        assert "soft_faults" in format_figure8(result)

    def test_figure9_fractions_bounded(self):
        result = run_figure9(SCALE, workloads=SUBSET, versions="PR")
        for row in result.rows:
            assert 0.0 <= row.daemon_fraction <= 1.0
            assert 0.0 <= row.release_rescue_fraction <= 1.0
        assert "daemon_share" in format_figure9(result)

    def test_table3_reductions(self):
        result = run_table3(SCALE, workloads=SUBSET)
        row = result.row("MATVEC")
        assert row.steal_reduction > 1.0
        assert row.pages_released > 0
        assert "daemon_runs_O" in format_table3(result)

    def test_figure10a_series(self):
        result = run_figure10a(SCALE, sleep_times=[0.05], versions="PR")
        assert set(result.series) == {"alone", "P", "R"}
        assert "MATVEC" in format_figure10a(result)

    def test_figure10bc_rows(self):
        result = run_figure10bc(SCALE, workloads=SUBSET, versions="PR")
        p_row = result.row("MATVEC", "P")
        r_row = result.row("MATVEC", "R")
        assert p_row.normalized_response > r_row.normalized_response
        assert r_row.hard_faults_per_sweep <= p_row.hard_faults_per_sweep
        assert "resp_normalized" in format_figure10bc(result)
