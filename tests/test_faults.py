"""Chaos suite: deterministic fault injection and graceful degradation.

Covers the three properties the fault subsystem promises:

- the zero-fault plan builds no fault machinery and leaves results exactly
  as before;
- the same plan (same seed) reproduces the same injected schedule on every
  run, and a different seed produces a different one;
- every non-empty plan degrades the experiment without crashing or hanging
  it, and the runner contains the specs that do fail.
"""

import os
import pickle

import pytest

from repro.experiments.runner import (
    ExperimentFailure,
    ExperimentGridError,
    _store_cached,
    cache_entries,
    prune_cache,
    run_specs,
    spec_key,
)
from repro.faults import (
    EMPTY_PLAN,
    DiskFailure,
    DiskFaultSpec,
    FaultPlan,
    FaultPlanError,
    HintFaultSpec,
)
from repro.machine import ExperimentSpec, Machine, SpecError, run_experiment
from repro.obs import MetricsAggregator


def _spec(scale, plan=EMPTY_PLAN, version="B"):
    return ExperimentSpec.multiprogram(scale, "MATVEC", version).with_faults(plan)


IO_ERROR_PLAN = FaultPlan(seed=11, disk=DiskFaultSpec(io_error_prob=0.05))
HINT_PLAN = FaultPlan(
    seed=5,
    hints=HintFaultSpec(drop_prob=0.2, spurious_prob=0.1, mistime_prob=0.1),
)


class TestFaultPlan:
    def test_empty_plan_is_disabled(self):
        assert not EMPTY_PLAN.enabled
        assert not EMPTY_PLAN.disk.enabled
        assert not EMPTY_PLAN.hints.enabled

    @pytest.mark.parametrize(
        "plan",
        [
            FaultPlan(disk=DiskFaultSpec(io_error_prob=1.5)),
            FaultPlan(disk=DiskFaultSpec(latency_spike_prob=-0.1)),
            FaultPlan(disk=DiskFaultSpec(latency_spike_prob=0.1, latency_spike_multiplier=0.5)),
            FaultPlan(disk=DiskFaultSpec(degraded_disks=(-1,))),
            FaultPlan(disk=DiskFaultSpec(failures=(DiskFailure(disk=-2),))),
            FaultPlan(hints=HintFaultSpec(drop_prob=2.0)),
            FaultPlan(hints=HintFaultSpec(mistime_prob=0.1, mistime_shift_pages=0)),
        ],
    )
    def test_invalid_plans_rejected(self, plan):
        with pytest.raises(FaultPlanError):
            plan.validate()

    def test_from_dict_round_trip(self):
        plan = FaultPlan(
            seed=9,
            disk=DiskFaultSpec(
                io_error_prob=0.1,
                degraded_disks=(1, 3),
                failures=(DiskFailure(disk=2, at_s=0.5),),
            ),
            hints=HintFaultSpec(drop_prob=0.2),
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict({"seed": 1, "disks": {}})

    def test_invalid_plan_fails_spec_validation(self, scale):
        spec = _spec(scale, FaultPlan(disk=DiskFaultSpec(io_error_prob=7.0)))
        with pytest.raises(SpecError):
            spec.validate()

    def test_plan_naming_missing_spindle_rejected(self, scale):
        plan = FaultPlan(disk=DiskFaultSpec(degraded_disks=(99,)))
        with pytest.raises(ValueError):
            Machine.from_spec(_spec(scale, plan))

    def test_plan_changes_spec_key(self, scale):
        assert spec_key(_spec(scale)) != spec_key(_spec(scale, IO_ERROR_PLAN))
        assert spec_key(_spec(scale, IO_ERROR_PLAN)) != spec_key(
            _spec(scale, IO_ERROR_PLAN.with_seed(12))
        )


class TestZeroFaultPlan:
    def test_no_fault_machinery_is_built(self, scale):
        machine = Machine.from_spec(_spec(scale))
        assert machine.faults is None
        assert machine.kernel.faults is None
        assert machine.kernel.swap.faults is None
        assert all(disk.faults is None for disk in machine.kernel.swap.disks)

    def test_default_counters_stay_zero(self, scale):
        result = run_experiment(_spec(scale))
        assert result.swap["io_errors"] == 0
        assert result.swap["io_retries"] == 0
        assert result.swap["spindles_failed"] == 0
        assert result.swap["online_disks"] == scale.disk.disks
        runtime = result.primary.runtime
        assert runtime.hints_dropped == 0
        assert runtime.hints_spurious == 0
        assert runtime.hints_mistimed == 0


class TestDeterminism:
    def test_same_seed_reproduces_identical_run(self, scale):
        plan = FaultPlan(
            seed=11,
            disk=DiskFaultSpec(io_error_prob=0.05, latency_spike_prob=0.1),
            hints=HintFaultSpec(drop_prob=0.1, spurious_prob=0.05),
        )
        first = run_experiment(_spec(scale, plan))
        second = run_experiment(_spec(scale, plan))
        assert first.elapsed_s == second.elapsed_s
        assert first.engine_steps == second.engine_steps
        assert first.swap == second.swap
        assert (
            first.primary.runtime.snapshot() == second.primary.runtime.snapshot()
        )

    def test_different_seed_changes_the_schedule(self, scale):
        base = FaultPlan(seed=1, disk=DiskFaultSpec(io_error_prob=0.1))
        first = run_experiment(_spec(scale, base))
        second = run_experiment(_spec(scale, base.with_seed(2)))
        assert (first.elapsed_s, first.swap["io_errors"]) != (
            second.elapsed_s,
            second.swap["io_errors"],
        )


class TestDiskFaults:
    def test_transient_errors_are_retried_to_completion(self, scale):
        result = run_experiment(_spec(scale, IO_ERROR_PLAN))
        assert all(p.completed for p in result.out_of_core)
        assert result.swap["io_errors"] > 0
        assert result.swap["io_retries"] >= result.swap["io_errors"]
        assert result.swap["spindles_failed"] == 0

    def test_latency_spikes_slow_the_stripe(self, scale):
        plan = FaultPlan(
            seed=3,
            disk=DiskFaultSpec(latency_spike_prob=0.5, latency_spike_multiplier=8.0),
        )
        baseline = run_experiment(_spec(scale))
        spiked = run_experiment(_spec(scale, plan))
        assert (
            spiked.swap["mean_demand_latency_s"]
            > baseline.swap["mean_demand_latency_s"]
        )

    def test_degraded_spindle_slows_every_request(self, scale):
        plan = FaultPlan(
            seed=3, disk=DiskFaultSpec(degraded_disks=(0,), degraded_multiplier=5.0)
        )
        baseline = run_experiment(_spec(scale))
        degraded = run_experiment(_spec(scale, plan))
        assert degraded.elapsed_s > baseline.elapsed_s
        assert all(p.completed for p in degraded.out_of_core)

    def test_spindle_failure_degrades_gracefully(self, scale):
        plan = FaultPlan(
            seed=3, disk=DiskFaultSpec(failures=(DiskFailure(disk=2, at_s=0.05),))
        )
        machine = Machine.from_spec(_spec(scale, plan)).run()
        result = machine.result()
        assert all(p.completed for p in result.out_of_core)
        assert result.swap["spindles_failed"] == 1
        assert result.swap["online_disks"] == scale.disk.disks - 1
        # After the failure instant no new traffic reached the dead spindle:
        # its request count is frozen at whatever landed before t=0.05.
        dead = machine.kernel.swap.disks[2]
        assert dead.requests < max(d.requests for d in machine.kernel.swap.disks)

    def test_all_spindles_failing_surfaces_as_contained_failure(self, scale):
        failures = tuple(
            DiskFailure(disk=d, at_s=0.0) for d in range(scale.disk.disks)
        )
        spec = _spec(scale, FaultPlan(disk=DiskFaultSpec(failures=failures)))
        outcome = run_specs([spec], on_error="return")[0]
        assert isinstance(outcome, ExperimentFailure)
        assert outcome.kind == "error"

    def test_fault_events_reach_the_bus(self, scale):
        metrics = MetricsAggregator()
        Machine.from_spec(_spec(scale, IO_ERROR_PLAN), sinks=(metrics,)).run()
        assert metrics.faults_injected.get("disk_error", 0) > 0
        assert metrics.faults_injected.get("disk_retry", 0) > 0
        assert metrics.snapshot()["faults_injected"] == metrics.faults_injected


class TestHintFaults:
    def test_corruption_completes_and_counts(self, scale):
        result = run_experiment(_spec(scale, HINT_PLAN))
        assert all(p.completed for p in result.out_of_core)
        runtime = result.primary.runtime
        assert runtime.hints_dropped > 0
        assert runtime.hints_spurious > 0
        assert runtime.hints_mistimed > 0

    def test_hint_only_plan_keeps_io_path_pristine(self, scale):
        machine = Machine.from_spec(_spec(scale, HINT_PLAN))
        assert machine.faults is not None
        assert machine.kernel.swap.faults is None
        assert all(disk.faults is None for disk in machine.kernel.swap.disks)

    def test_dropped_hints_still_finish_all_versions(self, scale):
        plan = FaultPlan(seed=2, hints=HintFaultSpec(drop_prob=0.5))
        for version in "PRB":
            result = run_experiment(_spec(scale, plan, version=version))
            assert all(p.completed for p in result.out_of_core)


class TestRunnerContainment:
    def test_timeout_fails_only_its_spec(self, scale, monkeypatch):
        import time

        import repro.experiments.runner as runner_module

        real = runner_module.run_experiment

        def hang_on_p(spec):
            if spec.processes[0].version == "P":
                time.sleep(60)
            return real(spec)

        monkeypatch.setattr(runner_module, "run_experiment", hang_on_p)
        hung = _spec(scale, version="P")
        fast = _spec(scale, version="B")
        results = run_specs(
            [hung, fast], timeout_s=0.5, retries=0, on_error="return"
        )
        assert isinstance(results[0], ExperimentFailure)
        assert results[0].kind == "timeout"
        # The budget is per spec: the second one still ran to completion.
        assert not isinstance(results[1], ExperimentFailure)
        assert results[1].primary.version == "B"

    def test_error_is_contained_and_raised_after_the_grid(self, scale, monkeypatch):
        import repro.experiments.runner as runner_module

        real = runner_module.run_experiment

        def boom(spec):
            if spec.processes[0].version == "P":
                raise RuntimeError("injected simulation bug")
            return real(spec)

        monkeypatch.setattr(runner_module, "run_experiment", boom)
        good = _spec(scale, version="B")
        bad = _spec(scale, version="P")
        with pytest.raises(ExperimentGridError) as info:
            run_specs([bad, good])
        error = info.value
        assert len(error.failures) == 1
        assert error.failures[0].kind == "error"
        assert "injected simulation bug" in error.failures[0].message
        # The good spec's result was still produced and kept its slot.
        assert error.results[1].primary.version == "B"

    def test_retries_rerun_a_flaky_spec(self, scale, monkeypatch):
        import repro.experiments.runner as runner_module

        real = runner_module.run_experiment
        calls = {"count": 0}

        def flaky(spec):
            calls["count"] += 1
            if calls["count"] == 1:
                raise RuntimeError("transient environmental flake")
            return real(spec)

        monkeypatch.setattr(runner_module, "run_experiment", flaky)
        result = run_specs([_spec(scale)], retries=1)[0]
        assert not isinstance(result, ExperimentFailure)
        assert calls["count"] == 2

    def test_worker_crash_fails_only_its_spec(self, scale, monkeypatch):
        # Relies on fork-start pool workers inheriting the monkeypatch —
        # so the shared warm pool must be recycled on both sides: fresh
        # workers fork *after* the patch, and the crash-injecting workers
        # must not survive into later tests.
        import multiprocessing

        if multiprocessing.get_start_method() != "fork":
            pytest.skip("crash injection requires fork-start pool workers")
        from repro.experiments import pool as pool_mod
        import repro.experiments.runner as runner_module

        real = runner_module.run_experiment

        def die(spec):
            if spec.processes[0].version == "P":
                os._exit(13)
            return real(spec)

        monkeypatch.setattr(runner_module, "run_experiment", die)
        pool_mod.shutdown_shared_pool()
        try:
            crasher = _spec(scale, version="P")
            survivor = _spec(scale, version="B")
            results = run_specs([crasher, survivor], jobs=2, on_error="return")
        finally:
            pool_mod.shutdown_shared_pool()
        assert isinstance(results[0], ExperimentFailure)
        assert results[0].kind == "crash"
        assert not isinstance(results[1], ExperimentFailure)
        assert results[1].primary.version == "B"

    def test_failures_are_never_cached(self, scale, tmp_path, monkeypatch):
        import repro.experiments.runner as runner_module

        real = runner_module.run_experiment
        broken = {"active": True}

        def sometimes(spec):
            if broken["active"]:
                raise RuntimeError("still broken")
            return real(spec)

        monkeypatch.setattr(runner_module, "run_experiment", sometimes)
        cache = tmp_path / "cache"
        spec = _spec(scale)
        failed = run_specs([spec], cache_dir=cache, on_error="return")[0]
        assert isinstance(failed, ExperimentFailure)
        assert not any(cache.glob("*.pkl"))
        # Once the bug is gone the same cache produces a fresh, real result.
        broken["active"] = False
        result = run_specs([spec], cache_dir=cache, on_error="return")[0]
        assert not isinstance(result, ExperimentFailure)
        assert not result.from_cache

    def test_store_cached_refuses_non_results(self, tmp_path):
        failure = ExperimentFailure(spec=None, kind="error", message="nope")
        _store_cached(tmp_path, "somekey", failure)
        _store_cached(tmp_path, "otherkey", None)
        assert not any(tmp_path.iterdir())

    def test_run_specs_validates_arguments(self, scale):
        spec = _spec(scale)
        with pytest.raises(ValueError):
            run_specs([spec], retries=-1)
        with pytest.raises(ValueError):
            run_specs([spec], timeout_s=0.0)
        with pytest.raises(ValueError):
            run_specs([spec], on_error="explode")


class TestCacheMaintenance:
    def test_entries_classified_and_pruned(self, scale, tmp_path):
        cache = tmp_path / "cache"
        spec = _spec(scale)
        run_specs([spec], cache_dir=cache)
        (cache / "0badc0de.pkl").write_bytes(b"not a pickle")
        (cache / f"{'ab' * 32}.tmp.4242").write_bytes(b"torn write")
        # A result stored under the wrong name models a stale code version.
        good = pickle.loads((cache / f"{spec_key(spec)}.pkl").read_bytes())
        with (cache / f"{'cd' * 32}.pkl").open("wb") as handle:
            pickle.dump(good, handle)
        statuses = {e.path.name: e.status for e in cache_entries(cache)}
        assert statuses[f"{spec_key(spec)}.pkl"] == "ok"
        assert statuses["0badc0de.pkl"] == "corrupt"
        assert statuses[f"{'ab' * 32}.tmp.4242"] == "orphan"
        assert statuses[f"{'cd' * 32}.pkl"] == "stale"

        removed = prune_cache(cache)
        assert sorted(e.status for e in removed) == ["corrupt", "orphan", "stale"]
        survivors = list(cache.iterdir())
        assert [p.name for p in survivors] == [f"{spec_key(spec)}.pkl"]
        # The surviving entry still serves lookups.
        assert run_specs([spec], cache_dir=cache)[0].from_cache

    def test_missing_cache_dir_is_empty(self, tmp_path):
        assert cache_entries(tmp_path / "nope") == []
        assert prune_cache(tmp_path / "nope") == []
