"""Shared helpers for the test suite."""


def drive(engine, process):
    """Step the engine until the given process completes."""
    while not process.triggered:
        engine.step()
    if not process.ok:
        raise process.value
    return process.value
