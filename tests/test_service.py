"""Tests for the experiment service: dedupe, restart adoption, HTTP API."""

import json
import threading

import pytest

from repro.scenarios import builtin_registry, compile_scenario
from repro.service import (
    ExperimentServer,
    JobChaos,
    JobError,
    JobManager,
    ServiceClient,
    ServiceError,
    run_direct,
)

MATVEC_DOC = {
    "scenario": 1,
    "name": "matvec-b",
    "scale": "tiny",
    "benchmark": "MATVEC",
    "version": "B",
}

SWEEP_DOC = {
    "scenario": 1,
    "name": "two-versions",
    "scale": "tiny",
    "sweep": {"axes": {"benchmark": ["MATVEC"], "version": ["O", "B"]}},
}


def wait_all(manager, snapshots, timeout=180):
    return [manager.wait(snap["id"], timeout=timeout) for snap in snapshots]


class TestDedupe:
    def test_concurrent_identical_submissions_execute_once(self, tmp_path):
        """Two racing submitters of the same spec: one execution, two jobs."""
        with JobManager(tmp_path / "state", workers=2) as manager:
            barrier = threading.Barrier(2)
            snapshots = [None, None]

            def submitter(slot):
                barrier.wait()
                snapshots[slot] = manager.submit(document=dict(MATVEC_DOC))

            threads = [
                threading.Thread(target=submitter, args=(slot,)) for slot in (0, 1)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            first, second = wait_all(manager, snapshots)
            assert first.status == "done" and second.status == "done"
            # Exactly one execution across both jobs; the other job saw a
            # cache hit — the dedupe is visible in the job metadata.
            assert first.executed + second.executed == 1
            assert first.cache_hits + second.cache_hits == 1
            # And the results are byte-identical, not merely both present.
            assert manager.serialized_text(first.id) == manager.serialized_text(
                second.id
            )
            assert first.digest == second.digest

    def test_digest_matches_direct_run(self, tmp_path):
        with JobManager(tmp_path / "state", workers=1) as manager:
            snap = manager.submit(document=dict(MATVEC_DOC))
            record = manager.wait(snap["id"], timeout=180)
        compiled = compile_scenario(dict(MATVEC_DOC))
        _outcomes, digest = run_direct(compiled)
        assert record.digest == digest

    def test_submit_by_template(self, tmp_path):
        with JobManager(tmp_path / "state", workers=1) as manager:
            snap = manager.submit(template="standard-mix")
            record = manager.wait(snap["id"], timeout=180)
            assert record.status == "done"
            assert record.name == "standard-mix"


class TestRestartAdoption:
    def test_killed_manager_resumes_without_rework(self, tmp_path):
        """Die after one journaled spec; the restart adopts, skips it, and
        produces the same digest a clean run would."""
        state = tmp_path / "state"
        crashed = JobManager(state, workers=1, chaos=JobChaos(die_after_specs=1))
        crashed.start()
        snap = crashed.submit(document=dict(SWEEP_DOC))
        # The chaos point fires after the first spec's journal line lands.
        deadline = threading.Event()
        for _ in range(600):
            if crashed._dead:
                break
            deadline.wait(0.1)
        assert crashed._dead, "chaos death did not fire"
        crashed.stop()
        assert not crashed.job(snap["id"]).terminal  # mid-flight, no terminal

        with JobManager(state, workers=1) as revived:
            record = revived.wait(snap["id"], timeout=180)
            assert record.status == "done"
            assert record.adopted
            # One spec was adopted from the dead session's cache, one ran.
            assert record.cache_hits == 1
            assert record.executed == 1
        compiled = compile_scenario(dict(SWEEP_DOC))
        _outcomes, digest = run_direct(compiled)
        assert record.digest == digest

    def test_terminal_jobs_survive_restart(self, tmp_path):
        state = tmp_path / "state"
        with JobManager(state, workers=1) as manager:
            snap = manager.submit(document=dict(MATVEC_DOC))
            done = manager.wait(snap["id"], timeout=180)
        reloaded = JobManager(state, workers=1)
        record = reloaded.job(snap["id"])
        assert record.status == "done"
        assert record.digest == done.digest
        assert not record.adopted  # finished jobs are recalled, not re-run

    def test_unknown_job_raises(self, tmp_path):
        manager = JobManager(tmp_path / "state")
        with pytest.raises(JobError, match="unknown job"):
            manager.job("j-999999")


class TestHTTP:
    @pytest.fixture()
    def server(self, tmp_path):
        with ExperimentServer(tmp_path / "state", workers=2) as instance:
            yield instance

    def test_healthz_reports_version(self, server):
        from repro import __version__

        client = ServiceClient(server.url)
        payload = client.healthz()
        assert payload["status"] == "ok"
        assert payload["version"] == __version__

    def test_discovery_file(self, server):
        client = ServiceClient.discover(server.state_dir)
        assert client.healthz()["status"] == "ok"

    def test_scenarios_listing(self, server):
        names = {row["name"] for row in ServiceClient(server.url).scenarios()}
        assert "standard-mix" in names

    def test_submit_stream_fetch_roundtrip(self, server):
        client = ServiceClient(server.url)
        snap = client.submit(document=dict(MATVEC_DOC))
        kinds = [event["kind"] for event in client.stream_events(snap["id"])]
        assert kinds[0] == "job.submitted"
        assert "job.spec_done" in kinds
        assert kinds[-1] == "job.finished"
        final = client.wait(snap["id"], timeout=30)
        assert final["status"] == "done"
        result = client.result(snap["id"])
        # The HTTP path adds no behavior: digest equals the direct run's.
        compiled = compile_scenario(dict(MATVEC_DOC))
        _outcomes, digest = run_direct(compiled)
        assert result["digest"] == digest
        assert client.serialized(snap["id"]).startswith("# spec 0 key=")
        assert "MATVEC" in client.figure(snap["id"])

    def test_invalid_scenario_is_400_with_path(self, server):
        client = ServiceClient(server.url)
        with pytest.raises(ServiceError) as excinfo:
            client.submit(document={"scenario": 1, "benchmark": "NOPE"})
        assert excinfo.value.status == 400
        assert excinfo.value.path == "benchmark"
        assert "NOPE" in str(excinfo.value)

    def test_unknown_job_is_404(self, server):
        with pytest.raises(ServiceError) as excinfo:
            ServiceClient(server.url).job("j-424242")
        assert excinfo.value.status == 404

    def test_result_before_done_is_409(self, tmp_path):
        # A manager that never starts workers: the job stays queued.
        server = ExperimentServer(tmp_path / "state", workers=1)
        server.manager.start = lambda: None  # type: ignore[method-assign]
        with server:
            client = ServiceClient(server.url)
            snap = client.submit(document=dict(MATVEC_DOC))
            with pytest.raises(ServiceError) as excinfo:
                client.result(snap["id"])
            assert excinfo.value.status == 409

    def test_trace_endpoints(self, server):
        client = ServiceClient(server.url)
        doc = dict(MATVEC_DOC)
        doc["record_trace"] = True
        snap = client.submit(document=doc)
        client.wait(snap["id"], timeout=60)
        manifest = client.trace_manifest(snap["id"])
        assert manifest, "trace job produced no trace files"
        blob = client.trace(snap["id"], manifest[0])
        assert blob.startswith(b"RPROTRC1")

    def test_server_restart_adopts_over_http(self, tmp_path):
        state = tmp_path / "state"
        first = ExperimentServer(
            state, workers=1
        )
        first.manager._chaos = JobChaos(die_after_specs=1)
        first.start()
        try:
            client = ServiceClient(first.url)
            snap = client.submit(document=dict(SWEEP_DOC))
            for _ in range(600):
                if first.manager._dead:
                    break
                threading.Event().wait(0.1)
            assert first.manager._dead
        finally:
            first.stop()
        with ExperimentServer(state, workers=1) as second:
            final = ServiceClient(second.url).wait(snap["id"], timeout=180)
            assert final["status"] == "done"
            assert final["adopted"]
            assert final["cache_hits"] == 1


class TestTraceFormat:
    def test_trace_magic_matches_recorder(self, tmp_path):
        """Guard the magic-byte assertion above against format drift."""
        from repro.trace import record_experiment

        registry = builtin_registry()
        compiled = compile_scenario(
            registry.get("standard-mix"), registry=registry, name="standard-mix"
        )
        _result, paths = record_experiment(compiled.specs[0], tmp_path)
        path = next(iter(paths.values()))
        with open(path, "rb") as handle:
            assert handle.read(8) == b"RPROTRC1"


class TestJournalShape:
    def test_journal_orders_spec_before_terminal(self, tmp_path):
        state = tmp_path / "state"
        with JobManager(state, workers=1) as manager:
            snap = manager.submit(document=dict(MATVEC_DOC))
            manager.wait(snap["id"], timeout=180)
        events = [
            json.loads(line)
            for line in (state / "jobs.jsonl").read_text().splitlines()
        ]
        kinds = [(entry["event"], entry.get("status")) for entry in events]
        submitted = kinds.index(("job", "submitted"))
        spec = kinds.index(("spec", "ok"))
        done = kinds.index(("job", "done"))
        assert submitted < spec < done
