"""Unit tests for the run-time layer and the release buffer."""

import pytest

from repro.core.runtime.buffering import ReleaseBuffer
from repro.core.runtime.layer import RuntimeLayer
from repro.core.runtime.policies import (
    AGGRESSIVE,
    BUFFERED,
    ORIGINAL,
    PREFETCH_ONLY,
    VERSIONS,
    VersionConfig,
)

from tests.helpers import drive


def touch(kernel, proc, vpn, write=False):
    fault = proc.touch(vpn, write)
    if fault is None:
        return None
    return drive(kernel.engine, kernel.engine.process(fault))


@pytest.fixture
def setup(kernel, scale):
    proc = kernel.create_process("app")
    proc.aspace.map_segment("a", 300)
    pm = kernel.attach_paging_directed(proc)
    return kernel, proc, pm


def make_layer(setup, version, scale):
    kernel, proc, pm = setup
    return RuntimeLayer(proc, pm, scale.runtime, version)


def settle(kernel, seconds=1.0):
    kernel.engine.run(until=kernel.engine.now + seconds)


class TestVersionConfig:
    def test_buffering_requires_release(self):
        with pytest.raises(ValueError):
            VersionConfig("X", "bad", prefetch=True, release=False, buffered=True)

    def test_release_requires_prefetch(self):
        with pytest.raises(ValueError):
            VersionConfig("X", "bad", prefetch=False, release=True, buffered=False)

    def test_registry_complete(self):
        assert set(VERSIONS) == {"O", "P", "R", "B"}


class TestPrefetchPath:
    def test_original_version_ignores_hints(self, setup, scale):
        kernel, proc, pm = setup
        layer = make_layer(setup, ORIGINAL, scale)
        layer.handle_prefetch(0, (0, 1, 2))
        settle(kernel)
        assert proc.aspace.resident == 0
        assert layer.stats.prefetch_hints == 0

    def test_prefetch_brings_pages_in(self, setup, scale):
        kernel, proc, pm = setup
        layer = make_layer(setup, PREFETCH_ONLY, scale)
        layer.handle_prefetch(0, (0, 1, 2))
        settle(kernel)
        assert proc.aspace.resident == 3
        assert layer.stats.prefetch_enqueued == 3

    def test_bitmap_filter_drops_resident_pages(self, setup, scale):
        kernel, proc, pm = setup
        layer = make_layer(setup, PREFETCH_ONLY, scale)
        touch(kernel, proc, 0)
        layer.handle_prefetch(0, (0,))
        assert layer.stats.prefetch_filtered_bitmap == 1
        assert layer.stats.prefetch_enqueued == 0

    def test_inflight_filter_drops_duplicates(self, setup, scale):
        kernel, proc, pm = setup
        layer = make_layer(setup, PREFETCH_ONLY, scale)
        layer.handle_prefetch(0, (5,))
        layer.handle_prefetch(0, (5,))
        assert layer.stats.prefetch_filtered_inflight == 1

    def test_filter_cost_charged_to_app(self, setup, scale):
        kernel, proc, pm = setup
        layer = make_layer(setup, PREFETCH_ONLY, scale)
        before = proc.pending_user
        layer.handle_prefetch(0, (0, 1))
        assert proc.pending_user == pytest.approx(
            before + 2 * scale.runtime.hint_filter_s
        )

    def test_worker_time_not_on_app(self, setup, scale):
        kernel, proc, pm = setup
        layer = make_layer(setup, PREFETCH_ONLY, scale)
        layer.handle_prefetch(0, (0, 1, 2))
        settle(kernel)
        assert proc.task.buckets.stall_io == 0.0
        assert layer.worker_time().stall_io > 0.0


class TestReleaseFilters:
    def test_bitmap_filter(self, setup, scale):
        kernel, proc, pm = setup
        layer = make_layer(setup, AGGRESSIVE, scale)
        layer.handle_release(1, (0,), priority=0)  # page not in memory
        assert layer.stats.release_filtered_bitmap == 1

    def test_one_behind_filter_drops_same_page(self, setup, scale):
        kernel, proc, pm = setup
        layer = make_layer(setup, AGGRESSIVE, scale)
        touch(kernel, proc, 0)
        layer.handle_release(1, (0,), priority=0)
        layer.handle_release(1, (0,), priority=0)  # same page: dropped
        assert layer.stats.release_filtered_same_page == 1
        assert layer.stats.release_pages_issued == 0

    def test_one_behind_issues_previous_on_advance(self, setup, scale):
        kernel, proc, pm = setup
        layer = make_layer(setup, AGGRESSIVE, scale)
        touch(kernel, proc, 0)
        touch(kernel, proc, 1)
        layer.handle_release(1, (0,), priority=0)
        layer.handle_release(1, (1,), priority=0)  # advances: issues page 0
        assert layer.stats.release_pages_issued == 1
        settle(kernel)
        assert not proc.aspace.is_present(0)
        assert proc.aspace.is_present(1)

    def test_tags_filtered_independently(self, setup, scale):
        kernel, proc, pm = setup
        layer = make_layer(setup, AGGRESSIVE, scale)
        for vpn in range(4):
            touch(kernel, proc, vpn)
        layer.handle_release(1, (0,), priority=0)
        layer.handle_release(2, (2,), priority=0)
        layer.handle_release(1, (1,), priority=0)
        layer.handle_release(2, (3,), priority=0)
        assert layer.stats.release_pages_issued == 2

    def test_flush_tag_filters(self, setup, scale):
        kernel, proc, pm = setup
        layer = make_layer(setup, AGGRESSIVE, scale)
        touch(kernel, proc, 0)
        layer.handle_release(1, (0,), priority=0)
        layer.flush_tag_filters()
        assert layer.stats.release_pages_issued == 1


class TestBufferedPolicy:
    def test_priority_zero_issues_immediately(self, setup, scale):
        kernel, proc, pm = setup
        layer = make_layer(setup, BUFFERED, scale)
        touch(kernel, proc, 0)
        touch(kernel, proc, 1)
        layer.handle_release(1, (0,), priority=0)
        layer.handle_release(1, (1,), priority=0)
        assert layer.stats.release_pages_issued == 1
        assert len(layer.buffer) == 0

    def test_positive_priority_buffered(self, setup, scale):
        kernel, proc, pm = setup
        layer = make_layer(setup, BUFFERED, scale)
        touch(kernel, proc, 0)
        touch(kernel, proc, 1)
        layer.handle_release(1, (0,), priority=2)
        layer.handle_release(1, (1,), priority=2)
        assert layer.stats.release_pages_issued == 0
        assert layer.stats.release_pages_buffered == 1
        assert len(layer.buffer) == 1

    def test_pressure_drain_fires_when_headroom_gone(self, setup, scale):
        kernel, proc, pm = setup
        layer = make_layer(setup, BUFFERED, scale)
        # Occupy memory so that free falls below min + headroom.
        vpn = 0
        while (
            kernel.vm.freelist.free_count
            > scale.tunables.min_freemem_pages + scale.runtime.limit_headroom_pages
        ):
            touch(kernel, proc, vpn)
            vpn += 1
        pm.shared_page.refresh()
        layer.handle_release(1, (0,), priority=1)
        layer.handle_release(1, (1,), priority=1)  # buffers page 0, checks
        assert layer.stats.pressure_drains == 1
        assert layer.stats.release_pages_issued >= 1

    def test_hysteresis_disarms_after_drain(self, setup, scale):
        kernel, proc, pm = setup
        layer = make_layer(setup, BUFFERED, scale)
        vpn = 0
        while (
            kernel.vm.freelist.free_count
            > scale.tunables.min_freemem_pages + scale.runtime.limit_headroom_pages
        ):
            touch(kernel, proc, vpn)
            vpn += 1
        pm.shared_page.refresh()
        for page in range(0, 40):
            layer.handle_release(1, (page,), priority=1)
        # Only the first threshold crossing drained (few pages buffered).
        assert layer.stats.pressure_drains == 1


class TestReleaseBuffer:
    def test_priority_zero_rejected(self):
        with pytest.raises(ValueError):
            ReleaseBuffer().add(1, [5], priority=0)

    def test_coalesces_duplicate_pages(self):
        buffer = ReleaseBuffer()
        assert buffer.add(1, [5, 5, 6], priority=1) == 2
        assert buffer.duplicates_coalesced == 1
        assert len(buffer) == 2

    def test_changing_tag_priority_rejected(self):
        buffer = ReleaseBuffer()
        buffer.add(1, [5], priority=1)
        with pytest.raises(ValueError):
            buffer.add(1, [6], priority=2)

    def test_drain_lowest_priority_first(self):
        buffer = ReleaseBuffer()
        buffer.add(1, [10, 11], priority=3)
        buffer.add(2, [20, 21], priority=1)
        drained = buffer.drain(2)
        pages = [p for _tag, batch in drained for p in batch]
        assert set(pages) == {20, 21}

    def test_drain_round_robin_within_level(self):
        buffer = ReleaseBuffer(drain_newest_first=False)
        buffer.add(1, [10, 11], priority=1)
        buffer.add(2, [20, 21], priority=1)
        drained = dict(buffer.drain(2))
        assert 1 in drained and 2 in drained

    def test_drain_budget_respected(self):
        buffer = ReleaseBuffer()
        buffer.add(1, list(range(100, 150)), priority=1)
        drained = buffer.drain(10)
        assert sum(len(batch) for _tag, batch in drained) == 10
        assert len(buffer) == 40

    def test_mru_drain_takes_newest(self):
        buffer = ReleaseBuffer(drain_newest_first=True)
        buffer.add(1, [10, 11, 12], priority=1)
        drained = buffer.drain(1)
        assert drained == [(1, (12,))]

    def test_fifo_drain_takes_oldest(self):
        buffer = ReleaseBuffer(drain_newest_first=False)
        buffer.add(1, [10, 11, 12], priority=1)
        drained = buffer.drain(1)
        assert drained == [(1, (10,))]

    def test_forget_skips_page_on_drain(self):
        buffer = ReleaseBuffer(drain_newest_first=False)
        buffer.add(1, [10, 11], priority=1)
        buffer.forget(10)
        drained = buffer.drain(5)
        pages = [p for _tag, batch in drained for p in batch]
        assert pages == [11]

    def test_pages_at_priority(self):
        buffer = ReleaseBuffer()
        buffer.add(1, [10], priority=1)
        buffer.add(2, [20, 21], priority=3)
        assert buffer.pages_at_priority(1) == 1
        assert buffer.pages_at_priority(3) == 2
        assert buffer.priorities == [1, 3]
