"""Edge cases of run-length ('T', ...) expansion and round-tripping.

The run-length batch op is consumed in four places — ``expand_ops`` (and
its twin inside ``diff_ops``), the binary codec, ``trace_info``'s
locality accounting, and the kernel's ``run_touches`` — and each has to
agree on the degenerate shapes the format admits but the interpreter
rarely (or never) produces:

- a **zero-count run** touches nothing: it must expand to nothing, move
  no stream cursor, and survive an encode/decode round trip unchanged;
- a **run abutting a hint boundary** (the batched stream sits directly
  next to another stream's 'p'/'r' op, or ends on the array's last page)
  must expand to exactly the unbatched stream — the batch guard keeps
  hinted streams out of the fast path, but hint-free runs legitimately
  touch pages right up against hint ops emitted by *other* references.
"""

import pytest

from repro.config import CompilerParams, MachineConfig
from repro.core.compiler.interp import expand_ops, nest_ops
from repro.core.compiler.ir import (
    Array,
    ArrayRef,
    Loop,
    Nest,
    Program,
    Stmt,
    affine,
)
from repro.core.compiler.pipeline import compile_program
from repro.trace.analyze import diff_ops, trace_info
from repro.trace.format import (
    K_RUN_READ,
    TraceHeader,
    TraceWriter,
    encode_body,
    read_columns,
    read_trace,
)
from tests.helpers import drive

MACHINE = MachineConfig()
EPP = MACHINE.page_elements


def _write_trace(tmp_path, ops, name="edge"):
    path = tmp_path / f"{name}.trace"
    header = TraceHeader(
        process=name,
        workload="SYNTH",
        version="O",
        scale="tiny",
        page_size=MACHINE.page_size,
        layout=(("a", 256),),
    )
    with TraceWriter(path, header) as writer:
        writer.write_ops(ops)
    return path


# -- zero-count runs ---------------------------------------------------------
class TestZeroCountRun:
    OPS = [
        ("w", 0.5),
        ("t", 4, False, 0.0),
        ("T", 5, 0, False, 0.25),
        ("w", 0.125),
        ("t", 5, True, 0.0),
    ]

    def test_expands_to_nothing(self):
        expanded = list(expand_ops(iter(self.OPS)))
        assert expanded == [op for op in self.OPS if op[0] != "T"]

    def test_diff_expand_agrees(self):
        without = [op for op in self.OPS if op[0] != "T"]
        equal, mismatch, _a, _b = diff_ops(self.OPS, without, expand=True)
        assert equal and mismatch is None

    def test_codec_round_trip(self, tmp_path):
        path = _write_trace(tmp_path, self.OPS)
        _header, decoded = read_trace(path)
        assert decoded == self.OPS
        _header, cols = read_columns(path)
        assert len(cols) == len(self.OPS)
        run_at = 2
        assert cols.kinds[run_at] == K_RUN_READ
        assert (cols.arg0[run_at], cols.arg1[run_at]) == (5, 0)
        assert cols.floats[cols.arg2[run_at]] == 0.25

    def test_encode_body_matches_writer(self, tmp_path):
        path = _write_trace(tmp_path, self.OPS)
        data = path.read_bytes()
        header_len = int.from_bytes(data[8:12], "little")
        body, count = encode_body(iter(self.OPS))
        assert count == len(self.OPS)
        assert body == data[12 + header_len : -4]

    def test_trace_info_stays_sane(self, tmp_path):
        path = _write_trace(tmp_path, self.OPS)
        info = trace_info(path)
        # The empty run contributes no touches, no pages, and must not
        # push the locality counters negative or teleport the cursor.
        assert info["touches"] == 2
        assert info["distinct_pages"] == 2
        assert 0.0 <= info["sequential_fraction"] <= 1.0
        assert info["mean_jump_pages"] >= 0.0
        # 4 -> 5 is the only jump and it is sequential.
        assert info["sequential_fraction"] == 1.0

    def test_kernel_run_touches_zero_count(self, kernel):
        # The kernel consumer: a zero-count run charges nothing, touches
        # nothing, and yields no events.
        proc = kernel.create_process("z")
        before = proc.pending_user
        steps_before = kernel.engine.steps

        def run():
            yield from proc.run_touches(0, 0, False, 0.25)
            return proc.pending_user

        after = drive(kernel.engine, kernel.engine.process(run()))
        assert after == before
        # Only the driver process's own spawn/finish events fired.
        assert kernel.engine.steps - steps_before <= 3


# -- runs abutting hint boundaries ------------------------------------------
def _mixed_nest():
    """One hinted stream and one batchable stream in the same nest.

    ``big``'s rows are never reused, so ``plan_hints`` gives that
    reference prefetch and release tags; ``small`` is re-swept every
    outer iteration and its reuse is captured, so it stays tag-free and
    qualifies for the run-length fast path even with hints enabled.  In
    the emitted stream the small array's ('T', ...) runs sit directly
    against the big stream's 'r' ops — the abutting-hint-boundary shape.
    """
    big = Array("big", (4, 6 * EPP))
    small = Array("small", (4 * EPP,))
    stmt_big = Stmt(refs=(ArrayRef(big, (affine("i"), affine("j1"))),), flops=1.0)
    stmt_small = Stmt(refs=(ArrayRef(small, (affine("j2"),)),), flops=1.0)
    nest = Nest(
        "mixed",
        Loop(
            "i",
            0,
            4,
            body=(
                Loop("j1", 0, 6 * EPP, body=(stmt_big,)),
                Loop("j2", 0, 4 * EPP, body=(stmt_small,)),
            ),
        ),
    )
    program = Program("p", (big, small), (nest,))
    compiled = compile_program(program, CompilerParams()).nests[nest.name]
    layout = {"big": 0, "small": 100}
    return compiled, layout


class TestRunAbutsHintBoundary:
    def test_batched_stream_has_run_next_to_hint_op(self):
        compiled, layout = _mixed_nest()
        ops = list(
            nest_ops(
                compiled, {}, layout, MACHINE,
                emit_prefetch=True, emit_release=True,
            )
        )
        runs = [i for i, op in enumerate(ops) if op[0] == "T"]
        assert runs, "the tag-free stream must still batch with hints on"
        assert any(
            (i > 0 and ops[i - 1][0] in ("p", "r"))
            or (i + 1 < len(ops) and ops[i + 1][0] in ("p", "r"))
            for i in runs
        ), "expected at least one run abutting a hint op"

    def test_expansion_matches_unbatched(self):
        compiled, layout = _mixed_nest()
        kwargs = dict(emit_prefetch=True, emit_release=True)
        batched = list(nest_ops(compiled, {}, layout, MACHINE, **kwargs))
        unbatched = list(
            nest_ops(compiled, {}, layout, MACHINE, batch=False, **kwargs)
        )
        assert all(op[0] != "T" for op in unbatched)
        assert list(expand_ops(batched)) == unbatched

    def test_codec_round_trip_preserves_adjacency(self, tmp_path):
        compiled, layout = _mixed_nest()
        ops = list(
            nest_ops(
                compiled, {}, layout, MACHINE,
                emit_prefetch=True, emit_release=True,
            )
        )
        path = _write_trace(tmp_path, ops, name="mixed")
        _header, decoded = read_trace(path)
        assert decoded == ops
        body, count = encode_body(iter(decoded))
        data = path.read_bytes()
        header_len = int.from_bytes(data[8:12], "little")
        assert count == len(ops)
        assert body == data[12 + header_len : -4]

    def test_hinted_stream_never_batches(self):
        # The guard itself: a stream with hint tags emits a hint at every
        # page crossing, so batching it would put a run across a hint
        # boundary — assert it falls back to per-page ops instead.
        a = Array("a", (8 * EPP,))
        stmt = Stmt(refs=(ArrayRef(a, (affine("i"),), is_write=True),), flops=1.0)
        nest = Nest("sweep", Loop("i", 0, 8 * EPP, body=(stmt,)))
        compiled = compile_program(
            Program("p", (a,), (nest,)), CompilerParams()
        ).nests[nest.name]
        hinted = list(
            nest_ops(
                compiled, {}, {"a": 0}, MACHINE,
                emit_prefetch=True, emit_release=True,
            )
        )
        assert any(op[0] in ("p", "r") for op in hinted)
        assert all(op[0] != "T" for op in hinted)

    def test_run_to_array_end_batches(self):
        # A run ending exactly on the array's last page is inside bounds
        # (the guard is `elem_last // epp < array_pages`) and must batch.
        pages = 6
        a = Array("a", (pages * EPP,))
        stmt = Stmt(refs=(ArrayRef(a, (affine("i"),)),), flops=1.0)
        nest = Nest("sweep", Loop("i", 0, pages * EPP, body=(stmt,)))
        compiled = compile_program(
            Program("p", (a,), (nest,)), CompilerParams()
        ).nests[nest.name]
        kwargs = dict(emit_prefetch=False, emit_release=False)
        ops = list(nest_ops(compiled, {}, {"a": 0}, MACHINE, **kwargs))
        run = next(op for op in ops if op[0] == "T")
        assert run[1] + run[2] - 1 == pages - 1  # run abuts the last page
        unbatched = list(
            nest_ops(compiled, {}, {"a": 0}, MACHINE, batch=False, **kwargs)
        )
        assert list(expand_ops(ops)) == unbatched
