"""Property-based tests (hypothesis) on core invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MachineConfig
from repro.core.compiler.interp import nest_ops
from repro.core.compiler.ir import (
    AffineExpr,
    Array,
    ArrayRef,
    Loop,
    Nest,
    Program,
    Stmt,
    affine,
)
from repro.core.compiler.pipeline import compile_program
from repro.core.runtime.buffering import ReleaseBuffer
from repro.sim.engine import Engine

MACHINE = MachineConfig()
EPP = MACHINE.page_elements


class TestEngineProperties:
    @settings(max_examples=50, deadline=None)
    @given(delays=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=30))
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        engine = Engine()
        fired = []
        for delay in delays:
            engine.timeout(delay).add_callback(lambda _e: fired.append(engine.now))
        engine.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @settings(max_examples=30, deadline=None)
    @given(
        delays=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=10),
        split=st.floats(0.1, 9.9),
    )
    def test_run_until_is_composable(self, delays, split):
        """run(until=a); run() is equivalent to run()."""

        def run_split():
            engine = Engine()
            fired = []
            for delay in delays:
                engine.timeout(delay).add_callback(
                    lambda _e: fired.append(round(engine.now, 9))
                )
            engine.run(until=split)
            engine.run()
            return fired

        def run_straight():
            engine = Engine()
            fired = []
            for delay in delays:
                engine.timeout(delay).add_callback(
                    lambda _e: fired.append(round(engine.now, 9))
                )
            engine.run()
            return fired

        assert run_split() == run_straight()


class TestAffineProperties:
    env_strategy = st.dictionaries(
        st.sampled_from(["i", "j", "k"]), st.integers(-100, 100), min_size=3
    )

    @settings(max_examples=60, deadline=None)
    @given(
        coeffs_a=st.dictionaries(st.sampled_from(["i", "j", "k"]), st.integers(-5, 5)),
        coeffs_b=st.dictionaries(st.sampled_from(["i", "j", "k"]), st.integers(-5, 5)),
        const_a=st.integers(-50, 50),
        const_b=st.integers(-50, 50),
        env=env_strategy,
    )
    def test_addition_is_pointwise(self, coeffs_a, coeffs_b, const_a, const_b, env):
        a = AffineExpr.build(coeffs_a, const_a)
        b = AffineExpr.build(coeffs_b, const_b)
        assert (a + b).evaluate(env) == a.evaluate(env) + b.evaluate(env)

    @settings(max_examples=60, deadline=None)
    @given(
        coeffs=st.dictionaries(st.sampled_from(["i", "j"]), st.integers(-5, 5)),
        const=st.integers(-50, 50),
        delta=st.integers(-20, 20),
        env=env_strategy,
    )
    def test_shift_adds_constant(self, coeffs, const, delta, env):
        expr = AffineExpr.build(coeffs, const)
        assert expr.shifted(delta).evaluate(env) == expr.evaluate(env) + delta


class TestInterpreterProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        pages=st.integers(2, 40),
        base=st.integers(0, 1000),
        stride=st.integers(1, 3),
    )
    def test_sweep_touches_exactly_the_array_pages(self, pages, base, stride):
        """A strided 1-D sweep touches each page in order, never outside
        the array's extent, regardless of stride."""
        a = Array("a", (pages * EPP,))
        stmt = Stmt(refs=(ArrayRef(a, (affine("i", coeff=stride),)),))
        nest = Nest("n", Loop("i", 0, (pages * EPP) // stride, body=(stmt,)))
        program = Program("p", (a,), (nest,))
        compiled = compile_program(program).nests["n"]
        touched = [
            op[1]
            for op in nest_ops(compiled, {}, {"a": base}, MACHINE)
            if op[0] == "t"
        ]
        assert touched == sorted(touched)
        assert touched[0] == base
        assert all(base <= page < base + pages for page in touched)
        assert len(set(touched)) == len(touched)

    @settings(max_examples=20, deadline=None)
    @given(pages=st.integers(2, 30))
    def test_hint_pages_stay_within_the_array(self, pages):
        a = Array("a", (pages * EPP,))
        stmt = Stmt(refs=(ArrayRef(a, (affine("i"),)),))
        nest = Nest("n", Loop("i", 0, pages * EPP, body=(stmt,)))
        program = Program("p", (a,), (nest,))
        compiled = compile_program(program).nests["n"]
        for op in nest_ops(compiled, {}, {"a": 10}, MACHINE):
            if op[0] in ("p", "r"):
                assert all(10 <= page < 10 + pages for page in op[2])

    @settings(max_examples=20, deadline=None)
    @given(pages=st.integers(2, 30))
    def test_every_page_released_exactly_once_per_sweep(self, pages):
        a = Array("a", (pages * EPP,))
        stmt = Stmt(refs=(ArrayRef(a, (affine("i"),)),))
        nest = Nest("n", Loop("i", 0, pages * EPP, body=(stmt,)))
        program = Program("p", (a,), (nest,))
        compiled = compile_program(program).nests["n"]
        released = [
            page
            for op in nest_ops(compiled, {}, {"a": 0}, MACHINE)
            if op[0] == "r"
            for page in op[2]
        ]
        assert sorted(released) == list(range(pages))

    @settings(max_examples=20, deadline=None)
    @given(pages=st.integers(2, 30), flops=st.floats(0.5, 8.0))
    def test_total_work_is_iterations_times_flops(self, pages, flops):
        a = Array("a", (pages * EPP,))
        stmt = Stmt(refs=(ArrayRef(a, (affine("i"),)),), flops=flops)
        nest = Nest("n", Loop("i", 0, pages * EPP, body=(stmt,)))
        program = Program("p", (a,), (nest,))
        compiled = compile_program(program).nests["n"]
        work = sum(
            op[1]
            for op in nest_ops(compiled, {}, {"a": 0}, MACHINE)
            if op[0] == "w"
        )
        expected = pages * EPP * flops * MACHINE.cpu_s_per_element
        assert math.isclose(work, expected, rel_tol=1e-9)


class TestBufferProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        additions=st.lists(
            st.tuples(
                st.integers(0, 4),  # tag
                st.integers(0, 200),  # page
                st.integers(1, 4),  # priority
            ),
            max_size=60,
        ),
        budget=st.integers(1, 50),
    )
    def test_drain_conserves_pages(self, additions, budget):
        """Pages drained + pages remaining == unique pages added, and no
        page is drained twice."""
        buffer = ReleaseBuffer()
        added = set()
        tag_priority = {}
        for tag, page, priority in additions:
            priority = tag_priority.setdefault(tag, priority)
            buffer.add(tag, [page], priority)
            added.add(page)
        drained = []
        while True:
            batches = buffer.drain(budget)
            if not batches:
                break
            for _tag, pages in batches:
                drained.extend(pages)
        assert len(drained) == len(set(drained))
        assert set(drained) == added
        assert len(buffer) == 0

    @settings(max_examples=50, deadline=None)
    @given(
        pages_low=st.lists(st.integers(0, 99), min_size=1, max_size=20, unique=True),
        pages_high=st.lists(
            st.integers(100, 199), min_size=1, max_size=20, unique=True
        ),
    )
    def test_lower_priority_always_drains_first(self, pages_low, pages_high):
        buffer = ReleaseBuffer()
        buffer.add(1, pages_low, priority=1)
        buffer.add(2, pages_high, priority=5)
        drained = [
            page for _tag, batch in buffer.drain(len(pages_low)) for page in batch
        ]
        assert set(drained) <= set(pages_low)
