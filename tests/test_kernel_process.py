"""Tests for KernelProcess time batching, config presets, and the
interactive task."""

import pytest

from repro.config import paper, small, tiny
from repro.kernel import Kernel
from repro.workloads.interactive import InteractiveTask

from tests.helpers import drive


class TestConfigPresets:
    def test_paper_matches_the_papers_platform(self):
        scale = paper()
        assert scale.machine.total_frames == 4800  # 75 MB of 16 KB pages
        assert scale.disk.disks == 10
        assert scale.disk.adapters == 5
        assert scale.machine.cpus == 4
        assert scale.interactive_pages == 65  # Figure 10(c)'s maximum
        assert scale.out_of_core_pages == 25600  # 400 MB

    def test_scaled_presets_preserve_ratios(self):
        for preset in (small(), tiny()):
            base = paper()
            ratio = base.machine.total_frames / preset.machine.total_frames
            data_ratio = base.out_of_core_pages / preset.out_of_core_pages
            assert data_ratio == pytest.approx(ratio, rel=0.05)

    def test_describe_keys(self):
        info = paper().describe()
        assert info["swap_disks"] == 10
        assert info["user_memory_mb"] == 75
        assert info["page_size_kb"] == 16

    def test_with_overrides(self):
        scale = tiny().with_overrides(rng_seed=7)
        assert scale.rng_seed == 7
        assert scale.machine.total_frames == tiny().machine.total_frames

    def test_sleep_sweeps_scale_down(self):
        assert max(tiny().figure_sleep_times_s) < max(paper().figure_sleep_times_s)


class TestKernelProcess:
    def test_charge_and_flush(self, kernel):
        proc = kernel.create_process("p")
        proc.charge(0.5)
        assert proc.pending_user == 0.5

        def run():
            yield from proc.flush()

        drive(kernel.engine, kernel.engine.process(run()))
        assert proc.pending_user == 0.0
        assert proc.task.buckets.user == pytest.approx(0.5)

    def test_flush_if_due_respects_quantum(self, kernel, scale):
        proc = kernel.create_process("p")
        proc.charge(scale.time_quantum_s / 2)

        def run():
            yield from proc.flush_if_due()
            below_quantum = proc.pending_user
            proc.charge(scale.time_quantum_s)
            yield from proc.flush_if_due()
            return below_quantum

        below = drive(kernel.engine, kernel.engine.process(run()))
        assert below > 0  # not flushed below the quantum
        assert proc.pending_user == 0.0

    def test_fault_flushes_pending_time_first(self, kernel):
        proc = kernel.create_process("p")
        proc.aspace.map_segment("a", 10)
        proc.charge(1.0)
        fault = proc.touch(0)
        assert fault is not None

        drive(kernel.engine, kernel.engine.process(fault))
        assert proc.pending_user == 0.0
        assert proc.task.buckets.user == pytest.approx(1.0)

    def test_touch_now_helper(self, kernel):
        proc = kernel.create_process("p")
        proc.aspace.map_segment("a", 10)

        def run():
            kind = yield from proc.touch_now(0)
            again = yield from proc.touch_now(0)
            return kind, again

        kind, again = drive(kernel.engine, kernel.engine.process(run()))
        assert kind == "hard"
        assert again is None

    def test_boot_starts_daemons_once(self, engine, scale):
        kernel = Kernel.boot(engine, scale)
        kernel.start()  # idempotent
        assert kernel.paging_daemon._process is not None
        assert kernel.releaser._process is not None


class TestInteractiveTask:
    def test_records_sweeps(self, kernel, scale):
        task = InteractiveTask(kernel, scale, sleep_time_s=0.01)

        def bounded():
            runner = task.run()
            for event in runner:
                yield event
                if len(task.samples) >= 4:
                    task.stop()

        drive(kernel.engine, kernel.engine.process(bounded()))
        assert len(task.samples) >= 4

    def test_first_sweep_pays_cold_faults(self, kernel, scale):
        task = InteractiveTask(kernel, scale, sleep_time_s=0.01)

        def bounded():
            runner = task.run()
            for event in runner:
                yield event
                if len(task.samples) >= 3:
                    task.stop()

        drive(kernel.engine, kernel.engine.process(bounded()))
        assert task.samples[0].hard_faults == scale.interactive_pages
        assert task.samples[1].hard_faults == 0
        assert task.samples[1].response_time < task.samples[0].response_time

    def test_mean_response_skips_warmup(self, kernel, scale):
        task = InteractiveTask(kernel, scale, sleep_time_s=0.01)

        def bounded():
            runner = task.run()
            for event in runner:
                yield event
                if len(task.samples) >= 5:
                    task.stop()

        drive(kernel.engine, kernel.engine.process(bounded()))
        assert task.mean_response() < task.samples[0].response_time
        assert task.mean_hard_faults() == 0.0

    def test_zero_sleep_never_sleeps(self, kernel, scale):
        task = InteractiveTask(kernel, scale, sleep_time_s=0.0)

        def bounded():
            runner = task.run()
            for event in runner:
                yield event
                if len(task.samples) >= 3:
                    task.stop()

        drive(kernel.engine, kernel.engine.process(bounded()))
        # Back-to-back sweeps: gaps equal the response times.
        assert len(task.samples) >= 3
