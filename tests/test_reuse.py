"""Unit tests for reuse analysis."""

import pytest

from repro.core.compiler.ir import (
    Array,
    ArrayRef,
    IndirectRef,
    Loop,
    Nest,
    Stmt,
    VaryingStrideRef,
    affine,
)
from repro.core.compiler.reuse import analyze_reuse

PAGE = 16 * 1024


def matvec_nest(rows=64, cols=4096):
    a = Array("A", (rows, cols))
    x = Array("x", (cols,))
    y = Array("y", (rows,))
    stmt = Stmt(
        refs=(
            ArrayRef(a, (affine("i"), affine("j"))),
            ArrayRef(x, (affine("j"),)),
            ArrayRef(y, (affine("i"),), is_write=True),
        )
    )
    nest = Nest("mv", Loop("i", 0, rows, body=(Loop("j", 0, cols, body=(stmt,)),)))
    return nest, a, x, y


class TestTemporalReuse:
    def test_loop_invariant_reference_has_temporal_reuse(self):
        nest, a, x, y = matvec_nest()
        info = analyze_reuse(nest, PAGE)
        x_entry = next(e for e in info.refs if e.ref.array is x)
        assert x_entry.temporal_loops == ("i",)

    def test_fully_varying_reference_has_none(self):
        nest, a, x, y = matvec_nest()
        info = analyze_reuse(nest, PAGE)
        a_entry = next(e for e in info.refs if e.ref.array is a)
        assert a_entry.temporal_loops == ()

    def test_inner_invariant(self):
        nest, a, x, y = matvec_nest()
        info = analyze_reuse(nest, PAGE)
        y_entry = next(e for e in info.refs if e.ref.array is y)
        assert y_entry.temporal_loops == ("j",)

    def test_single_trip_loop_carries_no_reuse(self):
        a = Array("a", (10,))
        stmt = Stmt(refs=(ArrayRef(a, (affine("j"),)),))
        nest = Nest(
            "n", Loop("r", 0, 1, body=(Loop("j", 0, 10, body=(stmt,)),))
        )
        info = analyze_reuse(nest, PAGE)
        entry = info.refs[0]
        assert "r" not in entry.temporal_loops


class TestSpatialReuse:
    def test_unit_stride_innermost_is_spatial(self):
        nest, a, x, y = matvec_nest()
        info = analyze_reuse(nest, PAGE)
        a_entry = next(e for e in info.refs if e.ref.array is a)
        assert "j" in a_entry.spatial_loops

    def test_row_stride_is_not_spatial(self):
        nest, a, x, y = matvec_nest()
        info = analyze_reuse(nest, PAGE)
        a_entry = next(e for e in info.refs if e.ref.array is a)
        assert "i" not in a_entry.spatial_loops

    def test_large_stride_not_spatial(self):
        a = Array("a", (100000,))
        stmt = Stmt(refs=(ArrayRef(a, (affine("i", coeff=PAGE),)),))
        nest = Nest("n", Loop("i", 0, 10, body=(stmt,)))
        info = analyze_reuse(nest, PAGE)
        assert info.refs[0].spatial_loops == ()


class TestGroups:
    def stencil_nest(self, offsets=(1, 0, -1)):
        a = Array("a", (512, 4096))
        refs = tuple(
            ArrayRef(a, (affine("i", const_term=d), affine("j")))
            for d in offsets
        )
        stmt = Stmt(refs=refs)
        return Nest(
            "st",
            Loop("i", 1, 511, body=(Loop("j", 0, 4096, body=(stmt,)),)),
        )

    def test_stencil_refs_form_one_group(self):
        info = analyze_reuse(self.stencil_nest(), PAGE)
        assert len(info.groups) == 1
        assert len(info.groups[0].members) == 3

    def test_leader_and_trailer(self):
        info = analyze_reuse(self.stencil_nest(), PAGE)
        group = info.groups[0]
        assert group.leader.ref.subscripts[0].const == 1
        assert group.trailer.ref.subscripts[0].const == -1

    def test_different_coefficients_split_groups(self):
        a = Array("a", (512, 4096))
        stmt = Stmt(
            refs=(
                ArrayRef(a, (affine("i"), affine("j"))),
                ArrayRef(a, (affine("i", coeff=2), affine("j"))),
            )
        )
        nest = Nest(
            "n", Loop("i", 0, 256, body=(Loop("j", 0, 4096, body=(stmt,)),))
        )
        info = analyze_reuse(nest, PAGE)
        assert len(info.groups) == 2

    def test_distant_constants_split_groups(self):
        """Two references into one workspace array at far-apart offsets do
        not share group locality."""
        a = Array("w", (1 << 22,))
        stmt = Stmt(
            refs=(
                ArrayRef(a, (affine("i"),)),
                ArrayRef(a, (affine("i", const_term=1 << 20),)),
            )
        )
        nest = Nest("n", Loop("i", 0, 1024, body=(stmt,)))
        info = analyze_reuse(nest, PAGE)
        assert len(info.groups) == 2

    def test_near_constants_stay_grouped(self):
        a = Array("w", (1 << 22,))
        stmt = Stmt(
            refs=(
                ArrayRef(a, (affine("i"),)),
                ArrayRef(a, (affine("i", const_term=1),)),
            )
        )
        nest = Nest("n", Loop("i", 0, 1024, body=(stmt,)))
        info = analyze_reuse(nest, PAGE)
        assert len(info.groups) == 1

    def test_writes_tracked_per_group(self):
        a = Array("a", (4096,))
        stmt = Stmt(
            refs=(
                ArrayRef(a, (affine("i"),), is_write=True),
                ArrayRef(a, (affine("i", const_term=1),)),
            )
        )
        nest = Nest("n", Loop("i", 0, 1024, body=(stmt,)))
        info = analyze_reuse(nest, PAGE)
        assert info.groups[0].has_writes


class TestIndirectAndVarying:
    def test_indirect_refs_are_unanalysable(self):
        target = Array("t", (1 << 20,))
        keys = Array("k", (1 << 20,))
        key_ref = ArrayRef(keys, (affine("i"),))
        stmt = Stmt(refs=(key_ref, IndirectRef(target, key_ref)))
        nest = Nest("n", Loop("i", 0, 1000, body=(stmt,)))
        info = analyze_reuse(nest, PAGE)
        assert len(info.indirect_refs) == 1
        assert info.indirect_refs[0].indirect
        # The indirect ref joins no group.
        grouped = sum(len(g.members) for g in info.groups)
        assert grouped == 1  # only the key reference

    def test_varying_stride_analysed_from_apparent(self):
        a = Array("a", (1 << 20,))
        ref = VaryingStrideRef(
            a,
            apparent_subscripts=(affine("b", coeff=2048),),
            actual_subscripts=lambda env: (affine("b", coeff=4096),),
        )
        stmt = Stmt(refs=(ref,))
        nest = Nest(
            "n",
            Loop("s", 0, 4, body=(Loop("b", 0, 100, body=(stmt,)),)),
        )
        info = analyze_reuse(nest, PAGE)
        entry = info.refs[0]
        # The apparent form is independent of s -> claimed temporal reuse.
        assert entry.temporal_loops == ("s",)


class TestValidation:
    def test_duplicate_loop_vars_rejected(self):
        a = Array("a", (10, 10))
        stmt = Stmt(refs=(ArrayRef(a, (affine("i"), affine("i"))),))
        nest = Nest(
            "n", Loop("i", 0, 10, body=(Loop("i", 0, 10, body=(stmt,)),))
        )
        with pytest.raises(ValueError):
            analyze_reuse(nest, PAGE)

    def test_depth_map(self):
        nest, *_ = matvec_nest()
        info = analyze_reuse(nest, PAGE)
        assert info.depth_of == {"i": 0, "j": 1}

    def test_reuse_lookup(self):
        nest, a, x, y = matvec_nest()
        info = analyze_reuse(nest, PAGE)
        x_ref = next(e.ref for e in info.refs if e.ref.array is x)
        assert info.reuse_for(x_ref).ref is x_ref
