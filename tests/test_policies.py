"""The memory-policy seam: spec parsing, registry, cache keys, behavior."""

import pytest

from repro import bench
from repro.config import tiny
from repro.experiments.compare import compare_policies, format_policy_table
from repro.experiments.harness import multiprogram_spec
from repro.experiments.runner import spec_key
from repro.machine import Machine, SpecError, run_experiment
from repro.policies import (
    DEFAULT_POLICY,
    GlobalClockPm,
    PolicyError,
    PolicySpec,
    UserModePm,
    build_policy,
    policy_names,
    validate_policy,
)


def _spec(version="R", policy=None):
    spec = multiprogram_spec(tiny(), "MATVEC", version)
    if policy is not None:
        spec = spec.with_policy(policy)
    return spec


# -- PolicySpec ----------------------------------------------------------
def test_from_string_plain_name():
    spec = PolicySpec.from_string("global-clock")
    assert spec.name == "global-clock"
    assert spec.params == ()


def test_from_string_with_params_sorted():
    spec = PolicySpec.from_string("paging-directed:zeta=1,frag_extent=32")
    assert spec.name == "paging-directed"
    assert spec.params == (("frag_extent", "32"), ("zeta", "1"))
    assert spec.describe() == "paging-directed:frag_extent=32,zeta=1"


def test_from_string_roundtrip():
    text = "user-mode:frag_extent=8"
    assert PolicySpec.from_string(text).describe() == text


@pytest.mark.parametrize("bad", ["", "name:frag_extent", "name:=3", "name:,"])
def test_from_string_rejects_malformed(bad):
    with pytest.raises(PolicyError):
        PolicySpec.from_string(bad)


def test_params_normalized_at_construction():
    a = PolicySpec("x", params=(("b", "2"), ("a", "1")))
    b = PolicySpec("x", params=(("a", "1"), ("b", "2")))
    assert a == b
    assert repr(a) == repr(b)


# -- registry ------------------------------------------------------------
def test_builtin_policies_registered():
    names = policy_names()
    assert "paging-directed" in names
    assert "global-clock" in names
    assert "user-mode" in names


def test_unknown_policy_name_raises():
    with pytest.raises(PolicyError, match="unknown memory policy"):
        build_policy(PolicySpec("no-such-policy"))


def test_unknown_param_raises():
    with pytest.raises(PolicyError, match="does not accept"):
        validate_policy(PolicySpec.from_string("global-clock:bogus=1"))


def test_spec_validate_surfaces_policy_error_as_spec_error():
    spec = _spec(policy=PolicySpec("no-such-policy"))
    with pytest.raises(SpecError, match="invalid policy"):
        spec.validate()


# -- cache-key separation ------------------------------------------------
def test_spec_key_changes_with_policy():
    base = _spec()
    assert spec_key(base) != spec_key(base.with_policy("global-clock"))
    assert spec_key(base) != spec_key(
        base.with_policy("paging-directed:frag_extent=32")
    )


def test_spec_key_stable_for_same_policy():
    assert spec_key(_spec(policy="global-clock")) == spec_key(
        _spec(policy="global-clock")
    )
    # The explicit default and the implicit default are the same spec.
    assert spec_key(_spec()) == spec_key(_spec(policy=DEFAULT_POLICY))


# -- kernel wiring -------------------------------------------------------
def test_default_policy_builds_both_daemons():
    machine = Machine.from_spec(_spec())
    assert machine.kernel.releaser is not None
    assert machine.kernel.paging_daemon is not None


@pytest.mark.parametrize("policy", ["global-clock", "user-mode"])
def test_competitors_run_without_releaser_daemon(policy):
    machine = Machine.from_spec(_spec(policy=policy))
    assert machine.kernel.releaser is None
    assert machine.kernel.vm.releaser is None
    assert machine.kernel.paging_daemon is not None


def test_policy_selects_pm_class():
    pm_types = {
        "global-clock": GlobalClockPm,
        "user-mode": UserModePm,
    }
    for name, pm_class in pm_types.items():
        machine = Machine.from_spec(_spec(policy=name))
        hog = machine.kernel.vm.address_spaces[0]
        modules = machine.kernel.registry.modules_for(hog)
        assert modules and all(type(m) is pm_class for m in modules)


def test_frag_extent_param_reaches_vm():
    machine = Machine.from_spec(_spec(policy="paging-directed:frag_extent=8"))
    assert machine.kernel.vm.frag_extent == 8


# -- behavior ------------------------------------------------------------
def test_global_clock_ignores_release_hints():
    result = run_experiment(_spec(policy="global-clock"))
    vm = result.vm
    assert vm.releaser_pages_freed == 0
    assert vm.freed_by_release == 0
    # All reclamation falls to the clock daemon instead.
    assert vm.daemon_pages_stolen > 0
    assert all(p.completed for p in result.processes if not p.interactive)


def test_user_mode_frees_inline_without_daemon():
    result = run_experiment(_spec(policy="user-mode"))
    vm = result.vm
    assert vm.releaser_pages_freed > 0
    assert vm.freed_by_release > 0
    assert all(p.completed for p in result.processes if not p.interactive)


def test_paging_directed_beats_global_clock_on_hinted_build():
    """The paper's headline effect survives the refactor: with release
    hints honoured, the hog needs fewer hard faults than under the
    hint-blind clock."""
    directed = run_experiment(_spec())
    clock = run_experiment(_spec(policy="global-clock"))
    assert directed.primary.stats.hard_faults <= clock.primary.stats.hard_faults
    assert directed.vm.frag.mean_unusable_free_index <= (
        clock.vm.frag.mean_unusable_free_index
    )


@pytest.mark.parametrize("policy", ["global-clock", "user-mode"])
def test_competitor_policies_deterministic(policy):
    spec = _spec(policy=policy)
    first = bench.serialize_result(run_experiment(spec))
    second = bench.serialize_result(run_experiment(spec))
    assert first == second


def test_fragmentation_always_sampled():
    # finalize_stats takes a closing sample even if the daemon never ran.
    result = run_experiment(_spec())
    assert result.vm.frag.samples >= 1
    assert 0.0 <= result.vm.frag.mean_unusable_free_index <= 1.0


# -- compare harness -----------------------------------------------------
def test_compare_policies_table():
    rows = compare_policies(_spec(), policies=policy_names())
    assert [r.policy for r in rows] == list(policy_names())
    for row in rows:
        assert row.elapsed_s > 0
        assert row.frag_samples >= 1
    table = format_policy_table(rows)
    for name in policy_names():
        assert name in table
    assert "frag_ufi_mean" in table
