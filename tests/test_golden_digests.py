"""Golden byte-identity: serialized results are pinned to committed digests.

``tests/golden/serialized_digests.json`` holds the SHA-256 of
``bench.serialize_result(run_experiment(spec))`` for every spec of every
committed benchmark case, captured on the tree *before* the memory-policy
seam (and before the heap engine backend was removed).  These tests re-run
each case on the current tree under the default policy and compare digests
— so the policy refactor, and any future engine or VM change, is held to
the "byte-identical results" contract rather than a fuzzy tolerance.

This supersedes ``test_engine_equivalence.py``: the heap scheduler these
goldens were originally A/B'd against is gone, and the frozen digests are
now the single source of truth for event-order identity.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro import bench
from repro.machine import run_experiment

GOLDEN_PATH = Path(__file__).parent / "golden" / "serialized_digests.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))

#: Only the cases frozen in the golden file: new bench cases (e.g. the
#: global-clock mix) assert determinism elsewhere, not pre-refactor bytes.
CASES = sorted(GOLDEN["cases"])


def _digest(spec) -> str:
    serialized = bench.serialize_result(run_experiment(spec))
    return hashlib.sha256(serialized.encode("utf-8")).hexdigest()


def test_golden_covers_committed_cases():
    """Every golden case must still exist as a runnable bench case."""
    for case in CASES:
        assert case in bench.BENCH_CASES, f"golden case {case} disappeared"


@pytest.mark.parametrize("case", CASES)
def test_serialized_results_match_golden(case):
    specs = bench.BENCH_CASES[case]()
    expected = GOLDEN["cases"][case]
    assert len(specs) == len(expected), (
        f"{case}: spec count changed ({len(specs)} vs {len(expected)} "
        "golden digests) — regenerate tests/golden/serialized_digests.json "
        "deliberately if the case itself changed"
    )
    for index, spec in enumerate(specs):
        assert _digest(spec) == expected[index], (
            f"{case}[{index}]: serialized result diverged from the "
            "pre-refactor golden digest"
        )
