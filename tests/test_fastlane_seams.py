"""Seam tests for the bulk resident-run lane (:mod:`repro.vm.fastlane`).

The lane's contract is byte-identity: with the lane on (NumPy or pure),
off (``REPRO_FAST_LANE=0``), or degraded (NumPy absent), every simulated
trajectory must match the per-page path bit for bit.  These tests pin the
seams where that could break:

- the primitive (``touch_segment``/``charge_plan``) against a sequential
  reference on randomized frame-table states;
- ``VmSystem.touch_run`` against n sequential ``touch_fast`` calls;
- forced fallbacks: NumPy monkeypatched away, the env knob set to 0;
- mid-run interruption: a page is yanked from under a run (the injected
  corruption a fault plan's reclaim pressure produces) and the bulk path
  must split, fault, and resume exactly like the per-page loop;
- whole experiments and trace replays against the frozen golden digests
  under every lane mode, with and without an active fault plan.
"""

import hashlib
import os
import random
from contextlib import contextmanager

import pytest

from repro import bench
from repro.config import tiny
from repro.experiments.harness import multiprogram_spec
from repro.kernel import Kernel
from repro.machine import run_experiment
from repro.sim.engine import Engine
from repro.vm import fastlane
from repro.vm.frames import (
    F_DIRTY,
    F_IN_TRANSIT,
    F_REFERENCED,
    F_RELEASE_PENDING,
    F_SW_VALID,
)

from tests.helpers import drive
from tests.test_golden_digests import GOLDEN


@contextmanager
def lane_env(value):
    """Temporarily set ``REPRO_FAST_LANE`` and refresh the lane mode."""
    old = os.environ.get("REPRO_FAST_LANE")
    try:
        if value is None:
            os.environ.pop("REPRO_FAST_LANE", None)
        else:
            os.environ["REPRO_FAST_LANE"] = value
        fastlane.refresh_from_env()
        yield
    finally:
        if old is None:
            os.environ.pop("REPRO_FAST_LANE", None)
        else:
            os.environ["REPRO_FAST_LANE"] = old
        fastlane.refresh_from_env()


#: Flag words covering every hit/miss classification the mask test sees.
_FLAG_WORDS = (
    0,
    F_SW_VALID,
    F_SW_VALID | F_REFERENCED,
    F_SW_VALID | F_REFERENCED | F_DIRTY,
    F_SW_VALID | F_IN_TRANSIT,
    F_IN_TRANSIT,
    F_SW_VALID | F_RELEASE_PENDING | F_REFERENCED,
)

_MASK = F_SW_VALID | F_IN_TRANSIT


def _reference_touch_segment(seg, flags, bits):
    """Sequential twin of ``touch_segment``: per-page mask test + OR."""
    hits = 0
    for index in seg:
        if index >= 0:
            word = flags[index]
            if word & _MASK == F_SW_VALID:
                flags[index] = word | bits
                hits += 1
                continue
        break
    return hits


class TestTouchSegmentProperty:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("use_numpy", [True, False], ids=["numpy", "pure"])
    def test_matches_sequential_reference(self, seed, use_numpy):
        rng = random.Random(seed)
        nframes = 256
        for trial in range(20):
            n = rng.choice((1, 3, 17, 48, 64, 200))
            frames = rng.sample(range(nframes), min(n, nframes))
            seg = [
                -1 if rng.random() < 0.05 else frames[i % len(frames)]
                for i in range(n)
            ]
            flags = [rng.choice(_FLAG_WORDS) for _ in range(nframes)]
            bits = (
                F_REFERENCED | F_DIRTY
                if rng.random() < 0.5
                else F_REFERENCED
            )
            expected_flags = list(flags)
            expected_hits = _reference_touch_segment(
                seg, expected_flags, bits
            )
            got_hits = fastlane.touch_segment(
                list(seg), flags, _MASK, F_SW_VALID, bits, use_numpy
            )
            assert got_hits == expected_hits
            assert flags == expected_flags

    def test_numpy_absent_falls_back(self, monkeypatch):
        monkeypatch.setattr(fastlane, "np", None)
        seg = [0, 1, 2]
        flags = [F_SW_VALID] * 3
        hits = fastlane.touch_segment(
            seg, flags, _MASK, F_SW_VALID, F_REFERENCED, True
        )
        assert hits == 3
        assert flags == [F_SW_VALID | F_REFERENCED] * 3

    @pytest.mark.parametrize("seed", range(4))
    def test_charge_plan_matches_sequential_adds(self, seed):
        if fastlane.np is None:
            pytest.skip("charge_plan requires numpy")
        rng = random.Random(seed)
        for _ in range(20):
            n = rng.randrange(1, 80)
            pending = rng.random() * 0.01
            s = rng.random() * 1e-4
            r = rng.random() * 1e-5
            quantum = rng.random() * 0.005
            cum, m = fastlane.charge_plan(pending, s, r, n, quantum)
            # Bit-identical sequential twin.
            value = pending
            seq = [value]
            for _ in range(n):
                value += s
                seq.append(value)
                value += r
                seq.append(value)
            assert list(cum) == seq
            crossings = [i for i in range(1, 2 * n + 1) if seq[i] >= quantum]
            expected_m = crossings[0] - 1 if crossings else 2 * n
            assert m == expected_m


class TestTouchRunEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_touch_run_equals_sequential_touch_fast(self, kernel, seed):
        vm = kernel.vm
        rng = random.Random(seed)
        flags = vm.frame_table.flags
        nframes = len(flags)
        npages = min(96, nframes)
        aspace = vm.create_address_space(f"prop{seed}")
        aspace.map_segment("a", npages)
        frames = rng.sample(range(nframes), npages)
        for vpn in range(npages):
            if rng.random() < 0.1:
                continue  # leave unmapped
            frame = frames[vpn]
            aspace.pt[vpn] = frame
            flags[frame] = rng.choice(_FLAG_WORDS)
        start = rng.randrange(0, npages // 2)
        count = rng.randrange(1, npages - start + 8)  # may overrun the pt
        write = rng.random() < 0.5

        # Sequential reference on a cloned world.
        ref_flags = list(flags)
        expected = 0
        for vpn in range(start, start + count):
            index = aspace.pt[vpn] if vpn < len(aspace.pt) else -1
            if index >= 0:
                word = ref_flags[index]
                if word & _MASK == F_SW_VALID:
                    ref_flags[index] = word | (
                        (F_REFERENCED | F_DIRTY) if write else F_REFERENCED
                    )
                    expected += 1
                    continue
            break

        hits = vm.touch_run(aspace, start, count, write)
        assert hits == expected
        assert list(flags) == ref_flags


def _interrupted_world(lane_value):
    """One deterministic world: fault a segment in, yank a mid-run page,
    then re-run the whole run so the bulk path must split around it."""
    with lane_env(lane_value):
        engine = Engine()
        kernel = Kernel.boot(engine, tiny())
        proc = kernel.create_process("victim")
        segment = proc.aspace.map_segment("a", 64)
        base = segment.start
        outcome = {}

        def driver():
            yield from proc.run_touches(base, 64, True, 1e-4)
            # Injected corruption: reclaim a page mid-run behind the
            # process's back (what fault-plan-driven pressure does).
            proc.aspace.pt[base + 31] = -1
            yield from proc.run_touches(base, 64, False, 1e-4)
            yield from proc.flush()
            outcome["now"] = engine.now
            outcome["steps"] = engine.steps
            outcome["user"] = proc.task.buckets.user
            outcome["pt"] = list(proc.aspace.pt)

        drive(engine, engine.process(driver(), name="drv"))
    return outcome


class TestMidRunInterruption:
    def test_all_lanes_agree_after_midrun_yank(self):
        baseline = _interrupted_world("0")
        assert baseline["steps"] > 0
        for value in ("1", None):
            assert _interrupted_world(value) == baseline

    def test_pure_lane_agrees_without_numpy(self, monkeypatch):
        baseline = _interrupted_world("0")
        monkeypatch.setattr(fastlane, "np", None)
        assert _interrupted_world("1") == baseline


def _digest(spec) -> str:
    serialized = bench.serialize_result(run_experiment(spec))
    return hashlib.sha256(serialized.encode("utf-8")).hexdigest()


class TestLaneEquivalenceGolden:
    """The frozen digests hold under every lane mode.

    ``grid_tiny`` spec 0 is EMBAR O — the only committed spec family whose
    live driver exercises the run-length ('T') path (hinted versions never
    batch), so it is the one that can diverge if the bulk lane miscounts.
    """

    GOLDEN_EMBAR_O = GOLDEN["cases"]["grid_tiny"][0]

    def _spec(self):
        return multiprogram_spec(tiny(), "EMBAR", "O")

    def test_lane_off_matches_golden(self):
        with lane_env("0"):
            assert fastlane.lane_mode() == fastlane.LANE_OFF
            assert _digest(self._spec()) == self.GOLDEN_EMBAR_O

    def test_pure_lane_matches_golden(self, monkeypatch):
        monkeypatch.setattr(fastlane, "np", None)
        with lane_env("1"):
            assert fastlane.lane_mode() == fastlane.LANE_PURE
            assert _digest(self._spec()) == self.GOLDEN_EMBAR_O

    def test_numpy_lane_matches_golden(self):
        if fastlane.np is None:
            pytest.skip("numpy not installed")
        with lane_env("1"):
            assert fastlane.lane_mode() == fastlane.LANE_NUMPY
            assert _digest(self._spec()) == self.GOLDEN_EMBAR_O

    def test_lanes_agree_under_fault_plan(self):
        # An active fault plan perturbs paging timing, which moves the
        # interruption points inside runs — the lanes must still agree
        # byte for byte (there is no frozen digest for faulted runs, so
        # the lanes are compared against each other).
        from repro.faults import FaultPlan

        plan = FaultPlan.from_dict(
            {
                "seed": 7,
                "disk": {
                    "latency_spike_prob": 0.2,
                    "latency_spike_multiplier": 4.0,
                },
            }
        )
        spec = self._spec().with_faults(plan)
        with lane_env("0"):
            off = bench.serialize_result(run_experiment(spec))
        with lane_env("1"):
            on = bench.serialize_result(run_experiment(spec))
        assert on == off


class TestReplayLaneSeams:
    """Trace replay reproduces live results under every replay lane."""

    @pytest.fixture(scope="class")
    def recorded(self, tmp_path_factory):
        from repro.trace.record import record_experiment

        spec = multiprogram_spec(tiny(), "EMBAR", "O")
        out = tmp_path_factory.mktemp("lane-replay")
        result, paths = record_experiment(spec, out / "embar")
        return spec, bench.serialize_result(result), list(paths.values())

    def _replay_spec(self, spec, path):
        from repro.machine import INTERACTIVE, ExperimentSpec, WorkloadProcessSpec
        from repro.trace.workload import trace_process_spec

        return ExperimentSpec(
            scale=spec.scale,
            processes=(
                trace_process_spec(path),
                WorkloadProcessSpec(workload=INTERACTIVE),
            ),
        )

    def test_columns_replay_matches_live(self, recorded):
        spec, live, paths = recorded
        replayed = run_experiment(self._replay_spec(spec, paths[0]))
        assert bench.serialize_result(replayed) == live

    def test_legacy_replay_matches_live(self, recorded):
        spec, live, paths = recorded
        with lane_env("0"):
            replayed = run_experiment(self._replay_spec(spec, paths[0]))
        assert bench.serialize_result(replayed) == live

    def test_pure_columns_replay_matches_live(self, recorded, monkeypatch):
        spec, live, paths = recorded
        monkeypatch.setattr(fastlane, "np", None)
        with lane_env("1"):
            replayed = run_experiment(self._replay_spec(spec, paths[0]))
        assert bench.serialize_result(replayed) == live
