"""Unit tests for the fragmentation metrics over hand-built frame tables."""

import pytest

from repro.vm.fragmentation import (
    DEFAULT_EXTENT_PAGES,
    FragmentationSample,
    FragmentationStats,
    measure_fragmentation,
)
from repro.vm.frames import F_ON_FREE_LIST, F_PRESENT, FrameTable


def _table(nframes, free_indices):
    table = FrameTable(nframes)
    free = set(free_indices)
    for index in range(nframes):
        if index in free:
            table.flags[index] = F_ON_FREE_LIST
        else:
            table.flags[index] = F_PRESENT
    return table


def test_no_free_frames():
    sample = measure_fragmentation(_table(64, []))
    assert sample.free_frames == 0
    assert sample.free_runs == 0
    assert sample.largest_free_extent == 0
    assert sample.unusable_free_index == 0.0
    assert sample.run_histogram == []


def test_entirely_free_table():
    sample = measure_fragmentation(_table(64, range(64)), extent_pages=16)
    assert sample.free_frames == 64
    assert sample.free_runs == 1
    assert sample.largest_free_extent == 64
    # One run of 64: bucket index 6 (2**6 <= 64 < 2**7).
    assert sample.run_histogram[6] == 1
    assert sum(sample.run_histogram) == 1
    # Every frame sits in an aligned 16-frame block: nothing is unusable.
    assert sample.unusable_free_index == 0.0


def test_alternating_confetti_is_fully_unusable():
    sample = measure_fragmentation(_table(64, range(0, 64, 2)), extent_pages=16)
    assert sample.free_frames == 32
    assert sample.free_runs == 32
    assert sample.largest_free_extent == 1
    assert sample.run_histogram == [32]
    # No run can hold an aligned 16-frame extent.
    assert sample.unusable_free_index == 1.0


def test_unaligned_run_counts_as_unusable():
    # [8, 24) is 16 frames long but straddles the 16-frame alignment
    # boundary: no aligned extent fits, so all 16 are unusable.
    sample = measure_fragmentation(_table(64, range(8, 24)), extent_pages=16)
    assert sample.free_frames == 16
    assert sample.free_runs == 1
    assert sample.largest_free_extent == 16
    assert sample.unusable_free_index == 1.0


def test_aligned_run_is_fully_usable():
    sample = measure_fragmentation(_table(64, range(16, 32)), extent_pages=16)
    assert sample.free_frames == 16
    assert sample.unusable_free_index == 0.0


def test_partial_usability():
    # [8, 40) = 32 free frames; only the aligned block [16, 32) is usable.
    sample = measure_fragmentation(_table(64, range(8, 40)), extent_pages=16)
    assert sample.free_frames == 32
    assert sample.unusable_free_index == pytest.approx(1.0 - 16 / 32)


def test_run_ending_at_table_edge():
    sample = measure_fragmentation(_table(32, range(16, 32)), extent_pages=16)
    assert sample.free_runs == 1
    assert sample.unusable_free_index == 0.0


def test_histogram_buckets_power_of_two():
    # Runs of lengths 1, 2, 3, 4, 8 land in power-of-two buckets:
    # bucket 0 gets the 1, bucket 1 gets 2 and 3, bucket 2 gets 4,
    # bucket 3 gets 8.
    free = [0]  # length 1
    free += [2, 3]  # length 2
    free += [5, 6, 7]  # length 3
    free += [9, 10, 11, 12]  # length 4
    free += list(range(14, 22))  # length 8
    sample = measure_fragmentation(_table(32, free), extent_pages=16)
    assert sample.run_histogram == [1, 2, 1, 1]
    assert sample.free_runs == 5
    assert sample.largest_free_extent == 8


def test_extent_must_be_positive():
    with pytest.raises(ValueError):
        measure_fragmentation(_table(8, []), extent_pages=0)


def test_default_extent_is_sixteen():
    assert DEFAULT_EXTENT_PAGES == 16


def test_stats_record_tracks_mean_peak_min():
    stats = FragmentationStats()
    stats.record(
        FragmentationSample(
            free_frames=10,
            free_runs=1,
            largest_free_extent=10,
            unusable_free_index=0.2,
        )
    )
    stats.record(
        FragmentationSample(
            free_frames=10,
            free_runs=5,
            largest_free_extent=4,
            unusable_free_index=0.8,
        )
    )
    assert stats.samples == 2
    assert stats.peak_unusable_free_index == 0.8
    assert stats.mean_unusable_free_index == pytest.approx(0.5)
    assert stats.min_largest_free_extent == 4
    assert stats.last.free_runs == 5


def test_stats_snapshot_clamps_unset_min():
    snap = FragmentationStats().snapshot()
    assert snap["samples"] == 0
    assert snap["min_largest_free_extent"] == 0
    assert snap["last"]["free_frames"] == 0
