"""Golden byte-identity: heap and calendar backends must agree exactly.

The calendar-queue scheduler replaced the binary heap on the promise that
event ordering — and therefore every serialized experiment result — is
byte-identical.  This suite runs the committed benchmark cases (the same
spec lists behind the figure/table grids at their committed scales) under
``REPRO_ENGINE=heap`` and ``REPRO_ENGINE=calendar`` and compares the
canonical serializations string-for-string.  CI runs this as its own job;
any divergence between the backends fails here before it can silently
change a figure.

``REPRO_ENGINE`` is read at ``Engine`` construction time, so flipping the
environment between runs inside one process is sufficient — no subprocess
isolation is needed.
"""

import pytest

from repro import bench
from repro.machine import run_experiment

#: Every committed spec-list case; ``grid_wide`` subsumes ``grid_tiny``
#: but both stay listed so a failure names the case the figures use.
CASES = sorted(bench.BENCH_CASES)


def _serialized_suite(case: str, backend: str, monkeypatch) -> list:
    monkeypatch.setenv("REPRO_ENGINE", backend)
    return [
        bench.serialize_result(run_experiment(spec))
        for spec in bench.BENCH_CASES[case]()
    ]


@pytest.mark.parametrize("case", CASES)
def test_backends_byte_identical(case, monkeypatch):
    heap = _serialized_suite(case, "heap", monkeypatch)
    calendar = _serialized_suite(case, "calendar", monkeypatch)
    assert len(heap) == len(calendar)
    for index, (h, c) in enumerate(zip(heap, calendar)):
        assert h == c, (
            f"{case}[{index}]: serialized result differs between the heap "
            "and calendar backends"
        )


def test_engine_churn_steps_backend_independent(monkeypatch):
    """The scheduler micro-stress dispatches the same events in the same
    simulated time under both backends."""
    monkeypatch.setenv("REPRO_ENGINE", "heap")
    heap_engine = bench._churn_engine()
    monkeypatch.setenv("REPRO_ENGINE", "calendar")
    cal_engine = bench._churn_engine()
    assert heap_engine.steps == cal_engine.steps
    assert heap_engine.now == cal_engine.now
