"""The resilient sweep orchestrator: journal, shards, chaos, kill/resume."""

import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.experiments import sweep as sweep_mod
from repro.experiments.sweep import (
    SweepAborted,
    SweepChaos,
    SweepError,
    SweepOptions,
    backoff_delay,
    collect_report,
    expand_grid,
    run_sweep,
    specs_from_meta,
    sweep_spec_key,
    sweep_status,
    synthetic_specs,
)
from repro.ioutil import append_journal_line, read_journal
from repro.machine import ExperimentSpec, SpecError


def _quick(jobs=1, **kwargs):
    """Options tuned for tests: no fsync stalls, tight heartbeats."""
    kwargs.setdefault("heartbeat_s", 0.05)
    kwargs.setdefault("fsync_journal", False)
    kwargs.setdefault("backoff_base_s", 0.0)
    return SweepOptions(jobs=jobs, **kwargs)


# -- journal primitives ------------------------------------------------------


class TestJournal:
    def test_round_trip(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        records = [{"event": "spec", "index": i} for i in range(5)]
        for record in records:
            append_journal_line(journal, record, fsync=False)
        assert read_journal(journal) == records

    def test_missing_journal_reads_empty(self, tmp_path):
        assert read_journal(tmp_path / "absent.jsonl") == []

    def test_torn_tail_is_dropped(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        append_journal_line(journal, {"index": 0}, fsync=False)
        append_journal_line(journal, {"index": 1}, fsync=False)
        with journal.open("ab") as handle:
            handle.write(b'{"index": 2, "status": "o')  # crash mid-append
        assert read_journal(journal) == [{"index": 0}, {"index": 1}]

    def test_mid_file_corruption_raises(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        journal.write_bytes(b'{"index": 0}\ngarbage\n{"index": 2}\n')
        with pytest.raises(ValueError, match="line 2"):
            read_journal(journal)

    def test_non_object_line_raises(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        journal.write_bytes(b'{"index": 0}\n[1, 2]\n{"index": 2}\n')
        with pytest.raises(ValueError):
            read_journal(journal)


# -- backoff -----------------------------------------------------------------


class TestBackoff:
    def test_deterministic(self):
        assert backoff_delay("k", 2, 0.25) == backoff_delay("k", 2, 0.25)

    def test_exponential_envelope(self):
        # base * 2^(n-1) <= delay < base * 2^n (jitter in [0, 1)).
        for attempt in (1, 2, 3, 4):
            delay = backoff_delay("key", attempt, 0.25)
            floor = 0.25 * 2 ** (attempt - 1)
            assert floor <= delay < 2 * floor

    def test_jitter_desynchronizes_keys(self):
        delays = {backoff_delay(f"key-{i}", 1, 1.0) for i in range(8)}
        assert len(delays) == 8


# -- synthetic specs and grid expansion --------------------------------------


class TestSpecs:
    def test_synthetic_fail_every(self):
        specs = synthetic_specs(10, fail_every=3)
        assert [s.fail for s in specs] == [
            False, False, True, False, False, True, False, False, True, False,
        ]
        assert len({sweep_spec_key(s) for s in specs}) == 10

    def test_synthetic_rejects_empty(self):
        with pytest.raises(SweepError):
            synthetic_specs(0)

    def test_expand_grid_cross_product(self):
        specs = expand_grid(
            {
                "scale": "tiny",
                "axes": {"benchmark": ["MATVEC", "EMBAR"], "version": ["B", "R"]},
            }
        )
        assert len(specs) == 4
        assert all(isinstance(s, ExperimentSpec) for s in specs)
        # Fixed axis order: benchmark varies slowest.
        assert [s.processes[0].workload for s in specs] == [
            "MATVEC", "MATVEC", "EMBAR", "EMBAR",
        ]

    def test_expand_grid_is_deterministic(self):
        grid = {
            "scale": "tiny",
            "faults": {"disk": {"io_error_prob": 0.01}},
            "axes": {"benchmark": ["MATVEC"], "fault_seed": [1, 2]},
        }
        first = [sweep_spec_key(s) for s in expand_grid(dict(grid))]
        second = [sweep_spec_key(s) for s in expand_grid(dict(grid))]
        assert first == second
        assert len(set(first)) == 2  # the seed axis discriminates

    def test_expand_grid_rejects_unknown_keys(self):
        with pytest.raises(SpecError, match="unknown sweep grid keys"):
            expand_grid({"benchmark": ["MATVEC"]})
        with pytest.raises(SpecError, match="unknown sweep grid axes"):
            expand_grid({"axes": {"benchmark": ["MATVEC"], "bogus": [1]}})
        with pytest.raises(SpecError, match="'benchmark' axis"):
            expand_grid({"axes": {}})


# -- inline sweeps -----------------------------------------------------------


class TestInlineSweep:
    def test_complete_run_and_digest(self, tmp_path):
        specs = synthetic_specs(12, fail_every=5)
        report = run_sweep(specs, tmp_path / "a", options=_quick())
        counts = report.counts()
        assert counts == {"total": 12, "ok": 10, "failure": 2, "quarantined": 0}
        # Same specs, fresh state dir: byte-identical merged digest.
        again = run_sweep(specs, tmp_path / "b", options=_quick())
        assert again.digest == report.digest

    def test_failures_are_never_cached(self, tmp_path):
        specs = synthetic_specs(6, fail_every=2)
        run_sweep(specs, tmp_path / "s", options=_quick())
        cached = {p.stem for p in (tmp_path / "s" / "cache").rglob("*.pkl")}
        for spec in specs:
            key = sweep_spec_key(spec)
            assert (key in cached) == (not spec.fail)

    def test_resume_skips_completed_work(self, tmp_path, monkeypatch):
        specs = synthetic_specs(8)
        first = run_sweep(specs, tmp_path / "s", options=_quick())
        # Everything is journaled: a resume must not execute a single cell.
        def forbidden(spec, timeout_s):
            raise AssertionError("resume re-ran a completed spec")

        monkeypatch.setattr(sweep_mod, "_execute_any", forbidden)
        resumed = run_sweep(specs, tmp_path / "s", options=_quick(), resume=True)
        assert resumed.digest == first.digest

    def test_resume_adopts_unjournaled_cached_results(self, tmp_path, monkeypatch):
        specs = synthetic_specs(4)
        first = run_sweep(specs, tmp_path / "s", options=_quick())
        journal = tmp_path / "s" / "journal.jsonl"
        # Drop the final journal line: the classic crash window — result
        # cached, outcome not yet journaled.
        lines = journal.read_bytes().splitlines(keepends=True)
        journal.write_bytes(b"".join(lines[:-1]))

        def forbidden(spec, timeout_s):
            raise AssertionError("adoptable cached result was re-run")

        monkeypatch.setattr(sweep_mod, "_execute_any", forbidden)
        resumed = run_sweep(specs, tmp_path / "s", options=_quick(), resume=True)
        assert resumed.digest == first.digest
        adopted = [o for o in resumed.outcomes if o.attempts == 0]
        assert len(adopted) == 1

    def test_resume_tolerates_torn_journal_tail(self, tmp_path):
        specs = synthetic_specs(5)
        first = run_sweep(specs, tmp_path / "s", options=_quick())
        with (tmp_path / "s" / "journal.jsonl").open("ab") as handle:
            handle.write(b'{"event": "spec", "ind')  # SIGKILL mid-append
        resumed = run_sweep(specs, tmp_path / "s", options=_quick(), resume=True)
        assert resumed.digest == first.digest

    def test_retries_and_attempt_accounting(self, tmp_path):
        specs = synthetic_specs(3, fail_every=3)
        report = run_sweep(
            specs, tmp_path / "s", options=_quick(retries=2)
        )
        failed = report.failures
        assert len(failed) == 1
        assert failed[0].attempts == 3  # 1 + 2 retries, then a terminal slot
        assert failed[0].status == "failure"

    def test_refuses_wrong_checkpoint(self, tmp_path):
        run_sweep(synthetic_specs(3), tmp_path / "s", options=_quick())
        with pytest.raises(SweepError, match="different sweep"):
            run_sweep(
                synthetic_specs(4), tmp_path / "s", options=_quick(), resume=True
            )

    def test_refuses_rerun_without_resume(self, tmp_path):
        specs = synthetic_specs(3)
        run_sweep(specs, tmp_path / "s", options=_quick())
        with pytest.raises(SweepError, match="resume"):
            run_sweep(specs, tmp_path / "s", options=_quick())

    def test_resume_requires_checkpoint(self, tmp_path):
        with pytest.raises(SweepError, match="no sweep checkpoint"):
            run_sweep(
                synthetic_specs(3), tmp_path / "void", options=_quick(), resume=True
            )

    def test_max_failures_aborts_then_resumes(self, tmp_path):
        specs = synthetic_specs(10, fail_every=1)  # every spec fails
        with pytest.raises(SweepAborted):
            run_sweep(specs, tmp_path / "s", options=_quick(max_failures=2))
        status = sweep_status(tmp_path / "s")
        assert status["aborted"] is True
        assert status["done"] < 10
        # Raising the budget resumes to completion; failures stay failures.
        report = run_sweep(specs, tmp_path / "s", options=_quick(), resume=True)
        assert report.counts()["failure"] == 10
        baseline = run_sweep(specs, tmp_path / "b", options=_quick())
        assert report.digest == baseline.digest

    def test_events_log_records_lifecycle(self, tmp_path):
        run_sweep(synthetic_specs(3), tmp_path / "s", options=_quick())
        kinds = [e["kind"] for e in read_journal(tmp_path / "s" / "events.jsonl")]
        assert kinds[0] == "sweep.start"
        assert kinds[-1] == "sweep.done"

    def test_status_and_collect(self, tmp_path):
        specs = synthetic_specs(6, fail_every=3)
        report = run_sweep(specs, tmp_path / "s", options=_quick())
        status = sweep_status(tmp_path / "s")
        assert status["total"] == 6
        assert status["pending"] == 0
        assert status["ok"] == 4 and status["failure"] == 2
        collected = collect_report(specs, tmp_path / "s")
        assert collected.digest == report.digest

    def test_specs_from_meta_round_trip(self, tmp_path):
        specs = synthetic_specs(5, fail_every=2)
        run_sweep(
            specs,
            tmp_path / "s",
            options=_quick(),
            describe={"synthetic": {"count": 5, "fail_every": 2, "sleep_s": 0.0}},
        )
        rebuilt = specs_from_meta(tmp_path / "s")
        assert [sweep_spec_key(s) for s in rebuilt] == [
            sweep_spec_key(s) for s in specs
        ]

    def test_specs_from_meta_requires_description(self, tmp_path):
        run_sweep(synthetic_specs(2), tmp_path / "s", options=_quick())
        with pytest.raises(SweepError, match="does not describe"):
            specs_from_meta(tmp_path / "s")


# -- sharded execution and chaos ---------------------------------------------


class TestShardedSweep:
    def test_sharded_matches_inline_digest(self, tmp_path):
        specs = synthetic_specs(24, fail_every=7)
        inline = run_sweep(specs, tmp_path / "a", options=_quick())
        sharded = run_sweep(specs, tmp_path / "b", options=_quick(jobs=3))
        assert sharded.digest == inline.digest
        # Work actually spread across shard namespaces.
        shards = {o.shard for o in sharded.ok}
        assert len(shards) > 1

    def test_worker_crash_requeues_once_then_recovers(self, tmp_path):
        specs = synthetic_specs(8)
        flaky = sweep_spec_key(specs[3])
        chaos = SweepChaos(crash_keys=(flaky,), max_attempt=1)  # flake, not poison
        report = run_sweep(
            specs, tmp_path / "s", options=_quick(jobs=2, chaos=chaos)
        )
        assert report.counts()["ok"] == 8
        events = read_journal(tmp_path / "s" / "events.jsonl")
        requeues = [e for e in events if e["kind"] == "sweep.requeue"]
        assert any(e["reason"] == "crash" for e in requeues)

    def test_poison_crash_is_quarantined(self, tmp_path):
        specs = synthetic_specs(6)
        poison = sweep_spec_key(specs[2])
        chaos = SweepChaos(crash_keys=(poison,))  # crashes on every attempt
        report = run_sweep(
            specs, tmp_path / "s", options=_quick(jobs=2, chaos=chaos)
        )
        counts = report.counts()
        assert counts["ok"] == 5 and counts["quarantined"] == 1
        bad = [o for o in report.outcomes if o.status == "quarantined"][0]
        assert bad.key == poison and bad.kind == "crash"
        # The poison spec must not have left a cached "result" anywhere.
        cached = {p.stem for p in (tmp_path / "s" / "cache").rglob("*.pkl")}
        assert poison not in cached
        events = read_journal(tmp_path / "s" / "events.jsonl")
        assert sum(1 for e in events if e["kind"] == "sweep.requeue") == 1
        assert sum(1 for e in events if e["kind"] == "sweep.quarantine") == 1

    def test_hung_worker_is_shot_and_quarantined(self, tmp_path):
        specs = synthetic_specs(6)
        wedged = sweep_spec_key(specs[1])
        chaos = SweepChaos(hang_keys=(wedged,))  # heartbeat silenced + sleep
        report = run_sweep(
            specs,
            tmp_path / "s",
            options=_quick(jobs=2, hang_timeout_s=0.4, chaos=chaos),
        )
        counts = report.counts()
        assert counts["ok"] == 5 and counts["quarantined"] == 1
        bad = [o for o in report.outcomes if o.status == "quarantined"][0]
        assert bad.key == wedged and bad.kind == "hang"

    def test_hang_flake_recovers_on_requeue(self, tmp_path):
        specs = synthetic_specs(4)
        wedged = sweep_spec_key(specs[0])
        chaos = SweepChaos(hang_keys=(wedged,), max_attempt=1)
        report = run_sweep(
            specs,
            tmp_path / "s",
            options=_quick(jobs=2, hang_timeout_s=0.4, chaos=chaos),
        )
        assert report.counts()["ok"] == 4


# -- kill/resume equivalence -------------------------------------------------


_KILL_SCRIPT = textwrap.dedent(
    """
    import sys
    from repro.experiments.sweep import SweepOptions, run_sweep, synthetic_specs

    state_dir = sys.argv[1]
    specs = synthetic_specs(30, fail_every=11, sleep_s=0.15)
    run_sweep(
        specs,
        state_dir,
        options=SweepOptions(jobs=2, heartbeat_s=0.05),
    )
    """
)


class TestKillResume:
    def test_sigkill_then_resume_is_byte_identical(self, tmp_path):
        """SIGKILL the orchestrator mid-sweep; resume must converge on the
        exact merged digest of an uninterrupted run."""
        specs = synthetic_specs(30, fail_every=11, sleep_s=0.15)
        state = tmp_path / "interrupted"
        from pathlib import Path

        env = dict(os.environ)
        src_root = str(Path(sweep_mod.__file__).resolve().parents[2])
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_root, env.get("PYTHONPATH", "")) if p
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", _KILL_SCRIPT, str(state)], env=env
        )
        journal = state / "journal.jsonl"
        deadline = time.monotonic() + 30
        # Kill once real progress is journaled but well before completion.
        while time.monotonic() < deadline:
            if journal.exists() and len(read_journal(journal)) >= 4:
                break
            if proc.poll() is not None:
                pytest.fail("sweep finished before it could be killed")
            time.sleep(0.02)
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10)
        done_at_kill = len(read_journal(journal))
        assert 0 < done_at_kill < 30

        resumed = run_sweep(
            specs, state, options=_quick(jobs=2), resume=True
        )
        clean = run_sweep(specs, tmp_path / "clean", options=_quick())
        assert resumed.digest == clean.digest
        assert resumed.counts() == clean.counts()
        # No journaled work was re-executed: the journal only grew.
        assert len(resumed.outcomes) == 30


# -- options validation ------------------------------------------------------


class TestOptions:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"jobs": 0},
            {"retries": -1},
            {"timeout_s": 0},
            {"heartbeat_s": 0},
            {"hang_timeout_s": 0},
            {"shard_slo_s": 0},
            {"max_failures": -1},
            {"backoff_base_s": -0.1},
        ],
    )
    def test_rejects_bad_options(self, kwargs, tmp_path):
        with pytest.raises(SweepError):
            run_sweep(
                synthetic_specs(1), tmp_path / "s", options=SweepOptions(**kwargs)
            )

    def test_rejects_empty_sweep(self, tmp_path):
        with pytest.raises(SweepError):
            run_sweep([], tmp_path / "s", options=_quick())


# -- scale: many specs, bounded memory ---------------------------------------


def test_thousand_spec_sweep_completes_quickly(tmp_path):
    """The journal/cache path must stay O(1) per spec: a four-digit sweep
    of no-op cells is seconds, not minutes (the CI job runs 10k)."""
    specs = synthetic_specs(1000, fail_every=97)
    report = run_sweep(specs, tmp_path / "s", options=_quick())
    counts = report.counts()
    assert counts["total"] == 1000
    assert counts["failure"] == 1000 // 97
    status = sweep_status(tmp_path / "s")
    assert status["pending"] == 0
