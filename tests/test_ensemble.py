"""Monte Carlo fault ensembles: seed streams, bootstrap CIs, end-to-end."""

import pytest

from repro.experiments.ensemble import (
    EnsembleSpec,
    bootstrap_ci,
    ensemble_metrics,
    format_ensemble_table,
    run_ensemble,
)
from repro.experiments.sweep import SweepOptions
from repro.faults import FaultPlan, FaultPlanError, seed_stream
from repro.machine import ExperimentSpec, SpecError


def _faulty_spec(scale):
    plan = FaultPlan.from_dict({"disk": {"io_error_prob": 0.02}})
    return ExperimentSpec.multiprogram(scale, "MATVEC", "R").with_faults(plan)


class TestSeedStream:
    def test_deterministic_and_distinct(self):
        first = seed_stream(7, 16)
        assert first == seed_stream(7, 16)
        assert len(set(first)) == 16

    def test_prefix_property(self):
        # Growing an ensemble keeps the existing members' seeds.
        assert seed_stream(7, 32)[:8] == seed_stream(7, 8)

    def test_base_seed_discriminates(self):
        assert set(seed_stream(1, 8)).isdisjoint(seed_stream(2, 8))

    def test_fan_out(self):
        plan = FaultPlan.from_dict({"disk": {"io_error_prob": 0.02}})
        plans = plan.fan_out(4, base_seed=9)
        assert [p.seed for p in plans] == list(seed_stream(9, 4))
        assert all(p.disk.io_error_prob == 0.02 for p in plans)

    def test_rejects_bad_count(self):
        with pytest.raises(FaultPlanError):
            seed_stream(0, -1)


class TestBootstrap:
    def test_deterministic_for_fixed_seed(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        first = bootstrap_ci(values, resamples=500, seed=3, label="x")
        assert first == bootstrap_ci(values, resamples=500, seed=3, label="x")

    def test_seed_and_label_discriminate(self):
        # Few resamples so the percentile endpoints expose the stream: the
        # 2.5% index of 25 sorted means is the minimum resampled mean.
        values = [0.93, 2.17, 3.01, 4.44, 5.38, 7.77]
        a = bootstrap_ci(values, resamples=25, seed=3, label="x")
        b = bootstrap_ci(values, resamples=25, seed=4, label="x")
        c = bootstrap_ci(values, resamples=25, seed=3, label="y")
        assert a != b and a != c

    def test_interval_brackets_mean(self):
        values = [10.0, 12.0, 9.0, 11.0, 13.0, 10.5]
        ci = bootstrap_ci(values, resamples=2000, seed=0)
        assert min(values) <= ci["lo"] <= ci["mean"] <= ci["hi"] <= max(values)

    def test_single_value_degenerates(self):
        assert bootstrap_ci([4.2]) == {"mean": 4.2, "lo": 4.2, "hi": 4.2}

    def test_validation(self):
        with pytest.raises(FaultPlanError):
            bootstrap_ci([])
        with pytest.raises(FaultPlanError):
            bootstrap_ci([1.0], alpha=1.5)
        with pytest.raises(FaultPlanError):
            bootstrap_ci([1.0], resamples=0)


class TestEnsembleSpec:
    def test_expand_uses_derived_seeds(self, scale):
        ensemble = EnsembleSpec(base=_faulty_spec(scale), seeds=4, base_seed=5)
        members = ensemble.expand()
        assert [m.faults.seed for m in members] == list(seed_stream(5, 4))
        # Everything but the fault seed is shared.
        assert len({m.processes for m in members}) == 1

    def test_requires_two_seeds(self, scale):
        with pytest.raises(SpecError, match=">= 2 seeds"):
            EnsembleSpec(base=_faulty_spec(scale), seeds=1).expand()

    def test_requires_enabled_faults(self, scale):
        base = ExperimentSpec.multiprogram(scale, "MATVEC", "R")
        with pytest.raises(SpecError, match="no enabled fault plan"):
            EnsembleSpec(base=base, seeds=4).expand()


class TestRunEnsemble:
    def test_end_to_end_deterministic(self, scale, tmp_path):
        ensemble = EnsembleSpec(base=_faulty_spec(scale), seeds=3, base_seed=1)
        first = run_ensemble(
            ensemble, state_dir=tmp_path / "a", resamples=100
        )
        second = run_ensemble(
            ensemble, state_dir=tmp_path / "b", resamples=100
        )
        assert first.members_ok == 3
        assert not first.failed_members
        assert first.sweep.digest == second.sweep.digest
        assert first.metrics == second.metrics
        names = [m.name for m in first.metrics]
        assert "elapsed_s" in names and "hard_faults" in names
        for metric in first.metrics:
            assert metric.n == 3
            assert metric.lo <= metric.mean <= metric.hi

    def test_resume_reuses_members(self, scale, tmp_path):
        ensemble = EnsembleSpec(base=_faulty_spec(scale), seeds=3, base_seed=1)
        first = run_ensemble(ensemble, state_dir=tmp_path / "s", resamples=100)
        resumed = run_ensemble(
            ensemble, state_dir=tmp_path / "s", resume=True, resamples=100
        )
        assert resumed.metrics == first.metrics
        # Resumed members came from the checkpoint, not fresh simulation.
        assert all(o.attempts <= 1 for o in resumed.sweep.outcomes)

    def test_all_members_failing_is_an_error(self, scale, tmp_path):
        ensemble = EnsembleSpec(base=_faulty_spec(scale), seeds=2, base_seed=1)
        with pytest.raises(SpecError, match="members succeeded"):
            run_ensemble(
                ensemble,
                state_dir=tmp_path / "s",
                options=SweepOptions(timeout_s=1e-4),
                resamples=50,
            )

    def test_table_renders(self, scale, tmp_path):
        ensemble = EnsembleSpec(base=_faulty_spec(scale), seeds=2, base_seed=1)
        report = run_ensemble(ensemble, state_dir=tmp_path / "s", resamples=50)
        table = format_ensemble_table(report, alpha=0.1)
        assert "ci90_lo" in table
        assert "unusable_free_index" in table


def test_ensemble_metrics_match_manual_bootstrap(scale, tmp_path):
    ensemble = EnsembleSpec(base=_faulty_spec(scale), seeds=2, base_seed=3)
    report = run_ensemble(ensemble, state_dir=tmp_path / "s", resamples=64)
    recomputed = ensemble_metrics(
        _collect_results(tmp_path / "s", report), base_seed=3, resamples=64
    )
    assert recomputed == report.metrics


def _collect_results(state_dir, report):
    from repro.experiments.sweep import _State, _find_cached

    state = _State(
        root=state_dir,
        journal=state_dir / "journal.jsonl",
        events=state_dir / "events.jsonl",
        cache=state_dir / "cache",
    )
    results = []
    for outcome in report.sweep.ok:
        found = _find_cached(state, outcome.key)
        assert found is not None
        results.append(found[1])
    return results
