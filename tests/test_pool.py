"""The warm execution pool: wire fidelity, reuse hygiene, crash containment.

Byte-identity is the bar throughout: anything the pool touches — codec,
worker reuse, env knobs, deadlines, crash requeues — must leave results
indistinguishable from the inline path.
"""

import signal
import time

import pytest

from repro.bench import serialize_result
from repro.experiments import pool as pool_mod
from repro.experiments import wire
from repro.experiments.pool import (
    EMPTY_POOL_CHAOS,
    PoolChaos,
    WarmPool,
    item_key,
)
from repro.experiments.runner import (
    ExperimentFailure,
    _SpecTimeout,
    call_with_deadline,
    run_specs,
    spec_key,
)
from repro.experiments.sweep import (
    SweepOptions,
    SyntheticResult,
    SyntheticSpec,
    run_sweep,
    synthetic_specs,
)
from repro.machine import ExperimentSpec


def _spec(scale, version="R"):
    return ExperimentSpec.multiprogram(scale, "MATVEC", version)


@pytest.fixture
def warm_pool():
    """A private single-worker pool (deterministic worker assignment)."""
    pool = WarmPool(1)
    try:
        yield pool
    finally:
        pool.shutdown()


# -- the wire codec ----------------------------------------------------------


class TestWire:
    def test_spec_round_trip_is_lossless(self, scale):
        spec = _spec(scale)
        back = wire.decode(wire.encode(spec))
        assert back == spec
        assert repr(back) == repr(spec)
        assert spec_key(back) == spec_key(spec)

    def test_result_round_trip_serializes_identically(self, scale):
        result = run_specs([_spec(scale)])[0]
        back = wire.decode(wire.encode(result))
        assert serialize_result(back) == serialize_result(result)

    def test_container_fidelity(self):
        value = {
            "tuple": (1, 2.5, None, "x"),
            "nested": [True, (0.1, (2,))],
            "empty": (),
        }
        back = wire.decode(wire.encode(value))
        assert back == value
        assert isinstance(back["tuple"], tuple)
        assert isinstance(back["nested"][1], tuple)
        assert isinstance(back["tuple"][1], float)

    def test_marker_key_collision_is_rejected(self):
        with pytest.raises(wire.WireError):
            wire.encode({"!": "sneaky"})

    def test_non_string_keys_are_rejected(self):
        with pytest.raises(wire.WireError):
            wire.encode({1: "a"})

    def test_unknown_types_are_rejected(self):
        with pytest.raises(wire.WireError):
            wire.encode(object())


# -- determinism on reused workers -------------------------------------------


class TestWarmReuse:
    def test_same_spec_twice_on_same_worker_is_byte_identical(
        self, scale, warm_pool
    ):
        spec = _spec(scale)
        first = warm_pool.run_one(spec)
        second = warm_pool.run_one(spec)
        assert serialize_result(first) == serialize_result(second)
        telemetry = warm_pool.telemetry()
        assert telemetry["workers_spawned"] == 1
        assert telemetry["warm_dispatches"] >= 1
        # The second run reuses the worker's workload template.
        assert telemetry["snapshot_hits"] >= 1

    def test_mixed_grid_matches_inline(self, scale, warm_pool):
        specs = [_spec(scale, v) for v in "RB"]
        inline = [serialize_result(r) for r in run_specs(specs, jobs=1)]
        pooled = [serialize_result(r) for r in warm_pool.run(specs)]
        assert pooled == inline

    def test_pool_on_off_grids_are_byte_identical(self, scale, monkeypatch):
        specs = [_spec(scale, v) for v in "OR"]
        monkeypatch.setenv("REPRO_POOL", "0")
        assert not pool_mod.pool_enabled()
        legacy = [serialize_result(r) for r in run_specs(specs, jobs=2)]
        monkeypatch.delenv("REPRO_POOL")
        assert pool_mod.pool_enabled()
        pooled = [serialize_result(r) for r in run_specs(specs, jobs=2)]
        assert pooled == legacy

    def test_batched_sweep_matches_inline_digest(self, tmp_path):
        specs = synthetic_specs(60, fail_every=13)
        inline = run_sweep(
            specs, tmp_path / "inline", options=SweepOptions(fsync_journal=False)
        )
        sharded = run_sweep(
            specs,
            tmp_path / "sharded",
            options=SweepOptions(
                jobs=2, batch_size=4, heartbeat_s=0.1, fsync_journal=False
            ),
        )
        assert sharded.digest == inline.digest
        assert sharded.counts() == inline.counts()


# -- env-knob hygiene across dispatches --------------------------------------


def test_env_knob_flip_between_specs_on_one_worker():
    """A worker must re-apply the dispatcher's knob profile per item:
    before the fix, the first spec's lane leaked into every later spec
    dispatched to that (reused) worker."""
    ctx = pool_mod._mp_context()
    parent, child = ctx.Pipe()
    process = ctx.Process(
        target=pool_mod.worker_entry,
        args=(child, "w0", None, EMPTY_POOL_CHAOS),
    )
    process.start()
    child.close()
    try:
        spec = SyntheticSpec(index=0)
        item = {
            "index": 0,
            "attempt": 1,
            "key": item_key(spec),
            "spec": spec,
            "timeout_s": None,
            "retries": 0,
            "env": {"REPRO_FAST_LANE": None},
        }
        pool_mod.send_frame(parent, {"frame": "batch", "items": [item]})
        default_lane = pool_mod.recv_frame(parent)["lane"]
        assert default_lane in ("numpy", "pure")

        item = dict(item, env={"REPRO_FAST_LANE": "0"})
        pool_mod.send_frame(parent, {"frame": "batch", "items": [item]})
        assert pool_mod.recv_frame(parent)["lane"] == "off"

        # Flip back: the override must not stick to the worker.
        item = dict(item, env={"REPRO_FAST_LANE": None})
        pool_mod.send_frame(parent, {"frame": "batch", "items": [item]})
        assert pool_mod.recv_frame(parent)["lane"] == default_lane

        pool_mod.send_frame(parent, {"frame": "stop"})
    finally:
        process.join(timeout=10)
        if process.is_alive():
            process.kill()
            process.join(timeout=10)


def test_capture_env_covers_only_live_knobs(monkeypatch):
    monkeypatch.setenv("REPRO_FAST_LANE", "0")
    assert pool_mod.capture_env() == {"REPRO_FAST_LANE": "0"}
    monkeypatch.delenv("REPRO_FAST_LANE")
    assert pool_mod.capture_env() == {"REPRO_FAST_LANE": None}


# -- deadlines on persistent workers -----------------------------------------


class TestDeadlineReuse:
    def test_timeout_then_success_on_the_same_worker(self, warm_pool):
        slow = SyntheticSpec(index=0, sleep_s=30.0)
        failure = warm_pool.run_one(slow, timeout_s=0.1)
        assert isinstance(failure, ExperimentFailure)
        assert failure.kind == "timeout"
        # The same worker (workers=1) must be clean for the next spec: no
        # armed itimer, no leaked handler.
        ok = warm_pool.run_one(SyntheticSpec(index=1))
        assert isinstance(ok, SyntheticResult)
        assert warm_pool.telemetry()["workers_spawned"] == 1

    def test_call_with_deadline_restores_handler_after_timeout(self):
        def handler(signum, frame):  # pragma: no cover - must never fire
            raise AssertionError("sentinel SIGALRM handler invoked")

        previous = signal.signal(signal.SIGALRM, handler)
        try:
            with pytest.raises(_SpecTimeout):
                call_with_deadline(lambda: time.sleep(30), 0.05)
            assert signal.getsignal(signal.SIGALRM) is handler
            assert signal.setitimer(signal.ITIMER_REAL, 0.0) == (0.0, 0.0)
            # And again: the restore path must be reusable, not one-shot.
            assert call_with_deadline(lambda: 42, 5.0) == 42
            assert signal.getsignal(signal.SIGALRM) is handler
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)


# -- crash containment -------------------------------------------------------


class TestCrashContainment:
    def test_flaky_crash_requeues_and_converges(self):
        specs = [SyntheticSpec(index=i) for i in range(6)]
        chaos = PoolChaos(crash_keys=(item_key(specs[2]),), max_attempt=1)
        pool = WarmPool(2, chaos=chaos)
        try:
            outcomes = pool.run(specs, batch_size=3)
            assert all(isinstance(o, SyntheticResult) for o in outcomes)
            assert [o.index for o in outcomes] == list(range(6))
            assert pool.telemetry()["crashes"] >= 1
        finally:
            pool.shutdown()

    def test_poison_spec_fails_alone_batchmates_survive(self):
        specs = [SyntheticSpec(index=i) for i in range(6)]
        chaos = PoolChaos(crash_keys=(item_key(specs[2]),))  # crashes forever
        pool = WarmPool(2, chaos=chaos)
        try:
            outcomes = pool.run(specs, batch_size=3)
            poisoned = outcomes[2]
            assert isinstance(poisoned, ExperimentFailure)
            assert poisoned.kind == "crash"
            rest = outcomes[:2] + outcomes[3:]
            assert all(isinstance(o, SyntheticResult) for o in rest)
        finally:
            pool.shutdown()

    def test_crashed_results_never_rerun_finished_items(self):
        # Crash on the LAST item of a batch: the first two results of
        # that batch are already home and must not be re-executed.
        specs = [SyntheticSpec(index=i) for i in range(3)]
        chaos = PoolChaos(crash_keys=(item_key(specs[2]),), max_attempt=1)
        pool = WarmPool(1, chaos=chaos)
        try:
            outcomes = pool.run(specs, batch_size=3)
            assert all(isinstance(o, SyntheticResult) for o in outcomes)
            telemetry = pool.telemetry()
            # Items 0 and 1 complete once on the first pass; only the
            # suspect re-runs. A naive requeue would re-execute all 3.
            assert telemetry["specs_done"] == 3
        finally:
            pool.shutdown()


def test_worker_dies_on_sigterm_despite_inherited_handler():
    """``repro serve`` installs a SIGTERM handler that only sets an event.
    A forked worker inheriting it would shrug off ``terminate()`` and wedge
    the parent's exit-time join — workers must reset to SIG_DFL."""
    previous = signal.signal(signal.SIGTERM, lambda *_args: None)
    try:
        pool = WarmPool(1)
        try:
            # Running a spec proves the worker reached its loop (and so has
            # already restored the default disposition).
            pool.run([SyntheticSpec(index=0)])
            worker = pool._idle[0]
            worker.process.terminate()
            worker.process.join(timeout=5.0)
            assert not worker.process.is_alive()
        finally:
            pool.shutdown()
    finally:
        signal.signal(signal.SIGTERM, previous)


# -- knob and sizing edges ---------------------------------------------------


def test_pool_enabled_values(monkeypatch):
    for value in ("0", "off", "False", "NO"):
        monkeypatch.setenv("REPRO_POOL", value)
        assert not pool_mod.pool_enabled()
    for value in ("1", "on", ""):
        monkeypatch.setenv("REPRO_POOL", value)
        assert pool_mod.pool_enabled()
    monkeypatch.delenv("REPRO_POOL")
    assert pool_mod.pool_enabled()


def test_rejects_nonpositive_workers():
    with pytest.raises(ValueError):
        WarmPool(0)


def test_empty_run_is_a_noop(warm_pool):
    assert warm_pool.run([]) == []
    assert warm_pool.telemetry()["dispatches"] == 0
