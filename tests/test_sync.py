"""Unit tests for locks, resources, and stores."""

import pytest

from repro.sim.sync import Lock, Resource, Store


class TestLock:
    def test_uncontended_acquire_is_immediate(self, engine):
        lock = Lock(engine)

        def proc():
            yield lock.acquire()
            held = lock.locked
            lock.release()
            return held

        assert engine.run_process(proc()) is True

    def test_fifo_ordering(self, engine):
        lock = Lock(engine)
        order = []

        def holder():
            yield lock.acquire("holder")
            yield engine.timeout(5.0)
            lock.release()

        def contender(name, start):
            yield engine.timeout(start)
            yield lock.acquire(name)
            order.append(name)
            lock.release()

        engine.process(holder())
        engine.process(contender("first", 1.0))
        engine.process(contender("second", 2.0))
        engine.run()
        assert order == ["first", "second"]

    def test_release_unheld_raises(self, engine):
        with pytest.raises(Exception):
            Lock(engine).release()

    def test_wait_time_accounting(self, engine):
        lock = Lock(engine)

        def holder():
            yield lock.acquire()
            yield engine.timeout(4.0)
            lock.release()

        def waiter():
            yield engine.timeout(1.0)
            yield lock.acquire()
            lock.release()

        engine.process(holder())
        engine.process(waiter())
        engine.run()
        assert lock.total_wait_time == pytest.approx(3.0)
        assert lock.contended_acquisitions == 1
        assert lock.acquisitions == 2

    def test_hold_time_accounting(self, engine):
        lock = Lock(engine)

        def proc():
            yield lock.acquire()
            yield engine.timeout(2.0)
            lock.release()

        engine.run_process(proc())
        assert lock.total_hold_time == pytest.approx(2.0)

    def test_queue_length(self, engine):
        lock = Lock(engine)

        def holder():
            yield lock.acquire()
            yield engine.timeout(10.0)
            lock.release()

        def waiter():
            yield engine.timeout(1.0)
            yield lock.acquire()
            lock.release()

        engine.process(holder())
        engine.process(waiter())
        engine.run(until=2.0)
        assert lock.queue_length == 1


class TestResource:
    def test_capacity_must_be_positive(self, engine):
        with pytest.raises(Exception):
            Resource(engine, 0)

    def test_acquire_up_to_capacity(self, engine):
        resource = Resource(engine, 2)

        def proc():
            yield resource.acquire()
            yield resource.acquire()
            return resource.available

        assert engine.run_process(proc()) == 0

    def test_blocks_beyond_capacity(self, engine):
        resource = Resource(engine, 1)
        progress = []

        def first():
            yield resource.acquire()
            yield engine.timeout(5.0)
            resource.release()

        def second():
            yield engine.timeout(1.0)
            yield resource.acquire()
            progress.append(engine.now)
            resource.release()

        engine.process(first())
        engine.process(second())
        engine.run()
        assert progress == [5.0]

    def test_release_idle_raises(self, engine):
        with pytest.raises(Exception):
            Resource(engine, 1).release()

    def test_wait_time_tracked(self, engine):
        resource = Resource(engine, 1)

        def first():
            yield resource.acquire()
            yield engine.timeout(3.0)
            resource.release()

        def second():
            yield resource.acquire()
            resource.release()

        engine.process(first())
        engine.process(second())
        engine.run()
        assert resource.total_wait_time == pytest.approx(3.0)


class TestStore:
    def test_put_then_get(self, engine):
        store = Store(engine)
        store.put("item")

        def proc():
            value = yield store.get()
            return value

        assert engine.run_process(proc()) == "item"

    def test_get_blocks_until_put(self, engine):
        store = Store(engine)
        arrival = []

        def consumer():
            value = yield store.get()
            arrival.append((engine.now, value))

        def producer():
            yield engine.timeout(3.0)
            store.put("late")

        engine.process(consumer())
        engine.process(producer())
        engine.run()
        assert arrival == [(3.0, "late")]

    def test_fifo_delivery(self, engine):
        store = Store(engine)
        for index in range(3):
            store.put(index)
        received = []

        def consumer():
            for _ in range(3):
                value = yield store.get()
                received.append(value)

        engine.run_process(consumer())
        assert received == [0, 1, 2]

    def test_len_and_max_depth(self, engine):
        store = Store(engine)
        store.put(1)
        store.put(2)
        assert len(store) == 2
        assert store.max_depth == 2

    def test_drain(self, engine):
        store = Store(engine)
        store.put("a")
        store.put("b")
        assert store.drain() == ["a", "b"]
        assert len(store) == 0

    def test_counters(self, engine):
        store = Store(engine)
        store.put(1)

        def consumer():
            yield store.get()

        engine.run_process(consumer())
        assert store.puts == 1
        assert store.gets == 1

    def test_waiting_getters_served_in_order(self, engine):
        store = Store(engine)
        received = []

        def consumer(name):
            value = yield store.get()
            received.append((name, value))

        engine.process(consumer("first"))
        engine.process(consumer("second"))

        def producer():
            yield engine.timeout(1.0)
            store.put("x")
            store.put("y")

        engine.process(producer())
        engine.run()
        assert received == [("first", "x"), ("second", "y")]
