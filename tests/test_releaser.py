"""Unit tests for the releaser daemon and the PagingDirected PM."""

import pytest

from repro.sim.task import SimTask

from tests.helpers import drive


def touch(kernel, proc, vpn, write=False):
    fault = proc.touch(vpn, write)
    if fault is None:
        return None
    return drive(kernel.engine, kernel.engine.process(fault))


@pytest.fixture
def proc(kernel):
    process = kernel.create_process("app")
    process.aspace.map_segment("a", 100)
    kernel.attach_paging_directed(process)
    return process


@pytest.fixture
def pm(kernel, proc):
    return kernel.registry.modules_for(proc.aspace)[0]


def settle(kernel, seconds=1.0):
    kernel.engine.run(until=kernel.engine.now + seconds)


class TestReleaser:
    def test_processes_queue_in_order(self, kernel, proc):
        for vpn in range(6):
            touch(kernel, proc, vpn)
        kernel.vm.request_release(proc.aspace, [0, 1, 2])
        kernel.vm.request_release(proc.aspace, [3, 4, 5])
        settle(kernel)
        assert kernel.vm.stats.releaser_requests == 2
        assert kernel.vm.stats.releaser_pages_freed == 6
        assert proc.aspace.resident == 0

    def test_skips_absent_pages(self, kernel, proc):
        touch(kernel, proc, 0)
        kernel.vm.request_release(proc.aspace, [0])
        settle(kernel)
        # Freed once; the releaser seeing it again must skip, so force a
        # second item naming a now-absent page via the internal queue.
        kernel.releaser.enqueue(proc.aspace, [0])
        settle(kernel)
        assert kernel.vm.stats.releaser_skipped_absent == 1

    def test_batches_respect_lock_discipline(self, kernel, proc, scale):
        pages = scale.tunables.releaser_lock_batch_pages * 3
        for vpn in range(pages):
            touch(kernel, proc, vpn)
        acquisitions_before = proc.aspace.lock.acquisitions
        kernel.vm.request_release(proc.aspace, list(range(pages)))
        settle(kernel)
        # One lock hold per batch, not per page.
        lock_holds = proc.aspace.lock.acquisitions - acquisitions_before
        assert lock_holds == 3

    def test_released_pages_land_at_tail(self, kernel, proc):
        """Pages freed by release go to the end of the list: the whole
        pre-existing free pool is consumed before they are reallocated."""
        touch(kernel, proc, 0)
        free_before = kernel.vm.freelist.free_count
        kernel.vm.request_release(proc.aspace, [0])
        settle(kernel)
        # Allocate everything that was free before the release; the
        # released page must still be rescuable afterwards.
        for _ in range(free_before):
            assert kernel.vm.freelist.pop() is not None
        assert kernel.vm.freelist.rescuable(proc.aspace, 0)

    def test_active_time_recorded(self, kernel, proc):
        touch(kernel, proc, 0)
        kernel.vm.request_release(proc.aspace, [0])
        settle(kernel)
        assert kernel.vm.stats.releaser_active_time > 0


class TestPagingDirectedPm:
    def test_prefetch_outside_range_rejected(self, kernel, proc, pm):
        task = SimTask(kernel.engine, "t")

        def run():
            yield from pm.prefetch(task, 10_000)

        with pytest.raises(ValueError):
            drive(kernel.engine, kernel.engine.process(run()))

    def test_release_outside_range_rejected(self, kernel, proc, pm):
        task = SimTask(kernel.engine, "t")

        def run():
            yield from pm.release(task, [10_000])

        with pytest.raises(ValueError):
            drive(kernel.engine, kernel.engine.process(run()))

    def test_prefetch_counts_requests(self, kernel, proc, pm):
        task = SimTask(kernel.engine, "t")

        def run():
            yield from pm.prefetch(task, 0)

        drive(kernel.engine, kernel.engine.process(run()))
        assert pm.prefetch_requests == 1
        assert proc.aspace.is_present(0)

    def test_release_counts_pages(self, kernel, proc, pm):
        touch(kernel, proc, 0)
        touch(kernel, proc, 1)
        task = SimTask(kernel.engine, "t")

        def run():
            accepted = yield from pm.release(task, [0, 1])
            return accepted

        accepted = drive(kernel.engine, kernel.engine.process(run()))
        assert accepted == 2
        assert pm.release_requests == 1
        assert pm.release_pages_requested == 2

    def test_page_in_memory_reads_bitmap(self, kernel, proc, pm):
        assert not pm.page_in_memory(0)
        touch(kernel, proc, 0)
        assert pm.page_in_memory(0)

    def test_syscall_charged_to_caller(self, kernel, proc, pm, scale):
        task = SimTask(kernel.engine, "t")

        def run():
            yield from pm.prefetch(task, 0)

        drive(kernel.engine, kernel.engine.process(run()))
        assert task.buckets.system >= scale.machine.syscall_s

    def test_attach_registers_shared_page(self, kernel, proc):
        assert proc.aspace.shared_page is not None

    def test_overlapping_pm_rejected(self, kernel, proc):
        with pytest.raises(ValueError):
            kernel.attach_paging_directed(proc, range(0, 10))
