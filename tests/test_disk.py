"""Unit tests for the disk, adapter, and striped-swap models."""

import pytest

from repro.config import DiskParams
from repro.disk.adapter import ScsiAdapter
from repro.disk.device import DiskDevice, DiskRequest
from repro.disk.swap import StripedSwap


@pytest.fixture
def params():
    return DiskParams()


class TestDiskDevice:
    def test_random_service_time(self, engine, params):
        disk = DiskDevice(engine, params, 0)
        request = disk.submit(block=100, is_write=False)
        expected = (
            params.average_seek_s
            + params.rotational_latency_s
            + params.transfer_s_per_page
        )
        assert request.service_time == pytest.approx(expected)

    def test_sequential_discount(self, engine, params):
        disk = DiskDevice(engine, params, 0)
        first = disk.submit(block=10, is_write=False)
        second = disk.submit(block=11, is_write=False)
        assert second.service_time < first.service_time
        assert disk.sequential_hits == 1

    def test_non_adjacent_pays_full_seek(self, engine, params):
        disk = DiskDevice(engine, params, 0)
        disk.submit(block=10, is_write=False)
        request = disk.submit(block=500, is_write=False)
        assert request.service_time == pytest.approx(params.page_service_s)

    def test_fifo_queueing(self, engine, params):
        disk = DiskDevice(engine, params, 0)
        first = disk.submit(block=0, is_write=False)
        second = disk.submit(block=1000, is_write=False)
        assert second.start_time == pytest.approx(first.finish_time)
        assert second.queue_delay > 0

    def test_completion_event_fires_at_finish(self, engine, params):
        disk = DiskDevice(engine, params, 0)
        request = disk.submit(block=0, is_write=False)
        engine.run()
        assert engine.now == pytest.approx(request.finish_time)

    def test_read_write_counters(self, engine, params):
        disk = DiskDevice(engine, params, 0)
        disk.submit(block=0, is_write=False)
        disk.submit(block=5, is_write=True)
        assert disk.reads == 1
        assert disk.writes == 1
        assert disk.requests == 2

    def test_utilization_bounded(self, engine, params):
        disk = DiskDevice(engine, params, 0)
        for block in range(5):
            disk.submit(block=block * 100, is_write=False)
        engine.run()
        assert 0.0 < disk.utilization() <= 1.0

    def test_queue_horizon(self, engine, params):
        disk = DiskDevice(engine, params, 0)
        disk.submit(block=0, is_write=False)
        assert disk.queue_horizon > 0.0

    def test_utilization_zero_at_time_zero(self, engine, params):
        disk = DiskDevice(engine, params, 0)
        assert disk.utilization() == 0.0
        # Even with work queued, no simulated time has elapsed yet.
        disk.submit(block=0, is_write=False)
        assert disk.utilization() == 0.0

    def test_utilization_saturated_queue_is_capped(self, engine, params):
        disk = DiskDevice(engine, params, 0)
        # Back-to-back queue from t=0: the disk is busy for the whole run,
        # and the cap keeps rounding from pushing utilization past 1.
        for block in range(6):
            disk.submit(block=block * 100, is_write=False)
        engine.run()
        assert disk.utilization() == pytest.approx(1.0)

    def test_queue_horizon_tracks_backlog_and_drains(self, engine, params):
        disk = DiskDevice(engine, params, 0)
        assert disk.queue_horizon == 0.0
        first = disk.submit(block=0, is_write=False)
        assert disk.queue_horizon == pytest.approx(first.service_time)
        second = disk.submit(block=1000, is_write=False)
        assert disk.queue_horizon == pytest.approx(
            first.service_time + second.service_time
        )
        engine.run()
        assert disk.queue_horizon == 0.0

    def test_request_requires_completion_event(self):
        # The completion event is a required field: a request that could be
        # awaited before its event exists cannot be constructed at all.
        with pytest.raises(TypeError):
            DiskRequest(block=0, is_write=False, issued_at=0.0)


class TestScsiAdapter:
    def test_rejects_foreign_disk(self, engine, params):
        mine = DiskDevice(engine, params, 0)
        other = DiskDevice(engine, params, 1)
        adapter = ScsiAdapter(engine, params, 0, [mine])

        def proc():
            yield from adapter.transfer(other, 0, False)

        with pytest.raises(ValueError):
            engine.run_process(proc())

    def test_transfer_includes_overhead(self, engine, params):
        disk = DiskDevice(engine, params, 0)
        adapter = ScsiAdapter(engine, params, 0, [disk])

        def proc():
            request = yield from adapter.transfer(disk, 0, False)
            return request

        request = engine.run_process(proc())
        assert engine.now == pytest.approx(
            params.adapter_overhead_s + request.service_time
        )

    def test_queue_depth_limits_concurrency(self, engine, params):
        disk = DiskDevice(engine, params, 0)
        adapter = ScsiAdapter(engine, params, 0, [disk])
        depth_seen = []

        def proc(block):
            yield from adapter.transfer(disk, block, False)

        for block in range(params.adapter_queue_depth + 4):
            engine.process(proc(block * 10))

        def monitor():
            yield engine.timeout(params.adapter_overhead_s / 2)
            depth_seen.append(adapter.outstanding)

        engine.process(monitor())
        engine.run()
        assert depth_seen[0] <= params.adapter_queue_depth
        assert adapter.commands == params.adapter_queue_depth + 4

    def test_owns(self, engine, params):
        disk = DiskDevice(engine, params, 0)
        adapter = ScsiAdapter(engine, params, 0, [disk])
        assert adapter.owns(disk)
        assert not adapter.owns(DiskDevice(engine, params, 1))

    def test_contention_records_queue_wait(self, engine, params):
        disk = DiskDevice(engine, params, 0)
        adapter = ScsiAdapter(engine, params, 0, [disk])

        def proc(block):
            yield from adapter.transfer(disk, block, False)

        for block in range(params.adapter_queue_depth + 3):
            engine.process(proc(block * 50))
        engine.run()
        # The commands beyond the queue depth had to wait for a slot, and
        # every slot was handed back once the backlog drained.
        assert adapter.total_queue_wait > 0.0
        assert adapter.outstanding == 0
        assert adapter.commands == params.adapter_queue_depth + 3


class TestStripedSwap:
    def test_topology(self, engine, params):
        swap = StripedSwap(engine, params)
        assert len(swap.disks) == params.disks
        assert len(swap.adapters) == params.adapters

    def test_consecutive_pages_round_robin(self, engine, params):
        swap = StripedSwap(engine, params)
        disks = [swap.placement(pid=1, vpn=v)[0] for v in range(params.disks)]
        assert sorted(disks) == list(range(params.disks))

    def test_stride_within_disk_is_sequential(self, engine, params):
        swap = StripedSwap(engine, params)
        d0, b0 = swap.placement(pid=1, vpn=0)
        d1, b1 = swap.placement(pid=1, vpn=params.disks)
        assert d0 == d1
        assert b1 == b0 + 1

    def test_placement_deterministic(self, engine, params):
        swap = StripedSwap(engine, params)
        assert swap.placement(3, 77) == swap.placement(3, 77)

    def test_read_accounting_by_purpose(self, engine, params):
        swap = StripedSwap(engine, params)

        def proc():
            yield swap.read_page(1, 0, purpose="demand")
            yield swap.read_page(1, 1, purpose="prefetch")
            yield swap.write_page(1, 2)

        engine.run_process(proc())
        assert swap.stats.demand_reads == 1
        assert swap.stats.prefetch_reads == 1
        assert swap.stats.writebacks == 1
        assert swap.total_reads == 2

    def test_unknown_purpose_rejected(self, engine, params):
        swap = StripedSwap(engine, params)

        def proc():
            yield swap.transfer(1, 0, is_write=False, purpose="bogus")

        with pytest.raises(ValueError):
            engine.run_process(proc())

    def test_unknown_purpose_rejected_before_any_io(self, engine, params):
        swap = StripedSwap(engine, params)
        # The purpose is validated synchronously, before any event is
        # scheduled: the caller fails immediately and no disk saw traffic.
        with pytest.raises(ValueError):
            swap.transfer(1, 0, is_write=False, purpose="bogus")
        assert all(disk.requests == 0 for disk in swap.disks)
        engine.run()
        assert engine.now == 0.0

    def test_mean_latency(self, engine, params):
        swap = StripedSwap(engine, params)

        def proc():
            yield swap.read_page(1, 0)

        engine.run_process(proc())
        assert swap.mean_latency("demand") > 0
        assert swap.mean_latency("prefetch") == 0.0

    def test_parallel_reads_overlap(self, engine, params):
        swap = StripedSwap(engine, params)

        def proc():
            # Pages striped across different disks complete concurrently.
            events = [swap.read_page(1, vpn) for vpn in range(params.disks)]
            for event in events:
                yield event

        engine.run_process(proc())
        # Far less than 10 serial service times.
        assert engine.now < 3 * params.page_service_s

    def test_utilization_mean(self, engine, params):
        swap = StripedSwap(engine, params)

        def proc():
            yield swap.read_page(1, 0)

        engine.run_process(proc())
        assert 0.0 <= swap.utilization() <= 1.0
