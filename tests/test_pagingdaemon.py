"""Unit tests for the paging daemon (vhand)."""

import pytest

from repro.vm.system import FaultKind

from tests.helpers import drive


def touch(kernel, proc, vpn, write=False):
    fault = proc.touch(vpn, write)
    if fault is None:
        return None
    return drive(kernel.engine, kernel.engine.process(fault))


@pytest.fixture
def proc(kernel):
    process = kernel.create_process("app")
    process.aspace.map_segment("a", 400)
    kernel.attach_paging_directed(process)
    return process


def fill_memory(kernel, proc, pages):
    for vpn in range(pages):
        touch(kernel, proc, vpn)


class TestPressure:
    def test_idle_when_memory_ample(self, kernel, proc):
        touch(kernel, proc, 0)
        kernel.engine.run(until=kernel.engine.now + 2.0)
        assert kernel.vm.stats.daemon_runs == 0
        assert kernel.vm.stats.daemon_pages_stolen == 0

    def test_runs_under_shortage(self, kernel, proc, scale):
        fill_memory(kernel, proc, scale.machine.total_frames)
        kernel.engine.run(until=kernel.engine.now + 2.0)
        assert kernel.vm.stats.daemon_runs >= 1
        assert kernel.vm.freelist.free_count >= scale.tunables.min_freemem_pages

    def test_replenishes_to_target(self, kernel, proc, scale):
        fill_memory(kernel, proc, scale.machine.total_frames)
        kernel.engine.run(until=kernel.engine.now + 2.0)
        target = (
            scale.tunables.min_freemem_pages
            + scale.tunables.free_target_slack_pages
        )
        assert kernel.vm.freelist.free_count >= target

    def test_scan_rate_scales_with_pressure(self, kernel, scale):
        daemon = kernel.paging_daemon
        base_rate = daemon.scan_rate()  # memory is entirely free
        # Artificially drain the free list.
        while kernel.vm.freelist.pop() is not None:
            pass
        assert daemon.scan_rate() > base_rate
        assert daemon.scan_rate() == pytest.approx(
            scale.tunables.daemon_max_scan_rate_pages_s
        )

    def test_notify_wakes_immediately(self, kernel, proc, scale):
        engine = kernel.engine
        fill_memory(kernel, proc, scale.machine.total_frames)
        runs_before = kernel.vm.stats.daemon_runs
        kernel.paging_daemon.notify()
        engine.run(until=engine.now + 0.001)
        # The daemon reacted well before the periodic wake interval.
        assert kernel.vm.stats.daemon_runs >= runs_before


class TestClock:
    def test_invalidations_produce_soft_faults(self, kernel, proc, scale):
        frames = scale.machine.total_frames
        fill_memory(kernel, proc, frames)
        kernel.engine.run(until=kernel.engine.now + 2.0)
        assert kernel.vm.stats.daemon_invalidations > 0
        # Touch a page that survived but was invalidated.
        invalidated = [
            f
            for f in kernel.vm.frame_table
            if f.active and f.invalidated and f.owner is proc.aspace
        ]
        assert invalidated, "expected surviving invalidated pages"
        kind = touch(kernel, proc, invalidated[0].vpn)
        assert kind == FaultKind.SOFT

    def test_referenced_pages_survive_steal(self, kernel, proc, scale):
        """A page re-referenced between the two hands is not stolen."""
        frames = scale.machine.total_frames
        fill_memory(kernel, proc, frames)
        engine = kernel.engine
        hot = 0

        def keep_hot():
            # Re-touch page 0 continuously while the daemon churns.
            for _ in range(500):
                fault = proc.touch(hot)
                if fault is not None:
                    yield from fault
                yield engine.timeout(0.002)
            yield from proc.flush()

        process = engine.process(keep_hot())
        drive(engine, process)
        assert proc.aspace.is_present(hot)

    def test_steals_unreferenced_pages(self, kernel, proc, scale):
        frames = scale.machine.total_frames
        fill_memory(kernel, proc, frames)
        kernel.engine.run(until=kernel.engine.now + 3.0)
        assert kernel.vm.stats.daemon_pages_stolen > 0
        assert proc.aspace.stats.pages_stolen > 0

    def test_stolen_pages_keep_identity_for_rescue(self, kernel, proc, scale):
        frames = scale.machine.total_frames
        fill_memory(kernel, proc, frames)
        kernel.engine.run(until=kernel.engine.now + 3.0)
        stolen_vpns = [
            vpn for vpn in range(frames) if not proc.aspace.is_present(vpn)
        ]
        assert stolen_vpns
        rescuable = [
            vpn
            for vpn in stolen_vpns
            if kernel.vm.freelist.rescuable(proc.aspace, vpn)
        ]
        assert rescuable, "daemon-freed pages should be rescuable"
        kind = touch(kernel, proc, rescuable[0])
        assert kind == FaultKind.RESCUE

    def test_dirty_steals_write_back(self, kernel, proc, scale):
        frames = scale.machine.total_frames
        for vpn in range(frames):
            touch(kernel, proc, vpn, write=True)
        kernel.engine.run(until=kernel.engine.now + 3.0)
        assert kernel.swap.stats.writebacks > 0
        assert kernel.vm.stats.daemon_writebacks > 0

    def test_daemon_time_tracked(self, kernel, proc, scale):
        fill_memory(kernel, proc, scale.machine.total_frames)
        kernel.engine.run(until=kernel.engine.now + 2.0)
        assert kernel.vm.stats.daemon_active_time > 0
        assert kernel.vm.stats.daemon_pages_scanned > 0

    def test_lock_contention_visible_to_faults(self, kernel, proc, scale):
        """The daemon holds the address-space lock while stealing; the
        lock's contention counters must reflect the overlap."""
        frames = scale.machine.total_frames
        fill_memory(kernel, proc, frames)
        engine = kernel.engine

        def churn():
            for vpn in range(frames, frames + 100):
                fault = proc.touch(vpn)
                if fault is not None:
                    yield from fault
            yield from proc.flush()

        drive(engine, engine.process(churn()))
        assert proc.aspace.lock.acquisitions > 0
