"""Unit tests for the paging daemon (vhand)."""

import pytest

from repro.vm.frames import F_INVALIDATED, F_PRESENT, FrameTable
from repro.vm.pagingdaemon import PagingDaemon
from repro.vm.system import FaultKind

from tests.helpers import drive


def touch(kernel, proc, vpn, write=False):
    fault = proc.touch(vpn, write)
    if fault is None:
        return None
    return drive(kernel.engine, kernel.engine.process(fault))


@pytest.fixture
def proc(kernel):
    process = kernel.create_process("app")
    process.aspace.map_segment("a", 400)
    kernel.attach_paging_directed(process)
    return process


def fill_memory(kernel, proc, pages):
    for vpn in range(pages):
        touch(kernel, proc, vpn)


class TestPressure:
    def test_idle_when_memory_ample(self, kernel, proc):
        touch(kernel, proc, 0)
        kernel.engine.run(until=kernel.engine.now + 2.0)
        assert kernel.vm.stats.daemon_runs == 0
        assert kernel.vm.stats.daemon_pages_stolen == 0

    def test_runs_under_shortage(self, kernel, proc, scale):
        fill_memory(kernel, proc, scale.machine.total_frames)
        kernel.engine.run(until=kernel.engine.now + 2.0)
        assert kernel.vm.stats.daemon_runs >= 1
        assert kernel.vm.freelist.free_count >= scale.tunables.min_freemem_pages

    def test_replenishes_to_target(self, kernel, proc, scale):
        fill_memory(kernel, proc, scale.machine.total_frames)
        kernel.engine.run(until=kernel.engine.now + 2.0)
        target = (
            scale.tunables.min_freemem_pages
            + scale.tunables.free_target_slack_pages
        )
        assert kernel.vm.freelist.free_count >= target

    def test_scan_rate_scales_with_pressure(self, kernel, scale):
        daemon = kernel.paging_daemon
        base_rate = daemon.scan_rate()  # memory is entirely free
        # Artificially drain the free list.
        while kernel.vm.freelist.pop() is not None:
            pass
        assert daemon.scan_rate() > base_rate
        assert daemon.scan_rate() == pytest.approx(
            scale.tunables.daemon_max_scan_rate_pages_s
        )

    def test_notify_wakes_immediately(self, kernel, proc, scale):
        engine = kernel.engine
        fill_memory(kernel, proc, scale.machine.total_frames)
        runs_before = kernel.vm.stats.daemon_runs
        kernel.paging_daemon.notify()
        engine.run(until=engine.now + 0.001)
        # The daemon reacted well before the periodic wake interval.
        assert kernel.vm.stats.daemon_runs >= runs_before


class TestClock:
    def test_invalidations_produce_soft_faults(self, kernel, proc, scale):
        frames = scale.machine.total_frames
        fill_memory(kernel, proc, frames)
        kernel.engine.run(until=kernel.engine.now + 2.0)
        assert kernel.vm.stats.daemon_invalidations > 0
        # Touch a page that survived but was invalidated.
        invalidated = [
            f
            for f in kernel.vm.frame_table
            if f.active and f.invalidated and f.owner is proc.aspace
        ]
        assert invalidated, "expected surviving invalidated pages"
        kind = touch(kernel, proc, invalidated[0].vpn)
        assert kind == FaultKind.SOFT

    def test_referenced_pages_survive_steal(self, kernel, proc, scale):
        """A page re-referenced between the two hands is not stolen."""
        frames = scale.machine.total_frames
        fill_memory(kernel, proc, frames)
        engine = kernel.engine
        hot = 0

        def keep_hot():
            # Re-touch page 0 continuously while the daemon churns.
            for _ in range(500):
                fault = proc.touch(hot)
                if fault is not None:
                    yield from fault
                yield engine.timeout(0.002)
            yield from proc.flush()

        process = engine.process(keep_hot())
        drive(engine, process)
        assert proc.aspace.is_present(hot)

    def test_steals_unreferenced_pages(self, kernel, proc, scale):
        frames = scale.machine.total_frames
        fill_memory(kernel, proc, frames)
        kernel.engine.run(until=kernel.engine.now + 3.0)
        assert kernel.vm.stats.daemon_pages_stolen > 0
        assert proc.aspace.stats.pages_stolen > 0

    def test_stolen_pages_keep_identity_for_rescue(self, kernel, proc, scale):
        frames = scale.machine.total_frames
        fill_memory(kernel, proc, frames)
        kernel.engine.run(until=kernel.engine.now + 3.0)
        stolen_vpns = [
            vpn for vpn in range(frames) if not proc.aspace.is_present(vpn)
        ]
        assert stolen_vpns
        rescuable = [
            vpn
            for vpn in stolen_vpns
            if kernel.vm.freelist.rescuable(proc.aspace, vpn)
        ]
        assert rescuable, "daemon-freed pages should be rescuable"
        kind = touch(kernel, proc, rescuable[0])
        assert kind == FaultKind.RESCUE

    def test_dirty_steals_write_back(self, kernel, proc, scale):
        frames = scale.machine.total_frames
        for vpn in range(frames):
            touch(kernel, proc, vpn, write=True)
        kernel.engine.run(until=kernel.engine.now + 3.0)
        assert kernel.swap.stats.writebacks > 0
        assert kernel.vm.stats.daemon_writebacks > 0

    def test_daemon_time_tracked(self, kernel, proc, scale):
        fill_memory(kernel, proc, scale.machine.total_frames)
        kernel.engine.run(until=kernel.engine.now + 2.0)
        assert kernel.vm.stats.daemon_active_time > 0
        assert kernel.vm.stats.daemon_pages_scanned > 0

    def test_lock_contention_visible_to_faults(self, kernel, proc, scale):
        """The daemon holds the address-space lock while stealing; the
        lock's contention counters must reflect the overlap."""
        frames = scale.machine.total_frames
        fill_memory(kernel, proc, frames)
        engine = kernel.engine

        def churn():
            for vpn in range(frames, frames + 100):
                fault = proc.touch(vpn)
                if fault is not None:
                    yield from fault
            yield from proc.flush()

        drive(engine, engine.process(churn()))
        assert proc.aspace.lock.acquisitions > 0


class TestHandWraparound:
    """Both hands sweep integer indices over the flat frame columns; a
    batch that crosses the end of the table must continue from frame 0
    exactly as a circular sweep would, and pages stolen across the
    boundary must stay rescuable."""

    def _daemon(self, engine, scale, nframes):
        table = FrameTable(nframes)

        class _Vm:
            frame_table = table

        return PagingDaemon(engine, _Vm(), scale.tunables), table

    def test_collect_batch_wraps_at_boundary(self, engine, scale):
        daemon, table = self._daemon(engine, scale, 8)
        for i in range(8):
            table.flags[i] = F_PRESENT
        table.flags[7] |= F_INVALIDATED
        table.flags[0] |= F_INVALIDATED
        daemon._hand = 6
        spread = daemon._spread
        lead, steal = daemon._collect_batch(4)
        # Trailing hand passes 6, 7, then wraps to 0, 1; only the two
        # invalidated-and-unreferenced frames are steal candidates, in
        # sweep order across the boundary.
        assert steal == [7, 0]
        assert lead == [(6 + off + spread) % 8 for off in range(4)]
        assert daemon._hand == 2
        assert all(0 <= i < 8 for i in lead + steal)

    def test_two_batches_complete_a_revolution(self, engine, scale):
        daemon, table = self._daemon(engine, scale, 6)
        for i in range(6):
            table.flags[i] = F_PRESENT | F_INVALIDATED
        daemon._hand = 4
        _, first = daemon._collect_batch(3)
        _, second = daemon._collect_batch(3)
        assert first == [4, 5, 0]
        assert second == [1, 2, 3]
        # One full revolution: every frame visited exactly once, hand back
        # where it started.
        assert sorted(first + second) == list(range(6))
        assert daemon._hand == 4

    def test_in_transit_frames_skipped_across_wrap(self, engine, scale):
        daemon, table = self._daemon(engine, scale, 4)
        for i in range(4):
            table.flags[i] = F_PRESENT | F_INVALIDATED
        table.in_transit[3] = object()  # page mid-I/O at the boundary
        table.in_transit[0] = object()
        daemon._hand = 2
        _lead, steal = daemon._collect_batch(4)
        assert steal == [2, 1]

    def test_wrapped_steal_keeps_rescue_path(self, kernel, proc, scale):
        frames = scale.machine.total_frames
        # Park the trailing hand on the last frame so the very first
        # batch of the first clock pass crosses the table boundary.
        kernel.paging_daemon._hand = frames - 1
        fill_memory(kernel, proc, frames)
        kernel.engine.run(until=kernel.engine.now + 3.0)
        assert kernel.vm.stats.daemon_pages_stolen > 0
        stolen = [
            vpn for vpn in range(frames) if not proc.aspace.is_present(vpn)
        ]
        rescuable = [
            vpn
            for vpn in stolen
            if kernel.vm.freelist.rescuable(proc.aspace, vpn)
        ]
        assert rescuable, "pages stolen across the wrap should be rescuable"
        kind = touch(kernel, proc, rescuable[0])
        assert kind == FaultKind.RESCUE
        assert proc.aspace.is_present(rescuable[0])
