"""Unit tests for the VM core: fault paths, allocation, prefetch, release."""

import pytest

from repro.vm.frames import FREED_BY_DAEMON, FREED_BY_RELEASE
from repro.vm.system import FaultKind

from tests.helpers import drive


def touch(kernel, proc, vpn, write=False):
    """Run a single touch (fast or slow path) to completion."""
    fault = proc.touch(vpn, write)
    if fault is None:
        return None
    process = kernel.engine.process(fault)
    return drive(kernel.engine, process)


@pytest.fixture
def proc(kernel):
    process = kernel.create_process("app")
    process.aspace.map_segment("a", 200)
    kernel.attach_paging_directed(process)
    return process


class TestTouchFastPath:
    def test_first_touch_is_a_fault(self, kernel, proc):
        assert proc.touch(0) is not None

    def test_resident_touch_is_a_hit(self, kernel, proc):
        touch(kernel, proc, 0)
        assert proc.touch(0) is None

    def test_hit_sets_referenced_and_dirty(self, kernel, proc):
        touch(kernel, proc, 0)
        frame = proc.aspace.frame_for(0)
        frame.referenced = False
        assert proc.touch(0, write=True) is None
        assert frame.referenced
        assert frame.dirty

    def test_hit_accumulates_user_time(self, kernel, proc, scale):
        touch(kernel, proc, 0)
        before = proc.pending_user
        proc.touch(0)
        assert proc.pending_user == pytest.approx(
            before + scale.machine.resident_touch_s
        )


class TestHardFault:
    def test_hard_fault_reads_from_swap(self, kernel, proc):
        kind = touch(kernel, proc, 0)
        assert kind == FaultKind.HARD
        assert kernel.swap.stats.demand_reads == 1
        assert proc.aspace.stats.hard_faults == 1

    def test_hard_fault_charges_io_stall(self, kernel, proc):
        touch(kernel, proc, 0)
        assert proc.task.buckets.stall_io > 0
        assert proc.task.buckets.system > 0

    def test_write_fault_marks_dirty(self, kernel, proc):
        touch(kernel, proc, 0, write=True)
        assert proc.aspace.frame_for(0).dirty

    def test_allocation_counted(self, kernel, proc):
        touch(kernel, proc, 0)
        assert kernel.vm.stats.total_allocations == 1
        assert proc.aspace.stats.allocations == 1

    def test_shared_page_bit_set(self, kernel, proc):
        touch(kernel, proc, 0)
        assert proc.aspace.shared_page.bit(0)


class TestSoftFault:
    def test_daemon_invalidation_causes_soft_fault(self, kernel, proc):
        touch(kernel, proc, 0)
        frame = proc.aspace.frame_for(0)
        # Simulate the daemon's lead hand.
        frame.sw_valid = False
        frame.invalidated = True
        frame.referenced = False
        kind = touch(kernel, proc, 0)
        assert kind == FaultKind.SOFT
        assert proc.aspace.stats.soft_faults == 1
        assert frame.sw_valid

    def test_soft_fault_does_no_io(self, kernel, proc):
        touch(kernel, proc, 0)
        frame = proc.aspace.frame_for(0)
        frame.sw_valid = False
        frame.invalidated = True
        reads_before = kernel.swap.stats.demand_reads
        touch(kernel, proc, 0)
        assert kernel.swap.stats.demand_reads == reads_before


class TestPrefetch:
    def run_prefetch(self, kernel, proc, vpn):
        from repro.sim.task import SimTask

        task = SimTask(kernel.engine, "pf")
        process = kernel.engine.process(
            kernel.vm.prefetch_page(task, proc.aspace, vpn)
        )
        return drive(kernel.engine, process)

    def test_prefetch_brings_page_unvalidated(self, kernel, proc):
        assert self.run_prefetch(kernel, proc, 0) is True
        frame = proc.aspace.frame_for(0)
        assert frame.present
        assert not frame.sw_valid  # "not fully validated, no TLB entry"
        assert frame.from_prefetch

    def test_first_touch_after_prefetch_is_cheap_validate(self, kernel, proc):
        self.run_prefetch(kernel, proc, 0)
        kind = touch(kernel, proc, 0)
        assert kind == FaultKind.PREFETCH_VALIDATE
        assert proc.aspace.stats.prefetch_validates == 1
        assert proc.aspace.stats.hard_faults == 0

    def test_duplicate_prefetch_skipped(self, kernel, proc):
        self.run_prefetch(kernel, proc, 0)
        assert self.run_prefetch(kernel, proc, 0) is False
        assert proc.aspace.stats.prefetches_duplicate == 1

    def test_prefetch_discarded_when_no_free_memory(self, kernel, proc, scale):
        # Exhaust the free list.
        while kernel.vm.freelist.pop() is not None:
            pass
        assert self.run_prefetch(kernel, proc, 0) is False
        assert proc.aspace.stats.prefetches_discarded == 1
        assert not proc.aspace.is_present(0)

    def test_demand_fault_waits_for_inflight_prefetch(self, kernel, proc):
        from repro.sim.task import SimTask

        engine = kernel.engine
        task = SimTask(engine, "pf")
        engine.process(kernel.vm.prefetch_page(task, proc.aspace, 0))

        def app():
            # Give the prefetch a head start, then touch mid-flight.
            yield engine.timeout(1e-6)
            fault = proc.touch(0)
            kind = yield from fault
            return kind

        process = engine.process(app())
        kind = drive(engine, process)
        assert kind == FaultKind.PREFETCH_VALIDATE
        # Only one read happened.
        assert kernel.swap.total_reads == 1

    def test_prefetch_rescues_from_free_list(self, kernel, proc):
        touch(kernel, proc, 0)
        frame = proc.aspace.frame_for(0)
        kernel.vm.free_frame(proc.aspace, frame.index, FREED_BY_RELEASE)
        reads_before = kernel.swap.total_reads
        assert self.run_prefetch(kernel, proc, 0) is True
        assert kernel.swap.total_reads == reads_before  # no I/O
        assert proc.aspace.stats.rescues == 1


class TestRescue:
    def test_fault_rescues_freed_page(self, kernel, proc):
        touch(kernel, proc, 0)
        frame = proc.aspace.frame_for(0)
        kernel.vm.free_frame(proc.aspace, frame.index, FREED_BY_DAEMON)
        kind = touch(kernel, proc, 0)
        assert kind == FaultKind.RESCUE
        assert proc.aspace.stats.rescues == 1
        assert kernel.vm.freelist.rescues_from_daemon == 1

    def test_reallocated_page_hard_faults(self, kernel, proc, scale):
        touch(kernel, proc, 0)
        frame = proc.aspace.frame_for(0)
        kernel.vm.free_frame(proc.aspace, frame.index, FREED_BY_RELEASE)
        # Cycle the entire free list so the identity is destroyed, then
        # return the frames so memory is not leaked.
        popped = []
        while True:
            candidate = kernel.vm.freelist.pop()
            if candidate is None:
                break
            popped.append(candidate)
        for candidate in popped:
            kernel.vm.freelist.push(candidate, FREED_BY_RELEASE)
        kind = touch(kernel, proc, 0)
        assert kind == FaultKind.HARD


class TestRelease:
    def test_request_release_clears_validity_and_bit(self, kernel, proc):
        touch(kernel, proc, 0)
        accepted = kernel.vm.request_release(proc.aspace, [0])
        assert accepted == 1
        frame = proc.aspace.frame_for(0)
        assert frame.release_pending
        assert not frame.sw_valid
        assert not proc.aspace.shared_page.bit(0)

    def test_release_of_absent_page_ignored(self, kernel, proc):
        assert kernel.vm.request_release(proc.aspace, [0]) == 0

    def test_double_release_request_ignored(self, kernel, proc):
        touch(kernel, proc, 0)
        kernel.vm.request_release(proc.aspace, [0])
        assert kernel.vm.request_release(proc.aspace, [0]) == 0

    def test_touch_cancels_pending_release(self, kernel, proc):
        # Queue a long release ahead of page 0's so the re-reference lands
        # while page 0's request is still waiting in the releaser's queue.
        for vpn in range(10):
            touch(kernel, proc, vpn)
        kernel.vm.request_release(proc.aspace, list(range(1, 10)))
        kernel.vm.request_release(proc.aspace, [0])
        kind = touch(kernel, proc, 0)
        assert kind == FaultKind.RELEASE_REVALIDATE
        frame = proc.aspace.frame_for(0)
        assert not frame.release_pending
        assert proc.aspace.shared_page.bit(0)  # bit set again
        # Let the releaser reach page 0's request: it must skip it.
        kernel.engine.run(until=kernel.engine.now + 1.0)
        assert proc.aspace.is_present(0)
        assert kernel.vm.stats.releaser_skipped_referenced >= 1

    def test_releaser_frees_to_end_of_free_list(self, kernel, proc):
        engine = kernel.engine
        touch(kernel, proc, 0)
        kernel.vm.request_release(proc.aspace, [0])
        engine.run(until=engine.now + 1.0)
        assert not proc.aspace.is_present(0)
        assert kernel.vm.stats.releaser_pages_freed == 1
        assert kernel.vm.freelist.rescuable(proc.aspace, 0)

    def test_release_beating_rereference_is_rescued(self, kernel, proc):
        """If the releaser gets the lock first, the page is freed with its
        identity intact and the re-reference rescues it from the list."""
        engine = kernel.engine
        touch(kernel, proc, 0)
        kernel.vm.request_release(proc.aspace, [0])
        kind = touch(kernel, proc, 0)  # races the releaser at t=now
        assert kind in (FaultKind.RELEASE_REVALIDATE, FaultKind.RESCUE)
        assert proc.aspace.is_present(0)
        # Either way, the data never left memory: no swap read happened.
        assert kernel.swap.stats.demand_reads == 1

    def test_released_dirty_page_written_back(self, kernel, proc):
        engine = kernel.engine
        touch(kernel, proc, 0, write=True)
        kernel.vm.request_release(proc.aspace, [0])
        engine.run(until=engine.now + 1.0)
        assert kernel.swap.stats.writebacks == 1
        assert kernel.vm.stats.releaser_writebacks == 1


class TestAllocationBlocking:
    def test_allocator_blocks_until_daemon_frees(self, kernel, proc):
        engine = kernel.engine
        # Fill all of memory with touched pages.
        for vpn in range(kernel.scale.machine.total_frames):
            if vpn >= 200:
                break
            touch(kernel, proc, vpn)
        while kernel.vm.freelist.pop() is not None:
            pass

        def app():
            fault = proc.touch(199)
            if fault is not None:
                kind = yield from fault
                return kind
            return None

        process = engine.process(app())
        kind = drive(engine, process)
        assert kind == FaultKind.HARD
        assert kernel.vm.stats.low_memory_stalls >= 1
        assert proc.task.buckets.stall_memory > 0


class TestFaultWaitClamp:
    """fault_wait_time must never pick up negative float-rounding dust."""

    def test_adversarial_rounding_is_clamped_to_zero(self, scale):
        # Engineer the exact adversarial case: an uncontended soft fault
        # starting at t=0.3 with a handler cost of 0.6 ends at
        # 0.3 + 0.6 = 0.8999999999999999, so now - started - cost computes
        # to -1.1e-16.  Without the clamp that dust accumulates into the
        # reported lock-queueing time.
        from dataclasses import replace

        from repro.kernel import Kernel
        from repro.sim.engine import Engine

        assert (0.3 + 0.6) - 0.3 - 0.6 < 0  # the premise of this test
        adversarial = replace(
            scale, machine=replace(scale.machine, soft_fault_cpu_s=0.6)
        )
        engine = Engine()
        # No Kernel.boot: the daemons stay parked, so nothing else touches
        # the clock or the address-space lock during the fault.
        kernel = Kernel(engine, adversarial)
        proc = kernel.create_process("app")
        proc.aspace.map_segment("a", 8)
        touch(kernel, proc, 0)
        frame = proc.aspace.frame_for(0)
        frame.sw_valid = False
        frame.invalidated = True
        proc.pending_user = 0.0

        def app():
            yield engine.timeout(0.3 - engine.now)
            kind = yield from kernel.vm.fault(proc.task, proc.aspace, 0, False)
            return kind

        kind = drive(engine, engine.process(app()))
        assert kind == FaultKind.SOFT
        assert proc.aspace.stats.fault_wait_time == 0.0

    def test_fault_wait_time_is_never_negative(self, kernel, proc):
        for vpn in range(50):
            touch(kernel, proc, vpn)
        for vpn in range(50):
            frame = proc.aspace.frame_for(vpn)
            if frame is not None:
                frame.sw_valid = False
                frame.invalidated = True
        for vpn in range(50):
            touch(kernel, proc, vpn)
        assert proc.aspace.stats.fault_wait_time >= 0.0
