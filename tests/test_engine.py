"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import (
    Engine,
    Interrupt,
    Process,
    SimulationError,
)


class TestEvent:
    def test_starts_pending(self, engine):
        event = engine.event()
        assert not event.triggered
        assert not event.processed

    def test_value_before_trigger_raises(self, engine):
        with pytest.raises(SimulationError):
            engine.event().value

    def test_succeed_carries_value(self, engine):
        event = engine.event()
        event.succeed(42)
        assert event.triggered
        assert event.value == 42
        assert event.ok

    def test_double_succeed_raises(self, engine):
        event = engine.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_requires_exception(self, engine):
        event = engine.event()
        with pytest.raises(SimulationError):
            event.fail("not an exception")

    def test_fail_carries_exception(self, engine):
        event = engine.event()
        error = ValueError("boom")
        event.fail(error)
        assert not event.ok
        assert event.value is error

    def test_callbacks_run_on_processing(self, engine):
        event = engine.event()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        event.succeed("x")
        assert seen == []  # not yet processed
        engine.run()
        assert seen == ["x"]

    def test_late_callback_runs_immediately(self, engine):
        event = engine.event()
        event.succeed(1)
        engine.run()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        assert seen == [1]

    def test_delayed_succeed(self, engine):
        event = engine.event()
        event.succeed(delay=2.5)
        engine.run()
        assert engine.now == 2.5


class TestTimeout:
    def test_fires_at_delay(self, engine):
        engine.timeout(3.0)
        engine.run()
        assert engine.now == 3.0

    def test_negative_delay_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.timeout(-1.0)

    def test_timeout_value(self, engine):
        timeout = engine.timeout(1.0, value="done")
        engine.run()
        assert timeout.value == "done"

    def test_zero_delay_allowed(self, engine):
        engine.timeout(0.0)
        engine.run()
        assert engine.now == 0.0


class TestClock:
    def test_fifo_order_for_simultaneous_events(self, engine):
        order = []
        for index in range(5):
            engine.timeout(1.0).add_callback(
                lambda _e, i=index: order.append(i)
            )
        engine.run()
        assert order == [0, 1, 2, 3, 4]

    def test_run_until_stops_clock_exactly(self, engine):
        engine.timeout(10.0)
        engine.run(until=4.0)
        assert engine.now == 4.0

    def test_run_until_processes_due_events(self, engine):
        seen = []
        engine.timeout(1.0).add_callback(lambda e: seen.append(1))
        engine.timeout(5.0).add_callback(lambda e: seen.append(5))
        engine.run(until=2.0)
        assert seen == [1]

    def test_run_until_past_is_error(self, engine):
        engine.timeout(5.0)
        engine.run()
        with pytest.raises(SimulationError):
            engine.run(until=1.0)

    def test_peek_empty_queue(self, engine):
        assert engine.peek() == float("inf")

    def test_peek_returns_next_time(self, engine):
        engine.timeout(7.0)
        engine.timeout(2.0)
        assert engine.peek() == 2.0

    def test_step_pops_single_event(self, engine):
        engine.timeout(1.0)
        engine.timeout(2.0)
        engine.step()
        assert engine.now == 1.0


class TestProcess:
    def test_process_returns_value(self, engine):
        def proc():
            yield engine.timeout(1.0)
            return "result"

        assert engine.run_process(proc()) == "result"

    def test_process_requires_generator(self, engine):
        with pytest.raises(SimulationError):
            Process(engine, lambda: None)  # type: ignore[arg-type]

    def test_process_accumulates_time(self, engine):
        def proc():
            yield engine.timeout(1.0)
            yield engine.timeout(2.0)

        engine.run_process(proc())
        assert engine.now == 3.0

    def test_yield_non_event_raises(self, engine):
        def proc():
            yield 42

        with pytest.raises(SimulationError):
            engine.run_process(proc())

    def test_processes_can_wait_on_each_other(self, engine):
        def worker():
            yield engine.timeout(5.0)
            return "worked"

        worker_proc = engine.process(worker())

        def waiter():
            value = yield worker_proc
            return value

        assert engine.run_process(waiter()) == "worked"

    def test_exception_propagates_to_waiter(self, engine):
        def failing():
            yield engine.timeout(1.0)
            raise RuntimeError("inner")

        failing_proc = engine.process(failing())

        def waiter():
            with pytest.raises(RuntimeError, match="inner"):
                yield failing_proc
            return "caught"

        assert engine.run_process(waiter()) == "caught"

    def test_unwaited_crash_surfaces(self, engine):
        def failing():
            yield engine.timeout(1.0)
            raise RuntimeError("unhandled")

        engine.process(failing())
        with pytest.raises(RuntimeError, match="unhandled"):
            engine.run()

    def test_deadlock_detected_by_run_process(self, engine):
        def stuck():
            yield engine.event()  # never triggered

        with pytest.raises(SimulationError, match="deadlock"):
            engine.run_process(stuck())

    def test_is_alive(self, engine):
        def proc():
            yield engine.timeout(1.0)

        p = engine.process(proc())
        assert p.is_alive
        engine.run()
        assert not p.is_alive

    def test_event_value_delivered_to_process(self, engine):
        event = engine.event()

        def proc():
            value = yield event
            return value

        p = engine.process(proc())
        event.succeed("payload")
        engine.run()
        assert p.value == "payload"


class TestInterrupt:
    def test_interrupt_wakes_sleeper(self, engine):
        def sleeper():
            try:
                yield engine.timeout(100.0)
            except Interrupt as interrupt:
                return interrupt.cause

        p = engine.process(sleeper())

        def interrupter():
            yield engine.timeout(1.0)
            p.interrupt("wake up")

        engine.process(interrupter())
        engine.run()
        assert p.value == "wake up"
        assert engine.now <= 100.0

    def test_interrupt_finished_process_raises(self, engine):
        def quick():
            yield engine.timeout(0.1)

        p = engine.process(quick())
        engine.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_self_interrupt_rejected(self, engine):
        def selfish():
            this = engine.active_process
            with pytest.raises(SimulationError):
                this.interrupt()
            yield engine.timeout(0.0)

        engine.run_process(selfish())


class TestConditions:
    def test_any_of_fires_on_first(self, engine):
        fast = engine.timeout(1.0, value="fast")
        slow = engine.timeout(10.0, value="slow")

        def proc():
            result = yield engine.any_of([fast, slow])
            return result

        value = engine.run_process(proc())
        assert fast in value
        assert engine.now >= 1.0

    def test_all_of_waits_for_all(self, engine):
        first = engine.timeout(1.0)
        second = engine.timeout(5.0)

        def proc():
            yield engine.all_of([first, second])
            return engine.now

        # all_of fires at the later timeout
        assert engine.run_process(proc()) == 5.0

    def test_empty_condition_fires_immediately(self, engine):
        def proc():
            value = yield engine.all_of([])
            return value

        assert engine.run_process(proc()) == {}

    def test_any_of_with_already_fired_event(self, engine):
        event = engine.event()
        event.succeed("early")
        engine.run()

        def proc():
            result = yield engine.any_of([event, engine.timeout(50.0)])
            return result

        value = engine.run_process(proc())
        assert event in value

    def test_condition_rejects_cross_engine_events(self, engine):
        other = Engine()
        foreign = other.event()
        with pytest.raises(SimulationError):
            engine.any_of([foreign])


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def run_once():
            engine = Engine()
            trace = []

            def producer(name, period):
                for _ in range(5):
                    yield engine.timeout(period)
                    trace.append((engine.now, name))

            engine.process(producer("a", 1.0))
            engine.process(producer("b", 1.5))
            engine.run()
            return trace

        assert run_once() == run_once()


class TestFastLane:
    """The run-loop optimizations: event pooling and run_until_triggered."""

    def test_plain_timeouts_are_pooled_and_reused(self, engine):
        def proc():
            for _ in range(5):
                yield engine.timeout(1.0)

        engine.process(proc())
        engine.run()
        assert engine._timeout_pool
        pooled = engine._timeout_pool[-1]
        fresh = engine.timeout(2.0)
        assert fresh is pooled
        assert fresh.triggered

    def test_externally_referenced_timeout_is_not_recycled(self, engine):
        held = []

        def proc():
            timeout = engine.timeout(1.0)
            held.append(timeout)
            yield timeout

        engine.process(proc())
        engine.run()
        assert held[0] not in engine._timeout_pool

    def test_valued_timeout_is_not_recycled(self, engine):
        seen = []

        def proc():
            value = yield engine.timeout(1.0, value="payload")
            seen.append(value)

        engine.process(proc())
        engine.run()
        assert seen == ["payload"]
        assert all(t._value is None for t in engine._timeout_pool)

    def test_valued_timeout_never_comes_from_the_pool(self, engine):
        def proc():
            yield engine.timeout(1.0)

        engine.process(proc())
        engine.run()
        assert engine._timeout_pool
        fresh = engine.timeout(1.0, value="payload")
        assert fresh not in engine._timeout_pool
        assert fresh._value == "payload"

    def test_succeeded_events_are_pooled_and_reused(self, engine):
        # The event must not be referenced from this frame, or the
        # refcount guard (correctly) refuses to recycle it.
        def firer(event):
            yield engine.timeout(1.0)
            event.succeed()

        def waiter():
            event = engine.event()
            engine.process(firer(event))
            yield event

        engine.process(waiter())
        engine.run()
        assert engine._event_pool
        pooled = engine._event_pool[-1]
        fresh = engine.event()
        assert fresh is pooled
        assert not fresh.triggered
        assert fresh.callbacks == []

    def test_externally_referenced_event_is_not_recycled(self, engine):
        def firer(event):
            yield engine.timeout(1.0)
            event.succeed()

        def waiter(event):
            yield event

        event = engine.event()
        engine.process(waiter(event))
        engine.process(firer(event))
        engine.run()
        assert event not in engine._event_pool

    def test_pool_is_bounded(self, engine):
        from repro.sim.engine import _TIMEOUT_POOL_LIMIT

        def proc():
            for _ in range(2 * _TIMEOUT_POOL_LIMIT):
                yield engine.timeout(1.0)

        engine.process(proc())
        engine.run()
        assert len(engine._timeout_pool) <= _TIMEOUT_POOL_LIMIT

    def test_run_until_triggered_stops_at_the_event(self, engine):
        done = engine.event()
        log = []

        def proc():
            yield engine.timeout(3.0)
            done.succeed()
            yield engine.timeout(10.0)
            log.append("late")

        engine.process(proc())
        assert engine.run_until_triggered(done) is True
        assert engine.now == 3.0
        assert log == []

    def test_run_until_triggered_respects_the_step_budget(self, engine):
        done = engine.event()

        def ticker():
            while True:
                yield engine.timeout(1.0)

        engine.process(ticker())
        assert engine.run_until_triggered(done, max_steps=10) is False
        assert engine.steps >= 10

    def test_run_until_triggered_raises_on_deadlock(self, engine):
        done = engine.event()
        with pytest.raises(SimulationError):
            engine.run_until_triggered(done)

    def test_pooling_preserves_determinism(self):
        def run_once():
            engine = Engine()
            trace = []

            def producer(name, period):
                for _ in range(20):
                    yield engine.timeout(period)
                    trace.append((engine.now, name))

            engine.process(producer("a", 0.7))
            engine.process(producer("b", 1.1))
            engine.run()
            return trace

        assert run_once() == run_once()
