"""Unit tests for the loop-nest IR."""

import pytest

from repro.core.compiler.ir import (
    AffineExpr,
    Array,
    ArrayRef,
    IndirectRef,
    Loop,
    Nest,
    Program,
    Stmt,
    Symbol,
    VaryingStrideRef,
    affine,
    bound_estimate,
    bound_known,
    bound_value,
    const,
)


class TestBounds:
    def test_integer_bound(self):
        assert bound_value(10, {}) == 10
        assert bound_estimate(10) == 10
        assert bound_known(10)

    def test_symbol_estimate_and_env(self):
        n = Symbol("n", estimate=100)
        assert bound_estimate(n) == 100
        assert bound_value(n, {"n": 7}) == 7
        assert bound_value(n, {}) == 100  # falls back to the estimate
        assert not bound_known(n)

    def test_known_symbol(self):
        n = Symbol("n", estimate=5, known=True)
        assert bound_known(n)


class TestAffineExpr:
    def test_evaluate(self):
        expr = AffineExpr.build({"i": 3, "j": 1}, 5)
        assert expr.evaluate({"i": 2, "j": 4}) == 15

    def test_zero_coeffs_dropped(self):
        expr = AffineExpr.build({"i": 0, "j": 2})
        assert expr.variables == ("j",)
        assert not expr.depends_on("i")

    def test_coeff_lookup(self):
        expr = affine("i", coeff=4, const_term=1)
        assert expr.coeff("i") == 4
        assert expr.coeff("j") == 0

    def test_shifted(self):
        expr = affine("i").shifted(3)
        assert expr.const == 3
        assert expr.evaluate({"i": 1}) == 4

    def test_addition(self):
        combined = affine("i", 2) + affine("j", 3, const_term=1)
        assert combined.evaluate({"i": 1, "j": 1}) == 6

    def test_const_helper(self):
        assert const(7).evaluate({}) == 7
        assert const(7).variables == ()

    def test_repr_negative_const(self):
        assert repr(affine("i", const_term=-1)) == "i-1"
        assert repr(affine("i", const_term=2)) == "i+2"


class TestArray:
    def test_total_elements(self):
        arr = Array("a", (4, Symbol("n", estimate=8)))
        assert arr.total_elements({"n": 10}) == 40
        assert arr.total_elements({}) == 32

    def test_row_strides(self):
        arr = Array("a", (2, 3, 4))
        assert arr.row_strides((2, 3, 4)) == (12, 4, 1)

    def test_pages_round_up(self):
        arr = Array("a", (100,), element_size=8)
        assert arr.pages({}, page_size=512) == 2  # 800 bytes

    def test_pages_minimum_one(self):
        arr = Array("a", (1,))
        assert arr.pages({}, page_size=16384) == 1

    def test_repr(self):
        arr = Array("a", (Symbol("n", 5), 3))
        assert repr(arr) == "a[n][3]"


class TestRefs:
    def test_rank_mismatch_rejected(self):
        arr = Array("a", (4, 4))
        with pytest.raises(ValueError):
            ArrayRef(arr, (affine("i"),))

    def test_depends_on(self):
        arr = Array("a", (4, 4))
        ref = ArrayRef(arr, (affine("i"), affine("j")))
        assert ref.depends_on("i")
        assert not ref.depends_on("k")

    def test_indirect_depends_through_index(self):
        target = Array("t", (100,))
        index = Array("idx", (100,))
        index_ref = ArrayRef(index, (affine("i"),))
        indirect = IndirectRef(target, index_ref)
        assert indirect.depends_on("i")
        assert not indirect.depends_on("j")

    def test_varying_stride_requires_actual(self):
        arr = Array("a", (100,))
        with pytest.raises(ValueError):
            VaryingStrideRef(arr, (affine("i"),), actual_subscripts=None)

    def test_varying_stride_apparent_dependence(self):
        arr = Array("a", (100,))
        ref = VaryingStrideRef(
            arr, (affine("b"),), actual_subscripts=lambda env: (affine("b", 2),)
        )
        assert ref.depends_on("b")
        assert not ref.depends_on("s")


class TestLoops:
    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            Loop("i", 0, 10, body=())

    def test_zero_step_rejected(self):
        stmt = Stmt(refs=(ArrayRef(Array("a", (10,)), (affine("i"),)),))
        with pytest.raises(ValueError):
            Loop("i", 0, 10, body=(stmt,), step=0)

    def test_trip_counts(self):
        stmt = Stmt(refs=(ArrayRef(Array("a", (10,)), (affine("i"),)),))
        loop = Loop("i", 0, Symbol("n", estimate=10), body=(stmt,), step=2)
        assert loop.trip_estimate() == 5
        assert loop.trip_value({"n": 6}) == 3
        assert loop.trip_value({"n": 0}) == 0

    def test_statement_requires_refs(self):
        with pytest.raises(ValueError):
            Stmt(refs=())


class TestNest:
    def make_nest(self):
        a = Array("a", (10, 10))
        inner_stmt = Stmt(refs=(ArrayRef(a, (affine("i"), affine("j"))),))
        outer_stmt = Stmt(refs=(ArrayRef(a, (affine("i"), const(0))),))
        inner = Loop("j", 0, 10, body=(inner_stmt,))
        outer = Loop("i", 0, 10, body=(outer_stmt, inner))
        return Nest("n", outer)

    def test_loops_by_depth(self):
        nest = self.make_nest()
        depths = [(depth, loop.var) for depth, loop in nest.loops_by_depth()]
        assert depths == [(0, "i"), (1, "j")]

    def test_statements_with_chains(self):
        nest = self.make_nest()
        statements = nest.statements()
        assert len(statements) == 2
        chains = [tuple(l.var for l in chain) for chain, _stmt in statements]
        assert ("i",) in chains
        assert ("i", "j") in chains

    def test_references_enumeration(self):
        nest = self.make_nest()
        assert len(nest.references()) == 2


class TestProgram:
    def test_duplicate_array_names_rejected(self):
        a = Array("a", (10,))
        stmt = Stmt(refs=(ArrayRef(a, (affine("i"),)),))
        nest = Nest("n", Loop("i", 0, 10, body=(stmt,)))
        with pytest.raises(ValueError):
            Program("p", (a, Array("a", (5,))), (nest,))

    def test_duplicate_nest_names_rejected(self):
        a = Array("a", (10,))
        stmt = Stmt(refs=(ArrayRef(a, (affine("i"),)),))
        nest1 = Nest("n", Loop("i", 0, 10, body=(stmt,)))
        nest2 = Nest("n", Loop("k", 0, 10, body=(stmt,)))
        with pytest.raises(ValueError):
            Program("p", (a,), (nest1, nest2))

    def test_lookups(self):
        a = Array("a", (10,))
        stmt = Stmt(refs=(ArrayRef(a, (affine("i"),)),))
        nest = Nest("n", Loop("i", 0, 10, body=(stmt,)))
        program = Program("p", (a,), (nest,))
        assert program.array("a") is a
        assert program.nest("n") is nest
        with pytest.raises(KeyError):
            program.array("zzz")
        with pytest.raises(KeyError):
            program.nest("zzz")
