"""Unit tests for the page-granularity trace interpreter."""

import pytest

from repro.config import CompilerParams, MachineConfig
from repro.core.compiler.interp import nest_ops
from repro.core.compiler.ir import (
    Array,
    ArrayRef,
    IndirectRef,
    Loop,
    Nest,
    Program,
    Stmt,
    Symbol,
    VaryingStrideRef,
    affine,
)
from repro.core.compiler.pipeline import compile_program

MACHINE = MachineConfig()
PARAMS = CompilerParams()
EPP = MACHINE.page_elements  # 2048


def compiled_nest(nest, arrays):
    program = Program("p", tuple(arrays), (nest,))
    return compile_program(program, PARAMS).nests[nest.name]


def ops_for(nest, arrays, layout, env=None, **kwargs):
    return list(
        nest_ops(compiled_nest(nest, arrays), env or {}, layout, MACHINE, **kwargs)
    )


def touches(ops):
    return [op[1] for op in ops if op[0] == "t"]


def prefetches(ops):
    return [op for op in ops if op[0] == "p"]


def releases(ops):
    return [op for op in ops if op[0] == "r"]


def sweep_nest(pages=8):
    a = Array("a", (pages * EPP,))
    stmt = Stmt(refs=(ArrayRef(a, (affine("i"),), is_write=True),), flops=1.0)
    nest = Nest("sweep", Loop("i", 0, pages * EPP, body=(stmt,)))
    return nest, a


class TestTouchStream:
    def test_sequential_sweep_touches_each_page_once(self):
        nest, a = sweep_nest(8)
        ops = ops_for(nest, [a], {"a": 100})
        assert touches(ops) == [100 + p for p in range(8)]

    def test_work_matches_iteration_count(self):
        nest, a = sweep_nest(4)
        ops = ops_for(nest, [a], {"a": 0})
        work = sum(op[1] for op in ops if op[0] == "w")
        assert work == pytest.approx(4 * EPP * MACHINE.cpu_s_per_element)

    def test_touch_carries_write_flag(self):
        nest, a = sweep_nest(2)
        ops = ops_for(nest, [a], {"a": 0})
        assert all(op[2] for op in ops if op[0] == "t")

    def test_2d_row_major_order(self):
        a = Array("a", (4, 2 * EPP))  # two pages per row
        stmt = Stmt(refs=(ArrayRef(a, (affine("i"), affine("j"))),))
        nest = Nest(
            "n", Loop("i", 0, 4, body=(Loop("j", 0, 2 * EPP, body=(stmt,)),))
        )
        ops = ops_for(nest, [a], {"a": 0})
        assert touches(ops) == list(range(8))

    def test_loop_invariant_ref_touches_on_reentry(self):
        # x[j] inside the i loop: pages re-touched every i iteration.
        x = Array("x", (2 * EPP,))
        a = Array("a", (3, 2 * EPP))
        stmt = Stmt(
            refs=(
                ArrayRef(a, (affine("i"), affine("j"))),
                ArrayRef(x, (affine("j"),)),
            )
        )
        nest = Nest(
            "n", Loop("i", 0, 3, body=(Loop("j", 0, 2 * EPP, body=(stmt,)),))
        )
        ops = ops_for(nest, [a, x], {"a": 0, "x": 50})
        x_touches = [t for t in touches(ops) if t >= 50]
        assert x_touches == [50, 51] * 3

    def test_bounds_from_env(self):
        n = Symbol("n", estimate=4 * EPP, known=False)
        a = Array("a", (8 * EPP,))
        stmt = Stmt(refs=(ArrayRef(a, (affine("i"),)),))
        nest = Nest("n", Loop("i", 0, n, body=(stmt,)))
        ops = ops_for(nest, [a], {"a": 0}, env={"n": 2 * EPP})
        assert touches(ops) == [0, 1]

    def test_pages_clamped_to_array_extent(self):
        a = Array("a", (EPP,))  # one page
        stmt = Stmt(refs=(ArrayRef(a, (affine("i", const_term=EPP),)),))
        nest = Nest("n", Loop("i", 0, 4, body=(stmt,)))
        ops = ops_for(nest, [a], {"a": 7})
        assert all(t == 7 for t in touches(ops))

    def test_missing_layout_entry_raises(self):
        nest, a = sweep_nest(2)
        with pytest.raises(KeyError):
            ops_for(nest, [a], {})


class TestPrefetchEmission:
    def test_prologue_window_then_steady_state(self):
        nest, a = sweep_nest(100)
        ops = ops_for(nest, [a], {"a": 0})
        pf = prefetches(ops)
        # Prologue covers [0, distance] inclusive.
        distance = compiled_nest(nest, [a]).plan.prefetches[0].distance_pages
        assert pf[0][2] == tuple(range(0, distance + 1))
        # Steady state: one page per crossing, distance ahead.
        assert pf[1][2] == (1 + distance,)

    def test_prefetch_clamped_at_array_end(self):
        nest, a = sweep_nest(4)
        ops = ops_for(nest, [a], {"a": 0})
        for op in prefetches(ops):
            assert all(0 <= page < 4 for page in op[2])

    def test_emission_disabled(self):
        nest, a = sweep_nest(4)
        ops = ops_for(nest, [a], {"a": 0}, emit_prefetch=False, emit_release=False)
        assert not prefetches(ops)
        assert not releases(ops)

    def test_strided_prefetch_targets_stream(self):
        # A page-hopping stride must prefetch along the stream (hops ahead),
        # not at +distance sequential pages.
        hop = 3
        a = Array("a", (400 * EPP,))
        ref = VaryingStrideRef(
            a,
            apparent_subscripts=(affine("b", coeff=EPP),),
            actual_subscripts=lambda env: (affine("b", coeff=hop * EPP),),
        )
        stmt = Stmt(refs=(ref,))
        nest = Nest(
            "n",
            Loop("s", 0, Symbol("S", 2), body=(Loop("b", 0, Symbol("B", 20), body=(stmt,)),)),
        )
        ops = ops_for(nest, [a], {"a": 0}, env={"S": 1, "B": 20})
        steady = [op for op in prefetches(ops) if len(op[2]) == 1]
        diffs = {op[2][0] % hop for op in steady}
        assert diffs == {0}  # all targets lie on the hop lattice


class TestReleaseEmission:
    def test_release_trails_by_one_page(self):
        nest, a = sweep_nest(4)
        ops = ops_for(nest, [a], {"a": 0})
        rel = releases(ops)
        # Steady state releases pages 0,1,2 behind; epilogue releases 3.
        released = [op[2][0] for op in rel]
        assert released == [0, 1, 2, 3]

    def test_release_carries_priority(self):
        x = Array("x", (64 * EPP,))
        a = Array("a", (400, 64 * EPP))
        stmt = Stmt(
            refs=(
                ArrayRef(a, (affine("i"), affine("j"))),
                ArrayRef(x, (affine("j"),)),
            )
        )
        nest = Nest(
            "n", Loop("i", 0, 400, body=(Loop("j", 0, 64 * EPP, body=(stmt,)),))
        )
        cn = compiled_nest(nest, [a, x])
        x_spec = next(
            s for s in cn.plan.releases if s.target.ref.array.name == "x"
        )
        ops = list(nest_ops(cn, {}, {"a": 0, "x": 30000}, MACHINE))
        x_rel = [op for op in releases(ops) if op[1] == x_spec.tag]
        assert x_rel
        assert all(op[3] == x_spec.priority for op in x_rel)

    def test_epilogue_releases_final_page(self):
        nest, a = sweep_nest(3)
        ops = ops_for(nest, [a], {"a": 10})
        assert releases(ops)[-1][2] == (12,)


class TestIndirect:
    def make_indirect(self, sample=4):
        target = Array("t", (64 * EPP,))
        keys = Array("k", (4 * EPP,))
        key_ref = ArrayRef(keys, (affine("i"),))
        stmt = Stmt(
            refs=(key_ref, IndirectRef(target, key_ref, sample_touches_per_chunk=sample))
        )
        nest = Nest("n", Loop("i", 0, 4 * EPP, body=(stmt,)))
        return nest, target, keys

    def test_sampled_touches_per_index_page(self):
        nest, target, keys = self.make_indirect(sample=4)
        ops = ops_for(nest, [target, keys], {"t": 1000, "k": 0})
        target_touches = [t for t in touches(ops) if t >= 1000]
        assert len(target_touches) == 4 * 4  # 4 index pages x 4 samples

    def test_sampling_is_deterministic(self):
        nest, target, keys = self.make_indirect()
        first = ops_for(nest, [target, keys], {"t": 1000, "k": 0}, rng_seed=7)
        second = ops_for(nest, [target, keys], {"t": 1000, "k": 0}, rng_seed=7)
        assert first == second

    def test_different_seed_changes_samples(self):
        nest, target, keys = self.make_indirect()
        first = ops_for(nest, [target, keys], {"t": 1000, "k": 0}, rng_seed=1)
        second = ops_for(nest, [target, keys], {"t": 1000, "k": 0}, rng_seed=2)
        assert touches(first) != touches(second)

    def test_indirect_prefetch_pipelined_one_chunk_ahead(self):
        nest, target, keys = self.make_indirect()
        ops = ops_for(nest, [target, keys], {"t": 1000, "k": 0})
        # Find the prefetch announcing chunk 1's pages: its pages must match
        # the touches emitted for chunk 1 (the second group of samples).
        target_touch_batches = []
        batch = []
        for op in ops:
            if op[0] == "t" and op[1] >= 1000:
                batch.append(op[1])
                if len(batch) == 4:
                    target_touch_batches.append(tuple(batch))
                    batch = []
        target_pf = [
            op[2] for op in prefetches(ops) if all(p >= 1000 for p in op[2])
        ]
        assert target_touch_batches[1] in target_pf

    def test_no_releases_for_indirect_target(self):
        nest, target, keys = self.make_indirect()
        ops = ops_for(nest, [target, keys], {"t": 1000, "k": 0})
        for op in releases(ops):
            assert all(page < 1000 for page in op[2])


class TestApparentHints:
    def make_miscompiled(self):
        """Touches follow a 2-page stride; hint addresses follow the
        (wrong) unit-page apparent form."""
        a = Array("a", (64 * EPP,))
        ref = VaryingStrideRef(
            a,
            apparent_subscripts=(affine("b", coeff=EPP),),
            actual_subscripts=lambda env: (affine("b", coeff=2 * EPP),),
            is_write=False,
            hints_follow_apparent=True,
        )
        stmt = Stmt(refs=(ref,))
        nest = Nest("n", Loop("b", 0, Symbol("B", 8), body=(stmt,)))
        return nest, a

    def test_touches_follow_actual_stride(self):
        nest, a = self.make_miscompiled()
        ops = ops_for(nest, [a], {"a": 0}, env={"B": 8})
        assert touches(ops) == [0, 2, 4, 6, 8, 10, 12, 14]

    def test_release_addresses_follow_apparent_stride(self):
        nest, a = self.make_miscompiled()
        ops = ops_for(nest, [a], {"a": 0}, env={"B": 8})
        released = [op[2][0] for op in releases(ops)]
        # Apparent stream crosses pages 0..7: releases trail it.
        assert released == [0, 1, 2, 3, 4, 5, 6, 7]


class TestReemit:
    def test_unknown_inner_bound_reemits_per_entry(self):
        """The CGM effect: hints re-emitted on every inner-loop entry."""
        a = Array("a", (64, 512))  # quarter-page rows
        stmt = Stmt(refs=(ArrayRef(a, (affine("i"), affine("k"))),))
        nnz = Symbol("nnz", estimate=512, known=False)
        nest = Nest(
            "n", Loop("i", 0, 64, body=(Loop("k", 0, nnz, body=(stmt,)),))
        )
        ops = ops_for(nest, [a], {"a": 0}, env={"nnz": 512})
        # 64 row entries, a prefetch hint per entry at least.
        assert len(prefetches(ops)) >= 64

    def test_known_bounds_do_not_reemit(self):
        a = Array("a", (64, 512))
        stmt = Stmt(refs=(ArrayRef(a, (affine("i"), affine("k"))),))
        nest = Nest("n", Loop("i", 0, 64, body=(Loop("k", 0, 512, body=(stmt,)),)))
        ops = ops_for(nest, [a], {"a": 0})
        # Page crossings only: 16 pages, prologue + steady state.
        assert len(prefetches(ops)) <= 17
