"""Unit and property tests for frames and the free list."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine
from repro.vm.frames import (
    FREED_BY_DAEMON,
    FREED_BY_RELEASE,
    Frame,
    FrameTable,
    FreeList,
)
from repro.vm.pagetable import AddressSpace


def make_freelist(n=8):
    engine = Engine()
    table = FrameTable(n)
    freelist = FreeList(engine, table)
    aspace = AddressSpace(engine, asid=1, name="proc")
    return engine, table, freelist, aspace


class TestFrame:
    def test_initial_state(self):
        frame = Frame(3)
        assert frame.index == 3
        assert not frame.present
        assert not frame.active

    def test_active_requires_owner_and_presence(self):
        engine = Engine()
        frame = Frame(0)
        frame.present = True
        assert not frame.active  # no owner
        frame.owner = AddressSpace(engine, 1, "p")
        assert frame.active
        frame.wired = True
        assert not frame.active

    def test_reset_identity_clears_bits(self):
        frame = Frame(0)
        frame.dirty = True
        frame.referenced = True
        frame.vpn = 7
        frame.reset_identity()
        assert not frame.dirty
        assert frame.vpn == -1


class TestFrameTable:
    def test_requires_at_least_one_frame(self):
        with pytest.raises(ValueError):
            FrameTable(0)

    def test_indexing_and_len(self):
        table = FrameTable(4)
        assert len(table) == 4
        assert table[2].index == 2

    def test_active_count(self):
        engine = Engine()
        table = FrameTable(4)
        aspace = AddressSpace(engine, 1, "p")
        table[0].owner = aspace
        table[0].present = True
        assert table.active_count() == 1


class TestFreeList:
    def test_all_frames_initially_free(self):
        _engine, table, freelist, _aspace = make_freelist(5)
        assert freelist.free_count == 5

    def test_pop_returns_frames_until_empty(self):
        _engine, _table, freelist, _aspace = make_freelist(3)
        frames = [freelist.pop() for _ in range(3)]
        assert all(frame is not None for frame in frames)
        assert freelist.pop() is None
        assert freelist.free_count == 0

    def test_double_push_rejected(self):
        _engine, _table, freelist, aspace = make_freelist()
        frame = freelist.pop()
        frame.owner = aspace
        frame.vpn = 1
        freelist.push(frame, FREED_BY_DAEMON)
        with pytest.raises(ValueError):
            freelist.push(frame, FREED_BY_DAEMON)

    def test_push_retains_identity_for_rescue(self):
        _engine, _table, freelist, aspace = make_freelist()
        frame = freelist.pop()
        frame.owner = aspace
        frame.vpn = 42
        freelist.push(frame, FREED_BY_RELEASE)
        assert freelist.rescuable(aspace, 42)
        rescued = freelist.rescue(aspace, 42)
        assert rescued is frame
        assert not freelist.rescuable(aspace, 42)

    def test_rescue_unknown_returns_none(self):
        _engine, _table, freelist, aspace = make_freelist()
        assert freelist.rescue(aspace, 999) is None

    def test_pop_destroys_identity(self):
        _engine, _table, freelist, aspace = make_freelist(1)
        frame = freelist.pop()
        frame.owner = aspace
        frame.vpn = 7
        freelist.push(frame, FREED_BY_RELEASE)
        popped = freelist.pop()
        assert popped is frame
        assert popped.vpn == -1
        assert not freelist.rescuable(aspace, 7)
        assert freelist.identity_destroyed == 1

    def test_fifo_order_gives_rescue_window(self):
        _engine, _table, freelist, aspace = make_freelist(4)
        frames = [freelist.pop() for _ in range(4)]
        for vpn, frame in enumerate(frames):
            frame.owner = aspace
            frame.vpn = vpn
            freelist.push(frame, FREED_BY_RELEASE)
        # Oldest pushed is allocated first.
        assert freelist.pop() is frames[0]
        # The rest remain rescuable.
        assert freelist.rescuable(aspace, 3)

    def test_lazy_removal_after_rescue(self):
        _engine, _table, freelist, aspace = make_freelist(2)
        first = freelist.pop()
        second = freelist.pop()
        for vpn, frame in ((0, first), (1, second)):
            frame.owner = aspace
            frame.vpn = vpn
            freelist.push(frame, FREED_BY_DAEMON)
        rescued = freelist.rescue(aspace, 0)
        assert rescued is first
        # Pop must skip the rescued frame and return the second.
        assert freelist.pop() is second
        assert freelist.free_count == 0

    def test_stale_identity_not_registered(self):
        """A page re-faulted into a new frame must not leave a rescuable
        stale copy when the old frame's writeback completes."""
        _engine, _table, freelist, aspace = make_freelist(3)
        old = freelist.pop()
        old.owner = aspace
        old.vpn = 5
        # Meanwhile the vpn was re-faulted into another frame.
        fresh = freelist.pop()
        aspace.attach(5, fresh)
        freelist.push(old, FREED_BY_DAEMON)
        assert not freelist.rescuable(aspace, 5)
        assert old.vpn == -1  # anonymised

    def test_rescue_source_statistics(self):
        _engine, _table, freelist, aspace = make_freelist(4)
        a = freelist.pop()
        b = freelist.pop()
        a.owner = aspace
        a.vpn = 0
        b.owner = aspace
        b.vpn = 1
        freelist.push(a, FREED_BY_DAEMON)
        freelist.push(b, FREED_BY_RELEASE)
        freelist.rescue(aspace, 0)
        freelist.rescue(aspace, 1)
        assert freelist.rescues_from_daemon == 1
        assert freelist.rescues_from_release == 1
        assert freelist.pushes_by_daemon == 1
        assert freelist.pushes_by_release == 1

    def test_wait_for_free_immediate_when_available(self):
        engine, _table, freelist, _aspace = make_freelist(1)
        event = freelist.wait_for_free()
        assert event.triggered

    def test_wait_for_free_wakes_on_push(self):
        engine, _table, freelist, aspace = make_freelist(1)
        frame = freelist.pop()
        frame.owner = aspace
        frame.vpn = 0
        woken = []

        def waiter():
            yield freelist.wait_for_free()
            woken.append(engine.now)

        engine.process(waiter())

        def pusher():
            yield engine.timeout(2.0)
            freelist.push(frame, FREED_BY_RELEASE)

        engine.process(pusher())
        engine.run()
        assert woken == [2.0]


class TestFreeListProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        operations=st.lists(
            st.tuples(st.sampled_from(["pop", "push", "rescue"]), st.integers(0, 15)),
            max_size=80,
        )
    )
    def test_frames_conserved_under_random_operations(self, operations):
        """No frame is ever lost or duplicated, and free_count always
        matches the number of allocatable frames."""
        engine = Engine()
        table = FrameTable(8)
        freelist = FreeList(engine, table)
        aspace = AddressSpace(engine, 1, "p")
        held = []  # frames currently allocated (owned by the process)
        for op, vpn in operations:
            if op == "pop":
                frame = freelist.pop()
                if frame is not None:
                    frame.owner = aspace
                    frame.vpn = vpn
                    if vpn in aspace.pages:
                        aspace.detach(vpn)
                        # put the displaced frame back in held bookkeeping
                    aspace.pages[vpn] = frame
                    held.append(frame)
            elif op == "push":
                if held:
                    frame = held.pop()
                    if aspace.pages.get(frame.vpn) is frame:
                        del aspace.pages[frame.vpn]
                    freelist.push(frame, FREED_BY_RELEASE)
            else:  # rescue
                frame = freelist.rescue(aspace, vpn)
                if frame is not None:
                    aspace.pages[frame.vpn] = frame
                    held.append(frame)
            # Invariant: every frame is either on the free list or held.
            on_list = sum(1 for f in table if f.on_free_list)
            assert on_list == freelist.free_count
            assert freelist.free_count + len(held) == len(table)

    @settings(max_examples=40, deadline=None)
    @given(vpns=st.lists(st.integers(0, 30), min_size=1, max_size=8, unique=True))
    def test_every_pushed_identity_is_rescuable_until_popped(self, vpns):
        engine = Engine()
        table = FrameTable(len(vpns))
        freelist = FreeList(engine, table)
        aspace = AddressSpace(engine, 1, "p")
        frames = [freelist.pop() for _ in vpns]
        for vpn, frame in zip(vpns, frames):
            frame.owner = aspace
            frame.vpn = vpn
            freelist.push(frame, FREED_BY_RELEASE)
        for vpn in vpns:
            assert freelist.rescuable(aspace, vpn)
        rescued = freelist.rescue(aspace, vpns[0])
        assert rescued.vpn == vpns[0]
