"""Unit and property tests for frames and the free list."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine
from repro.vm.frames import (
    F_ON_FREE_LIST,
    FREED_BY_DAEMON,
    FREED_BY_RELEASE,
    Frame,
    FrameTable,
    FreeList,
)
from repro.vm.pagetable import AddressSpace


def make_freelist(n=8):
    engine = Engine()
    table = FrameTable(n)
    freelist = FreeList(engine, table)
    aspace = AddressSpace(engine, asid=1, name="proc", frame_table=table)
    aspace.map_segment("data", 64)
    return engine, table, freelist, aspace


class TestFrame:
    def test_initial_state(self):
        table = FrameTable(4)
        frame = table[3]
        assert frame.index == 3
        assert not frame.present
        assert not frame.active

    def test_active_requires_owner_and_presence(self):
        engine = Engine()
        table = FrameTable(1)
        frame = table[0]
        frame.present = True
        assert not frame.active  # no owner
        frame.owner = AddressSpace(engine, 1, "p", table)
        assert frame.active
        frame.wired = True
        assert not frame.active

    def test_view_writes_hit_the_columns(self):
        table = FrameTable(2)
        view = table[1]
        view.dirty = True
        view.vpn = 9
        assert table.flags[1] & 0b1000  # F_DIRTY
        assert table.vpn[1] == 9
        assert Frame(table, 1).dirty
        assert Frame(table, 1) == view

    def test_reset_identity_clears_bits(self):
        table = FrameTable(1)
        frame = table[0]
        frame.dirty = True
        frame.referenced = True
        frame.vpn = 7
        frame.reset_identity()
        assert not frame.dirty
        assert frame.vpn == -1


class TestFrameTable:
    def test_requires_at_least_one_frame(self):
        with pytest.raises(ValueError):
            FrameTable(0)

    def test_indexing_and_len(self):
        table = FrameTable(4)
        assert len(table) == 4
        assert table[2].index == 2
        with pytest.raises(IndexError):
            table[4]

    def test_active_count(self):
        engine = Engine()
        table = FrameTable(4)
        aspace = AddressSpace(engine, 1, "p", table)
        table[0].owner = aspace
        table[0].present = True
        assert table.active_count() == 1


class TestFreeList:
    def test_all_frames_initially_free(self):
        _engine, table, freelist, _aspace = make_freelist(5)
        assert freelist.free_count == 5
        assert all(table[i].on_free_list for i in range(5))

    def test_pop_returns_frames_until_empty(self):
        _engine, _table, freelist, _aspace = make_freelist(3)
        indices = [freelist.pop() for _ in range(3)]
        assert sorted(indices) == [0, 1, 2]
        assert freelist.pop() is None
        assert freelist.free_count == 0

    def test_double_push_rejected(self):
        _engine, _table, freelist, aspace = make_freelist()
        index = freelist.pop()
        aspace.attach(1, index)
        aspace.detach(1)
        freelist.push(index, FREED_BY_DAEMON)
        with pytest.raises(ValueError):
            freelist.push(index, FREED_BY_DAEMON)

    def test_push_retains_identity_for_rescue(self):
        _engine, _table, freelist, aspace = make_freelist()
        index = freelist.pop()
        aspace.attach(42, index)
        aspace.detach(42)
        freelist.push(index, FREED_BY_RELEASE)
        assert freelist.rescuable(aspace, 42)
        rescued = freelist.rescue(aspace, 42)
        assert rescued == index
        assert not freelist.rescuable(aspace, 42)

    def test_rescue_unknown_returns_none(self):
        _engine, _table, freelist, aspace = make_freelist()
        assert freelist.rescue(aspace, 999) is None

    def test_pop_destroys_identity(self):
        _engine, table, freelist, aspace = make_freelist(1)
        index = freelist.pop()
        aspace.attach(7, index)
        aspace.detach(7)
        freelist.push(index, FREED_BY_RELEASE)
        popped = freelist.pop()
        assert popped == index
        assert table.vpn[popped] == -1
        assert not freelist.rescuable(aspace, 7)
        assert freelist.identity_destroyed == 1

    def test_fifo_order_gives_rescue_window(self):
        _engine, _table, freelist, aspace = make_freelist(4)
        indices = [freelist.pop() for _ in range(4)]
        for vpn, index in enumerate(indices):
            aspace.attach(vpn, index)
            aspace.detach(vpn)
            freelist.push(index, FREED_BY_RELEASE)
        # Oldest pushed is allocated first.
        assert freelist.pop() == indices[0]
        # The rest remain rescuable.
        assert freelist.rescuable(aspace, 3)

    def test_lazy_removal_after_rescue(self):
        _engine, _table, freelist, aspace = make_freelist(2)
        first = freelist.pop()
        second = freelist.pop()
        for vpn, index in ((0, first), (1, second)):
            aspace.attach(vpn, index)
            aspace.detach(vpn)
            freelist.push(index, FREED_BY_DAEMON)
        rescued = freelist.rescue(aspace, 0)
        assert rescued == first
        # Pop must skip the rescued frame and return the second.
        assert freelist.pop() == second
        assert freelist.free_count == 0

    def test_stale_identity_not_registered(self):
        """A page re-faulted into a new frame must not leave a rescuable
        stale copy when the old frame's writeback completes."""
        _engine, table, freelist, aspace = make_freelist(3)
        old = freelist.pop()
        aspace.attach(5, old)
        aspace.detach(5)
        # Meanwhile the vpn was re-faulted into another frame.
        fresh = freelist.pop()
        aspace.attach(5, fresh)
        freelist.push(old, FREED_BY_DAEMON)
        assert not freelist.rescuable(aspace, 5)
        assert table.vpn[old] == -1  # anonymised

    def test_rescue_source_statistics(self):
        _engine, _table, freelist, aspace = make_freelist(4)
        a = freelist.pop()
        b = freelist.pop()
        aspace.attach(0, a)
        aspace.attach(1, b)
        aspace.detach(0)
        aspace.detach(1)
        freelist.push(a, FREED_BY_DAEMON)
        freelist.push(b, FREED_BY_RELEASE)
        freelist.rescue(aspace, 0)
        freelist.rescue(aspace, 1)
        assert freelist.rescues_from_daemon == 1
        assert freelist.rescues_from_release == 1
        assert freelist.pushes_by_daemon == 1
        assert freelist.pushes_by_release == 1

    def test_wait_for_free_immediate_when_available(self):
        engine, _table, freelist, _aspace = make_freelist(1)
        event = freelist.wait_for_free()
        assert event.triggered

    def test_wait_for_free_wakes_on_push(self):
        engine, _table, freelist, aspace = make_freelist(1)
        index = freelist.pop()
        aspace.attach(0, index)
        aspace.detach(0)
        woken = []

        def waiter():
            yield freelist.wait_for_free()
            woken.append(engine.now)

        engine.process(waiter())

        def pusher():
            yield engine.timeout(2.0)
            freelist.push(index, FREED_BY_RELEASE)

        engine.process(pusher())
        engine.run()
        assert woken == [2.0]

    def test_waiters_wake_in_arrival_order(self):
        """Blocked allocators must be woken FIFO: the first process to
        block is the first to observe the freed frame."""
        engine, _table, freelist, aspace = make_freelist(1)
        index = freelist.pop()
        aspace.attach(0, index)
        aspace.detach(0)
        order = []

        def waiter(label, delay):
            yield engine.timeout(delay)
            yield freelist.wait_for_free()
            order.append(label)

        engine.process(waiter("first", 0.1))
        engine.process(waiter("second", 0.2))
        engine.process(waiter("third", 0.3))

        def pusher():
            yield engine.timeout(1.0)
            freelist.push(index, FREED_BY_RELEASE)

        engine.process(pusher())
        engine.run()
        assert order == ["first", "second", "third"]

    def test_wake_is_edge_triggered_per_push(self):
        """Every push wakes all currently-blocked waiters exactly once;
        waiters that block after the push wait for the next one."""
        engine, _table, freelist, aspace = make_freelist(2)
        a = freelist.pop()
        b = freelist.pop()
        aspace.attach(0, a)
        aspace.attach(1, b)
        aspace.detach(0)
        aspace.detach(1)
        wakes = []

        def early():
            yield freelist.wait_for_free()
            wakes.append(("early", engine.now))

        def late():
            yield engine.timeout(5.0)
            yield freelist.wait_for_free()
            wakes.append(("late", engine.now))

        engine.process(early())
        engine.process(late())

        def pusher():
            yield engine.timeout(1.0)
            freelist.push(a, FREED_BY_RELEASE)
            yield engine.timeout(9.0)
            freelist.push(b, FREED_BY_RELEASE)

        engine.process(pusher())
        engine.run()
        # "late" blocked at t=5 (after the t=1 push emptied nothing — the
        # freed frame is still free, so wait_for_free fires immediately).
        assert wakes == [("early", 1.0), ("late", 5.0)]


class TestFreeListProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        operations=st.lists(
            st.tuples(st.sampled_from(["pop", "push", "rescue"]), st.integers(0, 15)),
            max_size=80,
        )
    )
    def test_frames_conserved_under_random_operations(self, operations):
        """No frame is ever lost or duplicated, and free_count always
        matches the number of allocatable frames."""
        engine = Engine()
        table = FrameTable(8)
        freelist = FreeList(engine, table)
        aspace = AddressSpace(engine, 1, "p", table)
        aspace.map_segment("data", 16)
        held = []  # frame indices currently allocated (owned by the process)
        for op, vpn in operations:
            if op == "pop":
                index = freelist.pop()
                if index is not None:
                    if aspace.frame_index(vpn) >= 0:
                        aspace.detach(vpn)
                        # the displaced frame stays in held bookkeeping
                    aspace.attach(vpn, index)
                    held.append(index)
            elif op == "push":
                if held:
                    index = held.pop()
                    vpn = table.vpn[index]
                    if vpn >= 0 and aspace.frame_index(vpn) == index:
                        aspace.detach(vpn)
                    freelist.push(index, FREED_BY_RELEASE)
            else:  # rescue
                index = freelist.rescue(aspace, vpn)
                if index is not None:
                    if aspace.frame_index(vpn) >= 0:
                        aspace.detach(vpn)
                    aspace.reattach(vpn, index)
                    held.append(index)
            # Invariant: every frame is either on the free list or held.
            on_list = sum(
                1 for fl in table.flags if fl & F_ON_FREE_LIST
            )
            assert on_list == freelist.free_count
            assert freelist.free_count + len(held) == len(table)

    @settings(max_examples=40, deadline=None)
    @given(vpns=st.lists(st.integers(0, 30), min_size=1, max_size=8, unique=True))
    def test_every_pushed_identity_is_rescuable_until_popped(self, vpns):
        engine = Engine()
        table = FrameTable(len(vpns))
        freelist = FreeList(engine, table)
        aspace = AddressSpace(engine, 1, "p", table)
        aspace.map_segment("data", 32)
        indices = [freelist.pop() for _ in vpns]
        for vpn, index in zip(vpns, indices):
            aspace.attach(vpn, index)
            aspace.detach(vpn)
            freelist.push(index, FREED_BY_RELEASE)
        for vpn in vpns:
            assert freelist.rescuable(aspace, vpn)
        rescued = freelist.rescue(aspace, vpns[0])
        assert table.vpn[rescued] == vpns[0]
