"""The simulated interactive task (Section 1.1).

"A simple program emulates the memory system behavior of an interactive
task by repeatedly touching a 1 MB data set, then sleeping for a fixed
amount of time. ... The 'response time' is the time to touch the entire
data set."

The task runs under the OS's *default* policies — no policy module, no
hints — because the whole point of the paper is that the interactive task
needs no modification: only the memory hog changes its behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.config import SimScale
from repro.kernel.kernel import Kernel, KernelProcess

__all__ = ["InteractiveTask", "SweepSample"]


@dataclass
class SweepSample:
    """One sweep through the data set."""

    start_time: float
    response_time: float
    hard_faults: int
    soft_faults: int
    rescues: int


class InteractiveTask:
    """Touch ``pages`` pages, sleep, repeat; record per-sweep response."""

    #: Minimum gap between sweeps even at sleep 0 — a zero-sleep toucher
    #: re-touches its (resident) pages thousands of times per second; one
    #: millisecond between sweeps keeps the pages just as hot while keeping
    #: the event count finite.
    MIN_CYCLE_S = 0.001

    def __init__(
        self,
        kernel: Kernel,
        scale: SimScale,
        sleep_time_s: float,
        name: str = "interactive",
    ) -> None:
        self.kernel = kernel
        self.scale = scale
        self.sleep_time_s = sleep_time_s
        self.process: KernelProcess = kernel.create_process(name)
        self.pages = scale.interactive_pages
        self.segment = self.process.aspace.map_segment("data", self.pages)
        self.samples: List[SweepSample] = []
        self._stop = False

    def stop(self) -> None:
        self._stop = True

    # -- steady-state statistics -------------------------------------------
    def mean_response(self, skip_warmup: int = 1) -> float:
        """Mean response over sweeps after the cold-start warmup."""
        samples = self.samples[skip_warmup:] or self.samples
        if not samples:
            return 0.0
        return sum(s.response_time for s in samples) / len(samples)

    def mean_hard_faults(self, skip_warmup: int = 1) -> float:
        samples = self.samples[skip_warmup:] or self.samples
        if not samples:
            return 0.0
        return sum(s.hard_faults for s in samples) / len(samples)

    # -- the task body --------------------------------------------------------
    def run(self):
        """Process generator: sweep, record, sleep, repeat until stopped."""
        process = self.process
        stats = process.aspace.stats
        touch = process.touch
        while not self._stop:
            start = self.kernel.engine.now
            hard0 = stats.hard_faults
            soft0 = stats.soft_faults
            rescues0 = stats.rescues
            for vpn in self.segment:
                fault = touch(vpn, write=False)
                if fault is not None:
                    yield from fault
            yield from process.flush()
            self.samples.append(
                SweepSample(
                    start_time=start,
                    response_time=self.kernel.engine.now - start,
                    hard_faults=stats.hard_faults - hard0,
                    soft_faults=stats.soft_faults - soft0,
                    rescues=stats.rescues - rescues0,
                )
            )
            yield from process.task.sleep(
                max(self.sleep_time_s, self.MIN_CYCLE_S)
            )
