"""The benchmark registry and Table 2.

Table 2 of the paper summarises the characteristics of the five NAS
out-of-core benchmarks plus MATVEC; :func:`table2_rows` regenerates it for
any scale.
"""

from __future__ import annotations

from typing import Dict, List

from repro.config import MB, SimScale
from repro.workloads.base import OutOfCoreWorkload
from repro.workloads.buk import BukWorkload
from repro.workloads.cgm import CgmWorkload
from repro.workloads.embar import EmbarWorkload
from repro.workloads.fftpde import FftpdeWorkload
from repro.workloads.matvec import MatvecWorkload
from repro.workloads.mgrid import MgridWorkload

__all__ = ["BENCHMARKS", "benchmark", "table2_rows"]

BENCHMARKS: Dict[str, OutOfCoreWorkload] = {
    workload.name: workload
    for workload in (
        EmbarWorkload(),
        MatvecWorkload(),
        BukWorkload(),
        CgmWorkload(),
        MgridWorkload(),
        FftpdeWorkload(),
    )
}


def benchmark(name: str) -> OutOfCoreWorkload:
    try:
        return BENCHMARKS[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {sorted(BENCHMARKS)}"
        ) from None


def table2_rows(scale: SimScale) -> List[Dict[str, object]]:
    """Benchmark characteristics at the given scale (the paper's Table 2)."""
    rows = []
    page_size = scale.machine.page_size
    for name, workload in BENCHMARKS.items():
        instance = workload.build(scale)
        pages = sum(
            arr.pages(instance.env, page_size) for arr in instance.program.arrays
        )
        rows.append(
            {
                "benchmark": name,
                "description": workload.description,
                "data_set_mb": round(pages * page_size / MB, 1),
                "data_set_pages": pages,
                "analysis_hazard": workload.analysis_hazard,
                "nests": len(instance.program.nests),
            }
        )
    return rows
