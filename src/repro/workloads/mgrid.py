"""MGRID: the NAS multigrid kernel, out-of-core version.

MGRID smooths a hierarchy of grids in V-cycles, calling *the same compiled
routine* at every level.  Table 2 and Section 4.2: "the loop bounds change
dynamically on different calls to the same procedures, making it impossible
to release memory optimally in all cases, since we only generate a single
version of the code."

We reproduce that failure structurally.  All grid levels live in one
workspace array (as in the real Fortran code).  The compiled smoothing
routine's address arithmetic bakes in the *fine-grid* row stride — correct
for level 0, wrong for every coarser level.  Coarse-level references are
therefore :class:`~repro.core.compiler.ir.VaryingStrideRef` s with
``hints_follow_apparent=True``: the *touches* use the true level geometry
while the *hint addresses* follow the miscompiled fine-stride form.  The
consequences are exactly Figure 9's MGRID row:

- coarse-level releases land on the wrong pages — often pages of other
  levels that are still in use, which are freed prematurely and must be
  **rescued** from the free list ("more than half of the pages explicitly
  released are reclaimed from the free list");
- the coarse grids' real pages are never released, so the **paging daemon
  stays busy** even with releasing ("over half of the pages freed are
  reclaimed by the paging daemon");
- the fine level — the bulk of the data — is released correctly, which is
  why releasing still helps MGRID overall in Figure 7.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.config import SimScale
from repro.core.compiler.ir import (
    AffineExpr,
    Array,
    ArrayRef,
    Loop,
    Nest,
    Program,
    Stmt,
    Symbol,
    VaryingStrideRef,
)
from repro.workloads.base import OutOfCoreWorkload, WorkloadInstance

__all__ = ["MgridWorkload"]


def _linear(cols: int, base: int, row_offset: int) -> Tuple[AffineExpr, ...]:
    """Subscript ``base + (i + row_offset)*cols + j`` into the workspace."""
    return (AffineExpr.build({"i": cols, "j": 1}, base + row_offset * cols),)


class MgridWorkload(OutOfCoreWorkload):
    name = "MGRID"
    description = "multigrid Poisson solver (NAS MG)"
    analysis_hazard = "bounds change across calls to a single compiled version"

    repeats = 2
    levels = 4

    def build(self, scale: SimScale) -> WorkloadInstance:
        page_elements = scale.machine.page_elements
        total_pages = scale.out_of_core_pages
        fine_pages = max(16, (total_pages * 2) // 5)

        # Fine-grid geometry: whole-page rows, roughly square.
        row_pages0 = max(2, int(round(fine_pages ** 0.5 / 8)))
        cols0 = row_pages0 * page_elements
        rows0 = max(8, fine_pages // row_pages0)
        # Make rows/cols cleanly halvable across the hierarchy.
        halving = 1 << (self.levels - 1)
        rows0 -= rows0 % halving
        geometry: List[Tuple[int, int]] = [
            (rows0 >> level, cols0 >> level) for level in range(self.levels)
        ]

        # Lay out u_l and r_l consecutively in one workspace array.
        offsets_u: List[int] = []
        offsets_r: List[int] = []
        cursor = 0
        for rows, cols in geometry:
            offsets_u.append(cursor)
            cursor += rows * cols
            offsets_r.append(cursor)
            cursor += rows * cols
        grid = Array("grid", (cursor,))

        nests: List[Nest] = []
        env: Dict[str, int] = {}
        for level, (rows, cols) in enumerate(geometry):
            off_u = offsets_u[level]
            off_r = offsets_r[level]
            if level == 0:
                # The compiled version is correct for the fine grid.
                u_lead = ArrayRef(grid, _linear(cols, off_u, +1))
                u_mid = ArrayRef(grid, _linear(cols, off_u, 0), is_write=True)
                u_trail = ArrayRef(grid, _linear(cols, off_u, -1))
                r_ref = ArrayRef(grid, _linear(cols, off_r, 0))
            else:
                # Coarser levels: real geometry for the touches, but the
                # compiled (fine-stride) form for the hint addresses.
                def make_actual(
                    base: int, row_offset: int, level_cols: int
                ) -> Callable[[Dict[str, int]], Tuple[AffineExpr, ...]]:
                    def actual(_env: Dict[str, int]) -> Tuple[AffineExpr, ...]:
                        return _linear(level_cols, base, row_offset)

                    return actual

                def vref(base: int, row_offset: int, write: bool = False):
                    return VaryingStrideRef(
                        grid,
                        apparent_subscripts=_linear(cols0, base, row_offset),
                        actual_subscripts=make_actual(base, row_offset, cols),
                        is_write=write,
                        hints_follow_apparent=True,
                    )

                u_lead = vref(off_u, +1)
                u_mid = vref(off_u, 0, write=True)
                u_trail = vref(off_u, -1)
                r_ref = vref(off_r, 0)

            smooth = Stmt(refs=(u_lead, u_mid, u_trail, r_ref), flops=4.0)
            rows_sym = Symbol(f"rows{level}", estimate=rows - 1, known=False)
            cols_sym = Symbol(f"cols{level}", estimate=cols, known=False)
            env[f"rows{level}"] = rows - 1
            env[f"cols{level}"] = cols
            nests.append(
                Nest(
                    f"smooth{level}",
                    Loop(
                        "i",
                        1,
                        rows_sym,
                        body=(Loop("j", 0, cols_sym, body=(smooth,)),),
                    ),
                )
            )

        program = Program("mgrid", (grid,), tuple(nests))
        down = [(f"smooth{level}", {}) for level in range(self.levels)]
        up = [(f"smooth{level}", {}) for level in range(self.levels - 2, -1, -1)]
        return WorkloadInstance(
            name=self.name,
            program=program,
            env=env,
            repeats=self.repeats,
            invocations=down + up,
            rng_seed=scale.rng_seed,
        )
