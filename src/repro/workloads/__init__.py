"""The benchmark workloads (Table 2 of the paper) and the interactive task.

Each out-of-core benchmark is expressed as loop-nest IR that is fed through
the *real* compiler pass — so the hints each version runs with, including
the compiler's documented failures (CGM's unnecessary hints, MGRID's
inter-nest blindness, FFTPDE's stride misclassification), are produced by
the analysis itself, not scripted.

- MATVEC — the matrix-vector kernel of Figures 1/5/10(a);
- EMBAR, BUK, CGM, MGRID, FFTPDE — the five out-of-core NAS benchmarks;
- INTERACTIVE — the 1 MB touch-then-sleep task of Section 1.1.
"""

from repro.workloads.base import (
    OutOfCoreWorkload,
    WorkloadInstance,
    app_driver,
    build_layout,
    observed_ops,
)
from repro.workloads.buk import BukWorkload
from repro.workloads.cgm import CgmWorkload
from repro.workloads.embar import EmbarWorkload
from repro.workloads.fftpde import FftpdeWorkload
from repro.workloads.interactive import InteractiveTask, SweepSample
from repro.workloads.matvec import MatvecWorkload
from repro.workloads.mgrid import MgridWorkload
from repro.workloads.suite import BENCHMARKS, benchmark, table2_rows

# Imported last: repro.trace.workload imports back into the machine and
# workload layers at call time, so it must see this package fully formed.
from repro.trace.workload import TraceWorkload, trace_process_spec  # noqa: E402

__all__ = [
    "BENCHMARKS",
    "BukWorkload",
    "CgmWorkload",
    "EmbarWorkload",
    "FftpdeWorkload",
    "InteractiveTask",
    "MatvecWorkload",
    "MgridWorkload",
    "OutOfCoreWorkload",
    "SweepSample",
    "TraceWorkload",
    "WorkloadInstance",
    "app_driver",
    "benchmark",
    "build_layout",
    "observed_ops",
    "table2_rows",
    "trace_process_spec",
]
