"""MATVEC: the out-of-core matrix-vector multiplication kernel.

The paper's running example (Figures 1, 5, 10(a)): ``y[i] += A[i][j]*x[j]``
over a 400 MB matrix, performed repeatedly.  Everything about its hint
behaviour follows from the analysis:

- ``A`` has no temporal reuse → released at **priority 0** (freed eagerly
  under both release policies);
- ``x`` has temporal reuse carried by the ``i`` loop, but the reuse volume
  (one matrix row plus the vector) exceeds the memory the compiler counts
  on in a multiprogrammed setting → released *despite reuse* at
  **priority 1**;
- ``y`` has temporal reuse carried by the innermost loop with a tiny
  volume → captured; no hints.

Aggressive releasing therefore frees the vector every row and the
application fights the releaser to get it back (the paper's Section 4.3
contention story); buffering retains the vector — the dramatic win of
Figure 7's MATVEC-B bar.
"""

from __future__ import annotations

from repro.config import SimScale
from repro.core.compiler.ir import Array, ArrayRef, Loop, Nest, Program, Stmt, affine
from repro.workloads.base import OutOfCoreWorkload, WorkloadInstance

__all__ = ["MatvecWorkload"]


class MatvecWorkload(OutOfCoreWorkload):
    name = "MATVEC"
    description = "dense matrix-vector multiply, repeated"
    analysis_hazard = "multi-dimensional loops with known bounds (none)"

    #: how many matrix repetitions one "run" performs
    repeats = 2

    def build(self, scale: SimScale) -> WorkloadInstance:
        page_elements = scale.machine.page_elements
        total_pages = scale.out_of_core_pages
        # Rows of ~1 MB at paper scale (64 pages); the vector matches a row.
        row_pages = max(4, total_pages // 400)
        rows = max(8, total_pages // row_pages)
        cols = row_pages * page_elements

        matrix = Array("A", (rows, cols))
        x = Array("x", (cols,))
        y = Array("y", (rows,))
        stmt = Stmt(
            refs=(
                ArrayRef(matrix, (affine("i"), affine("j"))),
                ArrayRef(x, (affine("j"),)),
                ArrayRef(y, (affine("i"),), is_write=True),
            ),
            flops=2.0,
        )
        nest = Nest(
            "multiply",
            Loop("i", 0, rows, body=(Loop("j", 0, cols, body=(stmt,)),)),
        )
        program = Program("matvec", (matrix, x, y), (nest,))
        return WorkloadInstance(
            name=self.name,
            program=program,
            env={},
            repeats=self.repeats,
            invocations=[("multiply", {})],
            rng_seed=scale.rng_seed,
        )
