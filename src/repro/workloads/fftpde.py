"""FFTPDE: the NAS 3-D FFT PDE kernel, out-of-core version.

FFTPDE is the compiler's hardest case (Table 2, Sections 4.2/4.3): "the
access stride changes within a set of loops, making it seem as though the
access is not dependent on the loop induction variable.  This causes the
compiler to identify some releases as having reuse when in fact none
exists."

We reproduce the hazard structurally:

- the big data array ``fftdata`` is accessed through a
  :class:`~repro.core.compiler.ir.VaryingStrideRef`: the subscript the
  compiler sees strides only with the innermost loop, so reuse analysis
  reports temporal reuse carried by the stage and block loops
  (priority 2⁰+2¹ = 3) — reuse the changing real strides never realise at
  any useful distance;
- the small twiddle table is genuinely hot, and the checksum stream has no
  reuse (priority 0) — but almost all of FFTPDE's release traffic carries
  a positive priority.

Under release buffering this is poison: nearly everything is buffered
"for reuse", the priority-0 stream is far too small to keep free memory
up, and once the pressure trigger's hysteresis disarms, the layer
"performs very few useful releases" — the paging daemon takes over
(Figure 9's FFTPDE-B breakdown) and the interactive task suffers (the one
exception in Figure 10(b)).  Aggressive releasing, which issues every
surviving hint immediately, works fine.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.config import SimScale
from repro.core.compiler.ir import (
    AffineExpr,
    Array,
    ArrayRef,
    Loop,
    Nest,
    Program,
    Stmt,
    Symbol,
    VaryingStrideRef,
    affine,
)
from repro.workloads.base import OutOfCoreWorkload, WorkloadInstance

__all__ = ["FftpdeWorkload"]

# Page-hop per stage: odd and coprime to the ten-disk stripe so every
# stage keeps all spindles busy; offsets tile so stages cover different
# page subsets (no real short-range inter-stage reuse).
_HOPS = (1, 3, 7, 9)


class FftpdeWorkload(OutOfCoreWorkload):
    name = "FFTPDE"
    description = "3-D FFT-based PDE solver (NAS FT)"
    analysis_hazard = "access stride changes within loops (misclassified reuse)"

    repeats = 2
    stages = 12
    blocks_per_stage = 4

    def build(self, scale: SimScale) -> WorkloadInstance:
        machine = scale.machine
        page_elements = machine.page_elements
        data_pages = max(16, (scale.out_of_core_pages * 7) // 10)
        # Pages each (stage, block) pass walks.
        block_pages = max(4, data_pages // (self.blocks_per_stage * max(_HOPS)))

        data = Array("fftdata", (data_pages * page_elements,))
        # The root-of-unity table: swept once per block pass, small enough
        # to be hot.
        twiddle_elems = block_pages * (page_elements // 16)
        twiddle = Array("twiddle", (twiddle_elems,))
        chksum = Array(
            "chksum", (self.stages, self.blocks_per_stage, block_pages)
        )

        stages_sym = Symbol("stages", estimate=self.stages, known=False)
        blocks_sym = Symbol("blocks", estimate=self.blocks_per_stage, known=False)
        bpages_sym = Symbol("block_pages", estimate=block_pages, known=False)

        max_start = data_pages * page_elements

        def actual_subscripts(env: Dict[str, int]) -> Tuple[AffineExpr, ...]:
            """The real access: stride and origin change with (stage, block).

            Origins tile the array so successive passes mostly touch fresh
            pages — the claimed (stage/block-carried) reuse really does not
            exist at short range, as the paper says.
            """
            stage = env["s"]
            block = env["m"]
            hop = _HOPS[stage % len(_HOPS)]
            stride = hop * page_elements
            span = block_pages * stride
            slot = stage * self.blocks_per_stage + block
            # Long-stride tiling: successive passes land far apart, so any
            # page revisit is far beyond both memory and the free list.
            tile_elems = (max_start // 5) - ((max_start // 5) % page_elements)
            offset = (slot * tile_elems) % max(1, max_start - span)
            offset -= offset % page_elements
            return (AffineExpr.build({"b": stride}, offset),)

        data_ref = VaryingStrideRef(
            data,
            # What the compiler sees: a plain unit-page stride in b.
            apparent_subscripts=(affine("b", coeff=page_elements),),
            actual_subscripts=actual_subscripts,
            # The strided passes read the transform planes; results
            # accumulate into the (small) checksum stream, so the big
            # array's pages are clean when evicted.
            is_write=False,
        )
        twiddle_ref = ArrayRef(
            twiddle, (AffineExpr.build({"b": page_elements // 16}),)
        )
        chksum_ref = ArrayRef(
            chksum, (affine("s"), affine("m"), affine("b")), is_write=True
        )
        butterfly = Stmt(
            refs=(data_ref, twiddle_ref, chksum_ref),
            # One b-iteration processes one page worth of butterflies.
            flops=float(page_elements),
        )
        nest = Nest(
            "fft_stages",
            Loop(
                "s",
                0,
                stages_sym,
                body=(
                    Loop(
                        "m",
                        0,
                        blocks_sym,
                        body=(Loop("b", 0, bpages_sym, body=(butterfly,)),),
                    ),
                ),
            ),
        )
        program = Program("fftpde", (data, twiddle, chksum), (nest,))
        env = {
            "stages": self.stages,
            "blocks": self.blocks_per_stage,
            "block_pages": block_pages,
        }
        return WorkloadInstance(
            name=self.name,
            program=program,
            env=env,
            repeats=self.repeats,
            invocations=[("fft_stages", {})],
            rng_seed=scale.rng_seed,
        )
