"""CGM: the NAS conjugate-gradient kernel, out-of-core version.

CGM's analysis hazards (Table 2) are *unknown loop bounds and indirect
references*:

- the sparse matrix-vector product walks each row's entries in an inner
  loop whose trip count (nonzeros per row) the compiler cannot know.
  Because it cannot strip-mine the loop, the software-pipelined
  prologue/epilogue hints execute on **every row entry** — the "very large
  number of unnecessary prefetch and release requests [that] need to be
  filtered out by the run-time layer", visible as CGM's user-time overhead
  in Figure 7;
- the column-indexed gather ``p[col[k]]`` is an indirect reference:
  prefetched through runtime-computed addresses, never released;
- the per-iteration vector updates run over vectors that comfortably fit in
  memory, but with bounds unknown the compiler hints them anyway; the
  bitmap filter drops the prefetches, and the released vector pages are
  cheaply rescued from the (large, thanks to the matrix releases) free
  list on the next iteration.
"""

from __future__ import annotations

from repro.config import SimScale
from repro.core.compiler.ir import (
    Array,
    ArrayRef,
    IndirectRef,
    Loop,
    Nest,
    Program,
    Stmt,
    Symbol,
    affine,
)
from repro.workloads.base import OutOfCoreWorkload, WorkloadInstance

__all__ = ["CgmWorkload"]


class CgmWorkload(OutOfCoreWorkload):
    name = "CGM"
    description = "sparse conjugate gradient (NAS CG)"
    analysis_hazard = "unknown loop bounds and indirect references"

    #: conjugate-gradient iterations per run
    repeats = 2
    #: sparse-matrix entries per row (about half a page: the "small loops")
    nonzeros_per_row = 1024

    def build(self, scale: SimScale) -> WorkloadInstance:
        page_elements = scale.machine.page_elements
        total_pages = scale.out_of_core_pages
        matrix_pages = max(4, (total_pages * 4) // 5)
        vector_pages = max(1, scale.machine.total_frames // 75)  # ~1 MB each

        rows = max(4, matrix_pages * page_elements // self.nonzeros_per_row)
        amat = Array("amat", (rows, self.nonzeros_per_row))
        n = vector_pages * page_elements
        p = Array("p", (n,))
        q = Array("q", (n,))
        r = Array("r", (n,))
        z = Array("z", (n,))

        rows_bound = Symbol("rows", estimate=rows, known=False)
        nnz_bound = Symbol("nnz_row", estimate=self.nonzeros_per_row, known=False)
        n_bound = Symbol("n", estimate=n, known=False)

        amat_ref = ArrayRef(amat, (affine("i"), affine("k")))
        spmv = Stmt(
            refs=(
                amat_ref,
                IndirectRef(p, amat_ref, is_write=False),
                ArrayRef(q, (affine("i"),), is_write=True),
            ),
            flops=2.0,
        )
        matvec_nest = Nest(
            "sparse_matvec",
            Loop(
                "i",
                0,
                rows_bound,
                body=(Loop("k", 0, nnz_bound, body=(spmv,)),),
            ),
        )

        axpy = Stmt(
            refs=(
                ArrayRef(z, (affine("j"),), is_write=True),
                ArrayRef(q, (affine("j"),)),
                ArrayRef(p, (affine("j"),)),
            ),
            flops=2.0,
        )
        update_nest = Nest("vector_update", Loop("j", 0, n_bound, body=(axpy,)))

        residual = Stmt(
            refs=(
                ArrayRef(r, (affine("m"),), is_write=True),
                ArrayRef(z, (affine("m"),)),
            ),
            flops=2.0,
        )
        residual_nest = Nest("residual", Loop("m", 0, n_bound, body=(residual,)))

        program = Program(
            "cgm", (amat, p, q, r, z), (matvec_nest, update_nest, residual_nest)
        )
        env = {
            "rows": rows,
            "nnz_row": self.nonzeros_per_row,
            "n": n,
        }
        return WorkloadInstance(
            name=self.name,
            program=program,
            env=env,
            repeats=self.repeats,
            invocations=[
                ("sparse_matvec", {}),
                ("vector_update", {}),
                ("residual", {}),
            ],
            rng_seed=scale.rng_seed,
        )
