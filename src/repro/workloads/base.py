"""Workload plumbing: instances, layout, and the application driver.

A workload contributes three things:

1. an IR :class:`~repro.core.compiler.ir.Program` for the compiler pass;
2. the runtime environment (symbol values the compiler may not have known);
3. an *invocation sequence*: which nests run, in what order, under what
   per-invocation environment overrides (MGRID's changing grid levels,
   FFTPDE's changing strides).

``app_driver`` turns a compiled program into a simulated process: it plays
the interpreter's op stream against the kernel, batching resident compute
time and routing every hint through the run-time layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.config import SimScale
from repro.core.compiler.codegen import CompiledProgram
from repro.core.compiler.interp import nest_ops
from repro.core.compiler.ir import Program
from repro.core.compiler.pipeline import compile_program
from repro.core.runtime.layer import RuntimeLayer
from repro.core.runtime.policies import VersionConfig
from repro.kernel.kernel import Kernel, KernelProcess
from repro.vm import fastlane
from repro.vm.frames import F_DIRTY, F_IN_TRANSIT, F_REFERENCED, F_SW_VALID

__all__ = [
    "OutOfCoreWorkload",
    "WorkloadInstance",
    "app_driver",
    "build_layout",
    "observed_ops",
]

Invocation = Tuple[str, Dict[str, int]]


@dataclass
class WorkloadInstance:
    """A workload sized for a concrete scale, ready to compile and run."""

    name: str
    program: Program
    env: Dict[str, int]
    repeats: int
    invocations: List[Invocation]
    rng_seed: int = 0

    def compiled(self, scale: SimScale) -> CompiledProgram:
        return compile_program(self.program, scale.compiler)

    def total_invocations(self) -> int:
        return self.repeats * len(self.invocations)


class OutOfCoreWorkload:
    """Base class for the six out-of-core benchmarks.

    Subclasses define :meth:`build`; everything else (Table 2 metadata) is
    class attributes.
    """

    name: str = "abstract"
    description: str = ""
    analysis_hazard: str = ""

    def build(self, scale: SimScale) -> WorkloadInstance:
        raise NotImplementedError

    def dataset_pages(self, scale: SimScale) -> int:
        instance = self.build(scale)
        page_size = scale.machine.page_size
        return sum(
            arr.pages(instance.env, page_size) for arr in instance.program.arrays
        )


def build_layout(
    process: KernelProcess, instance: WorkloadInstance, page_size: int
) -> Dict[str, int]:
    """Map every array of the program onto contiguous virtual pages."""
    layout: Dict[str, int] = {}
    for array in instance.program.arrays:
        pages = array.pages(instance.env, page_size)
        segment = process.aspace.map_segment(array.name, pages)
        layout[array.name] = segment.start
    return layout


def observed_ops(obs, process_name: str, ops):
    """Mirror an op stream onto the bus as ``trace.op`` events.

    The payload dict is reused across emissions (the bus contract lets
    payloads be interned; sinks copy what they keep), so capture costs one
    dict store and one emit per op — and nothing at all when no sink
    subscribes, because callers gate on ``Bus.wants("trace.op")``.
    """
    emit = obs.emit
    payload = {"process": process_name, "op": None}
    for op in ops:
        payload["op"] = op
        emit("trace.op", payload)
        yield op


def app_driver(
    process: KernelProcess,
    runtime: RuntimeLayer,
    compiled: CompiledProgram,
    instance: WorkloadInstance,
    layout: Dict[str, int],
    version: VersionConfig,
    scale: SimScale,
):
    """Process generator: run the (possibly hint-annotated) executable.

    Version selection follows the paper: O runs with no hints at all, P
    emits only prefetches, R and B emit both (the runtime layer decides
    what to do with the releases).
    """
    machine = scale.machine
    quantum = scale.time_quantum_s
    emit_prefetch = version.prefetch
    emit_release = version.release
    obs = process.kernel.obs
    trace_obs = obs if obs is not None and obs.wants("trace.op") else None
    handle_prefetch = runtime.handle_prefetch
    handle_release = runtime.handle_release
    run_touches = process.run_touches
    aspace = process.aspace
    pt = aspace.pt
    task = process.task
    buckets = task.buckets
    timeout = process.engine.timeout
    vm_fault = process.kernel.vm.fault
    flags = process.kernel.vm._flags
    in_mask = F_SW_VALID | F_IN_TRANSIT
    bits_read = F_REFERENCED
    bits_write = F_REFERENCED | F_DIRTY
    resident_touch_s = machine.resident_touch_s
    counters = fastlane.COUNTERS
    nops = 0
    # The interpreter is deterministic, so invocation i produces the same op
    # stream on every repeat; materialise each stream once and replay the
    # list, which skips the whole interpreter (runner construction, loop
    # walking, chunking) for repeats 2..N.
    cached_streams = (
        [None] * len(instance.invocations) if instance.repeats > 1 else None
    )
    for _rep in range(instance.repeats):
        for inv_index, (nest_name, overrides) in enumerate(instance.invocations):
            # Workloads with static environments (most of them) share the
            # instance dict; only per-invocation overrides pay for a copy.
            if overrides:
                env = dict(instance.env)
                env.update(overrides)
            else:
                env = instance.env
            if cached_streams is not None:
                ops = cached_streams[inv_index]
                if ops is None:
                    ops = cached_streams[inv_index] = list(
                        nest_ops(
                            compiled.nests[nest_name],
                            env,
                            layout,
                            machine,
                            rng_seed=instance.rng_seed,
                            emit_prefetch=emit_prefetch,
                            emit_release=emit_release,
                        )
                    )
            else:
                ops = nest_ops(
                    compiled.nests[nest_name],
                    env,
                    layout,
                    machine,
                    rng_seed=instance.rng_seed,
                    emit_prefetch=emit_prefetch,
                    emit_release=emit_release,
                )
            if trace_obs is not None:
                ops = observed_ops(trace_obs, process.name, ops)
            # The op loop keeps the user-time batch in a local mirror of
            # process.pending_user (synced around every yield and every
            # call that charges through the process), and inlines the
            # touch_fast hit test to one page-table probe plus one mask
            # compare.  The accounting is add-for-add identical to the
            # process.touch/charge path.
            pending = process.pending_user
            npt = len(pt)
            for op in ops:
                nops += 1
                kind = op[0]
                if kind == "t":
                    vpn = op[1]
                    index = pt[vpn] if vpn < npt else -1
                    if index >= 0 and flags[index] & in_mask == F_SW_VALID:
                        flags[index] |= bits_write if op[2] else bits_read
                        pending += resident_touch_s
                        if pending >= quantum:
                            # process.flush() inlined (the quantum is
                            # positive, so pending > 0 holds here).
                            yield timeout(pending)
                            buckets.user += pending
                            pending = 0.0
                    else:
                        # process._fault inlined (flush, then the kernel
                        # fault path): one less generator frame per miss.
                        process.pending_user = 0.0
                        if pending > 0:
                            yield timeout(pending)
                            buckets.user += pending
                        yield from vm_fault(task, aspace, vpn, op[2])
                        pending = 0.0
                        npt = len(pt)
                elif kind == "w":
                    pending += op[1]
                    if pending >= quantum:
                        yield timeout(pending)
                        buckets.user += pending
                        pending = 0.0
                elif kind == "T":
                    # Run of sequential full-page touches: the bulk lane
                    # (or its per-page fallback) replicates the unbatched
                    # stream's checkpoints bit-for-bit.
                    process.pending_user = pending
                    yield from run_touches(op[1], op[2], op[3], op[4])
                    pending = process.pending_user
                    npt = len(pt)
                elif kind == "p":
                    process.pending_user = pending
                    handle_prefetch(op[1], op[2])
                    pending = process.pending_user
                else:  # 'r'
                    process.pending_user = pending
                    handle_release(op[1], op[2], op[3])
                    pending = process.pending_user
            process.pending_user = pending
    counters["ops"] += nops
    if emit_release:
        runtime.flush_tag_filters()
    yield from process.flush()


def run_standalone(
    kernel: Kernel,
    instance: WorkloadInstance,
    version: VersionConfig,
    scale: SimScale,
):
    """Convenience used by tests: set up a process + runtime and return
    (process, runtime, driver generator)."""
    process = kernel.create_process(instance.name)
    layout = build_layout(process, instance, scale.machine.page_size)
    pm = kernel.attach_policy(process)
    runtime = RuntimeLayer(process, pm, scale.runtime, version)
    compiled = instance.compiled(scale)
    driver = app_driver(
        process, runtime, compiled, instance, layout, version, scale
    )
    return process, runtime, driver
