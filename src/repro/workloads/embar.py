"""EMBAR: the embarrassingly-parallel NAS kernel, out-of-core version.

EMBAR generates batches of Gaussian deviates and tallies them.  As Table 2
notes it has *only one-dimensional loops with known bounds*, so "the
compiler analysis is essentially perfect": the big deviate array streams
through memory exactly once per pass, every release is priority 0, and
both run-time policies behave identically.

It is also the most compute-heavy benchmark (transcendentals per element),
which is why the paper's release speedup over prefetching-alone is smallest
here (~13%): there is less paging-daemon interference to remove when the
CPU, not the disk, paces the program.
"""

from __future__ import annotations

from repro.config import SimScale
from repro.core.compiler.ir import Array, ArrayRef, Loop, Nest, Program, Stmt, affine
from repro.workloads.base import OutOfCoreWorkload, WorkloadInstance

__all__ = ["EmbarWorkload"]


class EmbarWorkload(OutOfCoreWorkload):
    name = "EMBAR"
    description = "Gaussian-deviate generation and tally (NAS EP)"
    analysis_hazard = "one-dimensional loops only (none)"

    repeats = 2
    #: flops per element — EMBAR does logs/square-roots per deviate
    work_per_element = 8.0

    def build(self, scale: SimScale) -> WorkloadInstance:
        page_elements = scale.machine.page_elements
        elements = scale.out_of_core_pages * page_elements

        deviates = Array("gauss", (elements,))
        generate = Stmt(
            refs=(ArrayRef(deviates, (affine("i"),), is_write=True),),
            flops=self.work_per_element,
        )
        tally = Stmt(
            refs=(ArrayRef(deviates, (affine("k"),)),),
            flops=2.0,
        )
        program = Program(
            "embar",
            (deviates,),
            (
                Nest("generate", Loop("i", 0, elements, body=(generate,))),
                Nest("tally", Loop("k", 0, elements, body=(tally,))),
            ),
        )
        return WorkloadInstance(
            name=self.name,
            program=program,
            env={},
            repeats=self.repeats,
            invocations=[("generate", {}), ("tally", {})],
            rng_seed=scale.rng_seed,
        )
