"""BUK: the NAS integer bucket-sort kernel, out-of-core version.

Section 4.3's replacement-policy story: the data set is two very large
*sequentially*-accessed arrays (the keys and the permuted output) plus a
large *randomly*-accessed array (the bucket counts, indexed by key value).
The compiler inserts releases for the sequential arrays but — because
"it cannot reason about any locality" of the indirect reference — never
for the random one.  Demand for new pages is then satisfied entirely by
the released sequential pages, and the random array remains mostly in
memory: the compiler's choices alone improve on the OS's
last-use-ordered replacement, which evicts from all three arrays alike.

Loop bounds (the number of keys) are unknown at compile time (Table 2).
Random accesses follow the trace-sampling rule of DESIGN.md §4.
"""

from __future__ import annotations

from repro.config import SimScale
from repro.core.compiler.ir import (
    Array,
    ArrayRef,
    IndirectRef,
    Loop,
    Nest,
    Program,
    Stmt,
    Symbol,
    affine,
)
from repro.workloads.base import OutOfCoreWorkload, WorkloadInstance

__all__ = ["BukWorkload"]


class BukWorkload(OutOfCoreWorkload):
    name = "BUK"
    description = "integer bucket sort (NAS IS)"
    analysis_hazard = "unknown loop bounds and indirect references"

    repeats = 2

    def build(self, scale: SimScale) -> WorkloadInstance:
        page_elements = scale.machine.page_elements
        total_pages = scale.out_of_core_pages
        # The random array is sized to fit in memory once the sequential
        # arrays are released (it "remains mostly in memory", Section 4.3) —
        # but far too big to survive global replacement when the sequential
        # streams compete with it.
        rank_pages = max(2, min(total_pages // 8, (scale.machine.total_frames * 3) // 4))
        seq_pages = max(2, (total_pages - rank_pages) // 2)  # keys and output

        nkeys = seq_pages * page_elements
        keys = Array("key", (nkeys,))
        output = Array("key2", (nkeys,))
        rank = Array("rank", (rank_pages * page_elements,))
        n = Symbol("nkeys", estimate=nkeys, known=False)

        key_read_count = ArrayRef(keys, (affine("i"),))
        count = Stmt(
            refs=(
                key_read_count,
                IndirectRef(rank, key_read_count, is_write=True),
            ),
            flops=2.0,
        )
        key_read_perm = ArrayRef(keys, (affine("k"),))
        permute = Stmt(
            refs=(
                key_read_perm,
                IndirectRef(rank, key_read_perm, is_write=False),
                ArrayRef(output, (affine("k"),), is_write=True),
            ),
            flops=2.0,
        )
        program = Program(
            "buk",
            (keys, output, rank),
            (
                Nest("count_keys", Loop("i", 0, n, body=(count,))),
                Nest("permute", Loop("k", 0, n, body=(permute,))),
            ),
        )
        return WorkloadInstance(
            name=self.name,
            program=program,
            env={"nkeys": nkeys},
            repeats=self.repeats,
            invocations=[("count_keys", {}), ("permute", {})],
            rng_seed=scale.rng_seed,
        )
