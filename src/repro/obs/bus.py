"""The bus proper: timestamping fan-out from emit sites to sinks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

__all__ = ["Bus", "Sink", "TraceEvent"]


@dataclass(frozen=True)
class TraceEvent:
    """One structured event as delivered to sinks."""

    time: float
    kind: str
    payload: Dict[str, object] = field(default_factory=dict)


class Sink:
    """Base class for event sinks (duck typing suffices; this documents the
    protocol and provides a no-op default).

    A sink may expose a ``kinds`` attribute (a set of event-kind strings, or
    ``None`` for "everything").  Emit sites use :meth:`Bus.wants` to skip
    building payloads for kinds no attached sink subscribes to; a sink
    without the attribute subscribes to everything.
    """

    def on_event(
        self, time: float, kind: str, payload: Optional[Dict[str, object]]
    ) -> None:  # pragma: no cover - interface default
        """Receive one event.  ``payload`` may be ``None`` for events with
        no fields; sinks must not mutate it (payloads may be interned and
        reused across emissions)."""


class Bus:
    """Fans events out to sinks, stamping them with the engine clock.

    A ``Bus`` only exists while at least one sink is attached; components
    hold ``obs = None`` otherwise, which is the zero-overhead-when-disabled
    contract.
    """

    __slots__ = ("engine", "sinks", "_wants_all", "_wanted")

    def __init__(self, engine, sinks: Iterable[Sink]) -> None:
        self.engine = engine
        self.sinks: List[Sink] = list(sinks)
        if not self.sinks:
            raise ValueError("a Bus requires at least one sink")
        # Precompute the subscription union so hot emit sites can skip the
        # payload-dict build entirely when nobody is listening for a kind.
        self._wants_all = False
        wanted: set = set()
        for sink in self.sinks:
            kinds = getattr(sink, "kinds", None)
            if kinds is None:
                self._wants_all = True
                break
            wanted.update(kinds)
        self._wanted = wanted

    def wants(self, kind: str) -> bool:
        """True if at least one sink subscribes to ``kind``.

        Subscriptions are read once at construction; a sink that mutates its
        ``kinds`` afterwards must attach a fresh Bus.
        """
        return self._wants_all or kind in self._wanted

    def emit(self, kind: str, payload: Optional[Dict[str, object]] = None) -> None:
        now = self.engine.now
        for sink in self.sinks:
            sink.on_event(now, kind, payload)
