"""The instrumentation bus: cross-layer observability for the simulation.

Components (`sim.engine`, `disk`, `vm`, `kernel`) carry an ``obs`` attribute
that is ``None`` by default; every emit site is guarded by a single ``is not
None`` check, so with no sinks attached the instrumentation costs one
attribute load per site — within measurement noise on the full test suite.

When a :class:`~repro.machine.Machine` is built with sinks, it constructs one
:class:`Bus` and threads it through every layer.  Two sinks are bundled:

- :class:`TraceRecorder` — a bounded structured event trace (newest events
  kept, drop count reported);
- :class:`MetricsAggregator` — event counts and per-kind aggregates, giving a
  single cross-layer view that used to require stitching together the
  scattered ``VmStats``/``RuntimeStats``/``SwapStats`` objects by hand.

Event vocabulary (kind → payload fields):

- ``engine.dispatch`` — one event popped from the queue (``event``);
- ``engine.switch`` — a process resumed (``process``);
- ``disk.issue`` / ``disk.complete`` — one swap transfer
  (``disk``, ``purpose``, ``write``; complete adds ``latency_s``);
- ``vm.fault`` — slow-path touch resolved (``kind``, ``aspace``, ``vpn``);
- ``vm.prefetch`` — prefetch request outcome (``aspace``, ``vpn``,
  ``outcome`` ∈ duplicate/rescued/discarded/issued/failed — ``failed``
  only under a fault plan, when the backing I/O never completed);
- ``vm.release_request`` — PM-side release (``aspace``, ``accepted``);
- ``vm.release`` — releaser processed one work item (``aspace``,
  ``requested``, ``freed``);
- ``vm.clock_pass`` — one paging-daemon pass (``stolen``);
- ``kernel.syscall`` — PM syscall crossing (``syscall``, ``aspace``);
- ``kernel.shared_page`` — shared page refreshed (``aspace``, ``usage``,
  ``limit``);
- ``policy.attach`` — a memory policy attached its PM to a process
  (``policy``, ``aspace``, ``pages``);
- ``policy.frag`` — fragmentation sample after a daemon sweep (``free``,
  ``runs``, ``largest``, ``unusable_free_index``).

Fault-injection vocabulary (emitted only under a :mod:`repro.faults` plan):

- ``fault.disk_latency`` — an injected service-time spike (``disk``,
  ``service_s``);
- ``fault.disk_error`` — an injected transient I/O error (``disk``);
- ``fault.disk_retry`` — the swap layer retried a request after an error
  or timeout (``disk``, ``purpose``, ``reason``, ``attempt``);
- ``fault.disk_offline`` — a spindle left the stripe (``disk``,
  ``reason`` ∈ scheduled/error/timeout);
- ``fault.hint`` — a compiler hint was corrupted at the run-time layer
  (``process``, ``op``, ``mode`` ∈ drop/spurious/mistime, ``pages``).

Sweep-orchestrator vocabulary (emitted by :mod:`repro.experiments.sweep`
on a wall-clock bus — :class:`WallClock` stands in for the engine — and
logged to ``<state_dir>/events.jsonl`` via :class:`JsonlSink`):

- ``sweep.start`` / ``sweep.done`` — one orchestrator pass over a sweep
  (``total``, ``pending``; done adds ``ok``/``failed``/``quarantined``);
- ``sweep.progress`` — periodic completion counter (``done``, ``total``);
- ``sweep.heartbeat`` — a shard's liveness beat was observed (``shard``);
- ``sweep.requeue`` — a spec went back to the queue after a crash, hang,
  or retryable failure (``key``, ``shard``, ``reason``, ``attempt``,
  ``delay_s``);
- ``sweep.quarantine`` — a poison spec was retired after its requeue
  budget (``key``, ``shard``, ``reason``);
- ``sweep.shard_slo`` — a shard exceeded its wall-clock SLO and stopped
  claiming work (``shard``, ``elapsed_s``, ``slo_s``);
- ``sweep.abort`` — the ``max_failures`` budget was exhausted
  (``failures``, ``budget``).
"""

from repro.obs.bus import Bus, Sink, TraceEvent
from repro.obs.sinks import JsonlSink, MetricsAggregator, TraceRecorder, WallClock

__all__ = [
    "Bus",
    "JsonlSink",
    "MetricsAggregator",
    "Sink",
    "TraceEvent",
    "TraceRecorder",
    "WallClock",
]
