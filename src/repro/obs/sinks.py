"""Bundled sinks: the bounded trace recorder, the metrics aggregator, and
the JSONL event log used by orchestrator-level (``sweep.*``) buses."""

from __future__ import annotations

import os
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Set

from repro.ioutil import append_journal_line
from repro.obs.bus import Sink, TraceEvent

__all__ = ["JsonlSink", "MetricsAggregator", "TraceRecorder", "WallClock"]


class WallClock:
    """Engine stand-in for buses that live outside any simulation.

    The :class:`~repro.obs.bus.Bus` stamps events with ``engine.now``; the
    sweep orchestrator has no engine, so it hands the bus one of these —
    ``now`` is wall-clock seconds since construction.  Simulation buses
    are unaffected.
    """

    __slots__ = ("_origin",)

    def __init__(self) -> None:
        self._origin = time.monotonic()

    @property
    def now(self) -> float:
        return time.monotonic() - self._origin


class JsonlSink(Sink):
    """Appends every event as one JSON line to ``path``.

    Built for low-rate orchestrator events (``sweep.*`` heartbeats and
    progress): each event is one durable single-write append, so a killed
    sweep leaves a readable event log up to the final instant.  Do not
    attach it to per-op simulation buses — one ``open``/``write`` per
    event is deliberate, not fast.
    """

    def __init__(
        self, path: os.PathLike, kinds: Optional[Set[str]] = None, fsync: bool = False
    ) -> None:
        self.path = path
        self.kinds = set(kinds) if kinds is not None else None
        self.fsync = fsync
        self.written = 0

    def on_event(
        self, time: float, kind: str, payload: Optional[Dict[str, object]]
    ) -> None:
        if self.kinds is not None and kind not in self.kinds:
            return
        record: Dict[str, object] = {"t": round(time, 6), "kind": kind}
        if payload:
            record.update(payload)
        append_journal_line(self.path, record, fsync=self.fsync)
        self.written += 1


class TraceRecorder(Sink):
    """Keeps the newest ``limit`` events as :class:`TraceEvent` records.

    Bounded so tracing a long run cannot exhaust memory; ``seen`` counts
    every delivered event and ``dropped`` how many fell off the front.
    An optional ``kinds`` filter records only matching event kinds.
    """

    def __init__(self, limit: int = 10_000, kinds: Optional[Set[str]] = None) -> None:
        if limit <= 0:
            raise ValueError(f"trace limit must be positive, got {limit}")
        self.limit = limit
        self.kinds = set(kinds) if kinds is not None else None
        self.seen = 0
        self._events: Deque[TraceEvent] = deque(maxlen=limit)

    def on_event(
        self, time: float, kind: str, payload: Optional[Dict[str, object]]
    ) -> None:
        if self.kinds is not None and kind not in self.kinds:
            return
        self.seen += 1
        self._events.append(TraceEvent(time, kind, dict(payload) if payload else {}))

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    @property
    def dropped(self) -> int:
        return self.seen - len(self._events)

    def format(self, last: Optional[int] = None) -> str:
        """Human-readable dump of the newest ``last`` events."""
        events = self.events
        if last is not None:
            events = events[-last:]
        lines = []
        if self.dropped:
            lines.append(f"... {self.dropped} earlier events dropped (limit={self.limit})")
        for event in events:
            fields = " ".join(f"{k}={v}" for k, v in event.payload.items())
            lines.append(f"[{event.time:12.6f}] {event.kind:<20} {fields}".rstrip())
        return "\n".join(lines)


class MetricsAggregator(Sink):
    """Counts events by kind and keeps the cross-layer aggregates that used
    to require stitching together per-subsystem stats objects."""

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}
        self.faults_by_kind: Dict[str, int] = {}
        self.prefetch_outcomes: Dict[str, int] = {}
        self.disk_requests: Dict[str, int] = {}
        self.disk_time: Dict[str, float] = {}
        self.syscalls: Dict[str, int] = {}
        # Injected faults (``fault.*`` events), keyed by the part after the
        # dot; empty outside chaos experiments.
        self.faults_injected: Dict[str, int] = {}
        self.pages_stolen = 0
        self.pages_released = 0
        self.release_pages_requested = 0

    def on_event(
        self, time: float, kind: str, payload: Optional[Dict[str, object]]
    ) -> None:
        counts = self.counts
        counts[kind] = counts.get(kind, 0) + 1
        if kind.startswith("fault."):
            name = kind[len("fault."):]
            self.faults_injected[name] = self.faults_injected.get(name, 0) + 1
        if payload is None:
            return
        if kind == "vm.fault":
            fault_kind = payload["kind"]
            self.faults_by_kind[fault_kind] = self.faults_by_kind.get(fault_kind, 0) + 1
        elif kind == "vm.prefetch":
            outcome = payload["outcome"]
            self.prefetch_outcomes[outcome] = self.prefetch_outcomes.get(outcome, 0) + 1
        elif kind == "disk.complete":
            purpose = payload["purpose"]
            self.disk_requests[purpose] = self.disk_requests.get(purpose, 0) + 1
            self.disk_time[purpose] = self.disk_time.get(purpose, 0.0) + payload["latency_s"]
        elif kind == "kernel.syscall":
            name = payload["syscall"]
            self.syscalls[name] = self.syscalls.get(name, 0) + 1
        elif kind == "vm.clock_pass":
            self.pages_stolen += payload["stolen"]
        elif kind == "vm.release":
            self.pages_released += payload["freed"]
        elif kind == "vm.release_request":
            self.release_pages_requested += payload["accepted"]

    def mean_disk_latency(self, purpose: str) -> float:
        requests = self.disk_requests.get(purpose, 0)
        return self.disk_time.get(purpose, 0.0) / requests if requests else 0.0

    def snapshot(self) -> Dict[str, object]:
        return {
            "counts": dict(self.counts),
            "faults_by_kind": dict(self.faults_by_kind),
            "prefetch_outcomes": dict(self.prefetch_outcomes),
            "disk_requests": dict(self.disk_requests),
            "syscalls": dict(self.syscalls),
            "faults_injected": dict(self.faults_injected),
            "pages_stolen": self.pages_stolen,
            "pages_released": self.pages_released,
            "release_pages_requested": self.release_pages_requested,
        }
