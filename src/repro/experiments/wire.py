"""Canonical-JSON wire codec for the warm-worker pool.

The pool (:mod:`repro.experiments.pool`) keeps worker processes resident
and ships work to them over pipes.  Pickle would be the easy wire format,
but it is opaque, version-fragile, and — for the result objects a sweep
sends back thousands of times — measurably slower than a flat JSON frame.
This module encodes the small closed world of spec and result dataclasses
as compact canonical JSON instead, following the trace format's discipline
(:mod:`repro.trace`): an explicit registry, positional fields, and exact
round-tripping as the bar.

Format
------
A frame is one ``bytes`` payload: UTF-8 canonical JSON
(``separators=(",", ":")``) of a value built from:

- JSON scalars (``None``/bool/int/float/str) encode as themselves.
  Floats round-trip exactly: Python's ``json`` emits ``repr``-shortest
  forms, and ``float(repr(x)) == x`` for all finite floats.
- Lists encode as JSON arrays.
- Tuples encode as ``{"!": "t", "v": [...]}`` — the marker is what lets a
  decoded spec keep tuple-typed fields tuple-typed, which matters because
  ``repr(spec)`` is the cache key and ``('a',) != ['a']``.
- Registered dataclasses encode as ``{"!": "<ClassName>", "f": [...]}``
  with values in :func:`dataclasses.fields` order (including
  ``repr=False`` fields); decode reconstructs positionally.
- Plain dicts pass through as JSON objects.  A plain dict containing the
  reserved ``"!"`` key cannot be distinguished from a marker, so encoding
  one raises :class:`WireError` instead of corrupting silently.

Anything else — sets, arbitrary objects, non-string dict keys — raises
:class:`WireError`.  The registry is deliberately closed: both ends of the
pipe run the same code (workers are children of the dispatching process),
so an unknown class name on decode means a programming error, not a
version skew to paper over.
"""

from __future__ import annotations

import importlib
import json
from dataclasses import fields, is_dataclass
from typing import Any, Dict, Tuple, Type

__all__ = ["WireError", "decode", "encode", "register"]


class WireError(ValueError):
    """A value could not be encoded to, or decoded from, the wire format."""


_REGISTRY: Dict[str, Type] = {}
_BY_CLASS: Dict[Type, str] = {}

# Modules that register additional classes on import (kept lazy to avoid
# import cycles: sweep imports the pool which imports this module).
_LAZY_PROVIDERS: Tuple[str, ...] = ("repro.experiments.sweep",)
_lazy_loaded = False
_core_loaded = False


def register(cls: Type) -> Type:
    """Add a dataclass to the wire registry; usable as a decorator.

    Reconstruction is positional — ``cls(*values)`` — so every field must
    be an init field, in declaration order.
    """
    if not is_dataclass(cls):
        raise WireError(f"only dataclasses can be registered: {cls!r}")
    name = cls.__name__
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise WireError(f"wire name collision: {name!r}")
    _REGISTRY[name] = cls
    _BY_CLASS[cls] = name
    return cls


def _register_core() -> None:
    """Register the spec- and result-side dataclasses.

    Imported lazily so this module stays importable from anywhere in the
    package without cycles.
    """
    from repro.config import (
        CompilerParams,
        DiskParams,
        MachineConfig,
        OsTunables,
        RuntimeParams,
        SimScale,
    )
    from repro.core.runtime.layer import RuntimeStats
    from repro.experiments.runner import ExperimentFailure
    from repro.faults import DiskFailure, DiskFaultSpec, FaultPlan, HintFaultSpec
    from repro.machine import (
        ExperimentResult,
        ExperimentSpec,
        ProcessResult,
        WorkloadProcessSpec,
    )
    from repro.policies.base import PolicySpec
    from repro.sim.stats import TimeBuckets
    from repro.vm.fragmentation import FragmentationSample, FragmentationStats
    from repro.vm.stats import AddressSpaceStats, VmStats
    from repro.workloads.interactive import SweepSample

    for cls in (
        # Spec side: the full frozen ExperimentSpec tree.
        ExperimentSpec,
        WorkloadProcessSpec,
        SimScale,
        MachineConfig,
        DiskParams,
        OsTunables,
        CompilerParams,
        RuntimeParams,
        FaultPlan,
        DiskFaultSpec,
        HintFaultSpec,
        DiskFailure,
        PolicySpec,
        # Result side: everything reachable from an ExperimentResult.
        ExperimentResult,
        ProcessResult,
        TimeBuckets,
        AddressSpaceStats,
        VmStats,
        FragmentationStats,
        FragmentationSample,
        RuntimeStats,
        SweepSample,
        ExperimentFailure,
    ):
        register(cls)


def _ensure_registry() -> None:
    # Guarded by its own flag: other modules may have register()ed their
    # classes already, so a non-empty registry does not mean core ran.
    global _core_loaded
    if not _core_loaded:
        _core_loaded = True
        _register_core()


def _load_lazy_providers() -> None:
    """Import modules that register extra wire classes (e.g. sweep's
    synthetic spec), exactly once."""
    global _lazy_loaded
    if _lazy_loaded:
        return
    _lazy_loaded = True
    for module in _LAZY_PROVIDERS:
        importlib.import_module(module)


def _enc(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return [_enc(item) for item in value]
    if isinstance(value, tuple):
        return {"!": "t", "v": [_enc(item) for item in value]}
    if isinstance(value, dict):
        if "!" in value:
            raise WireError('plain dicts with a "!" key are not encodable')
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise WireError(f"dict keys must be strings, got {key!r}")
            out[key] = _enc(item)
        return out
    cls = type(value)
    name = _BY_CLASS.get(cls)
    if name is None and is_dataclass(value):
        # The class may come from a lazy provider that registered a
        # subclass-by-name; try loading providers once before failing.
        _load_lazy_providers()
        name = _BY_CLASS.get(cls)
    if name is not None:
        return {
            "!": name,
            "f": [_enc(getattr(value, f.name)) for f in fields(value)],
        }
    raise WireError(f"cannot encode {cls.__name__!r} value: {value!r}")


def _dec(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return [_dec(item) for item in value]
    if isinstance(value, dict):
        marker = value.get("!")
        if marker is None:
            return {key: _dec(item) for key, item in value.items()}
        if marker == "t":
            return tuple(_dec(item) for item in value["v"])
        cls = _REGISTRY.get(marker)
        if cls is None:
            _load_lazy_providers()
            cls = _REGISTRY.get(marker)
        if cls is None:
            raise WireError(f"unknown wire class: {marker!r}")
        values = [_dec(item) for item in value["f"]]
        try:
            return cls(*values)
        except TypeError as exc:
            raise WireError(f"cannot rebuild {marker}: {exc}") from exc
    raise WireError(f"cannot decode wire value: {value!r}")


def encode(value: Any) -> bytes:
    """Encode ``value`` to a canonical-JSON frame."""
    _ensure_registry()
    try:
        return json.dumps(_enc(value), separators=(",", ":")).encode("utf-8")
    except WireError:
        raise
    except (TypeError, ValueError) as exc:
        raise WireError(str(exc)) from exc


def decode(data: bytes) -> Any:
    """Decode a frame produced by :func:`encode`."""
    _ensure_registry()
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise WireError(f"malformed wire frame: {exc}") from exc
    return _dec(payload)
