"""Figure 9: breakdown of outcomes for freed pages.

What fraction of all freed pages were freed by the paging daemon vs. by
explicit release requests — and what fraction of each was later *rescued*
from the free list (freed too early, reclaimed by its owner before
reallocation).  The interesting cases the paper calls out:

- BUK without releasing: many daemon-freed pages rescued (the random array
  keeps getting dragged back); with releasing nearly everything is freed by
  release and almost nothing rescued;
- MGRID: even with releasing, the paging daemon stays busy and many
  released pages come back — the single-compiled-version limitation;
- FFTPDE with buffering: "performs very few useful releases";
- MATVEC: aggressive releasing rescues half of what it releases (the
  vector); buffering drops the rescue count dramatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.config import SimScale
from repro.experiments.harness import run_suite_grid
from repro.experiments.report import format_table, percent
from repro.workloads.base import OutOfCoreWorkload
from repro.workloads.suite import BENCHMARKS

__all__ = ["Figure9Row", "Figure9Result", "format_figure9", "run_figure9"]


@dataclass
class Figure9Row:
    workload: str
    version: str
    freed_by_daemon: int
    freed_by_release: int
    rescued_from_daemon: int
    rescued_from_release: int
    release_revalidated: int  # caught while release was still pending

    @property
    def freed_total(self) -> int:
        return self.freed_by_daemon + self.freed_by_release

    @property
    def daemon_fraction(self) -> float:
        total = self.freed_total
        return self.freed_by_daemon / total if total else 0.0

    @property
    def daemon_rescue_fraction(self) -> float:
        return self.rescued_from_daemon / max(1, self.freed_by_daemon)

    @property
    def release_rescue_fraction(self) -> float:
        return self.rescued_from_release / max(1, self.freed_by_release)


@dataclass
class Figure9Result:
    scale: str
    rows: List[Figure9Row] = field(default_factory=list)

    def row(self, workload: str, version: str) -> Figure9Row:
        for row in self.rows:
            if row.workload == workload and row.version == version:
                return row
        raise KeyError((workload, version))


def run_figure9(
    scale: SimScale,
    workloads: Optional[Sequence[OutOfCoreWorkload]] = None,
    versions: str = "OPRB",
    jobs: int = 1,
    cache_dir=None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
) -> Figure9Result:
    if workloads is None:
        workloads = list(BENCHMARKS.values())
    grid = run_suite_grid(
        scale,
        workloads,
        versions,
        jobs=jobs,
        cache_dir=cache_dir,
        timeout_s=timeout_s,
        retries=retries,
    )
    result = Figure9Result(scale=scale.name)
    for workload in workloads:
        suite = grid[workload.name]
        for version, run in suite.items():
            vm = run.vm
            result.rows.append(
                Figure9Row(
                    workload=workload.name,
                    version=version,
                    freed_by_daemon=vm.freed_by_daemon,
                    freed_by_release=vm.freed_by_release,
                    rescued_from_daemon=vm.rescued_from_daemon,
                    rescued_from_release=vm.rescued_from_release,
                    release_revalidated=run.app_stats.release_revalidates,
                )
            )
    return result


def format_figure9(result: Figure9Result) -> str:
    rows = []
    for r in result.rows:
        rows.append(
            (
                r.workload,
                r.version,
                r.freed_by_daemon,
                r.freed_by_release,
                percent(r.daemon_fraction),
                percent(r.daemon_rescue_fraction),
                percent(r.release_rescue_fraction),
            )
        )
    return format_table(
        [
            "benchmark",
            "ver",
            "daemon_freed",
            "release_freed",
            "daemon_share",
            "daemon_rescued",
            "release_rescued",
        ],
        rows,
        title=f"Figure 9 — outcomes for freed pages ({result.scale})",
    )
