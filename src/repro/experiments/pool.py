"""The warm-worker execution pool: persistent workers, batched dispatch.

Every throughput surface in the repository — grid figures through
:func:`~repro.experiments.runner.run_specs`, sharded sweeps
(:mod:`repro.experiments.sweep`), and the service JobManager
(:mod:`repro.service.jobs`) — used to pay per-grid process churn: spawn a
pool, import ``repro`` in every worker, rebuild workload state per spec,
pickle every result back, tear the pool down.  This module amortizes all
of it:

- **Warm workers** — long-lived child processes that import once and stay
  resident.  A process-wide shared pool (:func:`get_pool`) survives across
  grids, bench repeats, and service jobs, so only the first dispatch pays
  interpreter startup.
- **Batched dispatch** — many small specs ride one pipe round-trip
  (``{"frame": "batch", "items": [...]}``), which matters when the specs
  are cheap (synthetic sweep cells) and the IPC is not.
- **Zero-pickle frames** — specs and results travel as canonical-JSON
  frames (:mod:`repro.experiments.wire`), not pickles.
- **Snapshot/reset** — workers keep :mod:`repro.machine`'s workload
  template cache warm across same-family specs; hit/miss deltas ride back
  on every result frame as telemetry.

Byte-identity is the contract: a spec executed here produces exactly the
result the inline path produces, and ``REPRO_POOL=0`` switches every
caller back to the legacy executor as the reference path.

Worker reuse raises a hygiene problem process churn used to hide: state a
spec leaves behind (an env-var lane override, a leaked ``SIGALRM``
handler) would flow into the next spec.  So every dispatched item carries
the parent's env-knob profile, applied (plus
:func:`repro.vm.fastlane.refresh_from_env`) before the spec runs, and the
deadline timer is forcibly disarmed between items.

Crash containment follows the sweep orchestrator's rule: when a worker
dies mid-batch, the first unfinished item is the suspect — requeued once,
alone, then failed with ``kind="crash"`` — and the rest requeue
unblamed; finished items are never re-run.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro import machine as machine_mod
from repro.experiments import wire
from repro.experiments.runner import (
    ExperimentFailure,
    _SpecTimeout,
    call_with_deadline,
    execute_guarded,
    spec_key,
)
from repro.machine import ExperimentResult, ExperimentSpec

__all__ = [
    "EMPTY_POOL_CHAOS",
    "PoolChaos",
    "WarmPool",
    "capture_env",
    "get_pool",
    "item_key",
    "pool_enabled",
    "recv_frame",
    "send_frame",
    "shutdown_shared_pool",
    "worker_entry",
]

# One requeue for a crash suspect, then blame it — same as the sweep.
REQUEUE_LIMIT = 1

_DISABLED_VALUES = {"0", "off", "false", "no"}


def pool_enabled() -> bool:
    """``REPRO_POOL`` gate: on by default, ``0``/``off``/``false``/``no``
    selects the legacy per-grid executor as the reference path."""
    return os.environ.get("REPRO_POOL", "1").strip().lower() not in _DISABLED_VALUES


# -- env-knob hygiene -------------------------------------------------------
#
# The knobs that change *how* a spec executes without being part of the
# spec.  (REPRO_ENGINE died with the heap backend in the policy-seam PR;
# REPRO_POOL itself only selects the executor, never the physics, so it
# deliberately does not travel.)

ENV_KNOBS: Tuple[str, ...] = ("REPRO_FAST_LANE",)


def capture_env() -> Dict[str, Optional[str]]:
    """The dispatching process's knob profile, shipped with every item."""
    return {knob: os.environ.get(knob) for knob in ENV_KNOBS}


def _apply_env(profile: Optional[Dict[str, Optional[str]]]) -> None:
    if profile is None:
        return
    for knob, value in profile.items():
        if value is None:
            os.environ.pop(knob, None)
        else:
            os.environ[knob] = value
    from repro.vm import fastlane

    fastlane.refresh_from_env()


# -- chaos (worker-side fault injection, test-only) -------------------------


@dataclass(frozen=True)
class PoolChaos:
    """Same declarative shape as the sweep's chaos (the worker loop
    duck-types across both): crash or hang a worker when it picks up one
    of these keys, while the attempt number is ``<= max_attempt``."""

    crash_keys: Tuple[str, ...] = ()
    hang_keys: Tuple[str, ...] = ()
    max_attempt: int = 10**9
    hang_s: float = 3600.0

    @property
    def enabled(self) -> bool:
        return bool(self.crash_keys or self.hang_keys)


EMPTY_POOL_CHAOS = PoolChaos()


# -- wire frames ------------------------------------------------------------


def send_frame(conn, frame: Dict[str, object]) -> None:
    conn.send_bytes(wire.encode(frame))


def recv_frame(conn) -> Dict[str, object]:
    return wire.decode(conn.recv_bytes())


def item_key(spec) -> str:
    """Content key for any pool item (experiment or sweep-synthetic)."""
    if isinstance(spec, ExperimentSpec):
        return spec_key(spec)
    from repro.experiments.sweep import sweep_spec_key

    return sweep_spec_key(spec)


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


# -- worker side ------------------------------------------------------------


def _disarm_deadline() -> None:
    """Defense in depth between items: whatever the previous spec did,
    no timer may survive into the next one."""
    if hasattr(signal, "SIGALRM"):
        try:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
        except (OSError, ValueError):
            pass


def _execute_item(spec, timeout_s: Optional[float], retries: int):
    """Warm-mode execution: ``("ok", result)`` or ``("failure", dict)``.

    Experiments go through the runner's guarded primitive; synthetic sweep
    cells get the same deadline/retry envelope (unlike the sweep's inline
    path, which never bounds them — the sweep orchestrator preserves that
    by dispatching in sweep mode, see :func:`worker_entry`).
    """
    if isinstance(spec, ExperimentSpec):
        outcome = execute_guarded(spec, timeout_s, retries)
        if isinstance(outcome, ExperimentFailure):
            return "failure", {
                "kind": outcome.kind,
                "message": outcome.message,
                "attempts": outcome.attempts,
            }
        return "ok", outcome

    from repro.experiments.sweep import SyntheticSpec, _run_synthetic

    if not isinstance(spec, SyntheticSpec):
        return "failure", {
            "kind": "error",
            "message": f"unsupported spec type: {type(spec).__name__}",
            "attempts": 1,
        }
    attempts = 0
    while True:
        attempts += 1
        try:
            result = call_with_deadline(lambda: _run_synthetic(spec), timeout_s)
            return "ok", result
        except _SpecTimeout:
            failure = {
                "kind": "timeout",
                "message": f"exceeded the wall-clock budget of {timeout_s}s",
                "attempts": attempts,
            }
        except Exception as exc:
            failure = {"kind": "error", "message": str(exc), "attempts": attempts}
        if attempts > retries:
            return "failure", failure


def _execute_sweep_item(cache_dir: str, namespace: str, key: str, spec, timeout_s):
    """Sweep-mode execution: byte-for-byte the old shard behavior.

    Delegates to the sweep's own ``_execute_any`` (so summaries — and
    therefore journal lines and digests — cannot drift from the inline
    path) and stores successful results in this shard's private cache
    namespace *before* the result frame is sent, preserving the
    kill/resume contract.
    """
    from repro.experiments import sweep as sweep_mod

    status, result = sweep_mod._execute_any(spec, timeout_s)
    if status == "ok":
        root = sweep_mod.Path(cache_dir).parent
        path_state = sweep_mod._State(
            root=root,
            journal=root / sweep_mod.JOURNAL_NAME,
            events=root / sweep_mod.EVENTS_NAME,
            cache=sweep_mod.Path(cache_dir),
        )
        sweep_mod._store_result(path_state, namespace, key, result)
        return "ok", None
    return "failure", result  # {"kind", "message"}


def worker_entry(
    conn,
    name: str,
    heartbeat_s: Optional[float],
    chaos,
) -> None:
    """Persistent worker loop, shared by warm-pool workers and sweep shards.

    Pulls batch frames off the pipe, runs each item, pushes one result
    frame per item.  With ``heartbeat_s`` set (sweep shards) a thread
    beats on the pipe so the orchestrator's watchdog can see hangs; either
    way the thread watches ``os.getppid()`` and exits if the parent dies,
    so a SIGKILLed dispatcher never leaves orphans.  ``chaos`` is any
    object with the :class:`PoolChaos` fields (the sweep passes its own
    ``SweepChaos``).
    """
    # The fork copies the dispatcher's signal dispositions.  `repro serve`
    # installs a SIGTERM handler that merely sets an event — inherited by a
    # worker it would turn terminate() into a no-op, and exit-time joins in
    # the parent would block forever.  Workers answer to the pipe protocol:
    # SIGTERM must kill, and a terminal's Ctrl-C SIGINT is the parent's to
    # coordinate, not ours to crash on.
    if hasattr(signal, "SIGTERM"):
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    if hasattr(signal, "SIGINT"):
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    parent = os.getppid()
    send_lock = threading.Lock()
    beats_stopped = threading.Event()

    def _send(frame) -> bool:
        try:
            payload = wire.encode(frame)
            with send_lock:
                conn.send_bytes(payload)
            return True
        except (BrokenPipeError, OSError):
            return False

    def _beats() -> None:
        period = heartbeat_s if heartbeat_s else 1.0
        while not beats_stopped.wait(period):
            if os.getppid() != parent:
                os._exit(2)  # dispatcher died; do not linger as an orphan
            if heartbeat_s is not None:
                if not _send({"frame": "heartbeat", "worker": name}):
                    os._exit(2)

    threading.Thread(target=_beats, daemon=True).start()

    stop = False
    while not stop:
        try:
            frame = recv_frame(conn)
        except (EOFError, OSError, wire.WireError):
            break
        if frame.get("frame") == "stop":
            break
        if frame.get("frame") != "batch":
            continue
        cache_dir = frame.get("cache_dir")
        namespace = frame.get("namespace")
        for item in frame["items"]:
            index = item["index"]
            attempt = item.get("attempt", 1)
            key = item["key"]
            spec = item["spec"]
            if chaos.enabled and attempt <= chaos.max_attempt:
                if key in chaos.crash_keys:
                    os._exit(3)  # stands in for a segfault / OOM kill
                if key in chaos.hang_keys:
                    beats_stopped.set()  # a wedge the watchdog must catch
                    time.sleep(chaos.hang_s)
            _apply_env(item.get("env"))
            _disarm_deadline()
            snap_before = machine_mod.template_counters()
            started = time.monotonic()
            if cache_dir is not None:
                status, payload = _execute_sweep_item(
                    cache_dir, namespace, key, spec, item.get("timeout_s")
                )
            else:
                status, payload = _execute_item(
                    spec, item.get("timeout_s"), item.get("retries", 0)
                )
            elapsed = time.monotonic() - started
            snap_after = machine_mod.template_counters()
            result_frame: Dict[str, object] = {
                "frame": "result",
                "worker": name,
                "index": index,
                "attempt": attempt,
                "status": status,
                "elapsed_s": elapsed,
                "snap_hits": snap_after["hits"] - snap_before["hits"],
                "snap_misses": snap_after["misses"] - snap_before["misses"],
            }
            try:
                from repro.vm import fastlane

                result_frame["lane"] = fastlane.lane_name()
            except Exception:
                result_frame["lane"] = "unknown"
            if status == "ok":
                if cache_dir is None:
                    # Detach the spec: the dispatcher reattaches its own
                    # object, so the frame carries only the result data.
                    if isinstance(payload, ExperimentResult):
                        payload.spec = None
                    result_frame["result"] = payload
                else:
                    result_frame["stored"] = True
            else:
                result_frame.update(payload)
            if not _send(result_frame):
                stop = True
                break
    try:
        conn.close()
    except OSError:
        pass


# -- dispatcher side --------------------------------------------------------


class _Worker:
    __slots__ = ("name", "process", "conn", "dispatches", "specs_done")

    def __init__(self, name, process, conn) -> None:
        self.name = name
        self.process = process
        self.conn = conn
        self.dispatches = 0
        self.specs_done = 0


Outcome = Union[ExperimentResult, ExperimentFailure, object]


class WarmPool:
    """A leasable set of persistent workers plus a batching dispatcher.

    Thread-safe: the service's job threads each lease workers through
    :meth:`run`/:meth:`run_one` concurrently (a worker pipe is only ever
    read and written by the thread that holds its lease).  Workers are
    spawned lazily up to ``workers`` and returned warm; the pool grows on
    demand (:meth:`grow`) and never shrinks until :meth:`shutdown`.
    """

    def __init__(self, workers: int, chaos: Optional[PoolChaos] = None) -> None:
        if workers < 1:
            raise ValueError(f"pool needs at least 1 worker, got {workers}")
        self._target = int(workers)
        self._chaos = chaos if chaos is not None else EMPTY_POOL_CHAOS
        self._ctx = _mp_context()
        self._cv = threading.Condition()
        self._idle: List[_Worker] = []
        self._alive = 0  # leased + idle
        self._seq = 0
        self._closed = False
        self._tlock = threading.Lock()
        self._counters = {
            "workers_spawned": 0,
            "dispatches": 0,
            "warm_dispatches": 0,
            "specs_dispatched": 0,
            "max_batch": 0,
            "crashes": 0,
            "snapshot_hits": 0,
            "snapshot_misses": 0,
            "specs_done": 0,
        }

    # -- lifecycle ---------------------------------------------------------

    @property
    def workers(self) -> int:
        return self._target

    @property
    def closed(self) -> bool:
        return self._closed

    def grow(self, workers: int) -> None:
        with self._cv:
            if workers > self._target:
                self._target = int(workers)
                self._cv.notify_all()

    def shutdown(self) -> None:
        with self._cv:
            if self._closed:
                return
            self._closed = True
            idle, self._idle = self._idle, []
            self._alive -= len(idle)
            self._cv.notify_all()
        for worker in idle:
            self._stop_worker(worker)

    def _stop_worker(self, worker: _Worker) -> None:
        try:
            send_frame(worker.conn, {"frame": "stop"})
        except (BrokenPipeError, OSError, wire.WireError):
            pass
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.process.join(timeout=1.0)
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=1.0)

    # -- worker leasing ----------------------------------------------------

    def _spawn_locked(self) -> _Worker:
        self._seq += 1
        self._alive += 1
        name = f"pool-{self._seq}"
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=worker_entry,
            args=(child_conn, name, None, self._chaos),
            daemon=True,
            name=f"repro-{name}",
        )
        process.start()
        child_conn.close()
        with self._tlock:
            self._counters["workers_spawned"] += 1
        return _Worker(name, process, parent_conn)

    def _checkout(self) -> _Worker:
        """Lease a worker, blocking until one is available."""
        with self._cv:
            while True:
                if self._closed:
                    raise RuntimeError("pool is shut down")
                if self._idle:
                    return self._idle.pop()
                if self._alive < self._target:
                    return self._spawn_locked()
                self._cv.wait()

    def _try_checkout(self) -> Optional[_Worker]:
        with self._cv:
            if self._closed:
                return None
            if self._idle:
                return self._idle.pop()
            if self._alive < self._target:
                return self._spawn_locked()
            return None

    def _checkin(self, worker: _Worker) -> None:
        stop = False
        with self._cv:
            if self._closed:
                self._alive -= 1
                stop = True
            else:
                self._idle.append(worker)
                self._cv.notify()
        if stop:
            self._stop_worker(worker)

    def _discard(self, worker: _Worker) -> None:
        """Drop a dead worker's lease so a replacement may be spawned."""
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.process.join(timeout=0.5)
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=1.0)
        with self._cv:
            self._alive -= 1
            self._cv.notify()

    # -- dispatch ----------------------------------------------------------

    def _auto_batch(self, count: int) -> int:
        """Batch so each worker sees ~2 dispatch rounds: enough batching to
        amortize the pipe; the two-deep pipeline rebalances uneven items."""
        rounds = max(1, self._target * 2)
        return max(1, min(8, -(-count // rounds)))

    def run(
        self,
        specs: Sequence[object],
        timeout_s: Optional[float] = None,
        retries: int = 0,
        batch_size: Optional[int] = None,
        env: Optional[Dict[str, Optional[str]]] = None,
    ) -> List[Outcome]:
        """Run ``specs`` on warm workers; outcomes align with input order.

        Never raises for a spec's own sake: failures (error, timeout,
        crash) come back as :class:`ExperimentFailure` values in their
        grid slots, exactly like the legacy executor.
        """
        specs = list(specs)
        count = len(specs)
        if count == 0:
            return []
        keys = [item_key(spec) for spec in specs]
        if env is None:
            env = capture_env()
        if batch_size is None:
            batch_size = self._auto_batch(count)
        batch_size = max(1, int(batch_size))

        # Lease workers: at least one (blocking), more if free right now.
        want = min(self._target, max(1, -(-count // batch_size)))
        leased = [self._checkout()]
        while len(leased) < want:
            worker = self._try_checkout()
            if worker is None:
                break
            leased.append(worker)

        pending = deque(range(count))
        attempts = [1] * count
        crash_counts: Dict[int, int] = {}
        solo: set = set()
        inflight: Dict[_Worker, List[int]] = {}
        results: List[Optional[Outcome]] = [None] * count
        done = 0

        def _fill(worker: _Worker) -> bool:
            """Top the worker up to two batches of outstanding items.

            Keeping a second batch buffered in the pipe is what removes
            the round-trip stall: while the dispatcher is decoding one
            result, the worker is already executing the next item instead
            of idling.  A crash suspect (``solo``) is only ever sent to a
            worker with *nothing* outstanding, so a second death
            unambiguously blames it.
            """
            while pending and len(inflight.get(worker, ())) < 2 * batch_size:
                if pending[0] in solo:
                    if inflight.get(worker):
                        return True  # suspects need an empty worker
                    batch = [pending.popleft()]
                else:
                    batch = []
                    while (
                        pending
                        and len(batch) < batch_size
                        and pending[0] not in solo
                    ):
                        batch.append(pending.popleft())
                    if not batch:
                        return True  # head of queue is a suspect
                if not _dispatch(worker, batch):
                    inflight.setdefault(worker, []).extend(batch)
                    _handle_crash(worker)
                    return False
                inflight.setdefault(worker, []).extend(batch)
                if batch[0] in solo:
                    return True  # nothing may ride along with a suspect
            return True

        def _dispatch(worker: _Worker, batch: List[int]) -> bool:
            items = [
                {
                    "index": index,
                    "attempt": attempts[index],
                    "key": keys[index],
                    "spec": specs[index],
                    "timeout_s": timeout_s,
                    "retries": retries,
                    "env": env,
                }
                for index in batch
            ]
            try:
                send_frame(worker.conn, {"frame": "batch", "items": items})
            except (BrokenPipeError, OSError):
                return False
            with self._tlock:
                self._counters["dispatches"] += 1
                if worker.dispatches > 0:
                    self._counters["warm_dispatches"] += 1
                self._counters["specs_dispatched"] += len(items)
                self._counters["max_batch"] = max(
                    self._counters["max_batch"], len(items)
                )
            worker.dispatches += 1
            return True

        def _handle_crash(worker: _Worker) -> None:
            nonlocal done
            batch = inflight.pop(worker, [])
            with self._tlock:
                self._counters["crashes"] += 1
            leased.remove(worker)
            self._discard(worker)
            if batch:
                suspect = batch[0]
                crash_counts[suspect] = crash_counts.get(suspect, 0) + 1
                for index in reversed(batch[1:]):
                    pending.appendleft(index)  # unblamed, same attempt
                if crash_counts[suspect] > REQUEUE_LIMIT:
                    results[suspect] = ExperimentFailure(
                        specs[suspect],
                        "crash",
                        "worker process died while running this spec",
                        attempts=attempts[suspect],
                    )
                    done += 1
                else:
                    attempts[suspect] += 1
                    solo.add(suspect)
                    pending.appendleft(suspect)
            if pending or inflight:
                replacement = self._try_checkout()
                if replacement is None and not leased:
                    replacement = self._checkout()
                if replacement is not None:
                    leased.append(replacement)

        def _absorb(worker: _Worker) -> None:
            """Drain every frame the worker has ready; EOF means crash."""
            nonlocal done
            try:
                while True:
                    frame = recv_frame(worker.conn)
                    if frame.get("frame") != "result":
                        continue
                    index = frame["index"]
                    batch = inflight.get(worker, [])
                    if index in batch:
                        batch.remove(index)
                    if not batch:
                        inflight.pop(worker, None)
                    if frame["status"] == "ok":
                        payload = frame.get("result")
                        if isinstance(payload, ExperimentResult):
                            payload.spec = specs[index]
                        results[index] = payload
                    else:
                        results[index] = ExperimentFailure(
                            specs[index],
                            frame.get("kind", "error"),
                            frame.get("message", ""),
                            attempts=frame.get("attempts", attempts[index]),
                        )
                    done += 1
                    worker.specs_done += 1
                    with self._tlock:
                        self._counters["specs_done"] += 1
                        self._counters["snapshot_hits"] += frame.get("snap_hits", 0)
                        self._counters["snapshot_misses"] += frame.get(
                            "snap_misses", 0
                        )
                    if not worker.conn.poll():
                        return
            except (EOFError, OSError, wire.WireError):
                _handle_crash(worker)

        from multiprocessing.connection import wait as conn_wait

        try:
            while done < count:
                for worker in list(leased):
                    if pending and worker in leased:
                        _fill(worker)
                if not inflight:
                    if done < count and not pending:
                        # Every remaining item crashed out; nothing left.
                        break
                    continue
                ready = conn_wait([w.conn for w in inflight], timeout=1.0)
                by_conn = {w.conn: w for w in inflight}
                for conn in ready:
                    worker = by_conn.get(conn)
                    if worker is not None:
                        _absorb(worker)
        finally:
            for worker in list(leased):
                if worker in inflight:
                    # Mid-batch abandon (an exception above): the worker
                    # may still be executing — do not reuse its pipe.
                    leased.remove(worker)
                    self._discard(worker)
                else:
                    self._checkin(worker)

        for index in range(count):
            if results[index] is None:
                results[index] = ExperimentFailure(
                    specs[index],
                    "crash",
                    "worker process died while running this spec",
                    attempts=attempts[index],
                )
        return results  # type: ignore[return-value]

    def run_one(
        self,
        spec,
        timeout_s: Optional[float] = None,
        retries: int = 0,
    ) -> Outcome:
        """One spec on one leased worker — the service's per-job-thread
        entry point.  Thread-safe against concurrent ``run_one`` calls."""
        return self.run([spec], timeout_s=timeout_s, retries=retries, batch_size=1)[0]

    # -- telemetry ---------------------------------------------------------

    def telemetry(self) -> Dict[str, object]:
        with self._tlock:
            snap = dict(self._counters)
        snap["workers"] = self._target
        dispatches = snap["dispatches"]
        snap["specs_per_dispatch"] = (
            snap["specs_dispatched"] / dispatches if dispatches else 0.0
        )
        snap["worker_reuse_rate"] = (
            snap["warm_dispatches"] / dispatches if dispatches else 0.0
        )
        lookups = snap["snapshot_hits"] + snap["snapshot_misses"]
        snap["snapshot_hit_rate"] = snap["snapshot_hits"] / lookups if lookups else 0.0
        return snap


# -- the process-wide shared pool -------------------------------------------

_shared: Optional[WarmPool] = None
_shared_lock = threading.Lock()


def get_pool(workers: int = 0) -> WarmPool:
    """The shared warm pool, created on first use; grows, never shrinks."""
    global _shared
    if workers <= 0:
        workers = os.cpu_count() or 2
    with _shared_lock:
        if _shared is None or _shared.closed:
            _shared = WarmPool(workers)
        else:
            _shared.grow(workers)
        return _shared


def shutdown_shared_pool() -> None:
    global _shared
    with _shared_lock:
        pool, _shared = _shared, None
    if pool is not None:
        pool.shutdown()


# multiprocessing's own exit hook joins leftover children with no timeout.
# The module-level `import multiprocessing` above registers that hook before
# this one, so (LIFO) the stop frames below go out first and the workers are
# already gone when it runs.
atexit.register(shutdown_shared_pool)
