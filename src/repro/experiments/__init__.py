"""Experiment harness and per-figure/table reproductions.

Every table and figure of the paper's evaluation has a module here; each
exposes a ``run_*(scale)`` function returning plain data structures plus a
``format_*`` helper that prints rows in the paper's shape.  The pytest
benchmarks under ``benchmarks/`` are thin wrappers over these.
"""

from repro.experiments.compare import (
    PolicyRow,
    compare_policies,
    format_policy_table,
)
from repro.experiments.figure1 import Figure1Result, format_figure1, run_figure1
from repro.experiments.figure7 import Figure7Result, format_figure7, run_figure7
from repro.experiments.figure8 import Figure8Result, format_figure8, run_figure8
from repro.experiments.figure9 import Figure9Result, format_figure9, run_figure9
from repro.experiments.figure10 import (
    Figure10aResult,
    Figure10bcResult,
    format_figure10a,
    format_figure10bc,
    run_figure10a,
    run_figure10bc,
)
from repro.experiments.harness import (
    MultiprogramResult,
    interactive_alone,
    multiprogram_spec,
    run_multiprogram,
    run_suite_grid,
    run_version_suite,
    to_multiprogram,
)
from repro.experiments.runner import code_version, run_specs, spec_key
from repro.experiments.table3 import Table3Result, format_table3, run_table3
from repro.machine import (
    ExperimentResult,
    ExperimentSpec,
    WorkloadProcessSpec,
    run_experiment,
)

__all__ = [
    "ExperimentResult",
    "ExperimentSpec",
    "Figure1Result",
    "Figure7Result",
    "Figure8Result",
    "Figure9Result",
    "Figure10aResult",
    "Figure10bcResult",
    "MultiprogramResult",
    "PolicyRow",
    "Table3Result",
    "WorkloadProcessSpec",
    "code_version",
    "compare_policies",
    "format_policy_table",
    "format_figure1",
    "format_figure7",
    "format_figure8",
    "format_figure9",
    "format_figure10a",
    "format_figure10bc",
    "format_table3",
    "interactive_alone",
    "multiprogram_spec",
    "run_experiment",
    "run_figure1",
    "run_figure7",
    "run_figure8",
    "run_figure9",
    "run_figure10a",
    "run_figure10bc",
    "run_multiprogram",
    "run_specs",
    "run_suite_grid",
    "run_table3",
    "run_version_suite",
    "spec_key",
    "to_multiprogram",
]
