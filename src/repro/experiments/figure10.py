"""Figure 10: impact of releasing on interactive response time.

(a) MATVEC across the sleep-time sweep, all four versions plus the
    dedicated-machine baseline — releasing restores the alone-curve;
(b) all benchmarks at the intermediate sleep time, response normalized to
    the task running alone — releasing eliminates the degradation except
    FFTPDE with buffering, "as this benchmark fails to release enough
    memory";
(c) the interactive task's hard page faults per sweep — rising toward the
    full data set (65 pages) under prefetching-alone, near zero with
    releasing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.config import SimScale
from repro.experiments.harness import multiprogram_spec, run_suite_grid, to_multiprogram
from repro.experiments.report import format_table
from repro.experiments.runner import run_specs
from repro.machine import ExperimentSpec
from repro.workloads.base import OutOfCoreWorkload
from repro.workloads.matvec import MatvecWorkload
from repro.workloads.suite import BENCHMARKS

__all__ = [
    "Figure10aResult",
    "Figure10bcRow",
    "Figure10bcResult",
    "format_figure10a",
    "format_figure10bc",
    "run_figure10a",
    "run_figure10bc",
]


@dataclass
class Figure10aResult:
    scale: str
    sleep_times_s: List[float] = field(default_factory=list)
    # series name ('alone', 'O', 'P', 'R', 'B') -> response per sleep time
    series: Dict[str, List[float]] = field(default_factory=dict)


def run_figure10a(
    scale: SimScale,
    sleep_times: Optional[Sequence[float]] = None,
    versions: str = "OPRB",
    jobs: int = 1,
    cache_dir=None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
) -> Figure10aResult:
    if sleep_times is None:
        sleep_times = scale.figure_sleep_times_s
    workload = MatvecWorkload()
    stride = 1 + len(versions)  # alone + one run per version, per sleep
    specs = []
    for sleep in sleep_times:
        specs.append(ExperimentSpec.interactive_alone(scale, sleep, sweeps=6))
        for version in versions:
            specs.append(
                multiprogram_spec(scale, workload, version, sleep_time_s=sleep)
            )
    runs = run_specs(
        specs, jobs=jobs, cache_dir=cache_dir, timeout_s=timeout_s, retries=retries
    )
    result = Figure10aResult(scale=scale.name, sleep_times_s=list(sleep_times))
    result.series["alone"] = []
    for version in versions:
        result.series[version] = []
    for index in range(len(sleep_times)):
        block = runs[stride * index : stride * (index + 1)]
        alone = list(block[0].interactives[0].sweeps)
        result.series["alone"].append(
            sum(s.response_time for s in alone[1:]) / max(1, len(alone) - 1)
        )
        for version, run in zip(versions, block[1:]):
            result.series[version].append(to_multiprogram(run).mean_response())
    return result


def format_figure10a(result: Figure10aResult) -> str:
    names = list(result.series)
    rows = []
    for index, sleep in enumerate(result.sleep_times_s):
        rows.append([sleep] + [result.series[name][index] for name in names])
    return format_table(
        ["sleep_s"] + [f"resp_{n}_s" for n in names],
        rows,
        title=f"Figure 10(a) — MATVEC interactive response vs. sleep ({result.scale})",
    )


@dataclass
class Figure10bcRow:
    workload: str
    version: str
    normalized_response: float  # (b): response / alone-response
    hard_faults_per_sweep: float  # (c)
    response_s: float


@dataclass
class Figure10bcResult:
    scale: str
    sleep_time_s: float = 0.0
    alone_response_s: float = 0.0
    interactive_pages: int = 0
    rows: List[Figure10bcRow] = field(default_factory=list)

    def row(self, workload: str, version: str) -> Figure10bcRow:
        for row in self.rows:
            if row.workload == workload and row.version == version:
                return row
        raise KeyError((workload, version))


def run_figure10bc(
    scale: SimScale,
    workloads: Optional[Sequence[OutOfCoreWorkload]] = None,
    versions: str = "OPRB",
    sleep_time_s: Optional[float] = None,
    jobs: int = 1,
    cache_dir=None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
) -> Figure10bcResult:
    """Figures 10(b) and 10(c) share their runs; compute both at once."""
    if workloads is None:
        workloads = list(BENCHMARKS.values())
    if sleep_time_s is None:
        sleep_time_s = scale.intermediate_sleep_s
    alone_run = run_specs(
        [ExperimentSpec.interactive_alone(scale, sleep_time_s, sweeps=6)],
        jobs=1,
        cache_dir=cache_dir,
        timeout_s=timeout_s,
        retries=retries,
    )[0]
    alone = list(alone_run.interactives[0].sweeps)
    alone_mean = sum(s.response_time for s in alone[1:]) / max(1, len(alone) - 1)
    result = Figure10bcResult(
        scale=scale.name,
        sleep_time_s=sleep_time_s,
        alone_response_s=alone_mean,
        interactive_pages=scale.interactive_pages,
    )
    grid = run_suite_grid(
        scale,
        workloads,
        versions,
        sleep_time_s=sleep_time_s,
        jobs=jobs,
        cache_dir=cache_dir,
        timeout_s=timeout_s,
        retries=retries,
    )
    for workload in workloads:
        suite = grid[workload.name]
        for version, run in suite.items():
            response = run.mean_response()
            result.rows.append(
                Figure10bcRow(
                    workload=workload.name,
                    version=version,
                    normalized_response=response / alone_mean if alone_mean else 0.0,
                    hard_faults_per_sweep=run.mean_interactive_hard_faults(),
                    response_s=response,
                )
            )
    return result


def format_figure10bc(result: Figure10bcResult) -> str:
    rows = [
        (
            r.workload,
            r.version,
            r.normalized_response,
            r.hard_faults_per_sweep,
            r.response_s,
        )
        for r in result.rows
    ]
    return format_table(
        ["benchmark", "ver", "resp_normalized", "hard_faults_sweep", "resp_s"],
        rows,
        title=(
            f"Figure 10(b)/(c) — interactive impact at sleep="
            f"{result.sleep_time_s}s, alone={result.alone_response_s:.4f}s, "
            f"data set={result.interactive_pages} pages ({result.scale})"
        ),
    )
