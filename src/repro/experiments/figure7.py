"""Figure 7: normalized execution time of the out-of-core applications.

Four bars per benchmark — O (original), P (prefetch), R (prefetch +
aggressive release), B (prefetch + release buffering) — each split into
the four components the paper stacks: I/O stall, stall for unavailable
resources (memory/locks), system time, and user time.  All normalized to
the original version's total.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.config import SimScale
from repro.experiments.harness import MultiprogramResult, run_suite_grid
from repro.experiments.report import format_table
from repro.workloads.base import OutOfCoreWorkload
from repro.workloads.suite import BENCHMARKS

__all__ = ["Figure7Bar", "Figure7Result", "format_figure7", "run_figure7"]


@dataclass
class Figure7Bar:
    """One stacked bar, as fractions of the O version's total time."""

    workload: str
    version: str
    user: float
    system: float
    stall_memory: float
    stall_io: float
    elapsed_s: float

    @property
    def total(self) -> float:
        return self.user + self.system + self.stall_memory + self.stall_io


@dataclass
class Figure7Result:
    scale: str
    bars: List[Figure7Bar] = field(default_factory=list)
    raw: Dict[str, Dict[str, MultiprogramResult]] = field(default_factory=dict)

    def bar(self, workload: str, version: str) -> Figure7Bar:
        for bar in self.bars:
            if bar.workload == workload and bar.version == version:
                return bar
        raise KeyError((workload, version))

    def speedup_of_release_over_prefetch(self, workload: str) -> float:
        """The paper's headline metric: (P - R) / P."""
        p = self.bar(workload, "P").elapsed_s
        r = self.bar(workload, "R").elapsed_s
        return (p - r) / p


def run_figure7(
    scale: SimScale,
    workloads: Optional[Sequence[OutOfCoreWorkload]] = None,
    versions: str = "OPRB",
    jobs: int = 1,
    cache_dir=None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
) -> Figure7Result:
    if workloads is None:
        workloads = list(BENCHMARKS.values())
    grid = run_suite_grid(
        scale,
        workloads,
        versions,
        jobs=jobs,
        cache_dir=cache_dir,
        timeout_s=timeout_s,
        retries=retries,
    )
    result = Figure7Result(scale=scale.name)
    for workload in workloads:
        suite = grid[workload.name]
        result.raw[workload.name] = suite
        base_total = suite["O"].app_buckets.total if "O" in suite else None
        for version, run in suite.items():
            buckets = run.app_buckets
            denominator = base_total or buckets.total
            result.bars.append(
                Figure7Bar(
                    workload=workload.name,
                    version=version,
                    user=buckets.user / denominator,
                    system=buckets.system / denominator,
                    stall_memory=buckets.stall_memory / denominator,
                    stall_io=buckets.stall_io / denominator,
                    elapsed_s=run.elapsed_s,
                )
            )
    return result


def format_figure7(result: Figure7Result) -> str:
    rows = []
    for bar in result.bars:
        rows.append(
            (
                bar.workload,
                bar.version,
                bar.total,
                bar.user,
                bar.system,
                bar.stall_memory,
                bar.stall_io,
                bar.elapsed_s,
            )
        )
    return format_table(
        [
            "benchmark",
            "ver",
            "normalized",
            "user",
            "system",
            "stall_mem",
            "stall_io",
            "elapsed_s",
        ],
        rows,
        title=f"Figure 7 — normalized execution time ({result.scale})",
    )
