"""Figure 8: soft page faults caused by the daemon's periodic invalidations.

The MIPS TLB has no reference bits, so IRIX invalidates mappings to detect
use; every invalidation of a live page costs its owner a soft fault.  The
figure shows these per benchmark version: high without releasing (the
daemon must hunt for victims), near zero with releasing (the daemon rarely
needs to run).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.config import SimScale
from repro.experiments.harness import run_suite_grid
from repro.experiments.report import format_table
from repro.workloads.base import OutOfCoreWorkload
from repro.workloads.suite import BENCHMARKS

__all__ = ["Figure8Result", "format_figure8", "run_figure8"]


@dataclass
class Figure8Result:
    scale: str
    # workload -> version -> soft faults taken by the out-of-core app
    soft_faults: Dict[str, Dict[str, int]] = field(default_factory=dict)
    # and the daemon invalidation counts behind them, for context
    invalidations: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def reduction_with_release(self, workload: str) -> float:
        """P soft faults divided by R soft faults (∞-safe)."""
        p = self.soft_faults[workload]["P"]
        r = self.soft_faults[workload]["R"]
        return p / max(1, r)


def run_figure8(
    scale: SimScale,
    workloads: Optional[Sequence[OutOfCoreWorkload]] = None,
    versions: str = "OPRB",
    jobs: int = 1,
    cache_dir=None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
) -> Figure8Result:
    if workloads is None:
        workloads = list(BENCHMARKS.values())
    grid = run_suite_grid(
        scale,
        workloads,
        versions,
        jobs=jobs,
        cache_dir=cache_dir,
        timeout_s=timeout_s,
        retries=retries,
    )
    result = Figure8Result(scale=scale.name)
    for workload in workloads:
        suite = grid[workload.name]
        result.soft_faults[workload.name] = {
            version: run.app_stats.soft_faults for version, run in suite.items()
        }
        result.invalidations[workload.name] = {
            version: run.vm.daemon_invalidations for version, run in suite.items()
        }
    return result


def format_figure8(result: Figure8Result) -> str:
    versions = next(iter(result.soft_faults.values())).keys()
    rows = []
    for workload, counts in result.soft_faults.items():
        rows.append([workload] + [counts[v] for v in versions])
    return format_table(
        ["benchmark"] + [f"soft_faults_{v}" for v in versions],
        rows,
        title=f"Figure 8 — soft faults from daemon invalidations ({result.scale})",
    )
