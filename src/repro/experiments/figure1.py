"""Figure 1: the motivating experiment.

"A simple program emulates the memory system behavior of an interactive
task... This program is run concurrently with one that repeatedly performs
a matrix-vector multiplication on an out-of-core data set.  With no sleep
time, the 'interactive' task defends its memory extremely well... As the
sleep time increases, however, the task incurs an increasing number of page
faults and the response time rises.  When the out-of-core program uses
prefetching, the response time begins to increase at much shorter sleep
times, grows much faster, and rises to a higher level."

Series: the interactive task alone, with the original MATVEC (O), and with
the prefetching MATVEC (P), across the sleep-time sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.config import SimScale
from repro.experiments.harness import multiprogram_spec, to_multiprogram
from repro.experiments.report import format_table
from repro.experiments.runner import run_specs
from repro.machine import ExperimentSpec
from repro.workloads.matvec import MatvecWorkload

__all__ = ["Figure1Point", "Figure1Result", "format_figure1", "run_figure1"]


@dataclass
class Figure1Point:
    sleep_time_s: float
    response_alone_s: float
    response_original_s: float
    response_prefetch_s: float


@dataclass
class Figure1Result:
    scale: str
    points: List[Figure1Point] = field(default_factory=list)

    def series(self, name: str) -> List[float]:
        attr = {
            "alone": "response_alone_s",
            "O": "response_original_s",
            "P": "response_prefetch_s",
        }[name]
        return [getattr(p, attr) for p in self.points]


def run_figure1(
    scale: SimScale,
    sleep_times: Optional[Sequence[float]] = None,
    workload: Optional[MatvecWorkload] = None,
    jobs: int = 1,
    cache_dir=None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
) -> Figure1Result:
    if sleep_times is None:
        sleep_times = scale.figure_sleep_times_s
    if workload is None:
        workload = MatvecWorkload()
    # One flat grid of specs — three experiments per sleep time — so the
    # runner can parallelise and cache across the whole figure.
    specs = []
    for sleep in sleep_times:
        specs.append(ExperimentSpec.interactive_alone(scale, sleep, sweeps=6))
        specs.append(multiprogram_spec(scale, workload, "O", sleep_time_s=sleep))
        specs.append(multiprogram_spec(scale, workload, "P", sleep_time_s=sleep))
    runs = run_specs(
        specs, jobs=jobs, cache_dir=cache_dir, timeout_s=timeout_s, retries=retries
    )
    result = Figure1Result(scale=scale.name)
    for index, sleep in enumerate(sleep_times):
        alone_run, original_run, prefetch_run = runs[3 * index : 3 * index + 3]
        alone = list(alone_run.interactives[0].sweeps)
        alone_mean = sum(s.response_time for s in alone[1:]) / max(1, len(alone) - 1)
        result.points.append(
            Figure1Point(
                sleep_time_s=sleep,
                response_alone_s=alone_mean,
                response_original_s=to_multiprogram(original_run).mean_response(),
                response_prefetch_s=to_multiprogram(prefetch_run).mean_response(),
            )
        )
    return result


def format_figure1(result: Figure1Result) -> str:
    rows = [
        (
            p.sleep_time_s,
            p.response_alone_s,
            p.response_original_s,
            p.response_prefetch_s,
        )
        for p in result.points
    ]
    return format_table(
        ["sleep_s", "alone_s", "with_original_s", "with_prefetch_s"],
        rows,
        title=f"Figure 1 — interactive response vs. sleep time ({result.scale})",
    )
