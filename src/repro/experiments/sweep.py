"""Resilient sweep orchestration: sharded, checkpointed, crash-tolerant grids.

The paper's results are sweeps — every figure is a grid of memory sizes ×
benchmarks × policies — and the fault layer multiplies that grid by fault
seeds.  :func:`~repro.experiments.runner.run_specs` executes such a grid in
one fragile pass: kill the process and every non-cached cell is lost, and a
single pathological spec can stall the whole run.  This module layers a
durable orchestrator on top of the runner's guarded-execution primitive:

- **Checkpoint journal** — every per-spec outcome (success, structured
  failure, quarantine) is appended to ``<state_dir>/journal.jsonl`` via the
  single-write append contract of :mod:`repro.ioutil`; successes land in a
  content-addressed cache under ``<state_dir>/cache/<shard>/``.  A sweep
  SIGKILLed mid-flight resumes from the journal and produces merged
  results byte-identical to an uninterrupted run (simulations are
  deterministic; the digest covers every slot in input order).

- **Sharded execution** — worker processes ("shards") are fed over private
  pipes by the orchestrator, which dispatches to whichever shard is idle:
  a pull model that load-balances exactly like a work-stealing queue while
  keeping every queue endpoint single-reader/single-writer, so killing one
  worker can never deadlock another's queue.  Each shard writes results
  into its own cache namespace, so two shards never contend on a rename.

- **Containment beyond the runner's** — the per-spec ``SIGALRM`` deadline
  catches tight Python loops; the orchestrator adds a heartbeat watchdog
  for what SIGALRM cannot interrupt (a worker wedged in C code or an
  uninterruptible syscall): a busy shard whose beats stop for
  ``hang_timeout_s`` is killed, its spec requeued once, then quarantined
  as a poison spec.  Worker deaths (segfault, OOM kill) get the same
  requeue-once-then-quarantine treatment.  Retryable failures back off
  exponentially with *deterministic* jitter (derived from the spec key, so
  schedules replay).  Per-shard wall-clock SLOs stop a shard from claiming
  new work once its budget is spent; a ``max_failures`` budget lets a
  sweep degrade gracefully into failure slots and aborts — resumably —
  only when the budget is exhausted.

``repro sweep run|resume|status`` is the CLI surface;
:mod:`repro.experiments.ensemble` builds Monte Carlo fault ensembles on
top of :func:`run_sweep`.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import pickle
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.config import SimScale, paper, small, tiny
from repro.faults import EMPTY_PLAN, FaultPlan
from repro.ioutil import append_journal_line, atomic_open, atomic_write_json, read_journal
from repro.machine import ExperimentResult, ExperimentSpec, SpecError
from repro.obs import Bus, JsonlSink, Sink, WallClock
from repro.experiments import wire
from repro.experiments.runner import execute_guarded, spec_key

__all__ = [
    "EMPTY_CHAOS",
    "SweepAborted",
    "SweepChaos",
    "SweepError",
    "SweepOptions",
    "SweepOutcome",
    "SweepReport",
    "SyntheticResult",
    "SyntheticSpec",
    "backoff_delay",
    "collect_report",
    "expand_grid",
    "run_sweep",
    "specs_from_meta",
    "sweep_spec_key",
    "sweep_status",
    "synthetic_specs",
]

JOURNAL_NAME = "journal.jsonl"
META_NAME = "meta.json"
EVENTS_NAME = "events.jsonl"
CACHE_DIRNAME = "cache"

#: How many times a crashed/hung spec goes back to the queue before it is
#: quarantined as poison.  The paper's simulations are deterministic, so
#: one requeue distinguishes environmental flakes (OOM kill, stray signal)
#: from specs that reliably take their worker down.
REQUEUE_LIMIT = 1

_SCALES = {"tiny": tiny, "small": small, "paper": paper}


class SweepError(RuntimeError):
    """A sweep that cannot be run, resumed, or collected."""


class SweepAborted(SweepError):
    """The ``max_failures`` budget was exhausted; the sweep is resumable."""

    def __init__(self, failures: int, budget: int) -> None:
        self.failures = failures
        self.budget = budget
        super().__init__(
            f"sweep aborted: {failures} failures exceeded the budget of "
            f"{budget}; raise --max-failures and resume"
        )


# -- synthetic specs --------------------------------------------------------


@dataclass(frozen=True)
class SyntheticSpec:
    """A no-op spec for exercising the orchestrator itself at scale.

    Executes in microseconds (optionally sleeping ``sleep_s`` to model a
    slow cell, or failing deterministically with ``fail=True``), so a
    10k-spec sweep stresses the journal, the shards, and the watchdog —
    not the simulator.
    """

    index: int
    payload: str = "noop"
    sleep_s: float = 0.0
    fail: bool = False


@dataclass
class SyntheticResult:
    """What a :class:`SyntheticSpec` produces; cached like a real result."""

    key: str
    index: int
    value: int
    from_cache: bool = False


# Synthetic cells ride the pool's zero-pickle wire frames like any other
# spec; registering here keeps the wire registry free of a sweep import.
wire.register(SyntheticSpec)
wire.register(SyntheticResult)


def synthetic_specs(
    count: int, fail_every: int = 0, sleep_s: float = 0.0
) -> List[SyntheticSpec]:
    """``count`` distinct no-op specs; every ``fail_every``-th one fails."""
    if count < 1:
        raise SweepError(f"synthetic spec count must be >= 1, got {count}")
    return [
        SyntheticSpec(
            index=i,
            sleep_s=sleep_s,
            fail=bool(fail_every) and (i + 1) % fail_every == 0,
        )
        for i in range(count)
    ]


AnySpec = Union[ExperimentSpec, SyntheticSpec]


def sweep_spec_key(spec: AnySpec) -> str:
    """Content key for any sweep cell (experiment or synthetic)."""
    if isinstance(spec, SyntheticSpec):
        digest = hashlib.sha256()
        digest.update(b"synthetic/")
        digest.update(repr(spec).encode())
        return digest.hexdigest()
    return spec_key(spec)


def _run_synthetic(spec: SyntheticSpec) -> SyntheticResult:
    if spec.sleep_s > 0:
        time.sleep(spec.sleep_s)
    if spec.fail:
        raise RuntimeError(f"synthetic failure (spec {spec.index})")
    key = sweep_spec_key(spec)
    return SyntheticResult(key=key, index=spec.index, value=int(key[:8], 16))


# -- chaos (orchestrator-level fault injection, test-only) ------------------


@dataclass(frozen=True)
class SweepChaos:
    """Fault injection for the orchestrator itself, in the spirit of
    :mod:`repro.faults`: declarative, deterministic, zero machinery when
    empty.

    ``crash_keys`` makes a worker die (``os._exit``) when it picks up one
    of those specs; ``hang_keys`` makes it wedge with its heartbeat thread
    silenced — exactly the beyond-SIGALRM hang the watchdog exists for.
    Injection applies only while the task's attempt number is
    ``<= max_attempt``, so ``max_attempt=1`` models an environmental flake
    (the requeue succeeds) and the default models a poison spec (the
    requeue fails too, forcing quarantine).  Chaos is honored only inside
    shard workers — never inline — so it cannot take the orchestrator down.
    """

    crash_keys: Tuple[str, ...] = ()
    hang_keys: Tuple[str, ...] = ()
    max_attempt: int = 10**9
    hang_s: float = 3600.0

    @property
    def enabled(self) -> bool:
        return bool(self.crash_keys or self.hang_keys)


EMPTY_CHAOS = SweepChaos()


# -- options and outcomes ---------------------------------------------------


@dataclass(frozen=True)
class SweepOptions:
    """Everything that shapes a sweep's execution (not its results).

    None of these fields participates in the merged digest: a sweep run
    with 1 shard and one run with 8 merge byte-identically.
    """

    jobs: int = 1
    batch_size: int = 1
    timeout_s: Optional[float] = None
    retries: int = 0
    backoff_base_s: float = 0.25
    heartbeat_s: float = 1.0
    hang_timeout_s: Optional[float] = None
    shard_slo_s: Optional[float] = None
    max_failures: Optional[int] = None
    progress_every: int = 50
    fsync_journal: bool = True
    chaos: SweepChaos = EMPTY_CHAOS

    def validate(self) -> None:
        if self.jobs < 1:
            raise SweepError(f"jobs must be >= 1, got {self.jobs}")
        if self.batch_size < 1:
            raise SweepError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.retries < 0:
            raise SweepError(f"retries must be >= 0, got {self.retries}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise SweepError(f"timeout_s must be positive, got {self.timeout_s}")
        if self.backoff_base_s < 0:
            raise SweepError(f"backoff_base_s must be >= 0, got {self.backoff_base_s}")
        if self.heartbeat_s <= 0:
            raise SweepError(f"heartbeat_s must be positive, got {self.heartbeat_s}")
        if self.hang_timeout_s is not None and self.hang_timeout_s <= 0:
            raise SweepError(
                f"hang_timeout_s must be positive, got {self.hang_timeout_s}"
            )
        if self.shard_slo_s is not None and self.shard_slo_s <= 0:
            raise SweepError(f"shard_slo_s must be positive, got {self.shard_slo_s}")
        if self.max_failures is not None and self.max_failures < 0:
            raise SweepError(f"max_failures must be >= 0, got {self.max_failures}")


def backoff_delay(key: str, attempt: int, base_s: float) -> float:
    """Exponential backoff with deterministic jitter for one retry.

    ``base_s * 2**(attempt-1) * (1 + j)`` where ``j ∈ [0, 1)`` is derived
    from ``(key, attempt)`` via SHA-256 — the same spec retries on the
    same schedule in every run, so retry storms de-synchronize *and*
    replays stay reproducible (no wall-clock entropy).
    """
    digest = hashlib.sha256(f"{key}/backoff/{attempt}".encode()).digest()
    jitter = int.from_bytes(digest[:4], "big") / 2**32
    return base_s * (2 ** max(0, attempt - 1)) * (1.0 + jitter)


@dataclass
class SweepOutcome:
    """One journal-backed terminal outcome, aligned to its spec's slot."""

    index: int
    key: str
    status: str  # "ok" | "failure" | "quarantined"
    kind: Optional[str] = None  # for failures: error | timeout | crash | hang
    message: Optional[str] = None
    attempts: int = 1
    shard: Optional[str] = None  # cache namespace holding the result (ok only)
    elapsed_s: Optional[float] = None

    @property
    def failed(self) -> bool:
        return self.status != "ok"

    def digest_line(self) -> str:
        """The canonical per-slot string the merged digest hashes.

        Excludes attempts/shard/elapsed on purpose: how a result was
        obtained (which shard, how many retries, how long it took) must
        not perturb the merged identity — only *what* was obtained.
        """
        if self.status == "ok":
            raise SweepError("digest_line for a success needs the cached result")
        return f"failure key={self.key} kind={self.kind} message={self.message}"


@dataclass
class SweepReport:
    """What :func:`run_sweep` returns: every slot plus the merged digest."""

    outcomes: List[SweepOutcome]
    digest: str
    state_dir: Optional[Path] = None
    aborted: bool = False

    @property
    def ok(self) -> List[SweepOutcome]:
        return [o for o in self.outcomes if o.status == "ok"]

    @property
    def failures(self) -> List[SweepOutcome]:
        return [o for o in self.outcomes if o.failed]

    def counts(self) -> Dict[str, int]:
        out = {"total": len(self.outcomes), "ok": 0, "failure": 0, "quarantined": 0}
        for outcome in self.outcomes:
            out[outcome.status] += 1
        return out


# -- state directory --------------------------------------------------------


@dataclass
class _State:
    """Resolved paths plus the sweep's identity (from ``meta.json``)."""

    root: Path
    journal: Path
    events: Path
    cache: Path
    meta: Dict[str, object] = field(default_factory=dict)


def _keys_digest(keys: Sequence[str]) -> str:
    digest = hashlib.sha256()
    for key in keys:
        digest.update(key.encode())
        digest.update(b"\n")
    return digest.hexdigest()


def _open_state(
    state_dir: os.PathLike,
    keys: Sequence[str],
    resume: bool,
    describe: Optional[Dict[str, object]] = None,
) -> _State:
    root = Path(state_dir)
    state = _State(
        root=root,
        journal=root / JOURNAL_NAME,
        events=root / EVENTS_NAME,
        cache=root / CACHE_DIRNAME,
    )
    meta_path = root / META_NAME
    signature = _keys_digest(keys)
    if meta_path.exists():
        import json

        with meta_path.open("r", encoding="utf-8") as handle:
            meta = json.load(handle)
        if meta.get("keys_digest") != signature or meta.get("count") != len(keys):
            raise SweepError(
                f"{root} holds a different sweep ({meta.get('count')} specs, "
                f"keys digest {str(meta.get('keys_digest'))[:12]}…); refusing "
                "to mix checkpoints"
            )
        if not resume:
            raise SweepError(
                f"{root} already holds this sweep's checkpoint; use "
                "`repro sweep resume` (or resume=True) to continue it"
            )
        state.meta = meta
        return state
    if resume:
        raise SweepError(f"no sweep checkpoint at {root} (missing {META_NAME})")
    meta = {
        "version": 1,
        "count": len(keys),
        "keys_digest": signature,
    }
    if describe:
        meta.update(describe)
    root.mkdir(parents=True, exist_ok=True)
    atomic_write_json(meta_path, meta)
    state.meta = meta
    return state


def _namespace_dir(state: _State, namespace: str) -> Path:
    return state.cache / namespace


def _store_result(state: _State, namespace: str, key: str, result: object) -> None:
    # Mirrors the runner's cache contract: successes only, atomic rename.
    if not isinstance(result, (ExperimentResult, SyntheticResult)):
        return
    path = _namespace_dir(state, namespace) / f"{key}.pkl"
    with atomic_open(path, "wb") as handle:
        pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)


def _load_result(state: _State, namespace: str, key: str) -> Optional[object]:
    path = _namespace_dir(state, namespace) / f"{key}.pkl"
    try:
        with path.open("rb") as handle:
            result = pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
        return None
    if not isinstance(result, (ExperimentResult, SyntheticResult)):
        return None
    if isinstance(result, ExperimentResult):
        result.from_cache = True
    return result


def _find_cached(state: _State, key: str) -> Optional[Tuple[str, object]]:
    """Search every shard namespace for ``key`` (newest layout first)."""
    if not state.cache.is_dir():
        return None
    try:
        namespaces = sorted(p.name for p in state.cache.iterdir() if p.is_dir())
    except FileNotFoundError:
        return None
    for namespace in namespaces:
        result = _load_result(state, namespace, key)
        if result is not None:
            return namespace, result
    return None


# -- journal ----------------------------------------------------------------


def _journal_outcome(state: _State, outcome: SweepOutcome, fsync: bool) -> None:
    record: Dict[str, object] = {
        "event": "spec",
        "index": outcome.index,
        "key": outcome.key,
        "status": outcome.status,
        "attempts": outcome.attempts,
    }
    if outcome.kind is not None:
        record["kind"] = outcome.kind
    if outcome.message is not None:
        record["message"] = outcome.message
    if outcome.shard is not None:
        record["shard"] = outcome.shard
    if outcome.elapsed_s is not None:
        record["elapsed_s"] = round(outcome.elapsed_s, 6)
    append_journal_line(state.journal, record, fsync=fsync)


def _load_journal_outcomes(state: _State) -> Dict[int, SweepOutcome]:
    """Terminal outcomes by spec index (first terminal record wins)."""
    outcomes: Dict[int, SweepOutcome] = {}
    try:
        records = read_journal(state.journal)
    except ValueError as exc:
        raise SweepError(str(exc)) from exc
    for record in records:
        if record.get("event") != "spec":
            continue
        index = record.get("index")
        if not isinstance(index, int) or index in outcomes:
            continue
        outcomes[index] = SweepOutcome(
            index=index,
            key=str(record.get("key")),
            status=str(record.get("status")),
            kind=record.get("kind"),  # type: ignore[arg-type]
            message=record.get("message"),  # type: ignore[arg-type]
            attempts=int(record.get("attempts", 1)),
            shard=record.get("shard"),  # type: ignore[arg-type]
            elapsed_s=record.get("elapsed_s"),  # type: ignore[arg-type]
        )
    return outcomes


# -- execution primitives ---------------------------------------------------


def _execute_any(spec: AnySpec, timeout_s: Optional[float]) -> Tuple[str, object]:
    """Run one cell once.  Returns ``(status, result-or-summary)``.

    ``("ok", result)`` on success; ``("failure", {"kind", "message"})``
    otherwise.  Never raises — same contract as the runner's guarded
    execution, which this wraps for real experiments.
    """
    if isinstance(spec, SyntheticSpec):
        try:
            return "ok", _run_synthetic(spec)
        except Exception as exc:  # deterministic synthetic failure
            return "failure", {"kind": "error", "message": str(exc)}
    outcome = execute_guarded(spec, timeout_s, retries=0)
    if isinstance(outcome, ExperimentResult):
        return "ok", outcome
    return "failure", {"kind": outcome.kind, "message": outcome.message}


# -- shard workers ----------------------------------------------------------
#
# Shards are warm-pool workers (:func:`repro.experiments.pool.worker_entry`)
# dispatched in *sweep mode*: each batch frame carries this sweep's cache
# dir and the shard's namespace, so results land in the shard's private
# cache namespace *before* the result frame is sent — an orchestrator
# killed between the two finds the result on resume, exactly as before.
# The worker executes through this module's ``_execute_any``, which keeps
# sharded summaries (and therefore journal lines and digests) byte-equal
# to the inline path.  Specs and result summaries travel as canonical-JSON
# wire frames (:mod:`repro.experiments.wire`), not pickles, and up to
# ``SweepOptions.batch_size`` cells ride one pipe round-trip.


def _mp_context():
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class _Shard:
    """Orchestrator-side bookkeeping for one worker process."""

    __slots__ = (
        "name",
        "process",
        "conn",
        "busy",
        "current",  # in-flight [(index, attempt, key), ...], dispatch order
        "last_beat",
        "started_at",
        "stopped",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.process = None
        self.conn = None
        self.busy = False
        self.current: List[Tuple[int, int, str]] = []
        self.last_beat = 0.0
        self.started_at = 0.0
        self.stopped = False


# -- the orchestrator -------------------------------------------------------


class _Orchestrator:
    """One run/resume pass: owns the journal, the shards, and the queue."""

    def __init__(
        self,
        specs: Sequence[AnySpec],
        keys: Sequence[str],
        state: _State,
        options: SweepOptions,
        bus: Optional[Bus],
    ) -> None:
        self.specs = specs
        self.keys = keys
        self.state = state
        self.options = options
        self.bus = bus
        self.outcomes: Dict[int, SweepOutcome] = {}
        self.attempts_used: Dict[int, int] = {}
        self.crash_counts: Dict[int, int] = {}
        self.queue: deque = deque()  # (index, attempt) ready now
        self.delayed: List[Tuple[float, int, int]] = []  # (eligible_at, index, attempt)
        self.in_flight = 0
        self.failure_count = 0
        self.aborting = False
        self.done_since_progress = 0

    # -- events ------------------------------------------------------------
    def emit(self, kind: str, payload: Optional[Dict[str, object]] = None) -> None:
        if self.bus is not None:
            self.bus.emit(kind, payload)

    # -- terminal outcomes -------------------------------------------------
    def record(self, outcome: SweepOutcome) -> None:
        self.outcomes[outcome.index] = outcome
        _journal_outcome(self.state, outcome, self.options.fsync_journal)
        if outcome.failed:
            self.failure_count += 1
            budget = self.options.max_failures
            if budget is not None and self.failure_count > budget and not self.aborting:
                self.aborting = True
                self.emit(
                    "sweep.abort",
                    {"failures": self.failure_count, "budget": budget},
                )
                append_journal_line(
                    self.state.journal,
                    {
                        "event": "abort",
                        "failures": self.failure_count,
                        "budget": budget,
                    },
                    fsync=self.options.fsync_journal,
                )
        self.done_since_progress += 1
        if self.done_since_progress >= self.options.progress_every:
            self.done_since_progress = 0
            self.emit(
                "sweep.progress",
                {"done": len(self.outcomes), "total": len(self.specs)},
            )

    def handle_completion(
        self, shard: str, index: int, attempt: int, summary: Dict[str, object]
    ) -> None:
        key = self.keys[index]
        self.attempts_used[index] = attempt
        if summary["status"] == "ok":
            self.record(
                SweepOutcome(
                    index=index,
                    key=key,
                    status="ok",
                    attempts=attempt,
                    shard=shard,
                    elapsed_s=summary.get("elapsed_s"),  # type: ignore[arg-type]
                )
            )
            return
        kind = str(summary.get("kind", "error"))
        message = str(summary.get("message", ""))
        if attempt <= self.options.retries:
            delay = backoff_delay(key, attempt, self.options.backoff_base_s)
            self.emit(
                "sweep.requeue",
                {
                    "key": key,
                    "shard": shard,
                    "reason": kind,
                    "attempt": attempt,
                    "delay_s": round(delay, 6),
                },
            )
            self.push_delayed(index, attempt + 1, delay)
            return
        self.record(
            SweepOutcome(
                index=index,
                key=key,
                status="failure",
                kind=kind,
                message=message,
                attempts=attempt,
            )
        )

    def handle_worker_loss(self, shard_name: str, index: int, attempt: int, reason: str) -> None:
        """A shard died (``crash``) or was shot by the watchdog (``hang``)."""
        key = self.keys[index]
        self.attempts_used[index] = attempt
        self.crash_counts[index] = self.crash_counts.get(index, 0) + 1
        if self.crash_counts[index] <= REQUEUE_LIMIT:
            delay = backoff_delay(key, attempt, self.options.backoff_base_s)
            self.emit(
                "sweep.requeue",
                {
                    "key": key,
                    "shard": shard_name,
                    "reason": reason,
                    "attempt": attempt,
                    "delay_s": round(delay, 6),
                },
            )
            self.push_delayed(index, attempt + 1, delay)
            return
        self.emit(
            "sweep.quarantine", {"key": key, "shard": shard_name, "reason": reason}
        )
        detail = (
            "worker process died while running this spec"
            if reason == "crash"
            else "worker heartbeat lost (hung beyond the SIGALRM deadline)"
        )
        self.record(
            SweepOutcome(
                index=index,
                key=key,
                status="quarantined",
                kind=reason,
                message=f"{detail}; requeued {REQUEUE_LIMIT}x, then quarantined",
                attempts=attempt,
            )
        )

    # -- queue -------------------------------------------------------------
    def push_delayed(self, index: int, attempt: int, delay_s: float) -> None:
        import heapq

        if delay_s <= 0:
            self.queue.append((index, attempt))
        else:
            heapq.heappush(self.delayed, (time.monotonic() + delay_s, index, attempt))

    def promote_due(self) -> None:
        import heapq

        now = time.monotonic()
        while self.delayed and self.delayed[0][0] <= now:
            _, index, attempt = heapq.heappop(self.delayed)
            self.queue.append((index, attempt))

    def next_wakeup(self) -> float:
        if self.delayed:
            return max(0.01, min(0.25, self.delayed[0][0] - time.monotonic()))
        return 0.25

    @property
    def outstanding(self) -> int:
        return len(self.queue) + len(self.delayed) + self.in_flight

    # -- inline path -------------------------------------------------------
    def run_inline(self) -> None:
        """Serial execution in this process (``jobs=1``, or the drain path
        after every shard stopped on its SLO).  Chaos is never injected
        inline — it exists to kill *workers*."""
        while (self.queue or self.delayed) and not self.aborting:
            self.promote_due()
            if not self.queue:
                time.sleep(self.next_wakeup())
                continue
            index, attempt = self.queue.popleft()
            key = self.keys[index]
            status, result = _execute_any(self.specs[index], self.options.timeout_s)
            if status == "ok":
                _store_result(self.state, "main", key, result)
                self.handle_completion("main", index, attempt, {"status": "ok"})
            else:
                summary: Dict[str, object] = {"status": "failure"}
                summary.update(result)  # type: ignore[arg-type]
                self.handle_completion("main", index, attempt, summary)

    # -- sharded path ------------------------------------------------------
    def run_sharded(self) -> None:
        from multiprocessing.connection import wait as conn_wait

        from repro.experiments import pool as pool_mod

        ctx = _mp_context()
        count = min(self.options.jobs, max(1, len(self.queue)))
        shards: List[_Shard] = []
        env_profile = pool_mod.capture_env()
        telemetry = {
            "workers_spawned": 0,
            "dispatches": 0,
            "specs_dispatched": 0,
            "max_batch": 0,
        }

        def spawn(shard: _Shard) -> None:
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=pool_mod.worker_entry,
                args=(
                    child_conn,
                    shard.name,
                    self.options.heartbeat_s,
                    self.options.chaos,
                ),
                daemon=True,
            )
            process.start()
            child_conn.close()
            telemetry["workers_spawned"] += 1
            shard.process = process
            shard.conn = parent_conn
            shard.busy = False
            shard.current = []
            shard.stopped = False
            now = time.monotonic()
            shard.last_beat = now
            shard.started_at = now

        for i in range(count):
            shard = _Shard(f"shard-{i:02d}")
            spawn(shard)
            shards.append(shard)

        def slo_spent(shard: _Shard) -> bool:
            slo = self.options.shard_slo_s
            return slo is not None and (time.monotonic() - shard.started_at) > slo

        def stop_shard(shard: _Shard) -> None:
            if shard.stopped:
                return
            shard.stopped = True
            try:
                pool_mod.send_frame(shard.conn, {"frame": "stop"})
            except (BrokenPipeError, OSError):
                pass

        def kill_shard(shard: _Shard) -> None:
            if shard.process is not None and shard.process.is_alive():
                shard.process.kill()
                shard.process.join(timeout=5)
            try:
                shard.conn.close()
            except OSError:
                pass

        def lose_shard(shard: _Shard, reason: str) -> None:
            """Common path for crash (EOF/death) and hang (watchdog kill).

            With batching, only the *first* unfinished item is the suspect
            (results stream back in dispatch order, so the head of
            ``current`` is what the worker was executing) and goes through
            the requeue-once-then-quarantine accounting; the rest of the
            batch never started and requeues unblamed at the same attempt.
            """
            kill_shard(shard)
            if shard.current:
                index, attempt, _key = shard.current[0]
                self.in_flight -= len(shard.current)
                for rest_index, rest_attempt, _k in reversed(shard.current[1:]):
                    self.queue.appendleft((rest_index, rest_attempt))
                self.handle_worker_loss(shard.name, index, attempt, reason)
            shard.busy = False
            shard.current = []
            # Respawn into the same namespace unless the sweep is winding
            # down or the shard already spent its SLO.
            if not self.aborting and self.outstanding > 0 and not slo_spent(shard):
                spawn(shard)
            else:
                shard.stopped = True

        try:
            while self.outstanding > 0 and not self.aborting:
                self.promote_due()
                # Dispatch to idle shards.
                for shard in shards:
                    if not self.queue:
                        break
                    if shard.stopped or shard.busy:
                        continue
                    if slo_spent(shard):
                        self.emit(
                            "sweep.shard_slo",
                            {
                                "shard": shard.name,
                                "elapsed_s": round(
                                    time.monotonic() - shard.started_at, 3
                                ),
                                "slo_s": self.options.shard_slo_s,
                            },
                        )
                        stop_shard(shard)
                        continue
                    batch: List[Tuple[int, int, str]] = []
                    while self.queue and len(batch) < self.options.batch_size:
                        index, attempt = self.queue.popleft()
                        batch.append((index, attempt, self.keys[index]))
                    items = [
                        {
                            "index": index,
                            "attempt": attempt,
                            "key": key,
                            "spec": self.specs[index],
                            "timeout_s": self.options.timeout_s,
                            "env": env_profile,
                        }
                        for index, attempt, key in batch
                    ]
                    try:
                        pool_mod.send_frame(
                            shard.conn,
                            {
                                "frame": "batch",
                                "cache_dir": str(self.state.cache),
                                "namespace": shard.name,
                                "items": items,
                            },
                        )
                    except (BrokenPipeError, OSError):
                        for index, attempt, _key in reversed(batch):
                            self.queue.appendleft((index, attempt))
                        lose_shard(shard, "crash")
                        continue
                    shard.busy = True
                    shard.current = batch
                    shard.last_beat = time.monotonic()
                    self.in_flight += len(batch)
                    telemetry["dispatches"] += 1
                    telemetry["specs_dispatched"] += len(batch)
                    telemetry["max_batch"] = max(telemetry["max_batch"], len(batch))

                live = [s for s in shards if not s.stopped and s.conn is not None]
                if not live:
                    # Every shard stopped (SLO) or died unrecoverably:
                    # drain the remainder inline so the sweep completes.
                    self.run_inline()
                    break

                ready = conn_wait([s.conn for s in live], timeout=self.next_wakeup())
                for conn in ready:
                    shard = next(s for s in live if s.conn is conn)
                    try:
                        while conn.poll():
                            message = pool_mod.recv_frame(conn)
                            kind = message.get("frame")
                            if kind == "heartbeat":
                                shard.last_beat = time.monotonic()
                                self.emit("sweep.heartbeat", {"shard": shard.name})
                            elif kind == "result":
                                index = message["index"]
                                attempt = message["attempt"]
                                shard.current = [
                                    entry
                                    for entry in shard.current
                                    if entry[0] != index
                                ]
                                shard.busy = bool(shard.current)
                                shard.last_beat = time.monotonic()
                                self.in_flight -= 1
                                summary: Dict[str, object] = {
                                    "status": message["status"],
                                    "elapsed_s": message.get("elapsed_s"),
                                }
                                if message["status"] != "ok":
                                    summary["kind"] = message.get("kind", "error")
                                    summary["message"] = message.get("message", "")
                                self.handle_completion(
                                    message.get("worker", shard.name),
                                    index,
                                    attempt,
                                    summary,
                                )
                                if not shard.busy and slo_spent(shard):
                                    self.emit(
                                        "sweep.shard_slo",
                                        {
                                            "shard": shard.name,
                                            "elapsed_s": round(
                                                time.monotonic() - shard.started_at, 3
                                            ),
                                            "slo_s": self.options.shard_slo_s,
                                        },
                                    )
                                    stop_shard(shard)
                    except (EOFError, OSError, pool_mod.wire.WireError):
                        lose_shard(shard, "crash")

                # Watchdog: a busy shard whose heartbeats stopped is hung.
                hang_after = self.options.hang_timeout_s
                if hang_after is not None:
                    now = time.monotonic()
                    for shard in shards:
                        if (
                            not shard.stopped
                            and shard.busy
                            and now - shard.last_beat > hang_after
                        ):
                            lose_shard(shard, "hang")
        finally:
            for shard in shards:
                stop_shard(shard)
            deadline = time.monotonic() + 5.0
            for shard in shards:
                if shard.process is not None:
                    shard.process.join(timeout=max(0.1, deadline - time.monotonic()))
                    if shard.process.is_alive():
                        shard.process.kill()
                        shard.process.join(timeout=5)
                try:
                    shard.conn.close()
                except (OSError, AttributeError):
                    pass
            # Pool telemetry for `sweep status --json`: how well dispatch
            # batching amortized the pipe, and how warm the shards ran.
            dispatches = telemetry["dispatches"]
            try:
                append_journal_line(
                    self.state.journal,
                    {
                        "event": "pool",
                        "workers": count,
                        "workers_spawned": telemetry["workers_spawned"],
                        "batch_size": self.options.batch_size,
                        "dispatches": dispatches,
                        "specs_dispatched": telemetry["specs_dispatched"],
                        "specs_per_dispatch": round(
                            telemetry["specs_dispatched"] / dispatches, 3
                        )
                        if dispatches
                        else 0.0,
                        "max_batch": telemetry["max_batch"],
                    },
                    fsync=False,
                )
            except OSError:
                pass


# -- digest / report --------------------------------------------------------


def _result_digest_line(key: str, result: object) -> str:
    if isinstance(result, ExperimentResult):
        from repro.bench import serialize_result

        return f"ok key={key}\n{serialize_result(result)}"
    return f"ok key={key} synthetic={result!r}"


def _build_report(
    state: _State,
    keys: Sequence[str],
    outcomes: Dict[int, SweepOutcome],
    aborted: bool,
) -> SweepReport:
    """Merged, input-ordered report with a streaming digest.

    Results are loaded one at a time and dropped after hashing, so a
    10k-spec sweep's report holds outcome rows, never 10k results.
    """
    digest = hashlib.sha256()
    ordered: List[SweepOutcome] = []
    for index in range(len(keys)):
        outcome = outcomes.get(index)
        if outcome is None:
            continue  # incomplete (aborted) sweep: digest covers what ran
        ordered.append(outcome)
        if outcome.status == "ok":
            namespace = outcome.shard or "main"
            result = _load_result(state, namespace, outcome.key)
            if result is None:
                found = _find_cached(state, outcome.key)
                if found is None:
                    raise SweepError(
                        f"journal says spec {index} ({outcome.key[:12]}…) "
                        "succeeded but its cached result is missing; the "
                        "cache was pruned out from under the journal"
                    )
                _namespace, result = found
            digest.update(_result_digest_line(outcome.key, result).encode())
        else:
            digest.update(outcome.digest_line().encode())
        digest.update(b"\n")
    return SweepReport(
        outcomes=ordered,
        digest=digest.hexdigest(),
        state_dir=state.root,
        aborted=aborted,
    )


# -- public API -------------------------------------------------------------


def run_sweep(
    specs: Sequence[AnySpec],
    state_dir: os.PathLike,
    options: SweepOptions = SweepOptions(),
    resume: bool = False,
    sinks: Sequence[Sink] = (),
    describe: Optional[Dict[str, object]] = None,
) -> SweepReport:
    """Run (or resume) a checkpointed sweep over ``specs``.

    Every terminal outcome is journaled before the next dispatch, so the
    orchestrator can be SIGKILLed at any instant and
    ``run_sweep(..., resume=True)`` continues from the checkpoint — merged
    results (and :attr:`SweepReport.digest`) are byte-identical to an
    uninterrupted run.  ``sinks`` receive ``sweep.*`` events on a
    wall-clock bus, in addition to the always-on
    ``<state_dir>/events.jsonl`` log.
    """
    options.validate()
    specs = list(specs)
    if not specs:
        raise SweepError("a sweep needs at least one spec")
    keys = [sweep_spec_key(spec) for spec in specs]
    state = _open_state(state_dir, keys, resume=resume, describe=describe)

    all_sinks: List[Sink] = [JsonlSink(state.events)]
    all_sinks.extend(sinks)
    bus = Bus(WallClock(), all_sinks)

    orch = _Orchestrator(specs, keys, state, options, bus)
    orch.outcomes = _load_journal_outcomes(state)
    orch.failure_count = sum(1 for o in orch.outcomes.values() if o.failed)

    pending: List[int] = []
    for index, key in enumerate(keys):
        if index in orch.outcomes:
            continue
        # A worker may have cached the result right before the previous
        # orchestrator died without journaling it: adopt, don't re-run.
        found = _find_cached(state, key)
        if found is not None:
            namespace, _result = found
            orch.record(
                SweepOutcome(
                    index=index,
                    key=key,
                    status="ok",
                    attempts=0,
                    shard=namespace,
                )
            )
            continue
        pending.append(index)

    orch.emit(
        "sweep.start",
        {"total": len(specs), "pending": len(pending)},
    )
    for index in pending:
        orch.queue.append((index, 1))

    if orch.queue and not orch.aborting:
        if options.jobs <= 1:
            orch.run_inline()
        else:
            orch.run_sharded()

    report = _build_report(state, keys, orch.outcomes, aborted=orch.aborting)
    counts = report.counts()
    orch.emit(
        "sweep.done",
        {
            "total": len(specs),
            "ok": counts["ok"],
            "failed": counts["failure"],
            "quarantined": counts["quarantined"],
        },
    )
    if orch.aborting:
        raise SweepAborted(orch.failure_count, options.max_failures or 0)
    return report


def collect_report(
    specs: Sequence[AnySpec], state_dir: os.PathLike
) -> SweepReport:
    """Build the merged report for an existing checkpoint without running."""
    specs = list(specs)
    keys = [sweep_spec_key(spec) for spec in specs]
    state = _open_state(state_dir, keys, resume=True)
    outcomes = _load_journal_outcomes(state)
    return _build_report(state, keys, outcomes, aborted=False)


def sweep_status(state_dir: os.PathLike) -> Dict[str, object]:
    """Journal/meta summary for ``repro sweep status`` (no results loaded)."""
    root = Path(state_dir)
    meta_path = root / META_NAME
    if not meta_path.exists():
        raise SweepError(f"no sweep checkpoint at {root} (missing {META_NAME})")
    import json

    with meta_path.open("r", encoding="utf-8") as handle:
        meta = json.load(handle)
    state = _State(
        root=root,
        journal=root / JOURNAL_NAME,
        events=root / EVENTS_NAME,
        cache=root / CACHE_DIRNAME,
    )
    outcomes = _load_journal_outcomes(state)
    counts = {"ok": 0, "failure": 0, "quarantined": 0}
    by_shard: Dict[str, int] = {}
    attempts = 0
    for outcome in outcomes.values():
        counts[outcome.status] = counts.get(outcome.status, 0) + 1
        attempts += outcome.attempts
        if outcome.shard:
            by_shard[outcome.shard] = by_shard.get(outcome.shard, 0) + 1
    total = int(meta.get("count", 0))
    aborted = False
    pool: Optional[Dict[str, object]] = None
    for record in read_journal(state.journal):
        event = record.get("event")
        if event == "abort":
            aborted = True
        elif event == "pool":
            # Last record wins: one per run/resume pass; a resumed sweep's
            # status reflects its most recent sharded pass.
            pool = {k: v for k, v in record.items() if k != "event"}
    return {
        "state_dir": str(root),
        "total": total,
        "done": len(outcomes),
        "pending": total - len(outcomes),
        "ok": counts["ok"],
        "failure": counts["failure"],
        "quarantined": counts["quarantined"],
        "attempts": attempts,
        "by_shard": dict(sorted(by_shard.items())),
        "aborted": aborted,
        "pool": pool,
        "meta": meta,
    }


def specs_from_meta(state_dir: os.PathLike) -> List[AnySpec]:
    """Rebuild a checkpoint's spec list from its ``meta.json``.

    ``repro sweep resume|status`` works from the state directory alone:
    ``run`` records the grid (or synthetic shape) in the meta file, and
    this re-expands it — the keys digest then proves the rebuilt list
    matches the journal.
    """
    root = Path(state_dir)
    meta_path = root / META_NAME
    if not meta_path.exists():
        raise SweepError(f"no sweep checkpoint at {root} (missing {META_NAME})")
    import json

    with meta_path.open("r", encoding="utf-8") as handle:
        meta = json.load(handle)
    if "grid" in meta:
        return list(expand_grid(dict(meta["grid"])))
    if "synthetic" in meta:
        shape = dict(meta["synthetic"])
        return list(
            synthetic_specs(
                int(shape.get("count", 0)),
                fail_every=int(shape.get("fail_every", 0)),
                sleep_s=float(shape.get("sleep_s", 0.0)),
            )
        )
    raise SweepError(
        f"{meta_path} does not describe its specs (created via the Python "
        "API?); resume through run_sweep(..., resume=True) with the "
        "original spec list"
    )


# -- grid expansion (the CLI's sweep-file format) ---------------------------


def expand_grid(data: Dict[str, object], default_scale: str = "tiny") -> List[ExperimentSpec]:
    """Expand a declarative grid file into the cross product of its axes.

    Shape::

        {"scale": "tiny",
         "overrides": {"max_engine_steps": 2000000},
         "faults": {"disk": {"io_error_prob": 0.02}},
         "axes": {
             "benchmark": ["MATVEC", "BUK"],
             "version": ["O", "R"],
             "sleep": [null, 0.1],
             "policy": ["paging-directed", "global-clock"],
             "fault_seed": [1, 2, 3]}}

    Axis order is fixed (benchmark, version, sleep, policy, fault_seed) so
    the same grid file always expands to the same spec list — and hence
    the same sweep identity and merged digest.
    """
    data = dict(data)
    scale_name = str(data.pop("scale", default_scale))
    if scale_name not in _SCALES:
        raise SpecError(
            f"unknown scale {scale_name!r}; choose from {sorted(_SCALES)}"
        )
    scale: SimScale = _SCALES[scale_name]()
    overrides = data.pop("overrides", {})
    if overrides:
        scale = scale.with_overrides(**overrides)
    base_faults = (
        FaultPlan.from_dict(data.pop("faults")) if "faults" in data else EMPTY_PLAN
    )
    axes = dict(data.pop("axes", {}))
    if data:
        raise SpecError(f"unknown sweep grid keys: {sorted(data)}")
    benchmarks = list(axes.pop("benchmark", ()))
    if not benchmarks:
        raise SpecError("sweep grid needs a non-empty 'benchmark' axis")
    versions = list(axes.pop("version", ["R"]))
    sleeps = list(axes.pop("sleep", [None]))
    policies = list(axes.pop("policy", [None]))
    fault_seeds = list(axes.pop("fault_seed", [None]))
    if axes:
        raise SpecError(f"unknown sweep grid axes: {sorted(axes)}")
    specs: List[ExperimentSpec] = []
    for bench_name, version, sleep, policy, seed in itertools.product(
        benchmarks, versions, sleeps, policies, fault_seeds
    ):
        spec = ExperimentSpec.multiprogram(
            scale, str(bench_name).upper(), str(version).upper(), sleep_time_s=sleep
        )
        if seed is not None:
            spec = spec.with_faults(base_faults.with_seed(int(seed)))
        elif base_faults is not EMPTY_PLAN:
            spec = spec.with_faults(base_faults)
        if policy is not None:
            spec = spec.with_policy(str(policy))
        spec.validate()
        specs.append(spec)
    return specs
