"""Row formatting shared by the figure/table reproductions.

Every experiment module returns plain data; these helpers print it in the
shape the paper reports so the benchmark logs read like the original tables
and figures.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence

__all__ = ["format_process_table", "format_table", "normalize", "percent"]


def format_process_table(result, label: str) -> str:
    """The per-process summary table for one experiment result.

    Shared by ``repro run --spec``, trace replay, and the service's
    ``GET /v1/jobs/<id>/figure`` rendering, so every surface prints the
    same shape for the same result.
    """
    rows = []
    for process in result.processes:
        rows.append(
            (
                process.name,
                process.workload,
                process.version or "-",
                "yes" if process.completed else "no",
                round(process.buckets.user, 3),
                round(process.buckets.system, 3),
                round(process.buckets.stall_memory, 3),
                round(process.buckets.stall_io, 3),
                process.stats.hard_faults,
                process.stats.soft_faults,
                len(process.sweeps) if process.interactive else "-",
            )
        )
    return format_table(
        [
            "process",
            "workload",
            "ver",
            "done",
            "user_s",
            "system_s",
            "stall_mem_s",
            "stall_io_s",
            "hard",
            "soft",
            "sweeps",
        ],
        rows,
        title=(
            f"{label} at scale '{result.scale}': "
            f"elapsed_s={result.elapsed_s:.3f}  "
            f"engine_steps={result.engine_steps}  "
            f"pages_released={result.vm.releaser_pages_freed}"
        ),
    )


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width text table."""
    materialized: List[List[str]] = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "n/a"  # e.g. mean response over zero recorded sweeps
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def normalize(values: Mapping[str, float], baseline_key: str) -> Dict[str, float]:
    """Each value divided by the baseline entry."""
    baseline = values[baseline_key]
    if baseline == 0:
        raise ValueError(f"baseline {baseline_key!r} is zero")
    return {key: value / baseline for key, value in values.items()}


def percent(fraction: float) -> str:
    return f"{100.0 * fraction:.1f}%"
