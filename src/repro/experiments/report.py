"""Row formatting shared by the figure/table reproductions.

Every experiment module returns plain data; these helpers print it in the
shape the paper reports so the benchmark logs read like the original tables
and figures.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence

__all__ = ["format_table", "normalize", "percent"]


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width text table."""
    materialized: List[List[str]] = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "n/a"  # e.g. mean response over zero recorded sweeps
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def normalize(values: Mapping[str, float], baseline_key: str) -> Dict[str, float]:
    """Each value divided by the baseline entry."""
    baseline = values[baseline_key]
    if baseline == 0:
        raise ValueError(f"baseline {baseline_key!r} is zero")
    return {key: value / baseline for key, value in values.items()}


def percent(fraction: float) -> str:
    return f"{100.0 * fraction:.1f}%"
