"""Monte Carlo fault ensembles: one spec, many fault seeds, interval answers.

A single fault experiment answers "what happened under *this* injected
schedule"; the paper-grade question is distributional — how much do
elapsed time, hard faults, and memory fragmentation move when the *same*
fault rates are realised under many independent schedules?  This module
expands one :class:`~repro.machine.ExperimentSpec` across N derived
:class:`~repro.faults.FaultPlan` seeds (:func:`repro.faults.seed_stream`),
runs the members through the checkpointed sweep orchestrator
(:mod:`repro.experiments.sweep` — ensembles inherit kill/resume, shards,
and the watchdog for free), and merges the figure metrics with bootstrap
confidence intervals.

Everything is deterministic for a fixed base seed: the member seed stream,
each member's simulation, *and* the bootstrap resampling RNG — so the
reported CI bounds are reproducible numbers, not run-to-run noise.
``repro ensemble`` prints the summary table.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.faults import FaultPlanError, _derive_seed, seed_stream
from repro.machine import ExperimentResult, ExperimentSpec, SpecError
from repro.experiments.sweep import (
    SweepOptions,
    SweepOutcome,
    SweepReport,
    run_sweep,
)

__all__ = [
    "EnsembleReport",
    "EnsembleSpec",
    "MetricSummary",
    "bootstrap_ci",
    "ensemble_metrics",
    "format_ensemble_table",
    "run_ensemble",
]

#: Metric name -> extractor over one member's :class:`ExperimentResult`.
#: These are the figure metrics the paper's grids plot.
METRICS = {
    "elapsed_s": lambda r: float(r.elapsed_s),
    "hard_faults": lambda r: float(sum(p.stats.hard_faults for p in r.processes)),
    "soft_faults": lambda r: float(sum(p.stats.soft_faults for p in r.processes)),
    "unusable_free_index": lambda r: float(r.vm.frag.mean_unusable_free_index),
}


@dataclass(frozen=True)
class EnsembleSpec:
    """One experiment expanded across ``seeds`` independent fault schedules.

    ``base_seed`` roots the member seed stream; the base spec must carry
    an *enabled* fault plan — an ensemble over the empty plan would run
    the identical simulation N times and report zero-width intervals.
    """

    base: ExperimentSpec
    seeds: int
    base_seed: int = 0

    def validate(self) -> None:
        self.base.validate()
        if self.seeds < 2:
            raise SpecError(f"an ensemble needs >= 2 seeds, got {self.seeds}")
        if not self.base.faults.enabled:
            raise SpecError(
                "ensemble base spec has no enabled fault plan: every member "
                "would be identical (give --faults with non-zero rates)"
            )

    def expand(self) -> List[ExperimentSpec]:
        """The member specs, in seed-stream order."""
        self.validate()
        return [
            self.base.with_faults(plan)
            for plan in (
                self.base.faults.with_seed(seed)
                for seed in seed_stream(self.base_seed, self.seeds)
            )
        ]


def bootstrap_ci(
    values: Sequence[float],
    resamples: int = 2000,
    alpha: float = 0.05,
    seed: int = 0,
    label: str = "",
) -> Dict[str, float]:
    """Percentile-bootstrap mean CI, deterministic for a fixed ``seed``.

    Returns ``{"mean", "lo", "hi"}`` (the ``1 - alpha`` interval).  The
    resampling RNG is derived from ``(seed, "bootstrap", label)`` with the
    fault layer's SHA-256 derivation, so two runs of the same ensemble
    report byte-identical bounds.
    """
    import random

    if not values:
        raise FaultPlanError("bootstrap_ci needs at least one value")
    if not 0.0 < alpha < 1.0:
        raise FaultPlanError(f"alpha must be in (0, 1), got {alpha}")
    if resamples < 1:
        raise FaultPlanError(f"resamples must be >= 1, got {resamples}")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return {"mean": mean, "lo": mean, "hi": mean}
    rng = random.Random(_derive_seed(seed, "bootstrap", label, resamples))
    means = sorted(
        sum(rng.choice(values) for _ in range(n)) / n for _ in range(resamples)
    )
    lo_index = int((alpha / 2) * resamples)
    hi_index = min(resamples - 1, int((1 - alpha / 2) * resamples))
    return {"mean": mean, "lo": means[lo_index], "hi": means[hi_index]}


@dataclass
class MetricSummary:
    """One figure metric across the ensemble members."""

    name: str
    n: int
    mean: float
    lo: float
    hi: float
    min: float
    max: float


@dataclass
class EnsembleReport:
    """What :func:`run_ensemble` returns: per-metric summaries + the sweep."""

    spec: EnsembleSpec
    metrics: List[MetricSummary]
    sweep: SweepReport
    failed_members: List[SweepOutcome] = field(default_factory=list)

    @property
    def members_ok(self) -> int:
        return len(self.sweep.ok)


def ensemble_metrics(
    results: Sequence[ExperimentResult],
    base_seed: int = 0,
    resamples: int = 2000,
    alpha: float = 0.05,
) -> List[MetricSummary]:
    """Bootstrap every registered metric over the member results."""
    summaries: List[MetricSummary] = []
    for name, extract in METRICS.items():
        values = [extract(result) for result in results]
        ci = bootstrap_ci(
            values, resamples=resamples, alpha=alpha, seed=base_seed, label=name
        )
        summaries.append(
            MetricSummary(
                name=name,
                n=len(values),
                mean=ci["mean"],
                lo=ci["lo"],
                hi=ci["hi"],
                min=min(values),
                max=max(values),
            )
        )
    return summaries


def run_ensemble(
    spec: EnsembleSpec,
    state_dir: Optional[os.PathLike] = None,
    options: SweepOptions = SweepOptions(),
    resume: bool = False,
    resamples: int = 2000,
    alpha: float = 0.05,
) -> EnsembleReport:
    """Run (or resume) a Monte Carlo fault ensemble.

    Members execute through :func:`~repro.experiments.sweep.run_sweep`,
    so an ensemble is checkpointed and resumable exactly like any sweep
    when ``state_dir`` is given; with ``state_dir=None`` it runs in a
    throwaway state directory (no resume).  Failed members become failure
    slots and are excluded from the intervals; at least two members must
    survive to report one.
    """
    members = spec.expand()
    if state_dir is None:
        import tempfile

        with tempfile.TemporaryDirectory(prefix="repro-ensemble-") as tmp:
            sweep = run_sweep(
                members,
                tmp,
                options=options,
                describe={"ensemble_seeds": spec.seeds, "base_seed": spec.base_seed},
            )
            return _summarize(spec, members, sweep, resamples, alpha)
    sweep = run_sweep(
        members,
        state_dir,
        options=options,
        resume=resume,
        describe={"ensemble_seeds": spec.seeds, "base_seed": spec.base_seed},
    )
    return _summarize(spec, members, sweep, resamples, alpha)


def _summarize(
    spec: EnsembleSpec,
    members: Sequence[ExperimentSpec],
    sweep: SweepReport,
    resamples: int,
    alpha: float,
) -> EnsembleReport:
    from repro.experiments.sweep import _State, _load_result, _find_cached

    state = _State(
        root=sweep.state_dir,
        journal=sweep.state_dir / "journal.jsonl",
        events=sweep.state_dir / "events.jsonl",
        cache=sweep.state_dir / "cache",
    )
    results: List[ExperimentResult] = []
    for outcome in sweep.ok:
        result = _load_result(state, outcome.shard or "main", outcome.key)
        if result is None:
            found = _find_cached(state, outcome.key)
            result = found[1] if found is not None else None
        if isinstance(result, ExperimentResult):
            results.append(result)
    if len(results) < 2:
        raise SpecError(
            f"only {len(results)} of {spec.seeds} ensemble members succeeded; "
            "cannot report confidence intervals (see the sweep journal)"
        )
    metrics = ensemble_metrics(
        results, base_seed=spec.base_seed, resamples=resamples, alpha=alpha
    )
    return EnsembleReport(
        spec=spec,
        metrics=metrics,
        sweep=sweep,
        failed_members=sweep.failures,
    )


def format_ensemble_table(report: EnsembleReport, alpha: float = 0.05) -> str:
    """Render the per-metric summary as the aligned table the CLI prints."""
    level = int(round((1 - alpha) * 100))
    headers = ["metric", "n", "mean", f"ci{level}_lo", f"ci{level}_hi", "min", "max"]
    table = [headers]
    for metric in report.metrics:
        table.append(
            [
                metric.name,
                str(metric.n),
                f"{metric.mean:.4f}",
                f"{metric.lo:.4f}",
                f"{metric.hi:.4f}",
                f"{metric.min:.4f}",
                f"{metric.max:.4f}",
            ]
        )
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(table):
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
