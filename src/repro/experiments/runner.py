"""The parallel experiment runner: fan out specs, cache results.

Every figure in the paper is a grid of independent experiments (benchmark ×
version × sleep time), each a pure function of its
:class:`~repro.machine.ExperimentSpec`.  This module exploits both facts:

- **Parallelism** — :func:`run_specs` fans a list of specs out over a
  ``multiprocessing`` pool (``jobs > 1``) while preserving input order.
  With ``jobs=1`` everything runs inline in this process, which keeps
  single-experiment debugging (and test monkeypatching) trivial.

- **Caching** — specs are content-hashed (:func:`spec_key`) together with a
  hash of the ``repro`` package's own source (:func:`code_version`), and
  results are pickled under that key in ``cache_dir``.  A re-run of any
  figure — or a different figure sharing experiments, like Figure 7 and
  Figure 8 — performs zero simulation steps for the shared grid.  Editing
  any source file invalidates the whole cache, so stale physics can never
  leak into a figure.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from pathlib import Path
from typing import List, Optional, Sequence

from repro.machine import ExperimentResult, ExperimentSpec, run_experiment

__all__ = ["code_version", "run_specs", "spec_key"]

_code_version: Optional[str] = None


def code_version() -> str:
    """Hash of every source file in the ``repro`` package.

    Part of every cache key: a cached result is only valid for the exact
    code that produced it.
    """
    global _code_version
    if _code_version is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(path.read_bytes())
        _code_version = digest.hexdigest()
    return _code_version


def spec_key(spec: ExperimentSpec) -> str:
    """Content hash identifying one experiment under the current code.

    ``ExperimentSpec`` is a tree of frozen dataclasses of primitives, so its
    ``repr`` is a complete, deterministic serialisation.
    """
    digest = hashlib.sha256()
    digest.update(code_version().encode())
    digest.update(repr(spec).encode())
    return digest.hexdigest()


def _cache_path(cache_dir: Path, key: str) -> Path:
    return cache_dir / f"{key}.pkl"


def _load_cached(cache_dir: Path, key: str) -> Optional[ExperimentResult]:
    path = _cache_path(cache_dir, key)
    if not path.exists():
        return None
    try:
        with path.open("rb") as handle:
            result = pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
        return None  # corrupt or stale entry: just re-run
    if not isinstance(result, ExperimentResult):
        return None
    result.from_cache = True
    return result


def _store_cached(cache_dir: Path, key: str, result: ExperimentResult) -> None:
    cache_dir.mkdir(parents=True, exist_ok=True)
    path = _cache_path(cache_dir, key)
    # Write-then-rename so a parallel worker never reads a torn entry.
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    with tmp.open("wb") as handle:
        pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)


def _execute(spec: ExperimentSpec) -> ExperimentResult:
    result = run_experiment(spec)
    result.from_cache = False
    return result


def _execute_indexed(item):
    """Pool worker: (index, spec) -> (index, result)."""
    index, spec = item
    return index, _execute(spec)


def run_specs(
    specs: Sequence[ExperimentSpec],
    jobs: int = 1,
    cache_dir: Optional[os.PathLike] = None,
) -> List[ExperimentResult]:
    """Run experiments, in input order, with optional parallelism + cache.

    ``jobs`` caps the worker-process count (clamped to the number of
    experiments actually missing from the cache); ``jobs=1`` runs inline.
    Cached results carry ``from_cache=True``, fresh ones ``False``.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    specs = list(specs)
    cache = Path(cache_dir) if cache_dir is not None else None
    results: List[Optional[ExperimentResult]] = [None] * len(specs)
    missing: List[int] = []
    keys: List[Optional[str]] = [None] * len(specs)
    for index, spec in enumerate(specs):
        if cache is not None:
            keys[index] = spec_key(spec)
            cached = _load_cached(cache, keys[index])
            if cached is not None:
                results[index] = cached
                continue
        missing.append(index)

    if missing:
        jobs = min(jobs, len(missing))
        if jobs == 1:
            for index in missing:
                results[index] = _execute(specs[index])
        else:
            # Local import: multiprocessing drags in fork machinery nobody
            # needs for the serial path.
            from multiprocessing import Pool

            with Pool(processes=jobs) as pool:
                for index, result in pool.imap_unordered(
                    _execute_indexed, [(i, specs[i]) for i in missing]
                ):
                    results[index] = result
        if cache is not None:
            for index in missing:
                _store_cached(cache, keys[index], results[index])

    return results  # type: ignore[return-value]
