"""The parallel experiment runner: fan out specs, cache results, contain failures.

Every figure in the paper is a grid of independent experiments (benchmark ×
version × sleep time), each a pure function of its
:class:`~repro.machine.ExperimentSpec`.  This module exploits both facts:

- **Parallelism** — :func:`run_specs` fans a list of specs out over a
  process pool (``jobs > 1``) while preserving input order.  With
  ``jobs=1`` everything runs inline in this process, which keeps
  single-experiment debugging (and test monkeypatching) trivial.

- **Caching** — specs are content-hashed (:func:`spec_key`) together with a
  hash of the ``repro`` package's own source (:func:`code_version`), and
  results are pickled under that key in ``cache_dir``.  A re-run of any
  figure — or a different figure sharing experiments, like Figure 7 and
  Figure 8 — performs zero simulation steps for the shared grid.  Editing
  any source file invalidates the whole cache, so stale physics can never
  leak into a figure.

- **Containment** — one bad spec must not cost the rest of the grid.  A
  spec that raises, exceeds ``timeout_s`` of wall clock, or kills its
  worker process outright becomes a structured :class:`ExperimentFailure`
  in its grid slot; every other spec still runs, completes, and is cached.
  ``retries`` re-runs a failing spec before giving up (simulations are
  deterministic, so this mainly absorbs environmental flakes: OOM kills,
  signal-interrupted workers).  With ``on_error="raise"`` (the default) an
  :class:`ExperimentGridError` summarising the failures is raised *after*
  the grid finishes; ``on_error="return"`` hands back the mixed list.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import signal
import threading
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.ioutil import atomic_open
from repro.machine import ExperimentResult, ExperimentSpec, run_experiment

__all__ = [
    "CacheEntry",
    "ExperimentFailure",
    "ExperimentGridError",
    "cache_entries",
    "call_with_deadline",
    "code_version",
    "execute_guarded",
    "load_cached",
    "prune_cache",
    "run_specs",
    "spec_key",
    "store_cached",
]

_code_version: Optional[str] = None


def code_version() -> str:
    """Hash of every source file in the ``repro`` package.

    Part of every cache key: a cached result is only valid for the exact
    code that produced it.
    """
    global _code_version
    if _code_version is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(path.read_bytes())
        _code_version = digest.hexdigest()
    return _code_version


def spec_key(spec: ExperimentSpec) -> str:
    """Content hash identifying one experiment under the current code.

    ``ExperimentSpec`` is a tree of frozen dataclasses of primitives
    (including its :class:`~repro.faults.FaultPlan`), so its ``repr`` is a
    complete, deterministic serialisation.
    """
    digest = hashlib.sha256()
    digest.update(code_version().encode())
    digest.update(repr(spec).encode())
    return digest.hexdigest()


# -- failures ---------------------------------------------------------------


@dataclass
class ExperimentFailure:
    """One spec that could not produce a result.

    Occupies the failed spec's slot in :func:`run_specs`'s output so grid
    positions stay aligned.  ``kind`` is ``"error"`` (the simulation
    raised), ``"timeout"`` (exceeded the wall-clock budget), or ``"crash"``
    (the worker process died).  Failures are never written to the cache.
    """

    spec: ExperimentSpec
    kind: str
    message: str
    attempts: int = 1
    from_cache: bool = False  # mirrors ExperimentResult for uniform handling

    @property
    def failed(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"[{self.kind}] after {self.attempts} attempt(s): {self.message}"


class ExperimentGridError(RuntimeError):
    """Raised after a grid completes when some specs failed.

    Raised only once every other spec has run and been cached, so a single
    bad configuration never costs the rest of the figure.  ``results``
    holds the full mixed output list; ``failures`` just the failed slots.
    """

    def __init__(
        self,
        results: List[Union[ExperimentResult, ExperimentFailure]],
        failures: List[ExperimentFailure],
    ) -> None:
        self.results = results
        self.failures = failures
        lines = [f"{len(failures)} of {len(results)} experiments failed:"]
        lines += [f"  - {failure}" for failure in failures]
        super().__init__("\n".join(lines))


class _SpecTimeout(Exception):
    """Internal: the SIGALRM deadline fired inside a worker."""


# -- cache ------------------------------------------------------------------


def _cache_path(cache_dir: Path, key: str) -> Path:
    return cache_dir / f"{key}.pkl"


def load_cached(cache_dir: Path, key: str) -> Optional[ExperimentResult]:
    """Load one cached result, or ``None`` (missing, corrupt, or stale)."""
    path = _cache_path(Path(cache_dir), key)
    try:
        with path.open("rb") as handle:
            result = pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
        return None  # missing, corrupt, or stale entry: just re-run
    if not isinstance(result, ExperimentResult):
        return None
    result.from_cache = True
    return result


def store_cached(cache_dir: Path, key: str, result: object) -> None:
    """Persist one success under ``key``; failures are silently refused."""
    if not isinstance(result, ExperimentResult):
        # Failures (or a slot that never produced anything) must not be
        # persisted: a cached failure would satisfy every future lookup.
        return
    path = _cache_path(Path(cache_dir), key)
    # Write-then-rename so a parallel worker never reads a torn entry.
    with atomic_open(path, "wb") as handle:
        pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)


# Back-compat aliases (the sweep layer uses the public names above).
_load_cached = load_cached
_store_cached = store_cached


@dataclass
class CacheEntry:
    """One file in a result cache, classified for ``repro cache``.

    ``status`` is ``"ok"`` (loads, and its key matches the current code),
    ``"stale"`` (a result from an older code version), ``"corrupt"``
    (unreadable), or ``"orphan"`` (a ``*.tmp.*`` left by a crashed worker).
    Everything except ``"ok"`` is prunable.
    """

    path: Path
    size_bytes: int
    status: str

    @property
    def prunable(self) -> bool:
        return self.status != "ok"


def cache_entries(cache_dir: os.PathLike) -> List[CacheEntry]:
    """Classify every file in a result cache directory.

    Tolerant of concurrent writers and pruners: an entry that vanishes
    between listing and inspection (ENOENT at ``stat`` or ``open``) is
    simply skipped, and a torn/partial entry classifies as ``"corrupt"``
    rather than raising — another process may be pruning or rewriting the
    same directory at any time.
    """
    cache = Path(cache_dir)
    entries: List[CacheEntry] = []
    if not cache.is_dir():
        return entries
    try:
        listing = sorted(cache.iterdir())
    except FileNotFoundError:
        return entries  # the directory itself vanished under us
    for path in listing:
        try:
            if not path.is_file():
                continue
            size = path.stat().st_size
        except FileNotFoundError:
            continue  # deleted between listing and stat
        if ".tmp." in path.name:
            entries.append(CacheEntry(path, size, "orphan"))
            continue
        if path.suffix != ".pkl":
            continue
        try:
            with path.open("rb") as handle:
                result = pickle.load(handle)
        except FileNotFoundError:
            continue  # deleted between stat and open
        except Exception:
            entries.append(CacheEntry(path, size, "corrupt"))
            continue
        if not isinstance(result, ExperimentResult):
            entries.append(CacheEntry(path, size, "corrupt"))
            continue
        # Re-deriving the key from the embedded spec uses the *current*
        # code hash; an entry written by older code lands on a different
        # name than its own, marking it stale.
        status = "ok" if path.stem == spec_key(result.spec) else "stale"
        entries.append(CacheEntry(path, size, status))
    return entries


def prune_cache(cache_dir: os.PathLike) -> List[CacheEntry]:
    """Delete stale/corrupt/orphaned cache files; returns what was removed."""
    removed: List[CacheEntry] = []
    for entry in cache_entries(cache_dir):
        if entry.prunable:
            entry.path.unlink(missing_ok=True)
            removed.append(entry)
    return removed


# -- guarded execution ------------------------------------------------------


def call_with_deadline(fn, timeout_s: Optional[float]):
    """Call ``fn()``, bounded by ``timeout_s`` of wall clock.

    The deadline uses ``SIGALRM``/``setitimer``, which interrupts even a
    simulation stuck in a tight Python loop.  It is only armed where it
    can work — the main thread of a Unix process (which a pool worker's
    entry point always is); elsewhere the call runs unbounded.

    On timeout, raises :class:`_SpecTimeout` — but only while ``fn`` is
    actually running.  Whatever happens, ``SIGALRM`` is left exactly as it
    was found: handler restored, timer disarmed.  That invariant is what
    lets a persistent pool worker run specs back to back without one
    spec's deadline machinery leaking into the next.
    """
    if (
        timeout_s is None
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        return fn()

    def _alarm(signum, frame):
        raise _SpecTimeout()

    # Ordering matters for every exit path.  The timer is armed *inside*
    # the outer try so the handler is restored even if arming raises, and
    # the timer is disarmed in its own finally *before* the handler swap
    # so a pending alarm can never fire into the caller's handler.  One
    # hazard remains: an alarm delivered in the disarm window (after
    # ``fn`` returns, before ``setitimer(0)`` takes effect) runs the
    # handler at the next bytecode boundary — which may be *inside* the
    # outer finally, aborting the ``signal.signal`` restore and leaking
    # our handler into the caller.  In a short-lived pool worker that was
    # survivable; in a persistent warm worker the leaked handler would
    # turn some later spec's alarm into a spurious timeout.  The retry
    # loop absorbs any such late alarm (the timer is already disarmed, so
    # at most one is pending) and guarantees the restore completes; the
    # completed call's result is then returned as a success, which is the
    # deterministic choice — the work did finish.
    previous = signal.signal(signal.SIGALRM, _alarm)
    try:
        signal.setitimer(signal.ITIMER_REAL, timeout_s)
        try:
            return fn()
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
    finally:
        while True:
            try:
                signal.signal(signal.SIGALRM, previous)
                break
            except _SpecTimeout:
                continue


def _run_with_deadline(spec: ExperimentSpec, timeout_s: Optional[float]):
    """Run one experiment under :func:`call_with_deadline`."""
    return call_with_deadline(lambda: run_experiment(spec), timeout_s)


def execute_guarded(
    spec: ExperimentSpec,
    timeout_s: Optional[float] = None,
    retries: int = 0,
) -> Union[ExperimentResult, ExperimentFailure]:
    """Run one spec; never raises — failures come back as values.

    Returning (not raising) is what keeps a pool worker alive and the rest
    of the grid unharmed when one configuration is broken.  This is the
    execution primitive the sharded sweep orchestrator
    (:mod:`repro.experiments.sweep`) layers its own retry/backoff and
    watchdog machinery on top of.
    """
    attempts = 0
    while True:
        attempts += 1
        try:
            result = _run_with_deadline(spec, timeout_s)
            result.from_cache = False
            return result
        except _SpecTimeout:
            failure = ExperimentFailure(
                spec,
                "timeout",
                f"exceeded the wall-clock budget of {timeout_s}s",
                attempts=attempts,
            )
        except Exception as exc:
            detail = traceback.format_exception_only(type(exc), exc)[-1].strip()
            failure = ExperimentFailure(spec, "error", detail, attempts=attempts)
        if attempts > retries:
            return failure


_execute_guarded = execute_guarded  # back-compat alias


def _execute_indexed_guarded(item):
    """Pool worker: (index, spec, timeout_s, retries) -> (index, outcome)."""
    index, spec, timeout_s, retries = item
    return index, execute_guarded(spec, timeout_s, retries)


def _run_pool(
    specs: Sequence[ExperimentSpec],
    indexes: List[int],
    results: List[Optional[Union[ExperimentResult, ExperimentFailure]]],
    jobs: int,
    timeout_s: Optional[float],
    retries: int,
) -> None:
    """Fan ``indexes`` out over a process pool, containing worker deaths.

    Guarded execution converts ordinary exceptions and timeouts into
    values, so the only way a future can *raise* is the worker process
    dying (segfault, OOM kill).  That breaks the whole pool; the specs
    still unfinished are then re-run one per private single-worker pool,
    which pins the blame: a spec that kills its own pool is the crasher
    and fails alone, everything else completes normally.
    """
    # Local import: the futures machinery is only needed for jobs > 1.
    from concurrent.futures import ProcessPoolExecutor, as_completed
    from concurrent.futures.process import BrokenProcessPool

    broken = False
    try:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {
                pool.submit(
                    _execute_indexed_guarded, (i, specs[i], timeout_s, retries)
                ): i
                for i in indexes
            }
            for future in as_completed(futures):
                try:
                    index, outcome = future.result()
                except BrokenProcessPool:
                    broken = True
                    break  # every remaining future died with the pool
                results[index] = outcome
    except BrokenProcessPool:
        broken = True
    if not broken:
        return
    for index in indexes:
        if results[index] is not None:
            continue
        try:
            with ProcessPoolExecutor(max_workers=1) as solo:
                _, outcome = solo.submit(
                    _execute_indexed_guarded,
                    (index, specs[index], timeout_s, retries),
                ).result()
            results[index] = outcome
        except BrokenProcessPool:
            results[index] = ExperimentFailure(
                specs[index],
                "crash",
                "worker process died while running this spec",
            )


def run_specs(
    specs: Sequence[ExperimentSpec],
    jobs: int = 1,
    cache_dir: Optional[os.PathLike] = None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    on_error: str = "raise",
) -> List[Union[ExperimentResult, ExperimentFailure]]:
    """Run experiments, in input order, with parallelism, cache, containment.

    ``jobs`` caps the worker-process count (clamped to the number of
    experiments actually missing from the cache); ``jobs=1`` runs inline.
    Cached results carry ``from_cache=True``, fresh ones ``False``.

    ``timeout_s`` bounds each spec's wall clock; ``retries`` re-runs a
    failing spec that many extra times.  A spec that still fails becomes an
    :class:`ExperimentFailure` in its slot (never cached).  With
    ``on_error="raise"`` (default) an :class:`ExperimentGridError` is
    raised after the whole grid has run and every success is cached;
    ``on_error="return"`` returns the mixed list instead.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if timeout_s is not None and timeout_s <= 0:
        raise ValueError(f"timeout_s must be positive, got {timeout_s}")
    if on_error not in ("raise", "return"):
        raise ValueError(f"on_error must be 'raise' or 'return', got {on_error!r}")
    specs = list(specs)
    cache = Path(cache_dir) if cache_dir is not None else None
    results: List[Optional[Union[ExperimentResult, ExperimentFailure]]] = [
        None
    ] * len(specs)
    missing: List[int] = []
    keys: List[Optional[str]] = [None] * len(specs)
    for index, spec in enumerate(specs):
        if cache is not None:
            keys[index] = spec_key(spec)
            cached = load_cached(cache, keys[index])
            if cached is not None:
                results[index] = cached
                continue
        missing.append(index)

    if missing:
        jobs = min(jobs, len(missing))
        if jobs == 1:
            for index in missing:
                results[index] = execute_guarded(specs[index], timeout_s, retries)
        else:
            # The warm pool is the default parallel executor; REPRO_POOL=0
            # selects the legacy per-grid ProcessPoolExecutor as the
            # byte-identical reference path.
            from repro.experiments import pool as pool_mod

            if pool_mod.pool_enabled():
                outcomes = pool_mod.get_pool(jobs).run(
                    [specs[index] for index in missing],
                    timeout_s=timeout_s,
                    retries=retries,
                )
                for index, outcome in zip(missing, outcomes):
                    results[index] = outcome
            else:
                _run_pool(specs, missing, results, jobs, timeout_s, retries)
        if cache is not None:
            for index in missing:
                store_cached(cache, keys[index], results[index])

    failures = [r for r in results if isinstance(r, ExperimentFailure)]
    if failures and on_error == "raise":
        raise ExperimentGridError(results, failures)  # type: ignore[arg-type]
    return results  # type: ignore[return-value]
