"""The multiprogramming harness (Section 4's experimental setup).

One experiment = one out-of-core benchmark (in one of the four versions
O/P/R/B) sharing the machine with the simulated interactive task at a given
sleep time.  The run ends when the out-of-core program completes its fixed
work; the result carries everything the figures and tables need: the
application's four-way time breakdown, the VM subsystem's counters, the
run-time layer's filter statistics, and the interactive task's per-sweep
samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.config import SimScale
from repro.core.runtime.layer import RuntimeLayer, RuntimeStats
from repro.core.runtime.policies import VERSIONS, VersionConfig
from repro.kernel.kernel import Kernel
from repro.sim.engine import Engine
from repro.sim.stats import TimeBuckets
from repro.vm.stats import AddressSpaceStats, VmStats
from repro.workloads.base import (
    OutOfCoreWorkload,
    app_driver,
    build_layout,
)
from repro.workloads.interactive import InteractiveTask, SweepSample

__all__ = [
    "MultiprogramResult",
    "interactive_alone",
    "run_multiprogram",
    "run_version_suite",
]

# Hard ceiling so a badly-tuned configuration cannot spin forever; generous
# relative to any experiment in the suite.
MAX_ENGINE_STEPS = 200_000_000


@dataclass
class MultiprogramResult:
    """Everything measured from one benchmark × version run."""

    workload: str
    version: str
    scale: str
    sleep_time_s: float
    elapsed_s: float
    app_buckets: TimeBuckets
    worker_buckets: TimeBuckets
    app_stats: AddressSpaceStats
    interactive_stats: Optional[AddressSpaceStats]
    vm: VmStats
    runtime: RuntimeStats
    sweeps: List[SweepSample] = field(default_factory=list)
    swap: Dict[str, float] = field(default_factory=dict)

    def mean_response(self, skip_warmup: int = 1) -> float:
        samples = self.sweeps[skip_warmup:] or self.sweeps
        if not samples:
            return 0.0
        return sum(s.response_time for s in samples) / len(samples)

    def mean_interactive_hard_faults(self, skip_warmup: int = 1) -> float:
        samples = self.sweeps[skip_warmup:] or self.sweeps
        if not samples:
            return 0.0
        return sum(s.hard_faults for s in samples) / len(samples)


def _drive(engine: Engine, done_process) -> None:
    steps = 0
    while not done_process.triggered:
        engine.step()
        steps += 1
        if steps > MAX_ENGINE_STEPS:  # pragma: no cover - safety net
            raise RuntimeError("experiment exceeded the engine step budget")
    if not done_process.ok:
        raise done_process.value


def run_multiprogram(
    scale: SimScale,
    workload: OutOfCoreWorkload,
    version: VersionConfig,
    sleep_time_s: Optional[float] = None,
    with_interactive: bool = True,
) -> MultiprogramResult:
    """Run one benchmark version, optionally alongside the interactive task."""
    if sleep_time_s is None:
        sleep_time_s = scale.intermediate_sleep_s
    engine = Engine()
    kernel = Kernel.boot(engine, scale)

    instance = workload.build(scale)
    process = kernel.create_process(instance.name)
    layout = build_layout(process, instance, scale.machine.page_size)
    pm = kernel.attach_paging_directed(process)
    runtime = RuntimeLayer(process, pm, scale.runtime, version)
    compiled = instance.compiled(scale)

    interactive: Optional[InteractiveTask] = None
    if with_interactive:
        interactive = InteractiveTask(kernel, scale, sleep_time_s)
        engine.process(interactive.run(), name="interactive")

    driver = app_driver(
        process, runtime, compiled, instance, layout, version, scale
    )
    app_process = engine.process(driver, name=instance.name)
    _drive(engine, app_process)
    if interactive is not None:
        interactive.stop()

    vm_stats = kernel.vm.finalize_stats()
    swap = kernel.swap.stats
    return MultiprogramResult(
        workload=workload.name,
        version=version.name,
        scale=scale.name,
        sleep_time_s=sleep_time_s,
        elapsed_s=engine.now,
        app_buckets=process.task.buckets,
        worker_buckets=runtime.worker_time(),
        app_stats=process.aspace.stats,
        interactive_stats=(
            interactive.process.aspace.stats if interactive is not None else None
        ),
        vm=vm_stats,
        runtime=runtime.stats,
        sweeps=list(interactive.samples) if interactive is not None else [],
        swap={
            "demand_reads": swap.demand_reads,
            "prefetch_reads": swap.prefetch_reads,
            "writebacks": swap.writebacks,
            "mean_demand_latency_s": kernel.swap.mean_latency("demand"),
            "mean_prefetch_latency_s": kernel.swap.mean_latency("prefetch"),
        },
    )


def interactive_alone(
    scale: SimScale, sleep_time_s: float, sweeps: int = 8
) -> List[SweepSample]:
    """The interactive task on a dedicated machine (the baselines in
    Figures 1 and 10)."""
    engine = Engine()
    kernel = Kernel.boot(engine, scale)
    task = InteractiveTask(kernel, scale, sleep_time_s)

    def bounded():
        runner = task.run()
        # Drive the task's generator until enough sweeps are recorded.
        for event in runner:
            yield event
            if len(task.samples) >= sweeps:
                task.stop()

    process = engine.process(bounded(), name="interactive-alone")
    _drive(engine, process)
    return list(task.samples)


def run_version_suite(
    scale: SimScale,
    workload: OutOfCoreWorkload,
    versions: str = "OPRB",
    sleep_time_s: Optional[float] = None,
    with_interactive: bool = True,
) -> Dict[str, MultiprogramResult]:
    """Run several versions of one benchmark under identical conditions."""
    results: Dict[str, MultiprogramResult] = {}
    for name in versions:
        results[name] = run_multiprogram(
            scale,
            workload,
            VERSIONS[name],
            sleep_time_s=sleep_time_s,
            with_interactive=with_interactive,
        )
    return results
