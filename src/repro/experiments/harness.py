"""The multiprogramming harness (Section 4's experimental setup).

One experiment = one out-of-core benchmark (in one of the four versions
O/P/R/B) sharing the machine with the simulated interactive task at a given
sleep time.  Since the composition-root refactor all wiring lives in
:mod:`repro.machine`; this module keeps the figure-facing vocabulary — a
:class:`MultiprogramResult` per benchmark × version run — as a thin adapter
over :class:`~repro.machine.ExperimentResult`, and routes grids of runs
through the parallel, cached runner (:mod:`repro.experiments.runner`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.config import SimScale
from repro.core.runtime.layer import RuntimeStats
from repro.core.runtime.policies import VersionConfig
from repro.experiments.runner import run_specs
from repro.machine import (
    ExperimentResult,
    ExperimentSpec,
    run_experiment,
)
from repro.sim.stats import TimeBuckets
from repro.vm.stats import AddressSpaceStats, VmStats
from repro.workloads.base import OutOfCoreWorkload
from repro.workloads.interactive import SweepSample

__all__ = [
    "MultiprogramResult",
    "interactive_alone",
    "multiprogram_spec",
    "run_multiprogram",
    "run_suite_grid",
    "run_version_suite",
    "to_multiprogram",
]


@dataclass
class MultiprogramResult:
    """Everything measured from one benchmark × version run."""

    workload: str
    version: str
    scale: str
    sleep_time_s: float
    elapsed_s: float
    app_buckets: TimeBuckets
    worker_buckets: TimeBuckets
    app_stats: AddressSpaceStats
    interactive_stats: Optional[AddressSpaceStats]
    vm: VmStats
    runtime: RuntimeStats
    sweeps: List[SweepSample] = field(default_factory=list)
    swap: Dict[str, float] = field(default_factory=dict)

    def mean_response(self, skip_warmup: int = 1) -> float:
        samples = self.sweeps[skip_warmup:] or self.sweeps
        if not samples:
            return float("nan")
        return sum(s.response_time for s in samples) / len(samples)

    def mean_interactive_hard_faults(self, skip_warmup: int = 1) -> float:
        samples = self.sweeps[skip_warmup:] or self.sweeps
        if not samples:
            return float("nan")
        return sum(s.hard_faults for s in samples) / len(samples)


def _workload_name(workload: Union[str, OutOfCoreWorkload]) -> str:
    return workload if isinstance(workload, str) else workload.name


def _version_name(version: Union[str, VersionConfig]) -> str:
    return version if isinstance(version, str) else version.name


def multiprogram_spec(
    scale: SimScale,
    workload: Union[str, OutOfCoreWorkload],
    version: Union[str, VersionConfig],
    sleep_time_s: Optional[float] = None,
    with_interactive: bool = True,
) -> ExperimentSpec:
    """The spec for one standard hog (+ interactive) experiment."""
    return ExperimentSpec.multiprogram(
        scale,
        _workload_name(workload),
        _version_name(version),
        sleep_time_s=sleep_time_s,
        with_interactive=with_interactive,
    )


def to_multiprogram(result: ExperimentResult) -> MultiprogramResult:
    """Adapt an :class:`ExperimentResult` to the figure-facing shape."""
    hog = result.primary
    interactive = result.interactives[0] if result.interactives else None
    return MultiprogramResult(
        workload=hog.workload,
        version=hog.version,
        scale=result.scale,
        sleep_time_s=(
            interactive.sleep_time_s
            if interactive is not None
            else result.spec.scale.intermediate_sleep_s
        ),
        elapsed_s=result.elapsed_s,
        app_buckets=hog.buckets,
        worker_buckets=hog.worker_buckets,
        app_stats=hog.stats,
        interactive_stats=(
            interactive.stats if interactive is not None else None
        ),
        vm=result.vm,
        runtime=hog.runtime,
        sweeps=list(interactive.sweeps) if interactive is not None else [],
        swap=dict(result.swap),
    )


def run_multiprogram(
    scale: SimScale,
    workload: Union[str, OutOfCoreWorkload],
    version: Union[str, VersionConfig],
    sleep_time_s: Optional[float] = None,
    with_interactive: bool = True,
) -> MultiprogramResult:
    """Run one benchmark version, optionally alongside the interactive task."""
    spec = multiprogram_spec(
        scale, workload, version, sleep_time_s, with_interactive
    )
    return to_multiprogram(run_experiment(spec))


def interactive_alone(
    scale: SimScale, sleep_time_s: float, sweeps: int = 8
) -> List[SweepSample]:
    """The interactive task on a dedicated machine (the baselines in
    Figures 1 and 10)."""
    spec = ExperimentSpec.interactive_alone(scale, sleep_time_s, sweeps=sweeps)
    return list(run_experiment(spec).interactives[0].sweeps)


def run_version_suite(
    scale: SimScale,
    workload: Union[str, OutOfCoreWorkload],
    versions: str = "OPRB",
    sleep_time_s: Optional[float] = None,
    with_interactive: bool = True,
    jobs: int = 1,
    cache_dir=None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
) -> Dict[str, MultiprogramResult]:
    """Run several versions of one benchmark under identical conditions."""
    specs = [
        multiprogram_spec(
            scale, workload, name, sleep_time_s, with_interactive
        )
        for name in versions
    ]
    results = run_specs(
        specs, jobs=jobs, cache_dir=cache_dir, timeout_s=timeout_s, retries=retries
    )
    return {
        name: to_multiprogram(result)
        for name, result in zip(versions, results)
    }


def run_suite_grid(
    scale: SimScale,
    workloads,
    versions: str = "OPRB",
    sleep_time_s: Optional[float] = None,
    jobs: int = 1,
    cache_dir=None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
) -> Dict[str, Dict[str, MultiprogramResult]]:
    """The full benchmark × version grid behind Figures 7-10 and Table 3.

    Flattening the grid into one :func:`run_specs` call lets the runner
    parallelise across the whole figure, not just within one benchmark.
    """
    pairs = [
        (_workload_name(workload), version)
        for workload in workloads
        for version in versions
    ]
    specs = [
        multiprogram_spec(scale, workload, version, sleep_time_s)
        for workload, version in pairs
    ]
    results = run_specs(
        specs, jobs=jobs, cache_dir=cache_dir, timeout_s=timeout_s, retries=retries
    )
    grid: Dict[str, Dict[str, MultiprogramResult]] = {}
    for (workload, version), result in zip(pairs, results):
        grid.setdefault(workload, {})[version] = to_multiprogram(result)
    return grid
