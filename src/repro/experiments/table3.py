"""Table 3: page reclamation and allocation activity.

For the original programs and the prefetch-and-release (no buffering)
versions: how many times the paging daemon had to operate, how many pages
it stole, and the total page allocations.  The paper: "In the worst case,
the number of times that the paging daemon needs to operate is reduced by
more than half, and the total number of pages stolen is reduced by more
than a factor of three.  In the other cases, the activity of the paging
daemon is reduced by one to two orders of magnitude."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.config import SimScale
from repro.experiments.harness import run_suite_grid
from repro.experiments.report import format_table
from repro.workloads.base import OutOfCoreWorkload
from repro.workloads.suite import BENCHMARKS

__all__ = ["Table3Row", "Table3Result", "format_table3", "run_table3"]


@dataclass
class Table3Row:
    workload: str
    daemon_runs_original: int
    daemon_runs_release: int
    pages_stolen_original: int
    pages_stolen_release: int
    allocations_original: int
    allocations_release: int
    pages_released: int

    @property
    def steal_reduction(self) -> float:
        return self.pages_stolen_original / max(1, self.pages_stolen_release)

    @property
    def run_reduction(self) -> float:
        return self.daemon_runs_original / max(1, self.daemon_runs_release)


@dataclass
class Table3Result:
    scale: str
    rows: List[Table3Row] = field(default_factory=list)

    def row(self, workload: str) -> Table3Row:
        for row in self.rows:
            if row.workload == workload:
                return row
        raise KeyError(workload)


def run_table3(
    scale: SimScale,
    workloads: Optional[Sequence[OutOfCoreWorkload]] = None,
    jobs: int = 1,
    cache_dir=None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
) -> Table3Result:
    if workloads is None:
        workloads = list(BENCHMARKS.values())
    grid = run_suite_grid(
        scale,
        workloads,
        "OR",
        jobs=jobs,
        cache_dir=cache_dir,
        timeout_s=timeout_s,
        retries=retries,
    )
    result = Table3Result(scale=scale.name)
    for workload in workloads:
        suite = grid[workload.name]
        original = suite["O"]
        release = suite["R"]
        result.rows.append(
            Table3Row(
                workload=workload.name,
                daemon_runs_original=original.vm.daemon_runs,
                daemon_runs_release=release.vm.daemon_runs,
                pages_stolen_original=original.vm.daemon_pages_stolen,
                pages_stolen_release=release.vm.daemon_pages_stolen,
                allocations_original=original.vm.total_allocations,
                allocations_release=release.vm.total_allocations,
                pages_released=release.vm.releaser_pages_freed,
            )
        )
    return result


def format_table3(result: Table3Result) -> str:
    rows = [
        (
            r.workload,
            r.daemon_runs_original,
            r.daemon_runs_release,
            r.pages_stolen_original,
            r.pages_stolen_release,
            r.pages_released,
            r.allocations_original,
            r.allocations_release,
        )
        for r in result.rows
    ]
    return format_table(
        [
            "benchmark",
            "daemon_runs_O",
            "daemon_runs_R",
            "stolen_O",
            "stolen_R",
            "released_R",
            "allocs_O",
            "allocs_R",
        ],
        rows,
        title=f"Table 3 — reclamation and allocation activity ({result.scale})",
    )
