"""Policy comparison: one spec swept across registered memory policies.

The tentpole question the policy seam exists to answer: for the *same*
workload mix, how do the paper's compiler-directed releases fare against a
plain global clock and against user-mode hint processing — on response
time, fault mix, *and* the shape they leave physical memory in
(:mod:`repro.vm.fragmentation`)?  ``repro compare-policies`` prints the
table this module builds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.machine import ExperimentResult, ExperimentSpec
from repro.experiments.runner import ExperimentFailure, run_specs
from repro.policies import PolicySpec, policy_names

__all__ = ["PolicyFailure", "PolicyRow", "compare_policies", "format_policy_table"]


@dataclass
class PolicyRow:
    """One policy's results for the compared spec."""

    policy: str
    elapsed_s: float
    hard_faults: int
    soft_faults: int
    pages_released: int
    pages_stolen: int
    daemon_runs: int
    interactive_response_ms: float
    frag_samples: int
    mean_unusable_free: float
    peak_unusable_free: float
    min_largest_extent: int

    def snapshot(self) -> Dict[str, object]:
        return dict(self.__dict__)

    @property
    def failed(self) -> bool:
        return False


@dataclass
class PolicyFailure:
    """A policy cell that produced no result; keeps the table aligned.

    A failed competitor policy must not silently vanish from the
    comparison (a partial table reads as a complete one): the cell stays,
    marked failed, and the CLI exits non-zero with a summary.
    """

    policy: str
    failure: ExperimentFailure

    def snapshot(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "failed": True,
            "kind": self.failure.kind,
            "message": self.failure.message,
        }

    @property
    def failed(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"{self.policy}: {self.failure}"


def _row(policy: PolicySpec, result: ExperimentResult) -> PolicyRow:
    vm = result.vm
    hard = sum(p.stats.hard_faults for p in result.processes)
    soft = sum(p.stats.soft_faults for p in result.processes)
    interactive = result.interactives[0] if result.interactives else None
    if interactive is not None and interactive.sweeps:
        samples = interactive.sweeps[1:] or interactive.sweeps
        response_ms = (
            sum(s.response_time for s in samples) / len(samples) * 1e3
        )
    else:
        response_ms = float("nan")
    frag = vm.frag
    return PolicyRow(
        policy=policy.describe(),
        elapsed_s=result.elapsed_s,
        hard_faults=hard,
        soft_faults=soft,
        pages_released=vm.releaser_pages_freed,
        pages_stolen=vm.daemon_pages_stolen,
        daemon_runs=vm.daemon_runs,
        interactive_response_ms=response_ms,
        frag_samples=frag.samples,
        mean_unusable_free=frag.mean_unusable_free_index,
        peak_unusable_free=frag.peak_unusable_free_index,
        min_largest_extent=max(0, frag.min_largest_free_extent),
    )


def compare_policies(
    spec: ExperimentSpec,
    policies: Optional[Sequence[Union[str, PolicySpec]]] = None,
    jobs: int = 1,
    cache_dir=None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
) -> List[Union[PolicyRow, PolicyFailure]]:
    """Run one spec under each policy (default: every registered policy).

    The per-policy specs go through :func:`~repro.experiments.runner.run_specs`
    so they parallelise and cache exactly like any grid — and because the
    policy is part of the frozen spec, each policy gets its own cache slot.

    A policy whose cell fails (error, timeout, worker crash) comes back as
    a :class:`PolicyFailure` in its slot rather than aborting the whole
    comparison; the other policies still run and cache.
    """
    if policies is None:
        policies = policy_names()
    selected = [
        PolicySpec.from_string(p) if isinstance(p, str) else p
        for p in policies
    ]
    specs = [spec.with_policy(p) for p in selected]
    results = run_specs(
        specs,
        jobs=jobs,
        cache_dir=cache_dir,
        timeout_s=timeout_s,
        retries=retries,
        on_error="return",
    )
    rows: List[Union[PolicyRow, PolicyFailure]] = []
    for policy, result in zip(selected, results):
        if isinstance(result, ExperimentFailure):
            rows.append(PolicyFailure(policy=policy.describe(), failure=result))
        else:
            rows.append(_row(policy, result))
    return rows


def format_policy_table(rows: Sequence[Union[PolicyRow, PolicyFailure]]) -> str:
    """Render rows as the aligned text table the CLI prints.

    Failed cells render as a ``FAILED(kind)`` row so the table never
    silently shrinks.
    """
    headers = [
        "policy",
        "elapsed_s",
        "hard",
        "soft",
        "released",
        "stolen",
        "daemon_runs",
        "interact_ms",
        "frag_ufi_mean",
        "frag_ufi_peak",
        "min_extent",
    ]
    table = [headers]
    for row in rows:
        if isinstance(row, PolicyFailure):
            table.append(
                [row.policy, f"FAILED({row.failure.kind})"]
                + ["-"] * (len(headers) - 2)
            )
            continue
        table.append(
            [
                row.policy,
                f"{row.elapsed_s:.3f}",
                str(row.hard_faults),
                str(row.soft_faults),
                str(row.pages_released),
                str(row.pages_stolen),
                str(row.daemon_runs),
                (
                    f"{row.interactive_response_ms:.2f}"
                    if row.interactive_response_ms == row.interactive_response_ms
                    else "-"
                ),
                f"{row.mean_unusable_free:.3f}",
                f"{row.peak_unusable_free:.3f}",
                str(row.min_largest_extent),
            ]
        )
    widths = [max(len(r[i]) for r in table) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(table):
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
