"""Single-source version detection.

The canonical version lives in ``pyproject.toml`` alone.  Installed
distributions read it back through :mod:`importlib.metadata`; a source
checkout run via ``PYTHONPATH=src`` (the repo's own test invocation)
falls back to parsing ``pyproject.toml`` directly, so the two paths can
never disagree about what the version *is* — there is only one place it
is written.

``repro --version`` and the service's ``/v1/healthz`` both report this
value, which is how a client discovers what code produced its results.
"""

from __future__ import annotations

import re
from pathlib import Path

__all__ = ["__version__", "detect_version"]

_FALLBACK = "0.0.0+unknown"


def _from_metadata() -> str:
    try:
        from importlib.metadata import PackageNotFoundError, version
    except ImportError:  # pragma: no cover - importlib.metadata is 3.8+
        return ""
    try:
        return version("repro")
    except PackageNotFoundError:
        return ""


def _from_pyproject() -> str:
    # src/repro/_version.py -> repo root is two parents above the package.
    pyproject = Path(__file__).resolve().parents[2] / "pyproject.toml"
    try:
        text = pyproject.read_text(encoding="utf-8")
    except OSError:
        return ""
    # A regex keeps 3.9 support (tomllib is 3.11+); the version line is
    # ours to format, so the anchored match is reliable.
    match = re.search(r'^version\s*=\s*"([^"]+)"', text, flags=re.MULTILINE)
    return match.group(1) if match else ""


def detect_version() -> str:
    """The package version: installed metadata first, pyproject fallback."""
    return _from_metadata() or _from_pyproject() or _FALLBACK


__version__ = detect_version()
