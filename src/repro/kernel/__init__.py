"""The OS layer: kernel façade, policy modules, and the shared page.

IRIX 6.5 exposed *policy modules* (PMs) that let a process select memory
management policies for ranges of its address space.  The paper added a new
PM — ``PagingDirected`` — through which a process issues prefetch and
release operations and reads a shared information page (a bitmap of
in-memory pages plus current usage and the recommended upper limit from
Equation 1).  This package reproduces that interface on top of
:mod:`repro.vm`.
"""

from repro.kernel.kernel import Kernel, KernelProcess
from repro.kernel.paging_directed import PagingDirectedPm
from repro.kernel.policy_module import PolicyModule
from repro.kernel.shared_page import SharedPage

__all__ = [
    "Kernel",
    "KernelProcess",
    "PagingDirectedPm",
    "PolicyModule",
    "SharedPage",
]
