"""The kernel façade: wires the VM, swap, daemons, and policy modules.

:class:`Kernel` is the single object experiments construct; it owns the
simulated machine.  :class:`KernelProcess` is the handle a workload driver
uses: it couples an address space with a :class:`~repro.sim.task.SimTask`
and provides the batched touch interface that keeps resident accesses (the
overwhelmingly common case) off the event queue.
"""

from __future__ import annotations

from typing import Optional

from repro.config import SimScale
from repro.disk.swap import StripedSwap
from repro.kernel.paging_directed import PagingDirectedPm
from repro.kernel.policy_module import PolicyRegistry
from repro.sim.engine import Engine
from repro.sim.task import SimTask
from repro.vm.system import VmSystem

__all__ = ["Kernel", "KernelProcess"]


class KernelProcess:
    """A simulated process: address space + execution context.

    Touch protocol (performance-critical):

    - ``touch(vpn, write)`` returns ``None`` on a resident hit, after
      accumulating the per-touch cost into a pending user-time batch;
    - otherwise it returns a generator the caller must ``yield from`` —
      the fault path, which first flushes the pending batch so simulated
      time stays causally ordered.

    Callers should also periodically ``yield from flush_if_due()`` so that
    long stretches of resident compute become visible to the daemons.
    """

    def __init__(self, kernel: "Kernel", name: str) -> None:
        self.kernel = kernel
        self.engine = kernel.engine
        self.name = name
        self.aspace = kernel.vm.create_address_space(name)
        self.task = SimTask(kernel.engine, name)
        self.pending_user = 0.0
        self._quantum = kernel.scale.time_quantum_s
        # Hot-path bindings: touch() runs once per page touch, so the
        # kernel.vm / kernel.scale.machine attribute chains are hoisted here.
        self._touch_fast = kernel.vm.touch_fast
        self._resident_touch_s = kernel.scale.machine.resident_touch_s

    # -- time batching ---------------------------------------------------
    def charge(self, seconds: float) -> None:
        """Accumulate user compute time without touching the event queue."""
        self.pending_user += seconds

    def flush(self):
        """Process generator: emit the pending user-time batch."""
        pending = self.pending_user
        if pending > 0:
            self.pending_user = 0.0
            yield self.engine.timeout(pending)
            self.task.buckets.user += pending

    def flush_if_due(self):
        if self.pending_user >= self._quantum:
            yield from self.flush()

    # -- memory access ------------------------------------------------------
    def touch(self, vpn: int, write: bool = False):
        """Fast-path touch; returns None on hit, else the fault generator."""
        if self._touch_fast(self.aspace, vpn, write):
            self.pending_user += self._resident_touch_s
            return None
        return self._fault(vpn, write)

    def _fault(self, vpn: int, write: bool):
        # flush() inlined: the batch is almost always non-empty here, and
        # the fault path runs often enough that the extra generator frame
        # (plus task.user's) showed up in profiles.
        pending = self.pending_user
        if pending > 0:
            self.pending_user = 0.0
            yield self.engine.timeout(pending)
            self.task.buckets.user += pending
        kind = yield from self.kernel.vm.fault(self.task, self.aspace, vpn, write)
        return kind

    def touch_now(self, vpn: int, write: bool = False):
        """Process generator: touch unconditionally (used by simple tasks
        like the interactive toucher, where batching doesn't matter)."""
        fault = self.touch(vpn, write)
        if fault is not None:
            kind = yield from fault
            return kind
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KernelProcess({self.name})"


class Kernel:
    """The simulated machine: VM + swap + daemons + policy modules."""

    def __init__(
        self, engine: Engine, scale: SimScale, obs=None, faults=None, policy=None
    ) -> None:
        self.engine = engine
        self.scale = scale
        self.obs = obs
        # Fault injector (:class:`repro.faults.FaultInjector`), or None for
        # the ordinary fault-free machine.
        self.faults = faults
        if policy is None:
            # Imported lazily: repro.policies imports this module's siblings.
            from repro.policies import DEFAULT_POLICY, build_policy

            policy = build_policy(DEFAULT_POLICY)
        # The memory-policy triple (:class:`repro.policies.MemoryPolicy`)
        # decides what daemons exist and what PM each process gets.
        self.policy = policy
        self.swap = StripedSwap(engine, scale.disk, faults=faults)
        self.swap.obs = obs
        self.vm = VmSystem(engine, scale, self.swap)
        self.vm.obs = obs
        policy.configure(self)
        # Construction order matters for determinism: each daemon owns a
        # SimTask whose creation consumes engine sequence numbers, and the
        # golden digests pin the releaser-before-daemon order.
        self.releaser = policy.build_releaser(self)
        self.paging_daemon = policy.build_paging_daemon(self)
        self.vm.releaser = self.releaser
        self.vm.paging_daemon = self.paging_daemon
        self.registry = PolicyRegistry()
        self._started = False

    @classmethod
    def boot(
        cls, engine: Engine, scale: SimScale, obs=None, faults=None, policy=None
    ) -> "Kernel":
        """Construct and start the system daemons."""
        kernel = cls(engine, scale, obs=obs, faults=faults, policy=policy)
        kernel.start()
        return kernel

    def start(self) -> None:
        if not self._started:
            if self.paging_daemon is not None:
                self.paging_daemon.start()
            if self.releaser is not None:
                self.releaser.start()
            self._started = True

    # -- processes ------------------------------------------------------------
    def create_process(self, name: str) -> KernelProcess:
        return KernelProcess(self, name)

    def attach_policy(
        self, process: KernelProcess, mapped_range: Optional[range] = None
    ) -> PagingDirectedPm:
        """Attach the kernel's configured memory policy's PM to a process."""
        return self.policy.attach_process(self, process, mapped_range)

    def attach_paging_directed(
        self, process: KernelProcess, mapped_range: Optional[range] = None
    ) -> PagingDirectedPm:
        """Create a PagingDirected PM over the given page range (default:
        everything the process has mapped so far).

        This always attaches the paper's PM regardless of the kernel's
        configured policy — unit tests use it to poke the PagingDirected
        syscalls directly; experiment plumbing goes through
        :meth:`attach_policy`.
        """
        if mapped_range is None:
            mapped_range = range(0, process.aspace.mapped_pages)
        pm = PagingDirectedPm(self.vm, process.aspace, mapped_range)
        self.registry.attach(pm)
        return pm

    # -- reporting ------------------------------------------------------------
    @property
    def free_pages(self) -> int:
        return self.vm.freelist.free_count
