"""The kernel façade: wires the VM, swap, daemons, and policy modules.

:class:`Kernel` is the single object experiments construct; it owns the
simulated machine.  :class:`KernelProcess` is the handle a workload driver
uses: it couples an address space with a :class:`~repro.sim.task.SimTask`
and provides the batched touch interface that keeps resident accesses (the
overwhelmingly common case) off the event queue.
"""

from __future__ import annotations

from typing import Optional

from repro.config import SimScale
from repro.disk.swap import StripedSwap
from repro.kernel.paging_directed import PagingDirectedPm
from repro.kernel.policy_module import PolicyRegistry
from repro.sim.engine import Engine
from repro.sim.task import SimTask
from repro.vm import fastlane
from repro.vm.frames import F_DIRTY, F_IN_TRANSIT, F_REFERENCED, F_SW_VALID
from repro.vm.system import VmSystem

__all__ = ["Kernel", "KernelProcess"]


class KernelProcess:
    """A simulated process: address space + execution context.

    Touch protocol (performance-critical):

    - ``touch(vpn, write)`` returns ``None`` on a resident hit, after
      accumulating the per-touch cost into a pending user-time batch;
    - otherwise it returns a generator the caller must ``yield from`` —
      the fault path, which first flushes the pending batch so simulated
      time stays causally ordered.

    Callers should also periodically ``yield from flush_if_due()`` so that
    long stretches of resident compute become visible to the daemons.
    """

    def __init__(self, kernel: "Kernel", name: str) -> None:
        self.kernel = kernel
        self.engine = kernel.engine
        self.name = name
        self.aspace = kernel.vm.create_address_space(name)
        self.task = SimTask(kernel.engine, name)
        self.pending_user = 0.0
        self._quantum = kernel.scale.time_quantum_s
        # Hot-path bindings: touch() runs once per page touch, so the
        # kernel.vm / kernel.scale.machine attribute chains are hoisted here.
        self._touch_fast = kernel.vm.touch_fast
        self._resident_touch_s = kernel.scale.machine.resident_touch_s

    # -- time batching ---------------------------------------------------
    def charge(self, seconds: float) -> None:
        """Accumulate user compute time without touching the event queue."""
        self.pending_user += seconds

    def flush(self):
        """Process generator: emit the pending user-time batch."""
        pending = self.pending_user
        if pending > 0:
            self.pending_user = 0.0
            yield self.engine.timeout(pending)
            self.task.buckets.user += pending

    def flush_if_due(self):
        if self.pending_user >= self._quantum:
            yield from self.flush()

    # -- memory access ------------------------------------------------------
    def touch(self, vpn: int, write: bool = False):
        """Fast-path touch; returns None on hit, else the fault generator."""
        if self._touch_fast(self.aspace, vpn, write):
            self.pending_user += self._resident_touch_s
            return None
        return self._fault(vpn, write)

    def _fault(self, vpn: int, write: bool):
        # flush() inlined: the batch is almost always non-empty here, and
        # the fault path runs often enough that the extra generator frame
        # (plus task.user's) showed up in profiles.
        pending = self.pending_user
        if pending > 0:
            self.pending_user = 0.0
            yield self.engine.timeout(pending)
            self.task.buckets.user += pending
        kind = yield from self.kernel.vm.fault(self.task, self.aspace, vpn, write)
        return kind

    def run_touches(self, start: int, count: int, write: bool, secs_per_page: float):
        """Process generator: execute one ``('T', start, count, write, s)``
        run-length op — ``count`` sequential full-page touches, each charged
        ``s`` of compute.

        Semantically identical to the historical per-page loop (charge,
        flush-if-due, touch, flush-if-due per page; the fault path on a
        miss), and byte-identical in simulated time: quantum flushes land
        on the same checkpoints with bit-identical accumulated values.  The
        difference is the cost model: with the bulk lane on, the resident
        stretches between flush boundaries and faults are classified in
        one pass (:meth:`VmSystem.touch_run`) and their compute charged as
        one accumulated sum, so a fully-resident window costs O(1) engine
        events and a handful of array ops.

        Lane selection is per-run via :func:`repro.vm.fastlane.lane_mode`:
        ``REPRO_FAST_LANE=0`` reproduces the per-page ``touch_fast`` loop,
        no NumPy means the pure-Python slice scan.
        """
        counters = fastlane.COUNTERS
        counters["runs"] += 1
        mode = fastlane.lane_mode()
        quantum = self._quantum
        r = self._resident_touch_s
        s = secs_per_page
        aspace = self.aspace
        task = self.task
        buckets = task.buckets
        timeout = self.engine.timeout
        vm_fault = self.kernel.vm.fault
        vpn = start
        end = start + count
        pending = self.pending_user
        if mode == fastlane.LANE_NUMPY and count >= fastlane.NUMPY_MIN_RUN:
            np = fastlane.np
            touch_run = self.kernel.vm.touch_run
            touch_fast = self._touch_fast
            charge_plan = fastlane.charge_plan
            while vpn < end:
                limit = end - vpn
                counters["windows"] += 1
                # Flush plan for the window assuming every page hits: cum[k]
                # is the pending value after the k-th add (bit-identical to
                # the sequential adds), m the first add whose checkpoint
                # reaches the quantum.
                cum, m = charge_plan(pending, s, r, limit, quantum)
                if m >= 2 * limit:
                    window = limit
                    crossing = 0
                else:
                    page, odd = divmod(m, 2)
                    if odd:
                        # Crossing at the post-touch checkpoint of `page`:
                        # that page is touched before the flush.
                        window = page + 1
                        crossing = 2
                    else:
                        # Crossing right after `page`'s compute charge, before
                        # its touch: the touch happens after the flush.
                        window = page
                        crossing = 1
                hits = touch_run(aspace, vpn, window, write) if window else 0
                counters["bulk_pages"] += hits
                if hits < window:
                    # A page needs the slow path before any flush checkpoint
                    # fires.  Its compute charge lands first (and cannot
                    # cross the quantum: the plan says the first crossing is
                    # at or after `window`), then the fault flushes.
                    counters["slow_pages"] += 1
                    # _fault inlined (flush, then the kernel fault path).
                    p = float(cum[2 * hits]) + s
                    self.pending_user = 0.0
                    if p > 0:
                        yield timeout(p)
                        buckets.user += p
                    yield from vm_fault(task, aspace, vpn + hits, write)
                    pending = 0.0
                    vpn += hits + 1
                    continue
                if crossing == 0:
                    pending = float(cum[2 * limit])
                    vpn = end
                    break
                # flush() inlined: the checkpoint value crossed the quantum,
                # which is positive, so the batch is always non-empty.
                p = float(cum[m + 1])
                self.pending_user = 0.0
                yield timeout(p)
                buckets.user += p
                pending = 0.0
                vpn += window
                if crossing == 1:
                    # Touch the charged-but-untouched page now, after the
                    # flush — the world may have moved while we yielded.
                    if touch_fast(aspace, vpn, write):
                        counters["bulk_pages"] += 1
                        pending += r
                        if pending >= quantum:
                            self.pending_user = 0.0
                            yield timeout(pending)
                            buckets.user += pending
                            pending = 0.0
                    else:
                        counters["slow_pages"] += 1
                        self.pending_user = 0.0
                        if pending > 0:
                            yield timeout(pending)
                            buckets.user += pending
                        yield from vm_fault(task, aspace, vpn, write)
                        pending = 0.0
                    vpn += 1
            self.pending_user = pending
            return
        if mode != fastlane.LANE_OFF:
            # Pure lane: the same per-page accounting with the hit test
            # inlined to one page-table probe and one mask compare.
            pt = aspace.pt
            flags = self.kernel.vm._flags
            mask = F_SW_VALID | F_IN_TRANSIT
            bits = (F_REFERENCED | F_DIRTY) if write else F_REFERENCED
            npt = len(pt)
            bulk = 0
            while vpn < end:
                pending += s
                if pending >= quantum:
                    self.pending_user = 0.0
                    yield timeout(pending)
                    buckets.user += pending
                    pending = 0.0
                index = pt[vpn] if vpn < npt else -1
                if index >= 0 and flags[index] & mask == F_SW_VALID:
                    flags[index] |= bits
                    bulk += 1
                    pending += r
                    if pending >= quantum:
                        self.pending_user = 0.0
                        yield timeout(pending)
                        buckets.user += pending
                        pending = 0.0
                else:
                    counters["slow_pages"] += 1
                    self.pending_user = 0.0
                    if pending > 0:
                        yield timeout(pending)
                        buckets.user += pending
                    yield from vm_fault(task, aspace, vpn, write)
                    pending = 0.0
                    npt = len(pt)
                vpn += 1
            counters["bulk_pages"] += bulk
            self.pending_user = pending
            return
        # Lane off: the historical per-page touch_fast loop, verbatim.
        touch_fast = self._touch_fast
        while vpn < end:
            pending += s
            if pending >= quantum:
                self.pending_user = pending
                yield from self.flush()
                pending = 0.0
            if touch_fast(aspace, vpn, write):
                pending += r
                if pending >= quantum:
                    self.pending_user = pending
                    yield from self.flush()
                    pending = 0.0
            else:
                self.pending_user = pending
                yield from self._fault(vpn, write)
                pending = self.pending_user
            vpn += 1
        self.pending_user = pending

    def touch_now(self, vpn: int, write: bool = False):
        """Process generator: touch unconditionally (used by simple tasks
        like the interactive toucher, where batching doesn't matter)."""
        fault = self.touch(vpn, write)
        if fault is not None:
            kind = yield from fault
            return kind
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KernelProcess({self.name})"


class Kernel:
    """The simulated machine: VM + swap + daemons + policy modules."""

    def __init__(
        self, engine: Engine, scale: SimScale, obs=None, faults=None, policy=None
    ) -> None:
        self.engine = engine
        self.scale = scale
        self.obs = obs
        # Fault injector (:class:`repro.faults.FaultInjector`), or None for
        # the ordinary fault-free machine.
        self.faults = faults
        if policy is None:
            # Imported lazily: repro.policies imports this module's siblings.
            from repro.policies import DEFAULT_POLICY, build_policy

            policy = build_policy(DEFAULT_POLICY)
        # The memory-policy triple (:class:`repro.policies.MemoryPolicy`)
        # decides what daemons exist and what PM each process gets.
        self.policy = policy
        self.swap = StripedSwap(engine, scale.disk, faults=faults)
        self.swap.obs = obs
        self.vm = VmSystem(engine, scale, self.swap)
        self.vm.obs = obs
        policy.configure(self)
        # Construction order matters for determinism: each daemon owns a
        # SimTask whose creation consumes engine sequence numbers, and the
        # golden digests pin the releaser-before-daemon order.
        self.releaser = policy.build_releaser(self)
        self.paging_daemon = policy.build_paging_daemon(self)
        self.vm.releaser = self.releaser
        self.vm.paging_daemon = self.paging_daemon
        self.registry = PolicyRegistry()
        self._started = False

    @classmethod
    def boot(
        cls, engine: Engine, scale: SimScale, obs=None, faults=None, policy=None
    ) -> "Kernel":
        """Construct and start the system daemons."""
        kernel = cls(engine, scale, obs=obs, faults=faults, policy=policy)
        kernel.start()
        return kernel

    def start(self) -> None:
        if not self._started:
            if self.paging_daemon is not None:
                self.paging_daemon.start()
            if self.releaser is not None:
                self.releaser.start()
            self._started = True

    # -- processes ------------------------------------------------------------
    def create_process(self, name: str) -> KernelProcess:
        return KernelProcess(self, name)

    def attach_policy(
        self, process: KernelProcess, mapped_range: Optional[range] = None
    ) -> PagingDirectedPm:
        """Attach the kernel's configured memory policy's PM to a process."""
        return self.policy.attach_process(self, process, mapped_range)

    def attach_paging_directed(
        self, process: KernelProcess, mapped_range: Optional[range] = None
    ) -> PagingDirectedPm:
        """Create a PagingDirected PM over the given page range (default:
        everything the process has mapped so far).

        This always attaches the paper's PM regardless of the kernel's
        configured policy — unit tests use it to poke the PagingDirected
        syscalls directly; experiment plumbing goes through
        :meth:`attach_policy`.
        """
        if mapped_range is None:
            mapped_range = range(0, process.aspace.mapped_pages)
        pm = PagingDirectedPm(self.vm, process.aspace, mapped_range)
        self.registry.attach(pm)
        return pm

    # -- reporting ------------------------------------------------------------
    @property
    def free_pages(self) -> int:
        return self.vm.freelist.free_count
