"""The shared information page (Section 3.1.1).

A single 16 KB page, allocated by the OS and mapped read-only into the
application, used primarily as a bitmap indexed by virtual page number: a
set bit means the page is in memory.  The first two words are reserved for
the current number of pages in use and the recommended upper limit on pages
(Equation 1):

    upper_limit = min(maxrss, current_size + tot_freemem - min_freemem)

Updates are *lazy*: the OS refreshes the usage words only when the process
experiences memory-system activity (a fault, a prefetch/release request, or
having memory stolen), never eagerly on every global free-memory change —
exactly the trade-off Section 3.1.1 describes.
"""

from __future__ import annotations

from typing import Set

__all__ = ["SharedPage"]


class SharedPage:
    """Bitmap plus usage words, shared between the OS and one process."""

    def __init__(self, vm, aspace, mapped_range: range) -> None:
        self._vm = vm
        self._aspace = aspace
        self.mapped_range = mapped_range
        self._bits: Set[int] = set()
        self.current_usage = 0
        self.upper_limit = 0
        self.refreshes = 0
        # The frame table never grows or shrinks, so the maxrss term of
        # Equation 1 is a constant; refresh() runs on every fault and hint.
        self._maxrss = vm.tunables.maxrss_pages(len(vm.frame_table))
        self._min_freemem = vm.tunables.min_freemem_pages
        self._freelist = vm.freelist
        # "When the application attaches the PM to a region of its virtual
        # address space, the bits corresponding to those addresses are all
        # cleared" — we start with an empty set, which is the same thing.
        self.refresh()

    # -- bitmap -------------------------------------------------------------
    def set_bit(self, vpn: int) -> None:
        if vpn in self.mapped_range:
            self._bits.add(vpn)

    def clear_bit(self, vpn: int) -> None:
        self._bits.discard(vpn)

    def bit(self, vpn: int) -> bool:
        """Is this page in memory, as far as the application can see?"""
        return vpn in self._bits

    def resident_bits(self) -> int:
        return len(self._bits)

    # -- usage words ----------------------------------------------------------
    def refresh(self) -> None:
        """Recompute the two reserved words (called on memory activity)."""
        self.refreshes += 1
        current = self._aspace._resident
        free = self._freelist._free_count
        self.current_usage = current
        self.upper_limit = min(
            self._maxrss, current + free - self._min_freemem
        )
        obs = self._vm.obs
        if obs is not None and obs.wants("kernel.shared_page"):
            obs.emit(
                "kernel.shared_page",
                {
                    "aspace": self._aspace.name,
                    "usage": self.current_usage,
                    "limit": self.upper_limit,
                },
            )

    def headroom(self) -> int:
        """Pages the process may still compete for before hitting the limit."""
        return self.upper_limit - self.current_usage
