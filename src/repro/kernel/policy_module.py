"""The IRIX policy-module framework (Section 3.1).

IRIX 6.5 lets a user select memory-management policies by connecting a
*policy module* to any range of the application's virtual address space.
This module provides the small framework: a registry per address space and
the abstract base that concrete policies (the stock default policy and the
paper's ``PagingDirected`` PM) implement.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.vm.pagetable import AddressSpace

__all__ = ["PolicyModule", "PolicyRegistry"]


class PolicyModule:
    """Base class: a policy attached to a range of virtual pages."""

    policy_name = "abstract"

    def __init__(self, aspace: AddressSpace, mapped_range: range) -> None:
        self.aspace = aspace
        self.mapped_range = mapped_range

    def covers(self, vpn: int) -> bool:
        return vpn in self.mapped_range

    def on_attach(self) -> None:
        """Called once when the PM is connected to the range."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}({self.aspace.name}, "
            f"pages {self.mapped_range.start}..{self.mapped_range.stop - 1})"
        )


class PolicyRegistry:
    """Per-address-space registry of attached policy modules."""

    def __init__(self) -> None:
        self._modules: Dict[int, List[PolicyModule]] = {}

    def attach(self, module: PolicyModule) -> None:
        modules = self._modules.setdefault(module.aspace.asid, [])
        for existing in modules:
            if (
                existing.mapped_range.start < module.mapped_range.stop
                and module.mapped_range.start < existing.mapped_range.stop
            ):
                raise ValueError(
                    f"range overlap between {existing!r} and {module!r}"
                )
        modules.append(module)
        module.on_attach()

    def lookup(self, aspace: AddressSpace, vpn: int) -> Optional[PolicyModule]:
        for module in self._modules.get(aspace.asid, ()):
            if module.covers(vpn):
                return module
        return None

    def modules_for(self, aspace: AddressSpace) -> List[PolicyModule]:
        return list(self._modules.get(aspace.asid, ()))
