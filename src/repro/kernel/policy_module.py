"""The IRIX policy-module framework (Section 3.1).

IRIX 6.5 lets a user select memory-management policies by connecting a
*policy module* to any range of the application's virtual address space.
This module provides the small framework: a registry per address space and
the abstract base that concrete policies (the stock default policy and the
paper's ``PagingDirected`` PM) implement.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional

from repro.vm.pagetable import AddressSpace

__all__ = ["PolicyModule", "PolicyRegistry"]


class PolicyModule:
    """Base class: a policy attached to a range of virtual pages."""

    policy_name = "abstract"

    def __init__(self, aspace: AddressSpace, mapped_range: range) -> None:
        self.aspace = aspace
        self.mapped_range = mapped_range

    def covers(self, vpn: int) -> bool:
        return vpn in self.mapped_range

    def on_attach(self) -> None:
        """Called once when the PM is connected to the range."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}({self.aspace.name}, "
            f"pages {self.mapped_range.start}..{self.mapped_range.stop - 1})"
        )


class PolicyRegistry:
    """Per-address-space registry of attached policy modules.

    Modules are kept sorted by range start with a parallel start-key list,
    so the per-fault lookup is a bisect over intervals rather than a linear
    scan of every attached module.
    """

    def __init__(self) -> None:
        self._modules: Dict[int, List[PolicyModule]] = {}
        self._starts: Dict[int, List[int]] = {}

    def attach(self, module: PolicyModule) -> None:
        asid = module.aspace.asid
        modules = self._modules.setdefault(asid, [])
        starts = self._starts.setdefault(asid, [])
        start = module.mapped_range.start
        stop = module.mapped_range.stop
        pos = bisect_right(starts, start)
        # Ranges are disjoint, so an overlap can only involve the sorted
        # neighbours: the predecessor running past our start, or the
        # successor starting before our stop.
        if pos > 0 and modules[pos - 1].mapped_range.stop > start:
            raise ValueError(
                f"range overlap between {modules[pos - 1]!r} and {module!r}"
            )
        if pos < len(modules) and modules[pos].mapped_range.start < stop:
            raise ValueError(
                f"range overlap between {modules[pos]!r} and {module!r}"
            )
        modules.insert(pos, module)
        starts.insert(pos, start)
        module.on_attach()

    def lookup(self, aspace: AddressSpace, vpn: int) -> Optional[PolicyModule]:
        starts = self._starts.get(aspace.asid)
        if not starts:
            return None
        pos = bisect_right(starts, vpn) - 1
        if pos >= 0:
            module = self._modules[aspace.asid][pos]
            if vpn < module.mapped_range.stop:
                return module
        return None

    def modules_for(self, aspace: AddressSpace) -> List[PolicyModule]:
        return list(self._modules.get(aspace.asid, ()))
