"""The PagingDirected policy module (Section 3.1).

The paper's kernel extension: a PM that lets a user-level process invoke
prefetch and release operations on pages of its address space, and that
shares memory-usage information with the application through a single
read-only page (:class:`~repro.kernel.shared_page.SharedPage`).

Request semantics (Section 3.1.2):

- **prefetch**: like a page fault except (i) if there is no free memory the
  request is discarded immediately, and (ii) on completion the page is not
  fully validated and gets no TLB entry;
- **release**: the PM clears the in-memory bits and queues the pages to the
  releaser daemon, which re-checks for re-references before freeing.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.kernel.policy_module import PolicyModule
from repro.kernel.shared_page import SharedPage
from repro.sim.task import SimTask
from repro.vm.pagetable import AddressSpace
from repro.vm.system import VmSystem

__all__ = ["PagingDirectedPm"]


class PagingDirectedPm(PolicyModule):
    """User-directed paging over a range of the address space."""

    policy_name = "PagingDirected"

    def __init__(
        self, vm: VmSystem, aspace: AddressSpace, mapped_range: range
    ) -> None:
        super().__init__(aspace, mapped_range)
        self.vm = vm
        self.shared_page = SharedPage(vm, aspace, mapped_range)
        # Hot-path bindings: both syscalls run once per surviving hint.
        self._engine = vm.engine
        self._syscall_s = vm.machine.syscall_s
        # Request counters for the experiment reports.
        self.prefetch_requests = 0
        self.release_requests = 0
        self.release_pages_requested = 0

    def on_attach(self) -> None:
        self.aspace.shared_page = self.shared_page

    # -- syscalls -------------------------------------------------------------
    def prefetch(self, task: SimTask, vpn: int):
        """Process generator: one prefetch request into the kernel.

        The syscall crossing is charged to the calling task (a prefetch
        worker thread, not the main application); the I/O wait shows up on
        the same task.
        """
        if vpn not in self.mapped_range:
            raise ValueError(f"vpn {vpn} outside {self!r}")
        self.prefetch_requests += 1
        if self.vm.obs is not None:
            self.vm.obs.emit(
                "kernel.syscall",
                {"syscall": "pm_prefetch", "aspace": self.aspace.name},
            )
        # task.system inlined (identical accounting, one less frame).
        cost = self._syscall_s
        if cost > 0:
            yield self._engine.timeout(cost)
            task.buckets.system += cost
        brought_in = yield from self.vm.prefetch_page(task, self.aspace, vpn)
        self.shared_page.refresh()
        return brought_in

    def release(self, task: SimTask, vpns: Sequence[int]):
        """Process generator: one release request into the kernel.

        Clears the bitmap bits and enqueues the pages for the releaser; the
        actual freeing happens asynchronously in the daemon.  Returns the
        number of pages accepted.
        """
        mapped = self.mapped_range
        pages: List[int] = [vpn for vpn in vpns if vpn in mapped]
        if len(pages) != len(vpns):
            raise ValueError("release request outside the PM's range")
        self.release_requests += 1
        self.release_pages_requested += len(pages)
        if self.vm.obs is not None:
            self.vm.obs.emit(
                "kernel.syscall",
                {"syscall": "pm_release", "aspace": self.aspace.name},
            )
        cost = self._syscall_s
        if cost > 0:
            yield self._engine.timeout(cost)
            task.buckets.system += cost
        accepted = self.vm.request_release(self.aspace, pages)
        return accepted

    # -- shared-page reads (free: the page is mapped into the process) --------
    def page_in_memory(self, vpn: int) -> bool:
        return self.shared_page.bit(vpn)

    def current_usage(self) -> int:
        return self.shared_page.current_usage

    def upper_limit(self) -> int:
        return self.shared_page.upper_limit
