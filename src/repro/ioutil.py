"""Atomic file writes for every artifact the toolchain persists.

Bench records, result-cache entries, and trace files are all written via
write-to-temp + ``os.replace``: an interrupted run (SIGKILL, OOM, a full
disk discovered at close) can never leave a truncated artifact under the
final name, and a parallel reader never observes a half-written file.
Parent directories are created on demand so callers can point output
options at paths that do not exist yet.

The temporary name embeds ``.tmp.`` — the same marker the result cache's
``repro cache`` classifier treats as an orphan — so a temp file leaked by
a crashed process is visible and prunable rather than silently immortal.
"""

from __future__ import annotations

import json
import os
import tempfile
from contextlib import contextmanager
from pathlib import Path

__all__ = [
    "atomic_open",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
]


@contextmanager
def atomic_open(path: os.PathLike, mode: str = "wb", encoding=None):
    """Open a temporary file that replaces ``path`` only on a clean exit.

    The temp file lives in ``path``'s directory (created if missing) so the
    final ``os.replace`` is a same-filesystem rename, which is atomic on
    POSIX.  On any exception the temp file is removed and ``path`` is left
    untouched.
    """
    if mode not in ("wb", "w"):
        raise ValueError(f"atomic_open supports modes 'wb'/'w', got {mode!r}")
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(target.parent), prefix=f"{target.name}.tmp."
    )
    tmp = Path(tmp_name)
    try:
        if mode == "w":
            handle = os.fdopen(fd, "w", encoding=encoding or "utf-8")
        else:
            handle = os.fdopen(fd, "wb")
        with handle:
            yield handle
        os.replace(tmp, target)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def atomic_write_bytes(path: os.PathLike, data: bytes) -> Path:
    with atomic_open(path, "wb") as handle:
        handle.write(data)
    return Path(path)


def atomic_write_text(path: os.PathLike, text: str, encoding: str = "utf-8") -> Path:
    with atomic_open(path, "w", encoding=encoding) as handle:
        handle.write(text)
    return Path(path)


def atomic_write_json(
    path: os.PathLike, payload, indent: int = 2, sort_keys: bool = True
) -> Path:
    """Write ``payload`` as pretty JSON with a trailing newline, atomically."""
    with atomic_open(path, "w") as handle:
        json.dump(payload, handle, indent=indent, sort_keys=sort_keys)
        handle.write("\n")
    return Path(path)
