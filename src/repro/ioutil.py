"""Atomic file writes for every artifact the toolchain persists.

Bench records, result-cache entries, and trace files are all written via
write-to-temp + ``os.replace``: an interrupted run (SIGKILL, OOM, a full
disk discovered at close) can never leave a truncated artifact under the
final name, and a parallel reader never observes a half-written file.
Parent directories are created on demand so callers can point output
options at paths that do not exist yet.

The temporary name embeds ``.tmp.`` — the same marker the result cache's
``repro cache`` classifier treats as an orphan — so a temp file leaked by
a crashed process is visible and prunable rather than silently immortal.
"""

from __future__ import annotations

import json
import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List

__all__ = [
    "append_journal_line",
    "atomic_open",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "read_journal",
]


@contextmanager
def atomic_open(path: os.PathLike, mode: str = "wb", encoding=None):
    """Open a temporary file that replaces ``path`` only on a clean exit.

    The temp file lives in ``path``'s directory (created if missing) so the
    final ``os.replace`` is a same-filesystem rename, which is atomic on
    POSIX.  On any exception the temp file is removed and ``path`` is left
    untouched.
    """
    if mode not in ("wb", "w"):
        raise ValueError(f"atomic_open supports modes 'wb'/'w', got {mode!r}")
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(target.parent), prefix=f"{target.name}.tmp."
    )
    tmp = Path(tmp_name)
    try:
        if mode == "w":
            handle = os.fdopen(fd, "w", encoding=encoding or "utf-8")
        else:
            handle = os.fdopen(fd, "wb")
        with handle:
            yield handle
        os.replace(tmp, target)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def atomic_write_bytes(path: os.PathLike, data: bytes) -> Path:
    with atomic_open(path, "wb") as handle:
        handle.write(data)
    return Path(path)


def atomic_write_text(path: os.PathLike, text: str, encoding: str = "utf-8") -> Path:
    with atomic_open(path, "w", encoding=encoding) as handle:
        handle.write(text)
    return Path(path)


def atomic_write_json(
    path: os.PathLike, payload, indent: int = 2, sort_keys: bool = True
) -> Path:
    """Write ``payload`` as pretty JSON with a trailing newline, atomically."""
    with atomic_open(path, "w") as handle:
        json.dump(payload, handle, indent=indent, sort_keys=sort_keys)
        handle.write("\n")
    return Path(path)


# -- append-only JSONL journals --------------------------------------------
#
# Rename atomicity is the wrong primitive for a checkpoint journal: an
# append-only log must *grow* durably, not be rewritten.  The journal
# contract here is the complementary one:
#
# - each record is one compact JSON object serialized to one line and
#   appended with a **single ``os.write``** on an ``O_APPEND`` descriptor,
#   so concurrent appenders interleave at line granularity and a crash
#   (even SIGKILL) can tear at most the final line;
# - ``fsync`` per record (the default) makes every acknowledged record
#   survive the machine, not just the process;
# - :func:`read_journal` tolerates exactly the torn tail a crash can
#   produce — a final line with no newline or invalid JSON is dropped —
#   while a torn line *followed by* valid records (impossible under this
#   writer) is reported as corruption rather than silently skipped.


def append_journal_line(path: os.PathLike, record: Dict[str, object], fsync: bool = True) -> None:
    """Durably append one JSON record to an append-only JSONL journal."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
    fd = os.open(str(target), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, line.encode("utf-8"))
        if fsync:
            os.fsync(fd)
    finally:
        os.close(fd)


def read_journal(path: os.PathLike) -> List[Dict[str, object]]:
    """Read every intact record of a JSONL journal, dropping a torn tail.

    A missing journal reads as empty.  Only the *final* line may be
    unparseable (the single-write append contract above); garbage in the
    middle means the file is not one of our journals and raises
    ``ValueError`` so the caller fails loudly instead of resuming from a
    half-read checkpoint.
    """
    target = Path(path)
    try:
        raw = target.read_bytes()
    except FileNotFoundError:
        return []
    records: List[Dict[str, object]] = []
    lines = raw.split(b"\n")
    # A trailing newline yields one empty final chunk; drop it.
    if lines and lines[-1] == b"":
        lines.pop()
    for number, line in enumerate(lines):
        try:
            record = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            if number == len(lines) - 1:
                break  # torn tail from a crash mid-append: resume without it
            raise ValueError(
                f"{target}: corrupt journal record on line {number + 1} "
                "(only the final line may be torn)"
            ) from exc
        if not isinstance(record, dict):
            if number == len(lines) - 1:
                break
            raise ValueError(f"{target}: journal line {number + 1} is not an object")
        records.append(record)
    return records
