"""The scenario-file format: strict validation, template inheritance, compile.

Format (version 1)::

    {"scenario": 1,
     "name": "fault-storm",
     "description": "MATVEC release build under disk-error chaos",
     "extends": "standard-mix",          // optional: a registered template
     "scale": "tiny",                    // tiny | small | paper
     "overrides": {"max_engine_steps": 2000000},
     "benchmark": "MATVEC",              // shorthand: one hog + interactive
     "version": "R",
     "sleep": 0.1,                       // interactive sleep (null: default)
     "interactive": true,                // include the interactive task
     "policy": "global-clock",
     "faults": {"seed": 7, "disk": {"io_error_prob": 0.02}},
     "record_trace": false}

Instead of the ``benchmark`` shorthand a scenario may carry an explicit
``processes`` list (the same entries ``repro run --spec`` accepts) or a
``sweep`` object with axes (the same axes ``repro sweep run --grid``
accepts), in which case it compiles to one spec per grid cell.  Exactly
one of ``benchmark`` / ``processes`` / ``sweep`` must be present after
``extends`` resolution.

Validation is strict and fail-fast: unknown keys, wrong types, unknown
benchmarks/versions/policies/scales, and malformed fault plans are all
rejected with a :class:`ScenarioError` whose message starts with the
JSON path of the offending value (``processes[1].version: ...``), so a
`repro validate` failure points at the exact line to fix.

Compilation is deterministic: a scenario document always expands to the
same tuple of frozen :class:`~repro.machine.ExperimentSpec` values, so
scenario identity (:func:`scenario_digest`) and the runner's
content-addressed cache keys are stable across submitters and restarts.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.config import SimScale, paper, small, tiny
from repro.core.runtime.policies import VERSIONS
from repro.faults import EMPTY_PLAN, FaultPlan, FaultPlanError
from repro.machine import (
    INTERACTIVE,
    TRACE,
    ExperimentSpec,
    SpecError,
    WorkloadProcessSpec,
)
from repro.policies import PolicyError, PolicySpec, validate_policy
from repro.workloads import BENCHMARKS

__all__ = [
    "SCENARIO_FORMAT_VERSION",
    "CompiledScenario",
    "ScenarioError",
    "compile_scenario",
    "load_scenario_file",
    "merge_documents",
    "scenario_digest",
    "validate_scenario",
]

#: The one format version this tree understands.  Bump when the schema
#: changes incompatibly; old documents then fail loudly instead of being
#: reinterpreted.
SCENARIO_FORMAT_VERSION = 1

_SCALES = {"tiny": tiny, "small": small, "paper": paper}

_TOP_LEVEL_KEYS = {
    "scenario",
    "name",
    "description",
    "extends",
    "scale",
    "overrides",
    "benchmark",
    "version",
    "sleep",
    "interactive",
    "processes",
    "sweep",
    "policy",
    "faults",
    "record_trace",
}

_PROCESS_KEYS = {
    "workload",
    "version",
    "sleep_s",
    "sweeps",
    "start_offset_s",
    "name",
    "trace",
}

_SWEEP_AXES = ("benchmark", "version", "sleep", "policy", "fault_seed")


class ScenarioError(ValueError):
    """A scenario that cannot be loaded, validated, or compiled.

    ``path`` is the JSON path of the offending value (empty for
    document-level problems); ``str()`` always leads with it so CLI and
    HTTP error surfaces are path-precise for free.
    """

    def __init__(self, problem: str, path: str = "") -> None:
        self.path = path
        self.problem = problem
        super().__init__(f"{path}: {problem}" if path else problem)


@dataclass(frozen=True)
class CompiledScenario:
    """What a scenario document expands to.

    ``document`` is the merged (post-``extends``), validated document —
    the canonical form :func:`scenario_digest` hashes.  ``specs`` is the
    deterministic expansion: one spec for single scenarios, one per grid
    cell for sweep scenarios (fixed axis order, like
    :func:`repro.experiments.sweep.expand_grid`).
    """

    name: str
    description: str
    document: Dict[str, object]
    specs: Tuple[ExperimentSpec, ...]
    record_trace: bool = False

    @property
    def digest(self) -> str:
        return scenario_digest(self.document)


def scenario_digest(document: Dict[str, object]) -> str:
    """Content identity of a (merged) scenario document."""
    canonical = json.dumps(
        document, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def load_scenario_file(path: os.PathLike) -> Dict[str, object]:
    """Read one scenario document from disk (errors are path-precise)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except FileNotFoundError:
        raise ScenarioError(f"no such scenario file: {path}") from None
    except json.JSONDecodeError as exc:
        raise ScenarioError(f"{path} is not valid JSON: {exc}") from exc
    except OSError as exc:
        raise ScenarioError(f"cannot read scenario file {path}: {exc}") from exc
    if not isinstance(document, dict):
        raise ScenarioError(f"{path}: a scenario must be a JSON object")
    return document


# -- type helpers (every check names its path) ------------------------------


def _expect_str(value, path: str) -> str:
    if not isinstance(value, str):
        raise ScenarioError(f"expected a string, got {value!r}", path)
    return value


def _expect_bool(value, path: str) -> bool:
    if not isinstance(value, bool):
        raise ScenarioError(f"expected true/false, got {value!r}", path)
    return value


def _expect_dict(value, path: str) -> Dict[str, object]:
    if not isinstance(value, dict):
        raise ScenarioError(f"expected an object, got {value!r}", path)
    return value


def _expect_list(value, path: str) -> List[object]:
    if not isinstance(value, list):
        raise ScenarioError(f"expected a list, got {value!r}", path)
    return value


def _expect_number(value, path: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ScenarioError(f"expected a number, got {value!r}", path)
    return float(value)


# -- extends resolution -----------------------------------------------------


def _merge_dicts(base: Dict[str, object], overlay: Dict[str, object]) -> Dict[str, object]:
    """Recursive dict merge: overlay wins, nested objects merge key-wise."""
    merged = dict(base)
    for key, value in overlay.items():
        if isinstance(value, dict) and isinstance(merged.get(key), dict):
            merged[key] = _merge_dicts(merged[key], value)  # type: ignore[arg-type]
        else:
            merged[key] = value
    return merged


def merge_documents(
    base: Dict[str, object], child: Dict[str, object]
) -> Dict[str, object]:
    """Apply ``extends`` inheritance: ``child`` over ``base``.

    Top-level scalar keys replace; ``overrides`` and ``faults`` deep-merge
    so a child can tweak one knob without restating the parent's plan.
    The parent's ``name``/``description`` are dropped (a derived scenario
    is not its template), and choosing a workload shape (``benchmark`` /
    ``processes`` / ``sweep``) in the child *replaces* the parent's shape
    entirely — inheriting half a process list would be a trap.
    """
    base = {k: v for k, v in base.items() if k not in ("name", "description", "extends")}
    shapes = ("benchmark", "version", "sleep", "interactive", "processes", "sweep")
    if any(key in child for key in ("processes", "sweep", "benchmark")):
        base = {k: v for k, v in base.items() if k not in shapes}
    merged = dict(base)
    for key, value in child.items():
        if key == "extends":
            continue
        if key in ("overrides", "faults") and isinstance(value, dict) and isinstance(
            merged.get(key), dict
        ):
            merged[key] = _merge_dicts(merged[key], value)  # type: ignore[arg-type]
        else:
            merged[key] = value
    return merged


def _resolve_extends(
    document: Dict[str, object], registry, chain: Tuple[str, ...] = ()
) -> Dict[str, object]:
    parent_name = document.get("extends")
    if parent_name is None:
        return dict(document)
    path = "extends"
    parent_name = _expect_str(parent_name, path)
    if parent_name in chain:
        cycle = " -> ".join(chain + (parent_name,))
        raise ScenarioError(f"template inheritance cycle: {cycle}", path)
    if registry is None:
        raise ScenarioError(
            f"cannot resolve template {parent_name!r} (no registry available)", path
        )
    try:
        parent = registry.get(parent_name)
    except KeyError:
        raise ScenarioError(
            f"unknown template {parent_name!r} "
            f"(registered: {', '.join(registry.names())})",
            path,
        ) from None
    parent = _resolve_extends(parent, registry, chain + (parent_name,))
    return merge_documents(parent, document)


# -- compilation ------------------------------------------------------------


def _compile_process(entry: object, index: int) -> WorkloadProcessSpec:
    path = f"processes[{index}]"
    entry = _expect_dict(entry, path)
    unknown = sorted(set(entry) - _PROCESS_KEYS)
    if unknown:
        raise ScenarioError(
            f"unknown key(s) {', '.join(map(repr, unknown))} "
            f"(known: {', '.join(sorted(_PROCESS_KEYS))})",
            path,
        )
    if "trace" in entry:
        if "workload" in entry:
            raise ScenarioError("give 'workload' or 'trace', not both", path)
        trace_path = _expect_str(entry["trace"], f"{path}.trace")
        from repro.trace import TraceError, trace_process_spec

        try:
            return trace_process_spec(
                trace_path,
                start_offset_s=_expect_number(
                    entry.get("start_offset_s", 0.0), f"{path}.start_offset_s"
                ),
                name=(
                    _expect_str(entry["name"], f"{path}.name")
                    if "name" in entry
                    else None
                ),
            )
        except (TraceError, OSError) as exc:
            raise ScenarioError(str(exc), f"{path}.trace") from exc
    if "workload" not in entry:
        raise ScenarioError("a process needs a 'workload' or 'trace' key", path)
    workload = _expect_str(entry["workload"], f"{path}.workload")
    upper = workload.upper()
    if upper == TRACE:
        raise ScenarioError(
            "replay processes are written as {'trace': path}", f"{path}.workload"
        )
    if upper != INTERACTIVE and upper not in BENCHMARKS:
        raise ScenarioError(
            f"unknown workload {workload!r} (choose from "
            f"{', '.join(sorted(BENCHMARKS))}, or 'interactive')",
            f"{path}.workload",
        )
    version = entry.get("version", "O")
    version = _expect_str(version, f"{path}.version").upper()
    if upper != INTERACTIVE and version not in VERSIONS:
        raise ScenarioError(
            f"unknown version {version!r} (choose from "
            f"{', '.join(sorted(VERSIONS))})",
            f"{path}.version",
        )
    sleep_s = entry.get("sleep_s")
    if sleep_s is not None:
        sleep_s = _expect_number(sleep_s, f"{path}.sleep_s")
    sweeps = entry.get("sweeps")
    if sweeps is not None:
        if isinstance(sweeps, bool) or not isinstance(sweeps, int) or sweeps <= 0:
            raise ScenarioError(
                f"expected a positive integer, got {sweeps!r}", f"{path}.sweeps"
            )
    start = _expect_number(entry.get("start_offset_s", 0.0), f"{path}.start_offset_s")
    if start < 0:
        raise ScenarioError(f"negative start offset: {start}", f"{path}.start_offset_s")
    return WorkloadProcessSpec(
        workload=upper if upper == INTERACTIVE else workload.upper(),
        version=version,
        start_offset_s=start,
        sleep_time_s=sleep_s,
        sweeps=sweeps,
        name=(
            _expect_str(entry["name"], f"{path}.name") if "name" in entry else None
        ),
    )


def _compile_scale(document: Dict[str, object]) -> SimScale:
    scale_name = document.get("scale", "tiny")
    scale_name = _expect_str(scale_name, "scale")
    if scale_name not in _SCALES:
        raise ScenarioError(
            f"unknown scale {scale_name!r} (choose from "
            f"{', '.join(sorted(_SCALES))})",
            "scale",
        )
    scale = _SCALES[scale_name]()
    overrides = document.get("overrides")
    if overrides is not None:
        overrides = _expect_dict(overrides, "overrides")
        for key, value in overrides.items():
            try:
                scale = scale.with_overrides(**{key: value})
            except TypeError:
                raise ScenarioError(
                    f"unknown platform knob {key!r}", f"overrides.{key}"
                ) from None
    return scale


def _compile_faults(document: Dict[str, object]) -> FaultPlan:
    if "faults" not in document:
        return EMPTY_PLAN
    faults = _expect_dict(document["faults"], "faults")
    try:
        return FaultPlan.from_dict(faults)
    except FaultPlanError as exc:
        raise ScenarioError(str(exc), "faults") from exc


def _compile_policy(document: Dict[str, object]) -> Optional[PolicySpec]:
    if "policy" not in document:
        return None
    text = _expect_str(document["policy"], "policy")
    try:
        policy = PolicySpec.from_string(text)
        # Eagerly resolve so an unregistered name fails at validate time,
        # not at run time inside the service.
        validate_policy(policy)
    except PolicyError as exc:
        raise ScenarioError(str(exc), "policy") from exc
    return policy


def _compile_single(
    document: Dict[str, object],
    scale: SimScale,
    faults: FaultPlan,
    policy: Optional[PolicySpec],
) -> Tuple[ExperimentSpec, ...]:
    if "processes" in document:
        for key in ("benchmark", "version", "sleep", "interactive"):
            if key in document:
                raise ScenarioError(
                    f"'{key}' is the benchmark shorthand; a scenario with "
                    "'processes' must not also use it",
                    key,
                )
        entries = _expect_list(document["processes"], "processes")
        if not entries:
            raise ScenarioError("needs at least one process", "processes")
        processes = tuple(
            _compile_process(entry, index) for index, entry in enumerate(entries)
        )
    else:
        benchmark = _expect_str(document["benchmark"], "benchmark").upper()
        if benchmark not in BENCHMARKS:
            raise ScenarioError(
                f"unknown benchmark {benchmark!r} (choose from "
                f"{', '.join(sorted(BENCHMARKS))})",
                "benchmark",
            )
        version = _expect_str(document.get("version", "R"), "version").upper()
        if version not in VERSIONS:
            raise ScenarioError(
                f"unknown version {version!r} (choose from "
                f"{', '.join(sorted(VERSIONS))})",
                "version",
            )
        sleep = document.get("sleep")
        if sleep is not None:
            sleep = _expect_number(sleep, "sleep")
        with_interactive = _expect_bool(document.get("interactive", True), "interactive")
        spec = ExperimentSpec.multiprogram(
            scale, benchmark, version, sleep_time_s=sleep,
            with_interactive=with_interactive,
        )
        processes = spec.processes
    spec = ExperimentSpec(scale=scale, processes=processes, faults=faults)
    if policy is not None:
        spec = spec.with_policy(policy)
    try:
        spec.validate()
    except SpecError as exc:
        raise ScenarioError(str(exc)) from exc
    return (spec,)


def _compile_sweep(
    document: Dict[str, object],
    faults: FaultPlan,
    policy: Optional[PolicySpec],
) -> Tuple[ExperimentSpec, ...]:
    for key in ("benchmark", "version", "sleep", "interactive", "processes"):
        if key in document:
            raise ScenarioError(
                f"a sweep scenario puts {key!r} under sweep.axes, not at "
                "the top level",
                key,
            )
    if policy is not None:
        raise ScenarioError(
            "a sweep scenario selects policies via sweep.axes.policy", "policy"
        )
    sweep = _expect_dict(document["sweep"], "sweep")
    unknown = sorted(set(sweep) - {"axes"})
    if unknown:
        raise ScenarioError(
            f"unknown key(s) {', '.join(map(repr, unknown))} (known: 'axes')",
            "sweep",
        )
    axes = _expect_dict(sweep.get("axes", {}), "sweep.axes")
    unknown = sorted(set(axes) - set(_SWEEP_AXES))
    if unknown:
        raise ScenarioError(
            f"unknown axis(es) {', '.join(map(repr, unknown))} "
            f"(known: {', '.join(_SWEEP_AXES)})",
            "sweep.axes",
        )
    for axis, values in axes.items():
        _expect_list(values, f"sweep.axes.{axis}")
    # Reuse the sweep grid expander (fixed axis order, validated specs) so
    # the service and `repro sweep run --grid` agree on expansion exactly.
    from repro.experiments.sweep import expand_grid

    grid: Dict[str, object] = {"axes": axes}
    if "scale" in document:
        grid["scale"] = document["scale"]
    if "overrides" in document:
        grid["overrides"] = document["overrides"]
    if faults is not EMPTY_PLAN:
        grid["faults"] = document["faults"]
    try:
        return tuple(expand_grid(grid))
    except (SpecError, FaultPlanError, PolicyError) as exc:
        raise ScenarioError(str(exc), "sweep.axes") from exc


def compile_scenario(
    document: Dict[str, object],
    registry=None,
    name: Optional[str] = None,
) -> CompiledScenario:
    """Validate ``document`` and expand it into experiment specs.

    ``registry`` (a :class:`~repro.scenarios.templates.ScenarioRegistry`)
    resolves ``extends`` chains; ``name`` overrides the document's own
    name (used when submitting a registered template by name).  Raises
    :class:`ScenarioError` — with the offending JSON path — on the first
    problem found.
    """
    document = _expect_dict(document, "")
    merged = _resolve_extends(document, registry)
    unknown = sorted(set(merged) - _TOP_LEVEL_KEYS)
    if unknown:
        raise ScenarioError(
            f"unknown key(s) {', '.join(map(repr, unknown))} "
            f"(known: {', '.join(sorted(_TOP_LEVEL_KEYS))})"
        )
    if "scenario" not in merged:
        raise ScenarioError(
            f"missing 'scenario' format version (current: {SCENARIO_FORMAT_VERSION})"
        )
    version = merged["scenario"]
    if isinstance(version, bool) or not isinstance(version, int):
        raise ScenarioError(f"expected an integer, got {version!r}", "scenario")
    if version != SCENARIO_FORMAT_VERSION:
        raise ScenarioError(
            f"unsupported scenario format {version} "
            f"(this tree reads version {SCENARIO_FORMAT_VERSION})",
            "scenario",
        )
    shapes = [key for key in ("benchmark", "processes", "sweep") if key in merged]
    if not shapes:
        raise ScenarioError(
            "a scenario needs a workload shape: 'benchmark', 'processes', "
            "or 'sweep'"
        )
    if len(shapes) > 1 and "sweep" in shapes:
        raise ScenarioError(
            f"give exactly one of benchmark/processes/sweep, got "
            f"{', '.join(shapes)}"
        )
    if "benchmark" in shapes and "processes" in shapes:
        raise ScenarioError(
            "give exactly one of benchmark/processes/sweep, got "
            "benchmark, processes"
        )
    record_trace = _expect_bool(merged.get("record_trace", False), "record_trace")
    scale = _compile_scale(merged)
    faults = _compile_faults(merged)
    scenario_name = name or merged.get("name")
    if scenario_name is not None:
        scenario_name = _expect_str(scenario_name, "name")
    description = merged.get("description", "")
    description = _expect_str(description, "description") if description else ""
    if "sweep" in merged:
        if record_trace:
            raise ScenarioError(
                "trace recording applies to single scenarios, not sweeps",
                "record_trace",
            )
        specs = _compile_sweep(merged, faults, _compile_policy(merged))
    else:
        specs = _compile_single(merged, scale, faults, _compile_policy(merged))
    return CompiledScenario(
        name=scenario_name or "inline",
        description=description,
        document=merged,
        specs=specs,
        record_trace=record_trace,
    )


def validate_scenario(
    document: Dict[str, object], registry=None, name: Optional[str] = None
) -> CompiledScenario:
    """Alias of :func:`compile_scenario` for intent at call sites that
    only care about the yes/no answer (``repro validate``)."""
    return compile_scenario(document, registry=registry, name=name)
