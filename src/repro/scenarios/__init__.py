"""Declarative scenarios: versioned JSON experiment descriptions.

A *scenario* is a JSON document that names everything an experiment run
needs — scale, workload mix (or sweep axes), memory policy, fault plan —
in one validated, versioned file.  Scenarios are the currency of the
experiment service (:mod:`repro.service`): clients submit them over HTTP,
`repro validate` checks them without running anything, and the template
registry ships named scenarios for the paper's canonical runs so
``repro submit standard-mix`` works with no file at all.

The contract that makes the service's shared result cache meaningful:
compiling a scenario is deterministic — the same document always expands
to the same tuple of frozen :class:`~repro.machine.ExperimentSpec` values,
and therefore the same content-addressed cache keys — so any two
submitters of one scenario share one execution.

See :mod:`repro.scenarios.schema` for the format and the validation
rules, and :mod:`repro.scenarios.templates` for the built-in library.
"""

from repro.scenarios.schema import (
    SCENARIO_FORMAT_VERSION,
    CompiledScenario,
    ScenarioError,
    compile_scenario,
    load_scenario_file,
    scenario_digest,
    validate_scenario,
)
from repro.scenarios.templates import (
    BUILTIN_TEMPLATES,
    ScenarioRegistry,
    builtin_registry,
)

__all__ = [
    "BUILTIN_TEMPLATES",
    "CompiledScenario",
    "SCENARIO_FORMAT_VERSION",
    "ScenarioError",
    "ScenarioRegistry",
    "builtin_registry",
    "compile_scenario",
    "load_scenario_file",
    "scenario_digest",
    "validate_scenario",
]
