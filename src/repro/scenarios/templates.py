"""The scenario registry: built-in templates plus user scenario directories.

The built-ins name the paper's canonical runs so the service (and
``repro submit``) can run them with no scenario file at all — the same
role Pj-OGUN's template library plays for its scenario JSON.  Every
template is a complete, valid scenario document; a test compiles each
one, so a template can never rot silently.

User templates come from ``--scenario-dir``: every ``*.json`` file in the
directory registers under its ``name`` field (or the file stem), and may
``extends:`` a built-in or another file in the directory.
"""

from __future__ import annotations

import copy
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from repro.scenarios.schema import ScenarioError, load_scenario_file

__all__ = ["BUILTIN_TEMPLATES", "ScenarioRegistry", "builtin_registry"]


#: Named scenarios for the paper's figure/table runs.  Scales are ``tiny``
#: so a template submission answers in seconds; callers override ``scale``
#: (directly or via ``extends``) for paper-fidelity runs.
BUILTIN_TEMPLATES: Dict[str, Dict[str, object]] = {
    "standard-mix": {
        "scenario": 1,
        "name": "standard-mix",
        "description": (
            "The paper's standard multiprogrammed mix: one MATVEC hog "
            "(full hint build) beside the interactive task."
        ),
        "scale": "tiny",
        "benchmark": "MATVEC",
        "version": "B",
    },
    "release-only": {
        "scenario": 1,
        "name": "release-only",
        "description": (
            "The release-hinted build (version R) of the standard mix — "
            "the paper's headline memory-hog taming configuration."
        ),
        "extends": "standard-mix",
        "version": "R",
    },
    "interactive-baseline": {
        "scenario": 1,
        "name": "interactive-baseline",
        "description": (
            "The interactive task on a dedicated machine (Figures 1/10's "
            "response-time baseline): no hog, eight bounded sweeps."
        ),
        "scale": "tiny",
        "processes": [{"workload": "interactive", "sweeps": 8}],
    },
    "version-suite": {
        "scenario": 1,
        "name": "version-suite",
        "description": (
            "Figure 7's sweep: MATVEC under all four program versions "
            "(original, prefetch, release, both)."
        ),
        "scale": "tiny",
        "sweep": {
            "axes": {
                "benchmark": ["MATVEC"],
                "version": ["O", "P", "R", "B"],
            }
        },
    },
    "policy-shootout": {
        "scenario": 1,
        "name": "policy-shootout",
        "description": (
            "compare-policies as a scenario: the release build of MATVEC "
            "under each registered memory policy."
        ),
        "scale": "tiny",
        "sweep": {
            "axes": {
                "benchmark": ["MATVEC"],
                "version": ["R"],
                "policy": ["paging-directed", "global-clock", "user-mode"],
            }
        },
    },
    "fault-storm": {
        "scenario": 1,
        "name": "fault-storm",
        "description": (
            "The standard mix under deterministic disk chaos: transient "
            "I/O errors at 2% with a fixed seed."
        ),
        "extends": "release-only",
        "faults": {"seed": 7, "disk": {"io_error_prob": 0.02}},
    },
}


class ScenarioRegistry:
    """Named scenario documents: built-ins plus registered files.

    ``get`` returns deep copies — callers mutate merged documents during
    ``extends`` resolution, and a registry must hand out pristine
    templates forever.
    """

    def __init__(self, templates: Optional[Dict[str, Dict[str, object]]] = None) -> None:
        self._templates: Dict[str, Dict[str, object]] = {}
        self._origins: Dict[str, str] = {}
        for name, document in (templates or {}).items():
            self.register(name, document, origin="builtin")

    def register(
        self, name: str, document: Dict[str, object], origin: str = "registered"
    ) -> None:
        if not name:
            raise ScenarioError("a template needs a non-empty name")
        self._templates[name] = copy.deepcopy(document)
        self._origins[name] = origin

    def load_dir(self, directory: os.PathLike) -> List[str]:
        """Register every ``*.json`` scenario in ``directory``; returns names."""
        root = Path(directory)
        if not root.is_dir():
            raise ScenarioError(f"no such scenario directory: {root}")
        names: List[str] = []
        for path in sorted(root.glob("*.json")):
            document = load_scenario_file(path)
            name = document.get("name") or path.stem
            if not isinstance(name, str):
                raise ScenarioError(f"expected a string, got {name!r}", "name")
            self.register(name, document, origin=str(path))
            names.append(name)
        return names

    def get(self, name: str) -> Dict[str, object]:
        """The named template document (a private copy).  KeyError if absent."""
        return copy.deepcopy(self._templates[name])

    def __contains__(self, name: str) -> bool:
        return name in self._templates

    def names(self) -> List[str]:
        return sorted(self._templates)

    def entries(self) -> List[Dict[str, object]]:
        """Listing rows for ``repro scenarios`` and ``GET /v1/scenarios``."""
        rows = []
        for name in self.names():
            document = self._templates[name]
            rows.append(
                {
                    "name": name,
                    "description": str(document.get("description", "")),
                    "origin": self._origins[name],
                    "extends": document.get("extends"),
                }
            )
        return rows


def builtin_registry(
    scenario_dirs: Iterable[os.PathLike] = (),
) -> ScenarioRegistry:
    """The built-in template library, plus any scenario directories."""
    registry = ScenarioRegistry(BUILTIN_TEMPLATES)
    for directory in scenario_dirs:
        registry.load_dir(directory)
    return registry
