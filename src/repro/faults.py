"""Deterministic fault injection across the simulated I/O stack.

The paper's central robustness claim is that compiler hints are *advisory*:
the OS must "perform reasonably even when the compiler's predictions are
wrong".  This module lets an experiment perturb every layer the claim
touches and observe the degradation:

- **disk faults** — latency spikes, permanently degraded spindles, transient
  I/O errors, and whole-spindle failures (a disk drops out of the
  :class:`~repro.disk.swap.StripedSwap` stripe at a scheduled time).  The
  kernel responds with capped exponential-backoff retries, a per-request
  timeout, and failover to the surviving spindles — prefetch parallelism
  degrades instead of crashing;
- **hint corruption** — dropped, spurious, and mistimed compiler
  prefetch/release hints injected at the run-time layer, which directly
  tests the "bad hints must not hurt" property.

Everything is declared up front as a frozen :class:`FaultPlan` on the
:class:`~repro.machine.ExperimentSpec`.  Injection decisions come from
:class:`random.Random` streams derived from ``(plan.seed, layer, instance)``
via SHA-256, so the same plan produces the same injected-fault schedule on
every run, independent of Python hash randomisation — fault experiments are
exactly as reproducible and cacheable as fault-free ones.

The zero-fault plan (:data:`EMPTY_PLAN`, the default) attaches no models
anywhere: every hook is an ``is not None`` check on a ``None`` attribute, so
default results are bit-identical to a build without this module.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "DiskFailure",
    "DiskFaultModel",
    "DiskFaultSpec",
    "DiskIOError",
    "EMPTY_PLAN",
    "FaultInjector",
    "FaultPlanError",
    "FaultPlan",
    "HintFaultModel",
    "HintFaultSpec",
    "seed_stream",
]


class FaultPlanError(ValueError):
    """A :class:`FaultPlan` that cannot be realised."""


class DiskIOError(Exception):
    """A disk request failed (injected transient error, or no spindle left).

    Raised into whoever awaits the request; the swap layer's retry loop is
    normally the only consumer.
    """

    def __init__(self, disk_id: int, block: int, is_write: bool, detail: str = "") -> None:
        self.disk_id = disk_id
        self.block = block
        self.is_write = is_write
        op = "write" if is_write else "read"
        message = f"disk {disk_id}: {op} of block {block} failed"
        if detail:
            message = f"{message} ({detail})"
        super().__init__(message)


def _derive_seed(*parts: object) -> int:
    """A stable 64-bit stream seed from ``(plan seed, layer, instance)``.

    SHA-256 rather than ``hash()`` so streams survive interpreter restarts
    and hash randomisation.
    """
    text = "/".join(str(part) for part in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def seed_stream(base_seed: int, count: int) -> Tuple[int, ...]:
    """``count`` distinct 64-bit seeds deterministically derived from one.

    Used by :mod:`repro.experiments.ensemble` to expand a single fault
    plan into a Monte Carlo ensemble; SHA-256 derivation means the stream
    is stable across interpreters and hash randomisation, like every
    other stream in this module.
    """
    if count < 0:
        raise FaultPlanError(f"seed_stream needs count >= 0, got {count}")
    return tuple(_derive_seed(base_seed, "ensemble", i) for i in range(count))


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise FaultPlanError(f"{name} must be a probability in [0, 1], got {value}")


@dataclass(frozen=True)
class DiskFailure:
    """One spindle dropping out of the stripe at a scheduled time."""

    disk: int
    at_s: float = 0.0

    def validate(self) -> None:
        if self.disk < 0:
            raise FaultPlanError(f"negative disk id: {self.disk}")
        if self.at_s < 0:
            raise FaultPlanError(f"negative failure time: {self.at_s}")


@dataclass(frozen=True)
class DiskFaultSpec:
    """Per-request disk perturbations plus spindle-level degradation.

    ``latency_spike_prob`` multiplies a request's service time by
    ``latency_spike_multiplier`` (a recovered-read / thermal-recalibration
    event).  ``io_error_prob`` fails the request outright after it was
    serviced — transient, so a retry may succeed.  ``degraded_disks`` always
    pay ``degraded_multiplier`` on every request; ``failures`` remove whole
    spindles from the stripe at a scheduled simulated time.
    """

    latency_spike_prob: float = 0.0
    latency_spike_multiplier: float = 4.0
    io_error_prob: float = 0.0
    degraded_disks: Tuple[int, ...] = ()
    degraded_multiplier: float = 3.0
    failures: Tuple[DiskFailure, ...] = ()

    @property
    def enabled(self) -> bool:
        return bool(
            self.latency_spike_prob > 0
            or self.io_error_prob > 0
            or self.degraded_disks
            or self.failures
        )

    def validate(self) -> None:
        _check_probability("latency_spike_prob", self.latency_spike_prob)
        _check_probability("io_error_prob", self.io_error_prob)
        if self.latency_spike_multiplier < 1.0:
            raise FaultPlanError(
                f"latency_spike_multiplier must be >= 1, got {self.latency_spike_multiplier}"
            )
        if self.degraded_multiplier < 1.0:
            raise FaultPlanError(
                f"degraded_multiplier must be >= 1, got {self.degraded_multiplier}"
            )
        for disk in self.degraded_disks:
            if disk < 0:
                raise FaultPlanError(f"negative degraded disk id: {disk}")
        for failure in self.failures:
            failure.validate()

    def max_disk_id(self) -> int:
        """Largest spindle this spec names (-1 when it names none)."""
        ids = [f.disk for f in self.failures] + list(self.degraded_disks)
        return max(ids) if ids else -1


@dataclass(frozen=True)
class HintFaultSpec:
    """Corruption of compiler hints at the run-time layer boundary.

    Per hint call: ``drop_prob`` discards the hint entirely (a release or
    prefetch the compiler should have emitted but didn't); ``spurious_prob``
    appends a uniformly random in-range page (a hint for data the program
    never touches — a spurious release throws away a live page);
    ``mistime_prob`` shifts every page by ``mistime_shift_pages`` (the hint
    fires against the wrong iteration's pages — a mistimed release frees
    pages still in use, a mistimed prefetch fetches too far ahead).
    """

    drop_prob: float = 0.0
    spurious_prob: float = 0.0
    mistime_prob: float = 0.0
    mistime_shift_pages: int = 8

    @property
    def enabled(self) -> bool:
        return bool(self.drop_prob > 0 or self.spurious_prob > 0 or self.mistime_prob > 0)

    def validate(self) -> None:
        _check_probability("drop_prob", self.drop_prob)
        _check_probability("spurious_prob", self.spurious_prob)
        _check_probability("mistime_prob", self.mistime_prob)
        if self.mistime_shift_pages == 0 and self.mistime_prob > 0:
            raise FaultPlanError("mistime_prob > 0 requires a non-zero shift")


@dataclass(frozen=True)
class FaultPlan:
    """The complete, declarative fault schedule for one experiment.

    Frozen and built from primitives, so — exactly like
    :class:`~repro.machine.ExperimentSpec` — its ``repr`` is a deterministic
    serialisation and fault experiments content-hash into the runner's
    result cache.
    """

    seed: int = 0
    disk: DiskFaultSpec = field(default_factory=DiskFaultSpec)
    hints: HintFaultSpec = field(default_factory=HintFaultSpec)

    @property
    def enabled(self) -> bool:
        return self.disk.enabled or self.hints.enabled

    def validate(self) -> None:
        self.disk.validate()
        self.hints.validate()

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)

    def fan_out(self, count: int, base_seed: Optional[int] = None) -> Tuple["FaultPlan", ...]:
        """``count`` copies of this plan on independent derived seed streams.

        The Monte Carlo primitive: member ``i`` gets seed
        ``derive(base, "ensemble", i)``, so ensemble members are mutually
        independent (no seed collisions, no overlap with the base stream)
        yet the whole ensemble is a pure function of ``base_seed`` —
        re-running it re-produces every member bit-for-bit, which keeps
        ensemble cells exactly as cacheable as single experiments.
        """
        if count < 1:
            raise FaultPlanError(f"fan_out needs count >= 1, got {count}")
        base = self.seed if base_seed is None else base_seed
        return tuple(self.with_seed(seed) for seed in seed_stream(base, count))

    # -- serialisation (CLI --faults) --------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        """Build a plan from the CLI's JSON shape; unknown keys are errors."""
        data = dict(data)
        disk_data = dict(data.pop("disk", {}))
        hints_data = dict(data.pop("hints", {}))
        seed = data.pop("seed", 0)
        if data:
            raise FaultPlanError(f"unknown fault plan keys: {sorted(data)}")
        failures = tuple(
            DiskFailure(**entry) if isinstance(entry, dict) else DiskFailure(int(entry))
            for entry in disk_data.pop("failures", ())
        )
        disk_data["degraded_disks"] = tuple(disk_data.get("degraded_disks", ()))
        try:
            disk = DiskFaultSpec(failures=failures, **disk_data)
            hints = HintFaultSpec(**hints_data)
        except TypeError as exc:
            raise FaultPlanError(str(exc)) from None
        plan = cls(seed=int(seed), disk=disk, hints=hints)
        plan.validate()
        return plan


#: The default plan: nothing is ever injected, and no fault machinery is
#: constructed — results are bit-identical to a fault-free build.
EMPTY_PLAN = FaultPlan()


class DiskFaultModel:
    """Per-spindle injection decisions, on an independent deterministic stream.

    Each :class:`~repro.disk.device.DiskDevice` owns one model seeded from
    ``(plan.seed, "disk", disk_id)``: injection on one spindle never
    perturbs another spindle's stream, so adding traffic to disk 3 cannot
    change what happens on disk 5.
    """

    __slots__ = ("spec", "disk_id", "degraded", "_rng", "obs")

    def __init__(self, spec: DiskFaultSpec, seed: int, disk_id: int, obs=None) -> None:
        self.spec = spec
        self.disk_id = disk_id
        self.degraded = disk_id in spec.degraded_disks
        self._rng = random.Random(_derive_seed(seed, "disk", disk_id))
        self.obs = obs

    def perturb(self, service_s: float) -> Tuple[float, bool]:
        """Decide this request's fate: ``(service time, failed?)``.

        A failed request still occupies the spindle for its (possibly
        spiked) service time — the platters spun either way.
        """
        spec = self.spec
        if self.degraded:
            service_s *= spec.degraded_multiplier
        if spec.latency_spike_prob > 0 and self._rng.random() < spec.latency_spike_prob:
            service_s *= spec.latency_spike_multiplier
            if self.obs is not None:
                self.obs.emit(
                    "fault.disk_latency",
                    {"disk": self.disk_id, "service_s": service_s},
                )
        failed = spec.io_error_prob > 0 and self._rng.random() < spec.io_error_prob
        if failed and self.obs is not None:
            self.obs.emit("fault.disk_error", {"disk": self.disk_id})
        return service_s, failed


class HintFaultModel:
    """Per-process hint corruption, on an independent deterministic stream.

    Corruption happens where real compiler bugs would surface: at the entry
    to :meth:`~repro.core.runtime.layer.RuntimeLayer.handle_prefetch` /
    ``handle_release``, *before* the layer's own filters — the filters and
    the kernel then have to cope, which is the property under test.
    Corrupted pages are clamped to the policy module's covered range so the
    injection exercises bad *policy*, not out-of-range syscalls.
    """

    __slots__ = ("spec", "name", "_rng", "obs")

    def __init__(self, spec: HintFaultSpec, seed: int, name: str, obs=None) -> None:
        self.spec = spec
        self.name = name
        self._rng = random.Random(_derive_seed(seed, "hints", name))
        self.obs = obs

    def _emit(self, op: str, mode: str, pages: int) -> None:
        if self.obs is not None:
            self.obs.emit(
                "fault.hint",
                {"process": self.name, "op": op, "mode": mode, "pages": pages},
            )

    def corrupt(
        self, op: str, vpns: Sequence[int], domain: range, stats
    ) -> Optional[Tuple[int, ...]]:
        """Corrupt one hint's page list.

        Returns ``None`` when the whole hint is dropped, else the (possibly
        perturbed) pages.  ``stats`` is the owning layer's
        :class:`~repro.core.runtime.layer.RuntimeStats`.
        """
        spec = self.spec
        rng = self._rng
        if spec.drop_prob > 0 and rng.random() < spec.drop_prob:
            stats.hints_dropped += 1
            self._emit(op, "drop", len(vpns))
            return None
        pages: List[int] = list(vpns)
        if spec.spurious_prob > 0 and rng.random() < spec.spurious_prob:
            pages.append(rng.randrange(domain.start, max(domain.start + 1, domain.stop)))
            stats.hints_spurious += 1
            self._emit(op, "spurious", 1)
        if pages and spec.mistime_prob > 0 and rng.random() < spec.mistime_prob:
            low, high = domain.start, max(domain.start, domain.stop - 1)
            pages = [
                min(high, max(low, vpn + spec.mistime_shift_pages)) for vpn in pages
            ]
            stats.hints_mistimed += 1
            self._emit(op, "mistime", len(pages))
        return tuple(pages)


class FaultInjector:
    """Realises one :class:`FaultPlan` for one machine: the model factory.

    Built by :class:`~repro.machine.Machine` only when the plan is enabled
    and threaded down through the kernel; layers whose slice of the plan is
    empty receive ``None`` and keep their zero-overhead fast path.
    """

    def __init__(self, plan: FaultPlan, obs=None) -> None:
        plan.validate()
        self.plan = plan
        self.obs = obs

    @property
    def disk_enabled(self) -> bool:
        return self.plan.disk.enabled

    @property
    def hints_enabled(self) -> bool:
        return self.plan.hints.enabled

    def disk_model(self, disk_id: int) -> Optional[DiskFaultModel]:
        if not self.disk_enabled:
            return None
        return DiskFaultModel(self.plan.disk, self.plan.seed, disk_id, obs=self.obs)

    def hint_model(self, name: str) -> Optional[HintFaultModel]:
        if not self.hints_enabled:
            return None
        return HintFaultModel(self.plan.hints, self.plan.seed, name, obs=self.obs)
