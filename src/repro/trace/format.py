"""The binary trace format: varint-delta records, JSON header, CRC32 footer.

File layout (all multi-byte integers little-endian)::

    magic     8 bytes   b"RPROTRC1" (bumped with the format version)
    hlen      u32       length of the header JSON
    header    hlen      canonical JSON (TraceHeader.to_dict)
    records   ...       one tag byte + fields per op (see below)
    end       1 byte    0x00
    count     uvarint   number of op records, cross-checked on read
    crc       u32       CRC32 of everything between magic and crc

Records carry the interpreter's op vocabulary.  Page numbers are
zigzag-varint deltas against a single running cursor (the previous vpn
seen anywhere in the stream), which turns the dominant sequential-touch
patterns into one-byte fields.  Compute costs are IEEE doubles interned
in an on-the-fly table — the first occurrence of a value is stored as raw
8 bytes, later occurrences as a varint table index — so floats round-trip
bit-exactly while repeated per-iteration costs cost ~2 bytes.

Tag bytes::

    0x00 end of records
    0x01 ('w', secs)                    new float (8 bytes, registers)
    0x02 ('w', secs)                    float table index
    0x03 ('t', vpn, False, 0.0)         read touch: delta
    0x04 ('t', vpn, True, 0.0)          write touch: delta
    0x05 ('T', start, count, False, s)  batched read run: delta, count, new float
    0x06 ('T', start, count, True, s)   batched write run, new float
    0x07 ('T', start, count, False, s)  batched read run, float index
    0x08 ('T', start, count, True, s)   batched write run, float index
    0x09 ('p', tag, vpns)               prefetch hint: tag, n, n deltas
    0x0A ('r', tag, vpns, priority)     release hint: tag, zigzag prio, n, deltas
    0x0B ('f', vpn, kind)               fault annotation: delta, new kind string
    0x0C ('f', vpn, kind)               fault annotation: delta, kind index

Any damage — truncation, bit flips, structural nonsense — is rejected
with a typed :class:`TraceError`: once the CRC fails, every symptom is
reported as :class:`TraceChecksumError` (carrying the structural detail);
:class:`TraceTruncatedError` / :class:`TraceFormatError` are reserved for
files whose checksum, unusually, still passes (or that end before one
exists).  Writers land files atomically (temp + rename), so a crashed
recorder can never leave a torn trace under the final name.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import tempfile
import zlib
from array import array
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "MAGIC",
    "TRACE_FORMAT_VERSION",
    "K_COMPUTE",
    "K_FAULT",
    "K_PREFETCH",
    "K_RELEASE",
    "K_RUN_READ",
    "K_RUN_WRITE",
    "K_TOUCH_READ",
    "K_TOUCH_WRITE",
    "ReplayColumns",
    "TraceChecksumError",
    "TraceError",
    "TraceFormatError",
    "TraceHeader",
    "TraceReader",
    "TraceTruncatedError",
    "TraceWriter",
    "decode_columns",
    "decode_trace",
    "encode_body",
    "file_digest",
    "read_columns",
    "read_header",
    "read_trace",
    "write_trace",
]

TRACE_FORMAT_VERSION = 1
MAGIC = b"RPROTRC1"

_U32 = struct.Struct("<I")
_F64 = struct.Struct("<d")


class TraceError(Exception):
    """Base class for everything wrong with a trace file."""


class TraceFormatError(TraceError):
    """Not a trace file, an unsupported version, or malformed structure."""


class TraceTruncatedError(TraceError):
    """The file ends before the format says it should."""


class TraceChecksumError(TraceError):
    """The CRC32 footer does not match the bytes on disk."""


@dataclass(frozen=True)
class TraceHeader:
    """Everything needed to replay the op stream as a process.

    ``layout`` is the ordered (segment name, pages) list the recorded
    process mapped — replay maps the same segments in the same order, so
    every vpn in the stream lands on the same array.  ``page_size`` is the
    recording scale's page size (0 when unknown, e.g. imported traces);
    replay refuses a mismatched machine.  ``version`` names the hint
    policy (O/P/R/B) the runtime layer runs with.
    """

    process: str
    workload: str
    version: str
    scale: str
    page_size: int
    layout: Tuple[Tuple[str, int], ...]
    source: str = "record"
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def footprint_pages(self) -> int:
        return sum(pages for _name, pages in self.layout)

    def to_dict(self) -> Dict[str, object]:
        return {
            "format": TRACE_FORMAT_VERSION,
            "process": self.process,
            "workload": self.workload,
            "version": self.version,
            "scale": self.scale,
            "page_size": self.page_size,
            "layout": [[name, pages] for name, pages in self.layout],
            "source": self.source,
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TraceHeader":
        try:
            version = int(data["format"])
            if version != TRACE_FORMAT_VERSION:
                raise TraceFormatError(
                    f"unsupported trace format version {version} "
                    f"(this build reads version {TRACE_FORMAT_VERSION})"
                )
            return cls(
                process=str(data["process"]),
                workload=str(data["workload"]),
                version=str(data["version"]),
                scale=str(data["scale"]),
                page_size=int(data["page_size"]),
                layout=tuple(
                    (str(name), int(pages)) for name, pages in data["layout"]
                ),
                source=str(data.get("source", "record")),
                meta=dict(data.get("meta", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceFormatError(f"malformed trace header: {exc}") from exc

    def encode(self) -> bytes:
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")


def _append_uvarint(buf: bytearray, value: int) -> None:
    while value > 0x7F:
        buf.append((value & 0x7F) | 0x80)
        value >>= 7
    buf.append(value)


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if value < 0 else value << 1


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def _read_uvarint(data: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    n = len(data)
    while True:
        if pos >= n:
            raise TraceTruncatedError("trace ends inside a varint field")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if byte < 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise TraceFormatError("varint field longer than 10 bytes")


class _BodyEncoder:
    """Record-body encoding state: the vpn delta cursor plus the
    float/string interning tables.  ``encode_op`` appends one record to
    ``_buf``; what becomes of the buffer — flushed to a file by
    :class:`TraceWriter`, or finished into body bytes by
    :func:`encode_body` — is the caller's business."""

    # Subclasses with a backing file override this to bound the buffer;
    # the in-memory encoder never flushes.
    _FLUSH_BYTES = float("inf")

    def __init__(self) -> None:
        self._buf = bytearray()
        self._count = 0
        self._last_vpn = 0
        self._floats: Dict[float, int] = {}
        self._strings: Dict[str, int] = {}

    def _flush(self) -> None:  # pragma: no cover - only file writers flush
        pass

    def encode_op(self, op: Tuple) -> None:
        buf = self._buf
        kind = op[0]
        if kind == "t":
            vpn = op[1]
            buf.append(0x04 if op[2] else 0x03)
            _append_uvarint(buf, _zigzag(vpn - self._last_vpn))
            self._last_vpn = vpn
        elif kind == "w":
            value = op[1]
            index = self._floats.get(value)
            if index is None:
                self._floats[value] = len(self._floats)
                buf.append(0x01)
                buf += _F64.pack(value)
            else:
                buf.append(0x02)
                _append_uvarint(buf, index)
        elif kind == "T":
            start, count, write, secs = op[1], op[2], op[3], op[4]
            index = self._floats.get(secs)
            if index is None:
                buf.append(0x06 if write else 0x05)
            else:
                buf.append(0x08 if write else 0x07)
            _append_uvarint(buf, _zigzag(start - self._last_vpn))
            _append_uvarint(buf, count)
            if index is None:
                self._floats[secs] = len(self._floats)
                buf += _F64.pack(secs)
            else:
                _append_uvarint(buf, index)
            self._last_vpn = start + count - 1
        elif kind == "p" or kind == "r":
            if kind == "p":
                buf.append(0x09)
                _append_uvarint(buf, op[1])
                vpns = op[2]
            else:
                buf.append(0x0A)
                _append_uvarint(buf, op[1])
                _append_uvarint(buf, _zigzag(op[3]))
                vpns = op[2]
            _append_uvarint(buf, len(vpns))
            last = self._last_vpn
            for vpn in vpns:
                _append_uvarint(buf, _zigzag(vpn - last))
                last = vpn
            self._last_vpn = last
        elif kind == "f":
            vpn, fault_kind = op[1], op[2]
            index = self._strings.get(fault_kind)
            if index is None:
                self._strings[fault_kind] = len(self._strings)
                encoded = fault_kind.encode("utf-8")
                buf.append(0x0B)
                _append_uvarint(buf, _zigzag(vpn - self._last_vpn))
                _append_uvarint(buf, len(encoded))
                buf += encoded
            else:
                buf.append(0x0C)
                _append_uvarint(buf, _zigzag(vpn - self._last_vpn))
                _append_uvarint(buf, index)
            self._last_vpn = vpn
        else:
            raise TraceFormatError(f"unknown op kind {kind!r}")
        self._count += 1
        if len(buf) >= self._FLUSH_BYTES:
            self._flush()


def encode_body(ops: Iterable[Tuple]) -> Tuple[bytes, int]:
    """Encode ``ops`` to the record-body bytes of a trace file.

    Returns ``(body, count)`` where ``body`` is exactly the span a
    :class:`TraceWriter` would lay down between the header JSON and the
    CRC footer: the records, the 0x00 end tag, and the uvarint op count.
    Because the encoding is canonical (delta cursor and interning tables
    depend only on the op sequence), comparing this against
    ``file_bytes[12 + header_len:-4]`` proves the file records the same
    op stream without decoding it — the fast path of trace verification.

    The record layout is :meth:`_BodyEncoder.encode_op`'s, inlined: this
    runs once per op of every regenerated stream in a verification pass,
    and the per-op method and varint-helper calls were most of its cost.
    Zigzag and the one-byte varint case are open-coded; multi-byte varints
    (rare at real page deltas) fall back to the helper.
    """
    buf = bytearray()
    append = buf.append
    append_uvarint = _append_uvarint
    pack_f64 = _F64.pack
    floats: Dict[float, int] = {}
    strings: Dict[str, int] = {}
    last_vpn = 0
    count = 0
    for op in ops:
        count += 1
        kind = op[0]
        if kind == "t":
            vpn = op[1]
            append(0x04 if op[2] else 0x03)
            delta = vpn - last_vpn
            z = delta << 1 if delta >= 0 else ((-delta) << 1) - 1
            if z < 0x80:
                append(z)
            else:
                append_uvarint(buf, z)
            last_vpn = vpn
        elif kind == "w":
            value = op[1]
            index = floats.get(value)
            if index is None:
                floats[value] = len(floats)
                append(0x01)
                buf += pack_f64(value)
            else:
                append(0x02)
                if index < 0x80:
                    append(index)
                else:
                    append_uvarint(buf, index)
        elif kind == "p" or kind == "r":
            if kind == "p":
                append(0x09)
                tag = op[1]
                if tag < 0x80:
                    append(tag)
                else:
                    append_uvarint(buf, tag)
            else:
                append(0x0A)
                tag = op[1]
                if tag < 0x80:
                    append(tag)
                else:
                    append_uvarint(buf, tag)
                prio = op[3]
                z = prio << 1 if prio >= 0 else ((-prio) << 1) - 1
                if z < 0x80:
                    append(z)
                else:
                    append_uvarint(buf, z)
            vpns = op[2]
            n = len(vpns)
            if n < 0x80:
                append(n)
            else:
                append_uvarint(buf, n)
            for vpn in vpns:
                delta = vpn - last_vpn
                z = delta << 1 if delta >= 0 else ((-delta) << 1) - 1
                if z < 0x80:
                    append(z)
                else:
                    append_uvarint(buf, z)
                last_vpn = vpn
        elif kind == "T":
            start, run, write, secs = op[1], op[2], op[3], op[4]
            index = floats.get(secs)
            append((0x06 if write else 0x05) if index is None
                   else (0x08 if write else 0x07))
            delta = start - last_vpn
            z = delta << 1 if delta >= 0 else ((-delta) << 1) - 1
            if z < 0x80:
                append(z)
            else:
                append_uvarint(buf, z)
            if run < 0x80:
                append(run)
            else:
                append_uvarint(buf, run)
            if index is None:
                floats[secs] = len(floats)
                buf += pack_f64(secs)
            elif index < 0x80:
                append(index)
            else:
                append_uvarint(buf, index)
            last_vpn = start + run - 1
        elif kind == "f":
            vpn, fault_kind = op[1], op[2]
            index = strings.get(fault_kind)
            if index is None:
                strings[fault_kind] = len(strings)
                encoded = fault_kind.encode("utf-8")
                append(0x0B)
                append_uvarint(buf, _zigzag(vpn - last_vpn))
                append_uvarint(buf, len(encoded))
                buf += encoded
            else:
                append(0x0C)
                append_uvarint(buf, _zigzag(vpn - last_vpn))
                append_uvarint(buf, index)
            last_vpn = vpn
        else:
            raise TraceFormatError(f"unknown op kind {kind!r}")
    append(0x00)
    _append_uvarint(buf, count)
    return bytes(buf), count


class TraceWriter(_BodyEncoder):
    """Streaming encoder; lands the file atomically on :meth:`close`.

    Use as a context manager: a clean exit closes (finalizing the footer
    and renaming into place), an exception aborts (removing the temp file
    and leaving any previous file at ``path`` untouched).
    """

    _FLUSH_BYTES = 1 << 16

    def __init__(self, path: os.PathLike, header: TraceHeader) -> None:
        super().__init__()
        self.path = Path(path)
        self.header = header
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.path.parent), prefix=f"{self.path.name}.tmp."
        )
        self._tmp = Path(tmp_name)
        self._file = os.fdopen(fd, "wb")
        self._file.write(MAGIC)
        header_bytes = header.encode()
        prefix = _U32.pack(len(header_bytes)) + header_bytes
        self._file.write(prefix)
        self._crc = zlib.crc32(prefix)
        self._done = False

    def write_op(self, op: Tuple) -> None:
        if self._done:
            raise TraceFormatError(f"writer for {self.path} is closed")
        self.encode_op(op)

    def write_ops(self, ops: Iterable[Tuple]) -> int:
        for op in ops:
            self.write_op(op)
        return self._count

    # -- lifecycle ---------------------------------------------------------
    def _flush(self) -> None:
        if self._buf:
            chunk = bytes(self._buf)
            self._crc = zlib.crc32(chunk, self._crc)
            self._file.write(chunk)
            self._buf.clear()

    @property
    def count(self) -> int:
        return self._count

    def close(self) -> Path:
        """Finalize the footer and atomically rename into place."""
        if self._done:
            return self.path
        footer = bytearray([0x00])
        _append_uvarint(footer, self._count)
        self._buf += footer
        self._flush()
        self._file.write(_U32.pack(self._crc))
        self._file.close()
        os.replace(self._tmp, self.path)
        self._done = True
        return self.path

    def abort(self) -> None:
        """Discard the partial file; ``path`` is left untouched."""
        if self._done:
            return
        self._done = True
        self._file.close()
        self._tmp.unlink(missing_ok=True)

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


def _decode_body(data: bytes, pos: int, strict: bool) -> Tuple[List[Tuple], int]:
    """Decode records from ``pos`` to the end tag; returns (ops, pos_after).

    ``strict`` marks a checksum-valid file: structural damage then means a
    format bug and raises :class:`TraceFormatError`; otherwise damage is
    attributed to the corruption the failed checksum already proved.
    """
    ops: List[Tuple] = []
    append = ops.append
    read_uvarint = _read_uvarint
    floats: List[float] = []
    strings: List[str] = []
    last_vpn = 0
    n = len(data)
    unpack_f64 = _F64.unpack_from
    while True:
        if pos >= n:
            raise TraceTruncatedError("trace ends before the end-of-records tag")
        tag = data[pos]
        pos += 1
        if tag == 0x03 or tag == 0x04:
            delta, pos = read_uvarint(data, pos)
            last_vpn += _unzigzag(delta)
            append(("t", last_vpn, tag == 0x04, 0.0))
        elif tag == 0x02:
            index, pos = read_uvarint(data, pos)
            if index >= len(floats):
                raise TraceFormatError(f"float table index {index} out of range")
            append(("w", floats[index]))
        elif tag == 0x01:
            if pos + 8 > n:
                raise TraceTruncatedError("trace ends inside a float field")
            value = unpack_f64(data, pos)[0]
            pos += 8
            floats.append(value)
            append(("w", value))
        elif 0x05 <= tag <= 0x08:
            delta, pos = read_uvarint(data, pos)
            count, pos = read_uvarint(data, pos)
            if tag <= 0x06:
                if pos + 8 > n:
                    raise TraceTruncatedError("trace ends inside a float field")
                secs = unpack_f64(data, pos)[0]
                pos += 8
                floats.append(secs)
            else:
                index, pos = read_uvarint(data, pos)
                if index >= len(floats):
                    raise TraceFormatError(
                        f"float table index {index} out of range"
                    )
                secs = floats[index]
            start = last_vpn + _unzigzag(delta)
            last_vpn = start + count - 1
            append(("T", start, count, tag in (0x06, 0x08), secs))
        elif tag == 0x09 or tag == 0x0A:
            hint_tag, pos = read_uvarint(data, pos)
            if tag == 0x0A:
                priority, pos = read_uvarint(data, pos)
                priority = _unzigzag(priority)
            count, pos = read_uvarint(data, pos)
            vpns = []
            for _ in range(count):
                delta, pos = read_uvarint(data, pos)
                last_vpn += _unzigzag(delta)
                vpns.append(last_vpn)
            if tag == 0x09:
                append(("p", hint_tag, tuple(vpns)))
            else:
                append(("r", hint_tag, tuple(vpns), priority))
        elif tag == 0x0B or tag == 0x0C:
            delta, pos = read_uvarint(data, pos)
            last_vpn += _unzigzag(delta)
            if tag == 0x0B:
                length, pos = read_uvarint(data, pos)
                if pos + length > n:
                    raise TraceTruncatedError("trace ends inside a string field")
                try:
                    kind = data[pos:pos + length].decode("utf-8")
                except UnicodeDecodeError as exc:
                    raise TraceFormatError(f"bad fault-kind string: {exc}") from exc
                pos += length
                strings.append(kind)
            else:
                index, pos = read_uvarint(data, pos)
                if index >= len(strings):
                    raise TraceFormatError(
                        f"string table index {index} out of range"
                    )
                kind = strings[index]
            append(("f", last_vpn, kind))
        elif tag == 0x00:
            return ops, pos
        else:
            message = f"unknown record tag 0x{tag:02X}"
            raise TraceFormatError(message) if strict else _corrupt(message)


def _corrupt(message: str) -> TraceChecksumError:
    return TraceChecksumError(
        f"trace checksum mismatch ({message}) — the file is corrupt"
    )


# ReplayColumns.kinds values: the op vocabulary as small ints so the replay
# driver dispatches on a bytearray instead of tuple[0] string compares.
K_TOUCH_READ = 0
K_TOUCH_WRITE = 1
K_COMPUTE = 2
K_RUN_READ = 3
K_RUN_WRITE = 4
K_PREFETCH = 5
K_RELEASE = 6
K_FAULT = 7


class ReplayColumns:
    """One trace's op stream as flat integer columns — no per-op tuples.

    ``kinds[i]`` is one of the ``K_*`` codes; the meaning of the argument
    columns depends on it:

    ========== ============== ================== ==================
    kind       arg0           arg1               arg2
    ========== ============== ================== ==================
    touch      vpn            —                  —
    compute    float index    —                  —
    run (T)    start vpn      page count         float index
    prefetch   hint tag       hint_vpns start    hint_vpns end
    release    hint tag       hint_vpns start    hint_vpns end
    fault      vpn            string index       —
    ========== ============== ================== ==================

    Hint page lists live flattened in ``hint_vpns`` (slice with the
    start/end offsets); release priorities sit in ``rel_priorities`` in
    stream order (the replayer keeps its own release cursor).  ``floats``
    and ``strings`` are the interning tables from the file.
    """

    __slots__ = (
        "kinds",
        "arg0",
        "arg1",
        "arg2",
        "floats",
        "strings",
        "hint_vpns",
        "rel_priorities",
    )

    def __init__(self) -> None:
        self.kinds = bytearray()
        self.arg0 = array("q")
        self.arg1 = array("q")
        self.arg2 = array("q")
        self.floats: List[float] = []
        self.strings: List[str] = []
        self.hint_vpns = array("q")
        self.rel_priorities = array("q")

    def __len__(self) -> int:
        return len(self.kinds)


def _decode_body_columns(
    data: bytes, pos: int, strict: bool
) -> Tuple[ReplayColumns, int]:
    """Column-decoding twin of :func:`_decode_body`: same records, same
    structural checks, but lands in :class:`ReplayColumns` arrays instead
    of materialising a tuple per op."""
    cols = ReplayColumns()
    kinds = cols.kinds
    floats = cols.floats
    strings = cols.strings
    hint_vpns = cols.hint_vpns
    append_kind = kinds.append
    append0 = cols.arg0.append
    append1 = cols.arg1.append
    append2 = cols.arg2.append
    append_hint = hint_vpns.append
    read_uvarint = _read_uvarint
    unpack_f64 = _F64.unpack_from
    last_vpn = 0
    n = len(data)
    while True:
        if pos >= n:
            raise TraceTruncatedError("trace ends before the end-of-records tag")
        tag = data[pos]
        pos += 1
        if tag == 0x03 or tag == 0x04:
            delta, pos = read_uvarint(data, pos)
            last_vpn += _unzigzag(delta)
            append_kind(K_TOUCH_WRITE if tag == 0x04 else K_TOUCH_READ)
            append0(last_vpn)
            append1(0)
            append2(0)
        elif tag == 0x02:
            index, pos = read_uvarint(data, pos)
            if index >= len(floats):
                raise TraceFormatError(f"float table index {index} out of range")
            append_kind(K_COMPUTE)
            append0(index)
            append1(0)
            append2(0)
        elif tag == 0x01:
            if pos + 8 > n:
                raise TraceTruncatedError("trace ends inside a float field")
            floats.append(unpack_f64(data, pos)[0])
            pos += 8
            append_kind(K_COMPUTE)
            append0(len(floats) - 1)
            append1(0)
            append2(0)
        elif 0x05 <= tag <= 0x08:
            delta, pos = read_uvarint(data, pos)
            count, pos = read_uvarint(data, pos)
            if tag <= 0x06:
                if pos + 8 > n:
                    raise TraceTruncatedError("trace ends inside a float field")
                floats.append(unpack_f64(data, pos)[0])
                pos += 8
                index = len(floats) - 1
            else:
                index, pos = read_uvarint(data, pos)
                if index >= len(floats):
                    raise TraceFormatError(
                        f"float table index {index} out of range"
                    )
            start = last_vpn + _unzigzag(delta)
            last_vpn = start + count - 1
            append_kind(K_RUN_WRITE if tag in (0x06, 0x08) else K_RUN_READ)
            append0(start)
            append1(count)
            append2(index)
        elif tag == 0x09 or tag == 0x0A:
            hint_tag, pos = read_uvarint(data, pos)
            if tag == 0x0A:
                priority, pos = read_uvarint(data, pos)
                cols.rel_priorities.append(_unzigzag(priority))
            count, pos = read_uvarint(data, pos)
            offset = len(hint_vpns)
            for _ in range(count):
                delta, pos = read_uvarint(data, pos)
                last_vpn += _unzigzag(delta)
                append_hint(last_vpn)
            append_kind(K_PREFETCH if tag == 0x09 else K_RELEASE)
            append0(hint_tag)
            append1(offset)
            append2(offset + count)
        elif tag == 0x0B or tag == 0x0C:
            delta, pos = read_uvarint(data, pos)
            last_vpn += _unzigzag(delta)
            if tag == 0x0B:
                length, pos = read_uvarint(data, pos)
                if pos + length > n:
                    raise TraceTruncatedError("trace ends inside a string field")
                try:
                    kind = data[pos:pos + length].decode("utf-8")
                except UnicodeDecodeError as exc:
                    raise TraceFormatError(f"bad fault-kind string: {exc}") from exc
                pos += length
                strings.append(kind)
                index = len(strings) - 1
            else:
                index, pos = read_uvarint(data, pos)
                if index >= len(strings):
                    raise TraceFormatError(
                        f"string table index {index} out of range"
                    )
            append_kind(K_FAULT)
            append0(last_vpn)
            append1(index)
            append2(0)
        elif tag == 0x00:
            return cols, pos
        else:
            message = f"unknown record tag 0x{tag:02X}"
            raise TraceFormatError(message) if strict else _corrupt(message)


def _decode_with(data: bytes, source: str, decode_records, count_of):
    """Shared validation flow around a record-body decoder.

    Checks magic, CRC, header, declared op count, and trailing bytes with
    identical error semantics for the tuple and column decoders.
    """
    if data[:8] != MAGIC:
        if len(data) < 8 and MAGIC.startswith(data):
            raise TraceTruncatedError(f"{source}: file shorter than the magic")
        raise TraceFormatError(f"{source}: not a repro trace file (bad magic)")
    crc_ok = len(data) >= 17 and _U32.unpack_from(data, len(data) - 4)[
        0
    ] == zlib.crc32(data[8:-4])
    try:
        if len(data) < 12:
            raise TraceTruncatedError("file ends inside the header length")
        header_len = _U32.unpack_from(data, 8)[0]
        header_end = 12 + header_len
        # The last 4 bytes are the CRC; the header may not reach into them.
        if header_end > len(data) - 4:
            raise TraceTruncatedError("file ends inside the header")
        try:
            header_data = json.loads(data[12:header_end].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            if not crc_ok:
                raise _corrupt("unreadable header") from exc
            raise TraceFormatError(f"unreadable trace header: {exc}") from exc
        header = TraceHeader.from_dict(header_data)
        payload, pos = decode_records(data, header_end, crc_ok)
        declared, pos = _read_uvarint(data, pos)
        decoded = count_of(payload)
        if declared != decoded:
            message = f"op count mismatch: footer says {declared}, decoded {decoded}"
            if not crc_ok:
                raise _corrupt(message)
            raise TraceFormatError(message)
        if pos + 4 > len(data):
            raise TraceTruncatedError("file ends inside the checksum")
        if pos + 4 != len(data):
            message = f"{len(data) - pos - 4} trailing bytes after the checksum"
            if not crc_ok:
                raise _corrupt(message)
            raise TraceFormatError(message)
    except TraceError as exc:
        if not crc_ok and not isinstance(exc, TraceChecksumError):
            # The checksum already proved corruption; whatever structural
            # damage the decoder tripped over is a symptom, not the story.
            raise TraceChecksumError(
                f"{source}: trace checksum mismatch ({exc}) — the file is corrupt"
            ) from None
        raise type(exc)(f"{source}: {exc}") from None
    if not crc_ok:
        raise TraceChecksumError(
            f"{source}: trace checksum mismatch — the file is corrupt"
        )
    return header, payload


def decode_trace(data: bytes, source: str = "trace") -> Tuple[TraceHeader, List[Tuple]]:
    """Decode and fully validate one trace from its raw bytes."""
    return _decode_with(data, source, _decode_body, len)


def decode_columns(
    data: bytes, source: str = "trace"
) -> Tuple[TraceHeader, ReplayColumns]:
    """Decode and fully validate one trace straight into flat columns.

    Same validation as :func:`decode_trace` (magic, CRC, structure, op
    count, trailing bytes) but the record stream lands in
    :class:`ReplayColumns` arrays — the object-free replay fast lane's
    input — without building a tuple per op.
    """
    return _decode_with(
        data, source, _decode_body_columns, lambda cols: len(cols.kinds)
    )


def read_trace(path: os.PathLike) -> Tuple[TraceHeader, List[Tuple]]:
    """Read, checksum-validate, and decode one trace file."""
    try:
        data = Path(path).read_bytes()
    except OSError as exc:
        raise TraceError(f"cannot read trace {path}: {exc}") from exc
    return decode_trace(data, source=str(path))


def read_columns(path: os.PathLike) -> Tuple[TraceHeader, ReplayColumns]:
    """Read, checksum-validate, and column-decode one trace file."""
    try:
        data = Path(path).read_bytes()
    except OSError as exc:
        raise TraceError(f"cannot read trace {path}: {exc}") from exc
    return decode_columns(data, source=str(path))


def read_header(path: os.PathLike) -> TraceHeader:
    """Read only the header — cheap, without validating the record body."""
    try:
        with open(path, "rb") as handle:
            prefix = handle.read(12)
            if prefix[:8] != MAGIC:
                if len(prefix) < 8 and MAGIC.startswith(prefix):
                    raise TraceTruncatedError(
                        f"{path}: file shorter than the magic"
                    )
                raise TraceFormatError(
                    f"{path}: not a repro trace file (bad magic)"
                )
            if len(prefix) < 12:
                raise TraceTruncatedError(f"{path}: file ends inside the header length")
            header_len = _U32.unpack_from(prefix, 8)[0]
            header_bytes = handle.read(header_len)
    except OSError as exc:
        raise TraceError(f"cannot read trace {path}: {exc}") from exc
    if len(header_bytes) < header_len:
        raise TraceTruncatedError(f"{path}: file ends inside the header")
    try:
        return TraceHeader.from_dict(json.loads(header_bytes.decode("utf-8")))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TraceFormatError(f"{path}: unreadable trace header: {exc}") from exc


class TraceReader:
    """Eagerly validated reader: construct, then iterate ops.

    The whole file is decoded and checksum-verified up front (traces are a
    few MB), so iteration can never fail halfway through a replay.
    """

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)
        self.header, self._ops = read_trace(path)

    @property
    def ops(self) -> List[Tuple]:
        return self._ops

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self):
        return iter(self._ops)


def write_trace(path: os.PathLike, header: TraceHeader, ops: Iterable[Tuple]) -> int:
    """Encode ``ops`` under ``header`` at ``path``; returns the op count."""
    with TraceWriter(path, header) as writer:
        writer.write_ops(ops)
        return writer.count


def file_digest(path: os.PathLike) -> str:
    """SHA-256 of the file bytes — the trace-content hash specs carry."""
    digest = hashlib.sha256()
    try:
        with open(path, "rb") as handle:
            for chunk in iter(lambda: handle.read(1 << 20), b""):
                digest.update(chunk)
    except OSError as exc:
        raise TraceError(f"cannot read trace {path}: {exc}") from exc
    return digest.hexdigest()
