"""The binary trace format: varint-delta records, JSON header, CRC32 footer.

File layout (all multi-byte integers little-endian)::

    magic     8 bytes   b"RPROTRC1" (bumped with the format version)
    hlen      u32       length of the header JSON
    header    hlen      canonical JSON (TraceHeader.to_dict)
    records   ...       one tag byte + fields per op (see below)
    end       1 byte    0x00
    count     uvarint   number of op records, cross-checked on read
    crc       u32       CRC32 of everything between magic and crc

Records carry the interpreter's op vocabulary.  Page numbers are
zigzag-varint deltas against a single running cursor (the previous vpn
seen anywhere in the stream), which turns the dominant sequential-touch
patterns into one-byte fields.  Compute costs are IEEE doubles interned
in an on-the-fly table — the first occurrence of a value is stored as raw
8 bytes, later occurrences as a varint table index — so floats round-trip
bit-exactly while repeated per-iteration costs cost ~2 bytes.

Tag bytes::

    0x00 end of records
    0x01 ('w', secs)                    new float (8 bytes, registers)
    0x02 ('w', secs)                    float table index
    0x03 ('t', vpn, False, 0.0)         read touch: delta
    0x04 ('t', vpn, True, 0.0)          write touch: delta
    0x05 ('T', start, count, False, s)  batched read run: delta, count, new float
    0x06 ('T', start, count, True, s)   batched write run, new float
    0x07 ('T', start, count, False, s)  batched read run, float index
    0x08 ('T', start, count, True, s)   batched write run, float index
    0x09 ('p', tag, vpns)               prefetch hint: tag, n, n deltas
    0x0A ('r', tag, vpns, priority)     release hint: tag, zigzag prio, n, deltas
    0x0B ('f', vpn, kind)               fault annotation: delta, new kind string
    0x0C ('f', vpn, kind)               fault annotation: delta, kind index

Any damage — truncation, bit flips, structural nonsense — is rejected
with a typed :class:`TraceError`: once the CRC fails, every symptom is
reported as :class:`TraceChecksumError` (carrying the structural detail);
:class:`TraceTruncatedError` / :class:`TraceFormatError` are reserved for
files whose checksum, unusually, still passes (or that end before one
exists).  Writers land files atomically (temp + rename), so a crashed
recorder can never leave a torn trace under the final name.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import tempfile
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "MAGIC",
    "TRACE_FORMAT_VERSION",
    "TraceChecksumError",
    "TraceError",
    "TraceFormatError",
    "TraceHeader",
    "TraceReader",
    "TraceTruncatedError",
    "TraceWriter",
    "file_digest",
    "read_header",
    "read_trace",
    "write_trace",
]

TRACE_FORMAT_VERSION = 1
MAGIC = b"RPROTRC1"

_U32 = struct.Struct("<I")
_F64 = struct.Struct("<d")


class TraceError(Exception):
    """Base class for everything wrong with a trace file."""


class TraceFormatError(TraceError):
    """Not a trace file, an unsupported version, or malformed structure."""


class TraceTruncatedError(TraceError):
    """The file ends before the format says it should."""


class TraceChecksumError(TraceError):
    """The CRC32 footer does not match the bytes on disk."""


@dataclass(frozen=True)
class TraceHeader:
    """Everything needed to replay the op stream as a process.

    ``layout`` is the ordered (segment name, pages) list the recorded
    process mapped — replay maps the same segments in the same order, so
    every vpn in the stream lands on the same array.  ``page_size`` is the
    recording scale's page size (0 when unknown, e.g. imported traces);
    replay refuses a mismatched machine.  ``version`` names the hint
    policy (O/P/R/B) the runtime layer runs with.
    """

    process: str
    workload: str
    version: str
    scale: str
    page_size: int
    layout: Tuple[Tuple[str, int], ...]
    source: str = "record"
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def footprint_pages(self) -> int:
        return sum(pages for _name, pages in self.layout)

    def to_dict(self) -> Dict[str, object]:
        return {
            "format": TRACE_FORMAT_VERSION,
            "process": self.process,
            "workload": self.workload,
            "version": self.version,
            "scale": self.scale,
            "page_size": self.page_size,
            "layout": [[name, pages] for name, pages in self.layout],
            "source": self.source,
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TraceHeader":
        try:
            version = int(data["format"])
            if version != TRACE_FORMAT_VERSION:
                raise TraceFormatError(
                    f"unsupported trace format version {version} "
                    f"(this build reads version {TRACE_FORMAT_VERSION})"
                )
            return cls(
                process=str(data["process"]),
                workload=str(data["workload"]),
                version=str(data["version"]),
                scale=str(data["scale"]),
                page_size=int(data["page_size"]),
                layout=tuple(
                    (str(name), int(pages)) for name, pages in data["layout"]
                ),
                source=str(data.get("source", "record")),
                meta=dict(data.get("meta", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceFormatError(f"malformed trace header: {exc}") from exc

    def encode(self) -> bytes:
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")


def _append_uvarint(buf: bytearray, value: int) -> None:
    while value > 0x7F:
        buf.append((value & 0x7F) | 0x80)
        value >>= 7
    buf.append(value)


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if value < 0 else value << 1


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def _read_uvarint(data: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    n = len(data)
    while True:
        if pos >= n:
            raise TraceTruncatedError("trace ends inside a varint field")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if byte < 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise TraceFormatError("varint field longer than 10 bytes")


class TraceWriter:
    """Streaming encoder; lands the file atomically on :meth:`close`.

    Use as a context manager: a clean exit closes (finalizing the footer
    and renaming into place), an exception aborts (removing the temp file
    and leaving any previous file at ``path`` untouched).
    """

    _FLUSH_BYTES = 1 << 16

    def __init__(self, path: os.PathLike, header: TraceHeader) -> None:
        self.path = Path(path)
        self.header = header
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.path.parent), prefix=f"{self.path.name}.tmp."
        )
        self._tmp = Path(tmp_name)
        self._file = os.fdopen(fd, "wb")
        self._file.write(MAGIC)
        header_bytes = header.encode()
        prefix = _U32.pack(len(header_bytes)) + header_bytes
        self._file.write(prefix)
        self._crc = zlib.crc32(prefix)
        self._buf = bytearray()
        self._count = 0
        self._last_vpn = 0
        self._floats: Dict[float, int] = {}
        self._strings: Dict[str, int] = {}
        self._done = False

    # -- encoding ----------------------------------------------------------
    def _float_field(self, buf: bytearray, value: float) -> bool:
        """Append the float as a table ref if known; returns True when the
        value is new (caller must use a new-float tag and append 8 bytes)."""
        index = self._floats.get(value)
        if index is None:
            self._floats[value] = len(self._floats)
            buf += _F64.pack(value)
            return True
        _append_uvarint(buf, index)
        return False

    def write_op(self, op: Tuple) -> None:
        if self._done:
            raise TraceFormatError(f"writer for {self.path} is closed")
        buf = self._buf
        kind = op[0]
        if kind == "t":
            vpn = op[1]
            buf.append(0x04 if op[2] else 0x03)
            _append_uvarint(buf, _zigzag(vpn - self._last_vpn))
            self._last_vpn = vpn
        elif kind == "w":
            value = op[1]
            index = self._floats.get(value)
            if index is None:
                self._floats[value] = len(self._floats)
                buf.append(0x01)
                buf += _F64.pack(value)
            else:
                buf.append(0x02)
                _append_uvarint(buf, index)
        elif kind == "T":
            start, count, write, secs = op[1], op[2], op[3], op[4]
            index = self._floats.get(secs)
            if index is None:
                buf.append(0x06 if write else 0x05)
            else:
                buf.append(0x08 if write else 0x07)
            _append_uvarint(buf, _zigzag(start - self._last_vpn))
            _append_uvarint(buf, count)
            if index is None:
                self._floats[secs] = len(self._floats)
                buf += _F64.pack(secs)
            else:
                _append_uvarint(buf, index)
            self._last_vpn = start + count - 1
        elif kind == "p" or kind == "r":
            if kind == "p":
                buf.append(0x09)
                _append_uvarint(buf, op[1])
                vpns = op[2]
            else:
                buf.append(0x0A)
                _append_uvarint(buf, op[1])
                _append_uvarint(buf, _zigzag(op[3]))
                vpns = op[2]
            _append_uvarint(buf, len(vpns))
            last = self._last_vpn
            for vpn in vpns:
                _append_uvarint(buf, _zigzag(vpn - last))
                last = vpn
            self._last_vpn = last
        elif kind == "f":
            vpn, fault_kind = op[1], op[2]
            index = self._strings.get(fault_kind)
            if index is None:
                self._strings[fault_kind] = len(self._strings)
                encoded = fault_kind.encode("utf-8")
                buf.append(0x0B)
                _append_uvarint(buf, _zigzag(vpn - self._last_vpn))
                _append_uvarint(buf, len(encoded))
                buf += encoded
            else:
                buf.append(0x0C)
                _append_uvarint(buf, _zigzag(vpn - self._last_vpn))
                _append_uvarint(buf, index)
            self._last_vpn = vpn
        else:
            raise TraceFormatError(f"unknown op kind {kind!r}")
        self._count += 1
        if len(buf) >= self._FLUSH_BYTES:
            self._flush()

    def write_ops(self, ops: Iterable[Tuple]) -> int:
        for op in ops:
            self.write_op(op)
        return self._count

    # -- lifecycle ---------------------------------------------------------
    def _flush(self) -> None:
        if self._buf:
            chunk = bytes(self._buf)
            self._crc = zlib.crc32(chunk, self._crc)
            self._file.write(chunk)
            self._buf.clear()

    @property
    def count(self) -> int:
        return self._count

    def close(self) -> Path:
        """Finalize the footer and atomically rename into place."""
        if self._done:
            return self.path
        footer = bytearray([0x00])
        _append_uvarint(footer, self._count)
        self._buf += footer
        self._flush()
        self._file.write(_U32.pack(self._crc))
        self._file.close()
        os.replace(self._tmp, self.path)
        self._done = True
        return self.path

    def abort(self) -> None:
        """Discard the partial file; ``path`` is left untouched."""
        if self._done:
            return
        self._done = True
        self._file.close()
        self._tmp.unlink(missing_ok=True)

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


def _decode_body(data: bytes, pos: int, strict: bool) -> Tuple[List[Tuple], int]:
    """Decode records from ``pos`` to the end tag; returns (ops, pos_after).

    ``strict`` marks a checksum-valid file: structural damage then means a
    format bug and raises :class:`TraceFormatError`; otherwise damage is
    attributed to the corruption the failed checksum already proved.
    """
    ops: List[Tuple] = []
    append = ops.append
    read_uvarint = _read_uvarint
    floats: List[float] = []
    strings: List[str] = []
    last_vpn = 0
    n = len(data)
    unpack_f64 = _F64.unpack_from
    while True:
        if pos >= n:
            raise TraceTruncatedError("trace ends before the end-of-records tag")
        tag = data[pos]
        pos += 1
        if tag == 0x03 or tag == 0x04:
            delta, pos = read_uvarint(data, pos)
            last_vpn += _unzigzag(delta)
            append(("t", last_vpn, tag == 0x04, 0.0))
        elif tag == 0x02:
            index, pos = read_uvarint(data, pos)
            if index >= len(floats):
                raise TraceFormatError(f"float table index {index} out of range")
            append(("w", floats[index]))
        elif tag == 0x01:
            if pos + 8 > n:
                raise TraceTruncatedError("trace ends inside a float field")
            value = unpack_f64(data, pos)[0]
            pos += 8
            floats.append(value)
            append(("w", value))
        elif 0x05 <= tag <= 0x08:
            delta, pos = read_uvarint(data, pos)
            count, pos = read_uvarint(data, pos)
            if tag <= 0x06:
                if pos + 8 > n:
                    raise TraceTruncatedError("trace ends inside a float field")
                secs = unpack_f64(data, pos)[0]
                pos += 8
                floats.append(secs)
            else:
                index, pos = read_uvarint(data, pos)
                if index >= len(floats):
                    raise TraceFormatError(
                        f"float table index {index} out of range"
                    )
                secs = floats[index]
            start = last_vpn + _unzigzag(delta)
            last_vpn = start + count - 1
            append(("T", start, count, tag in (0x06, 0x08), secs))
        elif tag == 0x09 or tag == 0x0A:
            hint_tag, pos = read_uvarint(data, pos)
            if tag == 0x0A:
                priority, pos = read_uvarint(data, pos)
                priority = _unzigzag(priority)
            count, pos = read_uvarint(data, pos)
            vpns = []
            for _ in range(count):
                delta, pos = read_uvarint(data, pos)
                last_vpn += _unzigzag(delta)
                vpns.append(last_vpn)
            if tag == 0x09:
                append(("p", hint_tag, tuple(vpns)))
            else:
                append(("r", hint_tag, tuple(vpns), priority))
        elif tag == 0x0B or tag == 0x0C:
            delta, pos = read_uvarint(data, pos)
            last_vpn += _unzigzag(delta)
            if tag == 0x0B:
                length, pos = read_uvarint(data, pos)
                if pos + length > n:
                    raise TraceTruncatedError("trace ends inside a string field")
                try:
                    kind = data[pos:pos + length].decode("utf-8")
                except UnicodeDecodeError as exc:
                    raise TraceFormatError(f"bad fault-kind string: {exc}") from exc
                pos += length
                strings.append(kind)
            else:
                index, pos = read_uvarint(data, pos)
                if index >= len(strings):
                    raise TraceFormatError(
                        f"string table index {index} out of range"
                    )
                kind = strings[index]
            append(("f", last_vpn, kind))
        elif tag == 0x00:
            return ops, pos
        else:
            message = f"unknown record tag 0x{tag:02X}"
            raise TraceFormatError(message) if strict else _corrupt(message)


def _corrupt(message: str) -> TraceChecksumError:
    return TraceChecksumError(
        f"trace checksum mismatch ({message}) — the file is corrupt"
    )


def decode_trace(data: bytes, source: str = "trace") -> Tuple[TraceHeader, List[Tuple]]:
    """Decode and fully validate one trace from its raw bytes."""
    if data[:8] != MAGIC:
        if len(data) < 8 and MAGIC.startswith(data):
            raise TraceTruncatedError(f"{source}: file shorter than the magic")
        raise TraceFormatError(f"{source}: not a repro trace file (bad magic)")
    crc_ok = len(data) >= 17 and _U32.unpack_from(data, len(data) - 4)[
        0
    ] == zlib.crc32(data[8:-4])
    try:
        if len(data) < 12:
            raise TraceTruncatedError("file ends inside the header length")
        header_len = _U32.unpack_from(data, 8)[0]
        header_end = 12 + header_len
        # The last 4 bytes are the CRC; the header may not reach into them.
        if header_end > len(data) - 4:
            raise TraceTruncatedError("file ends inside the header")
        try:
            header_data = json.loads(data[12:header_end].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            if not crc_ok:
                raise _corrupt("unreadable header") from exc
            raise TraceFormatError(f"unreadable trace header: {exc}") from exc
        header = TraceHeader.from_dict(header_data)
        ops, pos = _decode_body(data, header_end, strict=crc_ok)
        declared, pos = _read_uvarint(data, pos)
        if declared != len(ops):
            message = f"op count mismatch: footer says {declared}, decoded {len(ops)}"
            if not crc_ok:
                raise _corrupt(message)
            raise TraceFormatError(message)
        if pos + 4 > len(data):
            raise TraceTruncatedError("file ends inside the checksum")
        if pos + 4 != len(data):
            message = f"{len(data) - pos - 4} trailing bytes after the checksum"
            if not crc_ok:
                raise _corrupt(message)
            raise TraceFormatError(message)
    except TraceError as exc:
        if not crc_ok and not isinstance(exc, TraceChecksumError):
            # The checksum already proved corruption; whatever structural
            # damage the decoder tripped over is a symptom, not the story.
            raise TraceChecksumError(
                f"{source}: trace checksum mismatch ({exc}) — the file is corrupt"
            ) from None
        raise type(exc)(f"{source}: {exc}") from None
    if not crc_ok:
        raise TraceChecksumError(
            f"{source}: trace checksum mismatch — the file is corrupt"
        )
    return header, ops


def read_trace(path: os.PathLike) -> Tuple[TraceHeader, List[Tuple]]:
    """Read, checksum-validate, and decode one trace file."""
    try:
        data = Path(path).read_bytes()
    except OSError as exc:
        raise TraceError(f"cannot read trace {path}: {exc}") from exc
    return decode_trace(data, source=str(path))


def read_header(path: os.PathLike) -> TraceHeader:
    """Read only the header — cheap, without validating the record body."""
    try:
        with open(path, "rb") as handle:
            prefix = handle.read(12)
            if prefix[:8] != MAGIC:
                if len(prefix) < 8 and MAGIC.startswith(prefix):
                    raise TraceTruncatedError(
                        f"{path}: file shorter than the magic"
                    )
                raise TraceFormatError(
                    f"{path}: not a repro trace file (bad magic)"
                )
            if len(prefix) < 12:
                raise TraceTruncatedError(f"{path}: file ends inside the header length")
            header_len = _U32.unpack_from(prefix, 8)[0]
            header_bytes = handle.read(header_len)
    except OSError as exc:
        raise TraceError(f"cannot read trace {path}: {exc}") from exc
    if len(header_bytes) < header_len:
        raise TraceTruncatedError(f"{path}: file ends inside the header")
    try:
        return TraceHeader.from_dict(json.loads(header_bytes.decode("utf-8")))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TraceFormatError(f"{path}: unreadable trace header: {exc}") from exc


class TraceReader:
    """Eagerly validated reader: construct, then iterate ops.

    The whole file is decoded and checksum-verified up front (traces are a
    few MB), so iteration can never fail halfway through a replay.
    """

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)
        self.header, self._ops = read_trace(path)

    @property
    def ops(self) -> List[Tuple]:
        return self._ops

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self):
        return iter(self._ops)


def write_trace(path: os.PathLike, header: TraceHeader, ops: Iterable[Tuple]) -> int:
    """Encode ``ops`` under ``header`` at ``path``; returns the op count."""
    with TraceWriter(path, header) as writer:
        writer.write_ops(ops)
        return writer.count


def file_digest(path: os.PathLike) -> str:
    """SHA-256 of the file bytes — the trace-content hash specs carry."""
    digest = hashlib.sha256()
    try:
        with open(path, "rb") as handle:
            for chunk in iter(lambda: handle.read(1 << 20), b""):
                digest.update(chunk)
    except OSError as exc:
        raise TraceError(f"cannot read trace {path}: {exc}") from exc
    return digest.hexdigest()
