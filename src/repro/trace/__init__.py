"""repro.trace — deterministic op-stream traces: capture, replay, import.

The interpreter's op stream (page touches, run-length touch batches,
compute charges, prefetch/release hints) is deterministic given a workload,
version, and scale — and it is independent of machine state, which is what
makes a recorded stream exactly replayable.  This package gives that
stream a durable form:

- :mod:`repro.trace.format` — the compact, versioned, checksummed binary
  trace format with streaming :class:`TraceWriter`/:class:`TraceReader`;
- :mod:`repro.trace.record` — :class:`TraceCaptureSink`, an obs-bus sink
  that captures a process's full op stream during any run;
- :mod:`repro.trace.workload` — :class:`TraceWorkload`, which replays a
  trace file as a first-class process in an experiment mix;
- :mod:`repro.trace.analyze` — op-for-op diff (the golden-equivalence
  machinery generalized to files) and footprint/locality stats;
- :mod:`repro.trace.importer` — a simple external text format so non-NAS
  traces become runnable workloads.

``repro trace record|replay|info|diff|import`` is the CLI front-end.
"""

from repro.trace.analyze import (
    TraceDiff,
    diff_traces,
    format_diff,
    format_info,
    regenerate_ops,
    trace_info,
    verify_against_code,
)
from repro.trace.format import (
    TRACE_FORMAT_VERSION,
    TraceChecksumError,
    TraceError,
    TraceFormatError,
    TraceHeader,
    TraceReader,
    TraceTruncatedError,
    TraceWriter,
    file_digest,
    read_header,
    read_trace,
    write_trace,
)
from repro.trace.importer import TraceImportError, import_text
from repro.trace.record import TraceCaptureSink, record_experiment
from repro.trace.workload import TraceWorkload, replay_driver, trace_process_spec

__all__ = [
    "TRACE_FORMAT_VERSION",
    "TraceCaptureSink",
    "TraceChecksumError",
    "TraceDiff",
    "TraceError",
    "TraceFormatError",
    "TraceHeader",
    "TraceImportError",
    "TraceReader",
    "TraceTruncatedError",
    "TraceWorkload",
    "TraceWriter",
    "diff_traces",
    "file_digest",
    "format_diff",
    "format_info",
    "import_text",
    "read_header",
    "read_trace",
    "record_experiment",
    "regenerate_ops",
    "replay_driver",
    "trace_info",
    "trace_process_spec",
    "verify_against_code",
    "write_trace",
]
