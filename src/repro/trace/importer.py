"""Import external traces from a simple text format.

Non-NAS workloads — an allocator trace, a database scan, a hand-written
stress pattern — become replayable processes through a line-oriented text
format::

    # comments and blank lines are ignored
    !name SCAN            # process/workload label (default: the file stem)
    !version R            # hint policy O/P/R/B (default: B if any hints, else O)
    !page-cost 2e-6       # compute seconds charged per touch (default 1e-6)
    !segment data 4096    # declare segments in layout order (repeatable)
    0 r                   # touch: <vpn> r|w
    1 w prefetch=2,3,4    # hints ride on a touch line ...
    2 r release=0,1@2     # ... release takes an optional @priority (default 1)

Each touch line becomes a ``('w', page_cost)`` charge plus a
``('t', vpn, write, 0.0)`` touch; ``prefetch=`` hints are emitted *before*
the touch (as the compiler schedules them ahead of use) and ``release=``
hints after it.  Hint tags are assigned sequentially per directive, giving
each hint its own runtime-layer filter slot.  Without ``!segment``
directives the layout is one segment covering the highest vpn mentioned.

The importer validates as it parses — every error names its line — and
writes a standard binary trace (``source="import"``, ``page_size=0`` since
the page geometry is whatever the source system had), replayable at any
scale via ``repro trace replay`` or a ``{"trace": …}`` spec entry.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.trace.format import TraceError, TraceHeader, write_trace

__all__ = ["TraceImportError", "import_text"]

_VERSIONS = ("O", "P", "R", "B")


class TraceImportError(TraceError):
    """A text trace that cannot be imported; the message names the line."""


def _parse_vpn_list(text: str, line_no: int) -> Tuple[int, ...]:
    vpns = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            raise TraceImportError(f"line {line_no}: empty vpn in hint list")
        try:
            vpn = int(part)
        except ValueError:
            raise TraceImportError(
                f"line {line_no}: bad vpn {part!r} in hint list"
            ) from None
        if vpn < 0:
            raise TraceImportError(f"line {line_no}: negative vpn {vpn} in hint list")
        vpns.append(vpn)
    return tuple(vpns)


def parse_text(
    lines: Iterable[str], default_name: str
) -> Tuple[TraceHeader, List[Tuple]]:
    """Parse the text format into a (header, ops) pair."""
    name = default_name
    version: Optional[str] = None
    page_cost = 1e-6
    segments: List[Tuple[str, int]] = []
    segment_names: Dict[str, int] = {}
    ops: List[Tuple] = []
    next_tag = 0
    max_vpn = -1
    saw_hints = False
    data_lines = 0
    for line_no, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("!"):
            parts = line[1:].split()
            directive = parts[0].lower() if parts else ""
            if directive == "name" and len(parts) == 2:
                name = parts[1]
            elif directive == "version" and len(parts) == 2:
                version = parts[1].upper()
                if version not in _VERSIONS:
                    raise TraceImportError(
                        f"line {line_no}: unknown version {parts[1]!r} "
                        f"(choose from {', '.join(_VERSIONS)})"
                    )
            elif directive == "page-cost" and len(parts) == 2:
                try:
                    page_cost = float(parts[1])
                except ValueError:
                    raise TraceImportError(
                        f"line {line_no}: bad page cost {parts[1]!r}"
                    ) from None
                if page_cost < 0:
                    raise TraceImportError(
                        f"line {line_no}: negative page cost {page_cost}"
                    )
            elif directive == "segment" and len(parts) == 3:
                segment = parts[1]
                if segment in segment_names:
                    raise TraceImportError(
                        f"line {line_no}: duplicate segment {segment!r}"
                    )
                try:
                    pages = int(parts[2])
                except ValueError:
                    raise TraceImportError(
                        f"line {line_no}: bad segment size {parts[2]!r}"
                    ) from None
                if pages <= 0:
                    raise TraceImportError(
                        f"line {line_no}: segment {segment!r} needs positive pages"
                    )
                segment_names[segment] = pages
                segments.append((segment, pages))
            else:
                raise TraceImportError(
                    f"line {line_no}: unknown directive {line!r} (expected "
                    "!name, !version, !page-cost, or !segment)"
                )
            continue
        parts = line.split()
        try:
            vpn = int(parts[0])
        except ValueError:
            raise TraceImportError(
                f"line {line_no}: expected a vpn, got {parts[0]!r}"
            ) from None
        if vpn < 0:
            raise TraceImportError(f"line {line_no}: negative vpn {vpn}")
        if len(parts) < 2 or parts[1] not in ("r", "w"):
            raise TraceImportError(
                f"line {line_no}: expected 'r' or 'w' after the vpn"
            )
        write = parts[1] == "w"
        prefetches: List[Tuple] = []
        releases: List[Tuple] = []
        for extra in parts[2:]:
            if extra.startswith("prefetch="):
                vpns = _parse_vpn_list(extra[len("prefetch="):], line_no)
                prefetches.append(("p", next_tag, vpns))
                next_tag += 1
                max_vpn = max(max_vpn, *vpns)
            elif extra.startswith("release="):
                body = extra[len("release="):]
                priority = 1
                if "@" in body:
                    body, _at, priority_text = body.rpartition("@")
                    try:
                        priority = int(priority_text)
                    except ValueError:
                        raise TraceImportError(
                            f"line {line_no}: bad release priority "
                            f"{priority_text!r}"
                        ) from None
                    if priority < 1:
                        raise TraceImportError(
                            f"line {line_no}: release priority must be >= 1"
                        )
                vpns = _parse_vpn_list(body, line_no)
                releases.append(("r", next_tag, vpns, priority))
                next_tag += 1
                max_vpn = max(max_vpn, *vpns)
            else:
                raise TraceImportError(
                    f"line {line_no}: unknown field {extra!r} (expected "
                    "prefetch=... or release=...)"
                )
        saw_hints = saw_hints or bool(prefetches or releases)
        ops.extend(prefetches)
        ops.append(("w", page_cost))
        ops.append(("t", vpn, write, 0.0))
        ops.extend(releases)
        max_vpn = max(max_vpn, vpn)
        data_lines += 1
    if data_lines == 0:
        raise TraceImportError("no touch lines found — nothing to import")
    if not segments:
        segments = [("data", max_vpn + 1)]
    else:
        declared = sum(pages for _name, pages in segments)
        if max_vpn >= declared:
            raise TraceImportError(
                f"vpn {max_vpn} is outside the declared layout "
                f"({declared} pages across {len(segments)} segments)"
            )
    if version is None:
        version = "B" if saw_hints else "O"
    header = TraceHeader(
        process=name,
        workload=name,
        version=version,
        scale="imported",
        page_size=0,
        layout=tuple(segments),
        source="import",
    )
    return header, ops


def import_text(
    source: os.PathLike, out: os.PathLike, name: Optional[str] = None
) -> Tuple[TraceHeader, Path, int]:
    """Convert a text trace file into a binary trace at ``out``.

    Returns ``(header, path, op_count)``.
    """
    source_path = Path(source)
    try:
        text = source_path.read_text(encoding="utf-8")
    except OSError as exc:
        raise TraceImportError(f"cannot read {source_path}: {exc}") from exc
    header, ops = parse_text(
        text.splitlines(), name if name is not None else source_path.stem
    )
    count = write_trace(out, header, ops)
    return header, Path(out), count
