"""Replay a trace file as a first-class simulated process.

:class:`TraceWorkload` wraps one trace file; ``trace_process_spec`` (or
``TraceWorkload.process_spec``) turns it into a
:class:`~repro.machine.WorkloadProcessSpec` that schedules in an
:class:`~repro.machine.ExperimentSpec` mix exactly like a compiled
benchmark — the machine maps the recorded segment layout, attaches the
recorded hint policy's runtime layer, and drives :func:`replay_driver`
over the decoded ops.

Because the op stream is independent of machine state, replaying a trace
alongside the same co-processes reproduces the live run's results
byte-for-byte while skipping the compiler pass and the interpreter.
Decoded op lists are memoized process-wide under the trace's content
digest, so a mix replaying one trace many times (or a bench repeat loop)
decodes it once.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from pathlib import Path
from typing import List, Optional, Tuple

from repro.trace.format import (
    K_COMPUTE,
    K_PREFETCH,
    K_RELEASE,
    K_RUN_WRITE,
    K_TOUCH_WRITE,
    ReplayColumns,
    TraceHeader,
    file_digest,
    read_columns,
    read_header,
    read_trace,
)

__all__ = [
    "TraceWorkload",
    "replay_columns_driver",
    "replay_driver",
    "trace_process_spec",
]

#: Decoded-op cache: trace content digest -> ops list.  Bounded so a long
#: session over many traces cannot hold every stream alive.
_OPS_CACHE: "OrderedDict[str, List[Tuple]]" = OrderedDict()
_OPS_CACHE_LIMIT = 8

#: Column cache for the object-free replay lane, same keying and bound.
_COLUMNS_CACHE: "OrderedDict[str, ReplayColumns]" = OrderedDict()


class TraceWorkload:
    """One trace file, ready to replay.

    Construction reads only the header (cheap); the op body is decoded,
    checksum-validated, and cached on first :meth:`ops` call.
    """

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)
        self.header: TraceHeader = read_header(self.path)
        self._digest: Optional[str] = None

    @property
    def name(self) -> str:
        return self.header.process

    @property
    def digest(self) -> str:
        """SHA-256 of the file — the content hash specs and caches key on."""
        if self._digest is None:
            self._digest = file_digest(self.path)
        return self._digest

    def ops(self) -> List[Tuple]:
        """The decoded op stream (memoized by content digest)."""
        digest = self.digest
        cached = _OPS_CACHE.get(digest)
        if cached is not None:
            _OPS_CACHE.move_to_end(digest)
            return cached
        header, ops = read_trace(self.path)
        self.header = header
        _OPS_CACHE[digest] = ops
        while len(_OPS_CACHE) > _OPS_CACHE_LIMIT:
            _OPS_CACHE.popitem(last=False)
        return ops

    def columns(self) -> ReplayColumns:
        """The op stream as flat columns (memoized by content digest).

        Input for :func:`replay_columns_driver` — same validation as
        :meth:`ops`, no per-op tuples.
        """
        digest = self.digest
        cached = _COLUMNS_CACHE.get(digest)
        if cached is not None:
            _COLUMNS_CACHE.move_to_end(digest)
            return cached
        header, cols = read_columns(self.path)
        self.header = header
        _COLUMNS_CACHE[digest] = cols
        while len(_COLUMNS_CACHE) > _OPS_CACHE_LIMIT:
            _COLUMNS_CACHE.popitem(last=False)
        return cols

    def process_spec(self, start_offset_s: float = 0.0, name: Optional[str] = None):
        """A :class:`~repro.machine.WorkloadProcessSpec` replaying this trace."""
        from repro.machine import TRACE, WorkloadProcessSpec

        return WorkloadProcessSpec(
            workload=TRACE,
            start_offset_s=start_offset_s,
            name=name,
            trace_path=str(self.path),
            trace_digest=self.digest,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceWorkload({self.path}, {self.header.workload}/{self.header.version})"


def trace_process_spec(
    path: os.PathLike, start_offset_s: float = 0.0, name: Optional[str] = None
):
    """Shorthand: a process spec replaying the trace at ``path``."""
    return TraceWorkload(path).process_spec(start_offset_s=start_offset_s, name=name)


def replay_driver(process, runtime, ops, version, scale):
    """Process generator: play a recorded op stream against the kernel.

    This mirrors ``app_driver``'s dispatch exactly — same touch calls, same
    quantum-flush boundaries, same batched-run resume logic — which is what
    makes replayed metrics byte-identical to the live run's.  Fault
    annotations (``'f'`` ops) are documentation, not commands: faults
    re-emerge from the simulation itself, so they are skipped here.
    """
    machine = scale.machine
    quantum = scale.time_quantum_s
    touch = process.touch
    charge = process.charge
    handle_prefetch = runtime.handle_prefetch
    handle_release = runtime.handle_release
    touch_fast = process.kernel.vm.touch_fast
    aspace = process.aspace
    resident_touch_s = machine.resident_touch_s
    obs = process.kernel.obs
    if obs is not None and obs.wants("trace.op"):
        from repro.workloads.base import observed_ops

        ops = observed_ops(obs, process.name, ops)
    nops = 0
    for op in ops:
        nops += 1
        kind = op[0]
        if kind == "t":
            fault = touch(op[1], op[2])
            if fault is not None:
                yield from fault
            elif process.pending_user >= quantum:
                yield from process.flush()
        elif kind == "w":
            charge(op[1])
            if process.pending_user >= quantum:
                yield from process.flush()
        elif kind == "T":
            vpn = op[1]
            end = vpn + op[2]
            write = op[3]
            secs_per_page = op[4]
            pending = process.pending_user
            while vpn < end:
                pending += secs_per_page
                if pending >= quantum:
                    process.pending_user = pending
                    yield from process.flush()
                    pending = 0.0
                if touch_fast(aspace, vpn, write):
                    pending += resident_touch_s
                    if pending >= quantum:
                        process.pending_user = pending
                        yield from process.flush()
                        pending = 0.0
                else:
                    process.pending_user = pending
                    yield from process._fault(vpn, write)
                    pending = process.pending_user
                vpn += 1
            process.pending_user = pending
        elif kind == "p":
            handle_prefetch(op[1], op[2])
        elif kind == "r":
            handle_release(op[1], op[2], op[3])
        # 'f': fault annotation, replay ignores it.
    from repro.vm import fastlane

    fastlane.COUNTERS["ops"] += nops
    if version.release:
        runtime.flush_tag_filters()
    yield from process.flush()


def replay_columns_driver(process, runtime, cols: ReplayColumns, version, scale):
    """Object-free twin of :func:`replay_driver` over decoded columns.

    Dispatches on the ``kinds`` bytearray and reads arguments out of flat
    int columns — no per-op tuple is ever built.  The loop body mirrors
    ``app_driver``'s optimized stream (inlined touch hit test, local
    ``pending`` mirror, ``run_touches`` for batched runs), whose event
    stream is add-for-add identical to the per-op ``replay_driver``, so
    replayed results stay byte-identical whichever lane runs.

    The machine selects this driver only when no ``trace.op`` observer is
    attached (observers are owed tuple-shaped ops) — see
    ``Machine._prepare_trace``.
    """
    from repro.vm import fastlane
    from repro.vm.frames import F_DIRTY, F_IN_TRANSIT, F_REFERENCED, F_SW_VALID

    machine = scale.machine
    quantum = scale.time_quantum_s
    handle_prefetch = runtime.handle_prefetch
    handle_release = runtime.handle_release
    run_touches = process.run_touches
    aspace = process.aspace
    pt = aspace.pt
    task = process.task
    buckets = task.buckets
    timeout = process.engine.timeout
    vm_fault = process.kernel.vm.fault
    flags = process.kernel.vm._flags
    in_mask = F_SW_VALID | F_IN_TRANSIT
    bits_read = F_REFERENCED
    bits_write = F_REFERENCED | F_DIRTY
    resident_touch_s = machine.resident_touch_s
    kinds = cols.kinds
    arg0 = cols.arg0
    arg1 = cols.arg1
    arg2 = cols.arg2
    floats = cols.floats
    hint_vpns = cols.hint_vpns
    rel_priorities = cols.rel_priorities
    rel_cursor = 0
    pending = process.pending_user
    npt = len(pt)
    for i in range(len(kinds)):
        kind = kinds[i]
        if kind <= K_TOUCH_WRITE:
            vpn = arg0[i]
            index = pt[vpn] if vpn < npt else -1
            if index >= 0 and flags[index] & in_mask == F_SW_VALID:
                flags[index] |= bits_write if kind else bits_read
                pending += resident_touch_s
                if pending >= quantum:
                    # process.flush() inlined (quantum > 0, so pending > 0).
                    yield timeout(pending)
                    buckets.user += pending
                    pending = 0.0
            else:
                # process._fault inlined: flush, then the kernel fault path.
                process.pending_user = 0.0
                if pending > 0:
                    yield timeout(pending)
                    buckets.user += pending
                yield from vm_fault(task, aspace, vpn, kind == K_TOUCH_WRITE)
                pending = 0.0
                npt = len(pt)
        elif kind == K_COMPUTE:
            pending += floats[arg0[i]]
            if pending >= quantum:
                yield timeout(pending)
                buckets.user += pending
                pending = 0.0
        elif kind <= K_RUN_WRITE:
            process.pending_user = pending
            yield from run_touches(
                arg0[i], arg1[i], kind == K_RUN_WRITE, floats[arg2[i]]
            )
            pending = process.pending_user
            npt = len(pt)
        elif kind == K_PREFETCH:
            process.pending_user = pending
            handle_prefetch(arg0[i], hint_vpns[arg1[i]:arg2[i]])
            pending = process.pending_user
        elif kind == K_RELEASE:
            process.pending_user = pending
            handle_release(
                arg0[i], hint_vpns[arg1[i]:arg2[i]], rel_priorities[rel_cursor]
            )
            rel_cursor += 1
            pending = process.pending_user
        # K_FAULT: annotation only; faults re-emerge from the simulation.
    process.pending_user = pending
    fastlane.COUNTERS["ops"] += len(kinds)
    if version.release:
        runtime.flush_tag_filters()
    yield from process.flush()
