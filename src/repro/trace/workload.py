"""Replay a trace file as a first-class simulated process.

:class:`TraceWorkload` wraps one trace file; ``trace_process_spec`` (or
``TraceWorkload.process_spec``) turns it into a
:class:`~repro.machine.WorkloadProcessSpec` that schedules in an
:class:`~repro.machine.ExperimentSpec` mix exactly like a compiled
benchmark — the machine maps the recorded segment layout, attaches the
recorded hint policy's runtime layer, and drives :func:`replay_driver`
over the decoded ops.

Because the op stream is independent of machine state, replaying a trace
alongside the same co-processes reproduces the live run's results
byte-for-byte while skipping the compiler pass and the interpreter.
Decoded op lists are memoized process-wide under the trace's content
digest, so a mix replaying one trace many times (or a bench repeat loop)
decodes it once.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from pathlib import Path
from typing import List, Optional, Tuple

from repro.trace.format import TraceHeader, file_digest, read_header, read_trace

__all__ = ["TraceWorkload", "replay_driver", "trace_process_spec"]

#: Decoded-op cache: trace content digest -> ops list.  Bounded so a long
#: session over many traces cannot hold every stream alive.
_OPS_CACHE: "OrderedDict[str, List[Tuple]]" = OrderedDict()
_OPS_CACHE_LIMIT = 8


class TraceWorkload:
    """One trace file, ready to replay.

    Construction reads only the header (cheap); the op body is decoded,
    checksum-validated, and cached on first :meth:`ops` call.
    """

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)
        self.header: TraceHeader = read_header(self.path)
        self._digest: Optional[str] = None

    @property
    def name(self) -> str:
        return self.header.process

    @property
    def digest(self) -> str:
        """SHA-256 of the file — the content hash specs and caches key on."""
        if self._digest is None:
            self._digest = file_digest(self.path)
        return self._digest

    def ops(self) -> List[Tuple]:
        """The decoded op stream (memoized by content digest)."""
        digest = self.digest
        cached = _OPS_CACHE.get(digest)
        if cached is not None:
            _OPS_CACHE.move_to_end(digest)
            return cached
        header, ops = read_trace(self.path)
        self.header = header
        _OPS_CACHE[digest] = ops
        while len(_OPS_CACHE) > _OPS_CACHE_LIMIT:
            _OPS_CACHE.popitem(last=False)
        return ops

    def process_spec(self, start_offset_s: float = 0.0, name: Optional[str] = None):
        """A :class:`~repro.machine.WorkloadProcessSpec` replaying this trace."""
        from repro.machine import TRACE, WorkloadProcessSpec

        return WorkloadProcessSpec(
            workload=TRACE,
            start_offset_s=start_offset_s,
            name=name,
            trace_path=str(self.path),
            trace_digest=self.digest,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceWorkload({self.path}, {self.header.workload}/{self.header.version})"


def trace_process_spec(
    path: os.PathLike, start_offset_s: float = 0.0, name: Optional[str] = None
):
    """Shorthand: a process spec replaying the trace at ``path``."""
    return TraceWorkload(path).process_spec(start_offset_s=start_offset_s, name=name)


def replay_driver(process, runtime, ops, version, scale):
    """Process generator: play a recorded op stream against the kernel.

    This mirrors ``app_driver``'s dispatch exactly — same touch calls, same
    quantum-flush boundaries, same batched-run resume logic — which is what
    makes replayed metrics byte-identical to the live run's.  Fault
    annotations (``'f'`` ops) are documentation, not commands: faults
    re-emerge from the simulation itself, so they are skipped here.
    """
    machine = scale.machine
    quantum = scale.time_quantum_s
    touch = process.touch
    charge = process.charge
    handle_prefetch = runtime.handle_prefetch
    handle_release = runtime.handle_release
    touch_fast = process.kernel.vm.touch_fast
    aspace = process.aspace
    resident_touch_s = machine.resident_touch_s
    obs = process.kernel.obs
    if obs is not None and obs.wants("trace.op"):
        from repro.workloads.base import observed_ops

        ops = observed_ops(obs, process.name, ops)
    for op in ops:
        kind = op[0]
        if kind == "t":
            fault = touch(op[1], op[2])
            if fault is not None:
                yield from fault
            elif process.pending_user >= quantum:
                yield from process.flush()
        elif kind == "w":
            charge(op[1])
            if process.pending_user >= quantum:
                yield from process.flush()
        elif kind == "T":
            vpn = op[1]
            end = vpn + op[2]
            write = op[3]
            secs_per_page = op[4]
            pending = process.pending_user
            while vpn < end:
                pending += secs_per_page
                if pending >= quantum:
                    process.pending_user = pending
                    yield from process.flush()
                    pending = 0.0
                if touch_fast(aspace, vpn, write):
                    pending += resident_touch_s
                    if pending >= quantum:
                        process.pending_user = pending
                        yield from process.flush()
                        pending = 0.0
                else:
                    process.pending_user = pending
                    yield from process._fault(vpn, write)
                    pending = process.pending_user
                vpn += 1
            process.pending_user = pending
        elif kind == "p":
            handle_prefetch(op[1], op[2])
        elif kind == "r":
            handle_release(op[1], op[2], op[3])
        # 'f': fault annotation, replay ignores it.
    if version.release:
        runtime.flush_tag_filters()
    yield from process.flush()
