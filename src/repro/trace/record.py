"""Capture a process's op stream through the obs bus, into trace files.

The driver layer emits two event kinds when (and only when) a sink
subscribes to them — the ``Bus.wants`` gate keeps the hot loop free of
any per-op cost otherwise:

- ``trace.spawn`` — one per out-of-core process, as the machine wires it:
  carries everything the trace header needs (name, workload, version,
  scale, page size, the ordered segment layout);
- ``trace.op`` — one per interpreter op as the driver plays it.

:class:`TraceCaptureSink` turns those events into
:class:`~repro.trace.format.TraceWriter` streams, one per captured
process.  Writers stream during the run and land atomically at
:meth:`close`, so an aborted experiment leaves no torn trace behind.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Iterable, Optional, Set

from repro.obs.bus import Sink
from repro.trace.format import TraceError, TraceHeader, TraceWriter

__all__ = ["TraceCaptureSink", "record_experiment"]


class TraceCaptureSink(Sink):
    """Obs-bus sink that writes one trace file per captured process.

    ``out`` is a directory — each captured process lands at
    ``<out>/<process>.trace`` — unless it ends in ``.trace``, which selects
    single-file mode and requires exactly one captured process.
    ``processes`` optionally restricts capture to the named processes;
    ``include_faults`` additionally records the process's resolved page
    faults (``vm.fault`` events) as ``('f', vpn, kind)`` annotations.
    """

    def __init__(
        self,
        out: os.PathLike,
        processes: Optional[Iterable[str]] = None,
        include_faults: bool = False,
    ) -> None:
        self.out = Path(out)
        self.processes: Optional[Set[str]] = (
            set(processes) if processes is not None else None
        )
        self.include_faults = include_faults
        self.kinds = {"trace.spawn", "trace.op"}
        if include_faults:
            self.kinds.add("vm.fault")
        self._single_file = self.out.suffix == ".trace"
        self._writers: Dict[str, TraceWriter] = {}
        self._paths: Dict[str, Path] = {}
        self._closed = False

    def _wanted(self, name: str) -> bool:
        return self.processes is None or name in self.processes

    def on_event(self, time: float, kind: str, payload) -> None:
        if kind == "trace.op":
            writer = self._writers.get(payload["process"])
            if writer is not None:
                writer.write_op(payload["op"])
        elif kind == "trace.spawn":
            name = payload["process"]
            if not self._wanted(name):
                return
            if name in self._writers:
                raise TraceError(
                    f"duplicate trace.spawn for process {name!r}"
                )
            if self._single_file:
                if self._writers:
                    raise TraceError(
                        f"single-file output {self.out} cannot capture a second "
                        f"process ({name!r}); give a directory or --process"
                    )
                path = self.out
            else:
                path = self.out / f"{name}.trace"
            header = TraceHeader(
                process=name,
                workload=payload["workload"],
                version=payload["version"],
                scale=payload["scale"],
                page_size=payload["page_size"],
                layout=tuple(payload["layout"]),
                source="record",
            )
            self._writers[name] = TraceWriter(path, header)
        elif kind == "vm.fault":
            writer = self._writers.get(payload["aspace"])
            if writer is not None:
                writer.write_op(("f", payload["vpn"], payload["kind"]))

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> Dict[str, Path]:
        """Finalize every trace file; returns {process: path}."""
        if not self._closed:
            self._closed = True
            for name, writer in self._writers.items():
                self._paths[name] = writer.close()
        return dict(self._paths)

    def abort(self) -> None:
        """Discard all partial files (the run failed mid-capture)."""
        if self._closed:
            return
        self._closed = True
        for writer in self._writers.values():
            writer.abort()

    @property
    def paths(self) -> Dict[str, Path]:
        return dict(self._paths)


def record_experiment(
    spec,
    out: os.PathLike,
    processes: Optional[Iterable[str]] = None,
    include_faults: bool = False,
    extra_sinks: Iterable[Sink] = (),
):
    """Run ``spec`` while capturing its out-of-core op streams.

    Returns ``(ExperimentResult, {process: trace path})``.  The result is a
    normal live result — capture is passive and does not perturb the
    simulation — so one recording run yields both the golden metrics and
    the trace that replays them.
    """
    from repro.machine import run_experiment

    sink = TraceCaptureSink(out, processes=processes, include_faults=include_faults)
    try:
        result = run_experiment(spec, sinks=(sink, *extra_sinks))
    except BaseException:
        sink.abort()
        raise
    paths = sink.close()
    if not paths:
        wanted = sorted(sink.processes) if sink.processes is not None else None
        raise TraceError(
            "recording captured no process"
            + (f" (no out-of-core process named one of {wanted})" if wanted else
               " (the spec has no out-of-core process)")
        )
    return result, paths
