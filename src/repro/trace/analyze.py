"""Trace analysis: op-for-op diff, code verification, footprint/locality stats.

``diff_traces`` generalizes the golden-equivalence machinery the hot-path
optimizations are pinned by: two traces are equal when their op streams
match element-for-element with floats compared bit-exactly (tuple
equality — no tolerance).  ``--expand`` normalizes run-length ``('T',…)``
batches to their per-page pairs first, so a batched and an unbatched
recording of the same execution compare equal.

``verify_against_code`` is the trace-backed regression check: regenerate
the op stream the trace's workload/version/scale produces under the
*current* compiler and interpreter, and compare it to the recorded stream
— no simulation involved, which is why checking a mix this way is several
times faster than re-executing it (see the ``replay_standard_mix`` bench
case).

``trace_info`` reports what a trace touches: op mix, footprint, write
fraction, hint volume, and stream locality.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.trace.format import TraceHeader, read_trace

__all__ = [
    "TraceDiff",
    "diff_traces",
    "format_diff",
    "format_info",
    "regenerate_ops",
    "trace_info",
    "verify_against_code",
    "verify_bytes_against_code",
]

#: Header fields whose disagreement makes two traces semantically
#: different executions (``source`` and ``meta`` are provenance, not
#: semantics, and stay out of the comparison).
_HEADER_FIELDS = ("process", "workload", "version", "scale", "page_size", "layout")


def _expand(ops: List[Tuple]) -> Iterator[Tuple]:
    """Expand ``('T',…)`` runs into their per-page ('w','t') pairs."""
    for op in ops:
        if op[0] == "T":
            _kind, start, count, write, secs = op
            for i in range(count):
                yield ("w", secs)
                yield ("t", start + i, write, 0.0)
        else:
            yield op


@dataclass
class TraceDiff:
    """The outcome of comparing two traces op-for-op."""

    path_a: str
    path_b: str
    count_a: int
    count_b: int
    ops_equal: bool
    #: (index, op from a or None, op from b or None) of the first
    #: disagreement; None when the streams match.
    first_mismatch: Optional[Tuple[int, Optional[Tuple], Optional[Tuple]]] = None
    header_mismatches: List[str] = field(default_factory=list)

    @property
    def equal(self) -> bool:
        return self.ops_equal and not self.header_mismatches


def _first_mismatch(ops_a: List[Tuple], ops_b: List[Tuple]):
    for index, (a, b) in enumerate(zip(ops_a, ops_b)):
        if a != b:
            return index, a, b
    index = min(len(ops_a), len(ops_b))
    return (
        index,
        ops_a[index] if index < len(ops_a) else None,
        ops_b[index] if index < len(ops_b) else None,
    )


def diff_ops(ops_a, ops_b, expand: bool = False, include_faults: bool = False):
    """Core comparison; returns ``(equal, first_mismatch_or_None)``.

    Fault annotations are provenance (they depend on the machine the
    recording ran against, not on the program), so they are stripped
    unless ``include_faults`` asks for them.
    """
    if not include_faults:
        ops_a = [op for op in ops_a if op[0] != "f"]
        ops_b = [op for op in ops_b if op[0] != "f"]
    if expand:
        ops_a = list(_expand(ops_a))
        ops_b = list(_expand(ops_b))
    if ops_a == ops_b:
        return True, None, len(ops_a), len(ops_b)
    return False, _first_mismatch(ops_a, ops_b), len(ops_a), len(ops_b)


def diff_traces(
    path_a: os.PathLike,
    path_b: os.PathLike,
    expand: bool = False,
    include_faults: bool = False,
) -> TraceDiff:
    """Compare two trace files op-for-op (and header-for-header)."""
    header_a, ops_a = read_trace(path_a)
    header_b, ops_b = read_trace(path_b)
    header_mismatches = []
    for name in _HEADER_FIELDS:
        value_a = getattr(header_a, name)
        value_b = getattr(header_b, name)
        if value_a != value_b:
            header_mismatches.append(f"{name}: {value_a!r} != {value_b!r}")
    equal, mismatch, count_a, count_b = diff_ops(
        ops_a, ops_b, expand=expand, include_faults=include_faults
    )
    return TraceDiff(
        path_a=str(path_a),
        path_b=str(path_b),
        count_a=count_a,
        count_b=count_b,
        ops_equal=equal,
        first_mismatch=mismatch,
        header_mismatches=header_mismatches,
    )


def format_diff(diff: TraceDiff) -> str:
    lines = [f"a: {diff.path_a} ({diff.count_a} ops)", f"b: {diff.path_b} ({diff.count_b} ops)"]
    for mismatch in diff.header_mismatches:
        lines.append(f"header differs — {mismatch}")
    if diff.ops_equal:
        lines.append("op streams are identical")
    else:
        index, op_a, op_b = diff.first_mismatch
        lines.append(f"op streams differ at index {index}:")
        lines.append(f"  a[{index}] = {op_a!r}")
        lines.append(f"  b[{index}] = {op_b!r}")
    return "\n".join(lines)


# -- regeneration against the current code ----------------------------------
def regenerate_ops(header: TraceHeader) -> Iterator[Tuple]:
    """The op stream the trace's workload should produce under current code.

    Rebuilds the workload named by the header at the header's scale and
    walks every repeat × invocation through the interpreter — exactly the
    stream ``app_driver`` plays and the recorder captured.  Only works for
    built-in workloads at preset scales; imported traces have no generator
    to regenerate from.
    """
    # Local imports: this module is loaded while the workloads package
    # initializes (workloads -> trace -> analyze), so the reverse imports
    # must wait until call time.
    from repro.config import paper, small, tiny
    from repro.core.compiler.interp import nest_ops
    from repro.core.runtime.policies import VERSIONS
    from repro.trace.format import TraceError
    from repro.workloads.suite import BENCHMARKS

    scales = {"tiny": tiny, "small": small, "paper": paper}
    if header.scale not in scales:
        raise TraceError(
            f"cannot regenerate ops for scale {header.scale!r} "
            f"(not a preset scale; was this trace imported?)"
        )
    workload = BENCHMARKS.get(header.workload.upper())
    if workload is None:
        raise TraceError(
            f"cannot regenerate ops for workload {header.workload!r} "
            f"(not a built-in benchmark; was this trace imported?)"
        )
    version = VERSIONS[header.version]
    scale = scales[header.scale]()
    machine = scale.machine
    instance = workload.build(scale)
    compiled = instance.compiled(scale)
    layout: Dict[str, int] = {}
    start = 0
    for array in instance.program.arrays:
        layout[array.name] = start
        start += array.pages(instance.env, machine.page_size)
    for _rep in range(instance.repeats):
        for nest_name, overrides in instance.invocations:
            if overrides:
                env = dict(instance.env)
                env.update(overrides)
            else:
                env = instance.env
            yield from nest_ops(
                compiled.nests[nest_name],
                env,
                layout,
                machine,
                rng_seed=instance.rng_seed,
                emit_prefetch=version.prefetch,
                emit_release=version.release,
            )


def verify_against_code(path: os.PathLike) -> Dict[str, object]:
    """Check a recorded trace against the current compiler + interpreter.

    Decodes the trace and regenerates its op stream from source, then
    compares op-for-op (bit-exact floats).  Returns a summary dict with
    ``equal`` plus the first mismatch when there is one.  This is the
    no-simulation regression check: it proves the hint pipeline still
    produces the recorded stream without re-running the machine.
    """
    header, recorded = read_trace(path)
    regenerated = list(regenerate_ops(header))
    equal, mismatch, count_a, count_b = diff_ops(recorded, regenerated)
    summary: Dict[str, object] = {
        "path": str(path),
        "workload": header.workload,
        "version": header.version,
        "scale": header.scale,
        "recorded_ops": count_a,
        "regenerated_ops": count_b,
        "equal": equal,
    }
    if mismatch is not None:
        index, op_a, op_b = mismatch
        summary["first_mismatch"] = {
            "index": index,
            "recorded": repr(op_a),
            "regenerated": repr(op_b),
        }
    return summary


def verify_bytes_against_code(path: os.PathLike) -> Dict[str, object]:
    """Byte-level fast twin of :func:`verify_against_code`.

    Regenerates the op stream from source and *re-encodes* it, then
    compares the result against the file's record body with one memcmp —
    the recorded stream is never decoded into tuples.  The encoding is
    canonical (the delta cursor and interning tables depend only on the op
    sequence), so byte equality proves op-for-op equality.

    A byte mismatch is not yet a verdict: a trace recorded with fault
    annotations legitimately interleaves ``'f'`` records (which perturb
    the vpn-delta and float-table chains) that regeneration cannot
    produce, so a mismatch falls back to the tuple-level diff, which
    strips annotations before comparing.  Corrupt files take the fallback
    too and raise the same typed errors :func:`verify_against_code` would.
    """
    import json
    import zlib

    from repro.trace.format import MAGIC, TraceError, _U32, encode_body

    try:
        data = Path(path).read_bytes()
    except OSError as exc:
        raise TraceError(f"cannot read trace {path}: {exc}") from exc
    fast_ok = (
        data[:8] == MAGIC
        and len(data) >= 17
        and _U32.unpack_from(data, len(data) - 4)[0] == zlib.crc32(data[8:-4])
    )
    if fast_ok:
        header_len = _U32.unpack_from(data, 8)[0]
        body_start = 12 + header_len
        try:
            header = TraceHeader.from_dict(
                json.loads(data[12:body_start].decode("utf-8"))
            )
        except (UnicodeDecodeError, json.JSONDecodeError):
            header = None
        if header is not None:
            body, count = encode_body(regenerate_ops(header))
            if body == data[body_start:-4]:
                return {
                    "path": str(path),
                    "workload": header.workload,
                    "version": header.version,
                    "scale": header.scale,
                    "recorded_ops": count,
                    "regenerated_ops": count,
                    "equal": True,
                    "method": "bytes",
                }
    summary = verify_against_code(path)
    summary["method"] = "ops"
    return summary


# -- footprint / locality stats ---------------------------------------------
def trace_info(path: os.PathLike) -> Dict[str, object]:
    """Footprint and locality statistics for one trace file."""
    header, ops = read_trace(path)
    counts: Dict[str, int] = {}
    touches = 0
    write_touches = 0
    user_s = 0.0
    pages = set()
    prefetch_pages = 0
    release_pages = 0
    faults = 0
    sequential = 0
    jump_total = 0
    jumps = 0
    prev_vpn = None
    for op in ops:
        kind = op[0]
        counts[kind] = counts.get(kind, 0) + 1
        if kind == "t":
            vpn = op[1]
            touches += 1
            write_touches += 1 if op[2] else 0
            pages.add(vpn)
            if prev_vpn is not None:
                jumps += 1
                delta = vpn - prev_vpn
                jump_total += delta if delta >= 0 else -delta
                sequential += 1 if delta == 1 else 0
            prev_vpn = vpn
        elif kind == "w":
            user_s += op[1]
        elif kind == "T":
            start, count, write, secs = op[1], op[2], op[3], op[4]
            if count <= 0:
                # A zero-count run touches nothing: it must not move the
                # stream cursor or perturb the locality counters (the
                # interpreter never emits one, but the format admits it).
                continue
            touches += count
            write_touches += count if write else 0
            user_s += secs * count
            pages.update(range(start, start + count))
            if prev_vpn is not None:
                jumps += 1
                delta = start - prev_vpn
                jump_total += delta if delta >= 0 else -delta
                sequential += 1 if delta == 1 else 0
            # The run's internal strides are sequential by construction.
            sequential += count - 1
            jumps += count - 1
            jump_total += count - 1
            prev_vpn = start + count - 1
        elif kind == "p":
            prefetch_pages += len(op[2])
        elif kind == "r":
            release_pages += len(op[2])
        else:  # 'f'
            faults += 1
    size = Path(path).stat().st_size
    return {
        "path": str(path),
        "process": header.process,
        "workload": header.workload,
        "version": header.version,
        "scale": header.scale,
        "page_size": header.page_size,
        "source": header.source,
        "segments": len(header.layout),
        "footprint_pages": header.footprint_pages,
        "file_bytes": size,
        "ops": len(ops),
        "bytes_per_op": round(size / len(ops), 2) if ops else 0.0,
        "op_counts": counts,
        "touches": touches,
        "write_fraction": round(write_touches / touches, 4) if touches else 0.0,
        "distinct_pages": len(pages),
        "user_s": round(user_s, 6),
        "prefetch_pages": prefetch_pages,
        "release_pages": release_pages,
        "fault_annotations": faults,
        "sequential_fraction": round(sequential / jumps, 4) if jumps else 0.0,
        "mean_jump_pages": round(jump_total / jumps, 2) if jumps else 0.0,
    }


def format_info(info: Dict[str, object]) -> str:
    lines = [
        f"trace {info['path']}",
        f"  process={info['process']} workload={info['workload']} "
        f"version={info['version']} scale={info['scale']} source={info['source']}",
        f"  file: {info['file_bytes']} bytes, {info['ops']} ops "
        f"({info['bytes_per_op']} B/op)",
        f"  layout: {info['segments']} segments, {info['footprint_pages']} pages "
        f"(page_size={info['page_size']})",
        f"  touches: {info['touches']} over {info['distinct_pages']} distinct pages, "
        f"write fraction {info['write_fraction']}",
        f"  compute: {info['user_s']} user seconds",
        f"  hints: {info['prefetch_pages']} pages prefetched, "
        f"{info['release_pages']} pages released",
        f"  locality: sequential fraction {info['sequential_fraction']}, "
        f"mean jump {info['mean_jump_pages']} pages",
    ]
    ops = ", ".join(f"{k}={v}" for k, v in sorted(info["op_counts"].items()))
    lines.append(f"  op mix: {ops}")
    if info["fault_annotations"]:
        lines.append(f"  fault annotations: {info['fault_annotations']}")
    return "\n".join(lines)
