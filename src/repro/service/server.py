"""The stdlib HTTP surface over :class:`~repro.service.jobs.JobManager`.

``ThreadingHTTPServer`` plus hand-rolled routing — no framework, no new
dependency, mirroring the repo-wide stdlib-only rule.  Responses speak
HTTP/1.0 so the streamed ``/events`` body is delimited by connection
close rather than chunked encoding.

Routes (all under ``/v1``)::

    GET  /v1/healthz              liveness + version + job counts
    GET  /v1/scenarios            the scenario registry listing
    POST /v1/jobs                 submit {"template": name} or {"document": {...}}
    GET  /v1/jobs                 all job snapshots
    GET  /v1/jobs/<id>            one job snapshot
    GET  /v1/jobs/<id>/events     streaming JSONL (follow until terminal;
                                  ?follow=0 for a snapshot)
    GET  /v1/jobs/<id>/result     terminal summary: digest + outcome rows
    GET  /v1/jobs/<id>/serialized canonical serialized results (text/plain)
    GET  /v1/jobs/<id>/figure     rendered per-process tables (text/plain)
    GET  /v1/jobs/<id>/trace      trace manifest; ?name=<file> fetches one

A running server maintains ``server.json`` in its state directory so
clients (``repro submit`` etc.) can discover the URL without flags.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro._version import __version__
from repro.experiments.report import format_process_table
from repro.experiments.runner import load_cached
from repro.ioutil import atomic_write_json
from repro.scenarios import ScenarioError, ScenarioRegistry
from repro.service.jobs import JobError, JobManager

__all__ = ["ExperimentServer", "serve"]

_MAX_BODY = 4 * 1024 * 1024  # a scenario document has no business being larger


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.0"  # connection close delimits streamed bodies
    server_version = f"repro/{__version__}"

    # The owning ExperimentServer injects itself on the server object.
    @property
    def manager(self) -> JobManager:
        return self.server.experiment_manager  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        echo = getattr(self.server, "experiment_echo", None)
        if echo is not None:
            echo(f"{self.address_string()} {format % args}")

    # -- response helpers ----------------------------------------------------

    def _send_json(self, code: int, payload: Dict[str, object]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, code: int, text: str, content_type: str = "text/plain") -> None:
        body = text.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", f"{content_type}; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, code: int, message: str, path: str = "") -> None:
        payload: Dict[str, object] = {"error": message}
        if path:
            payload["path"] = path
        self._send_json(code, payload)

    # -- routing -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib signature
        try:
            self._route_get()
        except JobError as exc:
            self._send_error_json(self._job_error_code(exc), str(exc))
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream
        except Exception as exc:  # pragma: no cover - defensive
            self._send_error_json(500, f"internal error: {exc}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib signature
        try:
            self._route_post()
        except (BrokenPipeError, ConnectionResetError):
            pass
        except Exception as exc:  # pragma: no cover - defensive
            self._send_error_json(500, f"internal error: {exc}")

    @staticmethod
    def _job_error_code(exc: JobError) -> int:
        text = str(exc)
        if "unknown job" in text:
            return 404
        if "still" in text:  # result requested before the job finished
            return 409
        return 400

    def _route_get(self) -> None:
        parsed = urllib.parse.urlsplit(self.path)
        query = dict(urllib.parse.parse_qsl(parsed.query))
        parts = [part for part in parsed.path.split("/") if part]
        if parts == ["v1", "healthz"]:
            self._send_json(
                200, {"status": "ok", "version": __version__, "jobs": self.manager.stats()}
            )
        elif parts == ["v1", "scenarios"]:
            self._send_json(200, {"scenarios": self.manager.registry.entries()})
        elif parts == ["v1", "jobs"]:
            self._send_json(200, {"jobs": self.manager.jobs()})
        elif len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            self._send_json(200, self.manager.job(parts[2]).snapshot())
        elif len(parts) == 4 and parts[:2] == ["v1", "jobs"]:
            job_id, leaf = parts[2], parts[3]
            if leaf == "events":
                self._stream_events(job_id, follow=query.get("follow", "1") != "0")
            elif leaf == "result":
                self._send_json(200, self.manager.result_payload(job_id))
            elif leaf == "serialized":
                self._send_text(200, self.manager.serialized_text(job_id))
            elif leaf == "figure":
                self._send_text(200, self._render_figure(job_id))
            elif leaf == "trace":
                self._send_trace(job_id, query.get("name"))
            else:
                self._send_error_json(404, f"no such endpoint: {parsed.path}")
        else:
            self._send_error_json(404, f"no such endpoint: {parsed.path}")

    def _route_post(self) -> None:
        parsed = urllib.parse.urlsplit(self.path)
        parts = [part for part in parsed.path.split("/") if part]
        if parts != ["v1", "jobs"]:
            self._send_error_json(404, f"no such endpoint: {parsed.path}")
            return
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length > _MAX_BODY:
            self._send_error_json(413, f"body exceeds {_MAX_BODY} bytes")
            return
        try:
            body = json.loads(self.rfile.read(length).decode("utf-8") or "{}")
        except ValueError as exc:
            self._send_error_json(400, f"request body is not valid JSON: {exc}")
            return
        if not isinstance(body, dict):
            self._send_error_json(400, "request body must be a JSON object")
            return
        document = body.get("document")
        template = body.get("template")
        if document is None and "scenario" in body:
            document = body  # a bare scenario document is accepted as-is
        try:
            snapshot = self.manager.submit(
                document=document,
                template=str(template) if template is not None else None,
                name=str(body["name"]) if "name" in body else None,
            )
        except ScenarioError as exc:
            self._send_error_json(400, exc.problem, path=exc.path)
            return
        except (JobError, KeyError) as exc:
            self._send_error_json(400, str(exc))
            return
        self._send_json(201, snapshot)

    # -- bodies --------------------------------------------------------------

    def _stream_events(self, job_id: str, follow: bool) -> None:
        path = self.manager.events_path(job_id)  # raises JobError on bad id
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson; charset=utf-8")
        self.end_headers()  # no Content-Length: HTTP/1.0 close delimits
        position = 0
        terminal_drained = False
        while True:
            chunk = b""
            if path.exists():
                with path.open("rb") as handle:
                    handle.seek(position)
                    chunk = handle.read()
                    position += len(chunk)
            if chunk:
                self.wfile.write(chunk)
                self.wfile.flush()
            if not follow:
                return
            if terminal_drained and not chunk:
                return
            if self.manager.job(job_id).terminal:
                terminal_drained = True  # one more pass to drain the tail
            time.sleep(0.05)

    def _render_figure(self, job_id: str) -> str:
        """The per-process tables for every ok spec, in spec order."""
        record = self.manager.job(job_id)
        if not record.terminal:
            raise JobError(f"job {job_id} is still {record.status}")
        tables = []
        for index in sorted(record.outcomes):
            outcome = record.outcomes[index]
            if outcome.get("status") != "ok":
                tables.append(f"spec {index}: FAILED ({outcome.get('kind')})")
                continue
            result = load_cached(self.manager.cache_dir, str(outcome["key"]))
            if result is None:
                raise JobError(f"cached result for spec {index} was pruned")
            tables.append(format_process_table(result, f"{record.name}[{index}]"))
        return "\n\n".join(tables) + "\n"

    def _send_trace(self, job_id: str, name: Optional[str]) -> None:
        paths = self.manager.trace_paths(job_id)
        root = self.manager.jobs_dir / job_id / "traces"
        if name is None:
            manifest = [str(path.relative_to(root)) for path in paths]
            self._send_json(200, {"traces": manifest})
            return
        target = (root / name).resolve()
        if target not in [path.resolve() for path in paths]:
            raise JobError(f"unknown trace {name!r} for job {job_id}")
        body = target.read_bytes()
        self.send_response(200)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class ExperimentServer:
    """One job manager plus its HTTP listener, started together.

    ``port=0`` binds an ephemeral port; the resolved address is published
    in ``<state_dir>/server.json`` for client discovery.
    """

    def __init__(
        self,
        state_dir: Path,
        registry: Optional[ScenarioRegistry] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        timeout_s: Optional[float] = None,
        retries: int = 0,
        fsync: bool = True,
        echo=None,
        pool_workers: Optional[int] = None,
    ) -> None:
        self.state_dir = Path(state_dir)
        self.manager = JobManager(
            self.state_dir,
            registry=registry,
            workers=workers,
            timeout_s=timeout_s,
            retries=retries,
            fsync=fsync,
            pool_workers=pool_workers,
        )
        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.daemon_threads = True
        self.httpd.experiment_manager = self.manager  # type: ignore[attr-defined]
        self.httpd.experiment_echo = echo  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self.httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> None:
        """Start workers and the listener; publish server.json."""
        self.manager.start()
        atomic_write_json(
            self.state_dir / "server.json",
            {
                "url": self.url,
                "host": self.address[0],
                "port": self.address[1],
                "pid": os.getpid(),
                "version": __version__,
            },
        )
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="repro-http", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 10.0) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None
        self.manager.stop(timeout=timeout)

    def __enter__(self) -> "ExperimentServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def serve(
    state_dir: Path,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 2,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    registry: Optional[ScenarioRegistry] = None,
    echo=print,
    install_signals: bool = True,
    pool_workers: Optional[int] = None,
) -> None:
    """Run a server until SIGINT/SIGTERM — the body of ``repro serve``.

    Signal handlers only set an event; shutdown happens on the main
    thread afterwards, which avoids calling ``httpd.shutdown()`` from
    inside a handler (a classic self-deadlock).
    """
    server = ExperimentServer(
        state_dir,
        registry=registry,
        host=host,
        port=port,
        workers=workers,
        timeout_s=timeout_s,
        retries=retries,
        pool_workers=pool_workers,
    )
    stop_event = threading.Event()
    if install_signals:
        for signum in (signal.SIGINT, signal.SIGTERM):
            signal.signal(signum, lambda *_args: stop_event.set())
    server.start()
    if echo is not None:
        echo(f"repro service v{__version__} listening on {server.url}")
        echo(f"state: {server.state_dir}  (discovery: {server.state_dir / 'server.json'})")
    try:
        stop_event.wait()
    finally:
        if echo is not None:
            echo("shutting down (running jobs stay adoptable on restart)")
        server.stop()
        # This process is done serving: retire the process-wide warm pool
        # here, deterministically, instead of leaning on exit-time hooks.
        from repro.experiments.pool import shutdown_shared_pool

        shutdown_shared_pool()
