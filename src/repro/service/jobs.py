"""The journaled job manager behind the experiment server.

A *job* is one compiled scenario: an ordered list of
:class:`~repro.machine.ExperimentSpec` values plus bookkeeping.  The
manager runs jobs on a small worker pool with three durability/identity
contracts, all inherited from earlier layers rather than reinvented:

1. **Journal before dispatch, cache before done** (the
   :mod:`repro.experiments.sweep` ordering).  A job is appended to
   ``jobs.jsonl`` before any spec runs, each spec's outcome is appended
   only after the result is safely in the cache, and the terminal record
   comes last.  Killing the server at any instant therefore loses at most
   wall-clock time: a restarted manager adopts every non-terminal job and
   skips the specs whose outcome lines already landed.

2. **Content-addressed dedupe.**  Spec identity is
   :func:`~repro.experiments.runner.spec_key` — code version plus spec
   content.  A per-key lock registry makes concurrent submissions of the
   same spec serialize onto one execution; everyone else loads the cached
   result and is counted as a ``cache_hit`` in the job's metadata, which
   is how the dedupe is observable from the outside.

3. **Byte-stable digests.**  A job's digest is the sha256 over the same
   ``ok key=...\\n<serialized result>`` lines the sweep orchestrator
   hashes, in submission order, so a service job, a ``repro sweep`` over
   the same grid, and the in-process :func:`run_direct` path all agree
   byte for byte when they ran the same specs.

State layout under the manager's ``state_dir``::

    jobs.jsonl                 append-only job journal (shared, fsynced)
    cache/                     content-addressed result cache (runner layout)
    jobs/<id>/scenario.json    the merged scenario document as compiled
    jobs/<id>/events.jsonl     per-job lifecycle events (obs-bus JSONL)
    jobs/<id>/traces/<index>/  recorded op streams for trace scenarios
"""

from __future__ import annotations

import hashlib
import itertools
import json
import queue
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.bench import serialize_result
from repro.experiments.runner import (
    ExperimentFailure,
    execute_guarded,
    load_cached,
    spec_key,
    store_cached,
)
from repro.ioutil import append_journal_line, atomic_write_json, read_journal
from repro.machine import ExperimentResult, ExperimentSpec
from repro.obs import Bus
from repro.obs.sinks import JsonlSink, WallClock
from repro.scenarios import CompiledScenario, ScenarioRegistry, builtin_registry, compile_scenario

__all__ = [
    "JobChaos",
    "JobError",
    "JobManager",
    "JobRecord",
    "digest_failure_line",
    "digest_ok_line",
    "run_direct",
]


class JobError(RuntimeError):
    """A job operation that cannot proceed (unknown id, not finished, ...)."""


# -- the shared digest wire format ------------------------------------------
#
# One line per spec, in submission order, each terminated by "\n".  The ok
# line embeds the canonical serialized result, which is what makes the
# digest a statement about result *bytes*, not just completion.  This is
# exactly the line format repro.experiments.sweep hashes for its merged
# digest, so a job over grid specs and a sweep over the same grid agree.


def digest_ok_line(key: str, serialized: str) -> str:
    return f"ok key={key}\n{serialized}\n"


def digest_failure_line(key: str, kind: str, message: str) -> str:
    return f"failure key={key} kind={kind} message={message}\n"


def _outcome_line(key: str, outcome: Union[ExperimentResult, ExperimentFailure]) -> str:
    if isinstance(outcome, ExperimentFailure):
        return digest_failure_line(key, outcome.kind, outcome.message)
    return digest_ok_line(key, serialize_result(outcome))


def run_direct(
    compiled: CompiledScenario,
    cache_dir: Optional[Path] = None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
) -> Tuple[List[Union[ExperimentResult, ExperimentFailure]], str]:
    """Run a compiled scenario in-process; return (outcomes, digest).

    The direct twin of a service job: same specs, same cache protocol when
    ``cache_dir`` is given, same digest formula.  CI's service smoke test
    byte-compares this digest against the server's to prove the HTTP path
    adds no behavior.
    """
    digest = hashlib.sha256()
    outcomes: List[Union[ExperimentResult, ExperimentFailure]] = []
    for spec in compiled.specs:
        key = spec_key(spec)
        outcome: Optional[Union[ExperimentResult, ExperimentFailure]] = None
        if cache_dir is not None:
            outcome = load_cached(cache_dir, key)
        if outcome is None:
            outcome = execute_guarded(spec, timeout_s=timeout_s, retries=retries)
            if cache_dir is not None:
                store_cached(cache_dir, key, outcome)
        outcomes.append(outcome)
        digest.update(_outcome_line(key, outcome).encode("utf-8"))
    return outcomes, digest.hexdigest()


# -- chaos seam --------------------------------------------------------------


@dataclass(frozen=True)
class JobChaos:
    """Declarative, test-only fault injection for the job manager.

    Mirrors the sweep orchestrator's ``SweepChaos``: tests describe the
    crash instead of racing a real ``SIGKILL``.  ``die_after_specs`` stops
    the manager cold after that many spec journal lines have been written
    this session — no terminal record, no event flush — which is exactly
    the on-disk state a killed server leaves behind.
    """

    die_after_specs: Optional[int] = None


class _ChaosDeath(Exception):
    """Internal: the configured chaos point fired."""


# -- per-key locks -----------------------------------------------------------


class _KeyLocks:
    """One lock per spec key, created on demand.

    ``hold(key)`` returns a context manager; ``contended`` tells the
    caller whether another worker already held the key, which is what
    distinguishes a dedup wait from a plain cache hit in job metadata.
    """

    def __init__(self) -> None:
        self._mu = threading.Lock()
        self._locks: Dict[str, threading.Lock] = {}

    def hold(self, key: str) -> "_HeldKey":
        with self._mu:
            lock = self._locks.setdefault(key, threading.Lock())
        contended = not lock.acquire(blocking=False)
        if contended:
            lock.acquire()
        return _HeldKey(lock, contended)


class _HeldKey:
    def __init__(self, lock: threading.Lock, contended: bool) -> None:
        self._lock = lock
        self.contended = contended

    def __enter__(self) -> "_HeldKey":
        return self

    def __exit__(self, *exc) -> None:
        self._lock.release()


# -- job records -------------------------------------------------------------


@dataclass
class JobRecord:
    """Everything the API reports about one job."""

    id: str
    name: str
    scenario_digest: str
    total_specs: int
    status: str = "queued"  # queued | running | done | failed
    record_trace: bool = False
    adopted: bool = False
    executed: int = 0
    cache_hits: int = 0
    dedup_waits: int = 0
    failed_specs: int = 0
    done_specs: int = 0
    digest: str = ""
    error: str = ""
    submitted_at: float = 0.0
    finished_at: float = 0.0
    # per-index outcome metadata: {index, key, status, cached, digest|kind+message}
    outcomes: Dict[int, Dict[str, object]] = field(default_factory=dict)

    @property
    def terminal(self) -> bool:
        return self.status in ("done", "failed")

    def snapshot(self) -> Dict[str, object]:
        """A JSON-safe copy for the API and the CLI tables."""
        data = {k: v for k, v in self.__dict__.items() if k != "outcomes"}
        data["outcomes"] = [self.outcomes[i] for i in sorted(self.outcomes)]
        return data


# -- the manager -------------------------------------------------------------


class JobManager:
    """Compile, journal, dedupe, execute, and resume experiment jobs."""

    def __init__(
        self,
        state_dir: Path,
        registry: Optional[ScenarioRegistry] = None,
        workers: int = 2,
        timeout_s: Optional[float] = None,
        retries: int = 0,
        fsync: bool = True,
        chaos: Optional[JobChaos] = None,
        pool_workers: Optional[int] = None,
    ) -> None:
        self.state_dir = Path(state_dir)
        self.registry = registry if registry is not None else builtin_registry()
        self.cache_dir = self.state_dir / "cache"
        self.jobs_dir = self.state_dir / "jobs"
        self.journal_path = self.state_dir / "jobs.jsonl"
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self._workers = max(1, int(workers))
        self._pool_workers = (
            max(1, int(pool_workers)) if pool_workers is not None else self._workers
        )
        self._timeout_s = timeout_s
        self._retries = int(retries)
        self._fsync = bool(fsync)
        self._chaos = chaos or JobChaos()
        self._chaos_specs = 0  # spec journal lines written this session
        self._dead = False  # a chaos death: refuse further work
        self._mu = threading.RLock()
        self._terminal = threading.Condition(self._mu)
        self._jobs: Dict[str, JobRecord] = {}
        self._specs: Dict[str, Tuple[ExperimentSpec, ...]] = {}
        self._ids = itertools.count(1)
        self._queue: "queue.Queue[str]" = queue.Queue()
        self._locks = _KeyLocks()
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._recover()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Start the worker pool (idempotent)."""
        with self._mu:
            if self._threads:
                return
            for index in range(self._workers):
                thread = threading.Thread(
                    target=self._worker, name=f"repro-job-worker-{index}", daemon=True
                )
                thread.start()
                self._threads.append(thread)

    def stop(self, timeout: float = 10.0) -> None:
        """Stop workers after their current spec; running jobs stay adoptable."""
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []

    def __enter__(self) -> "JobManager":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        document: Optional[Dict[str, object]] = None,
        template: Optional[str] = None,
        name: Optional[str] = None,
    ) -> Dict[str, object]:
        """Compile and enqueue one scenario; returns the job snapshot.

        Raises :class:`repro.scenarios.ScenarioError` on a bad document —
        validation is synchronous so the submitter gets the path-precise
        error, not a failed job.
        """
        if self._dead:
            raise JobError("manager is stopped (chaos death)")
        if document is None:
            if template is None:
                raise JobError("submit needs a scenario document or a template name")
            document = self.registry.get(template)
            name = name or template
        compiled = compile_scenario(document, registry=self.registry, name=name)
        keys = tuple(spec_key(spec) for spec in compiled.specs)
        with self._mu:
            job_id = f"j-{next(self._ids):06d}"
            record = JobRecord(
                id=job_id,
                name=compiled.name,
                scenario_digest=compiled.digest,
                total_specs=len(compiled.specs),
                record_trace=compiled.record_trace,
                submitted_at=time.time(),
            )
            job_dir = self.jobs_dir / job_id
            job_dir.mkdir(parents=True, exist_ok=True)
            atomic_write_json(job_dir / "scenario.json", compiled.document)
            # Journal before dispatch: once this line is down, a restarted
            # manager re-runs the job even if we die before the first spec.
            self._journal(
                {
                    "event": "job",
                    "id": job_id,
                    "status": "submitted",
                    "name": record.name,
                    "scenario_digest": record.scenario_digest,
                    "total_specs": record.total_specs,
                    "record_trace": record.record_trace,
                }
            )
            self._jobs[job_id] = record
            self._specs[job_id] = compiled.specs
            self._emit(job_id, "job.submitted", {"name": record.name, "specs": len(keys)})
            self._queue.put(job_id)
            return record.snapshot()

    # -- queries -------------------------------------------------------------

    def job(self, job_id: str) -> JobRecord:
        with self._mu:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise JobError(f"unknown job {job_id!r}") from None

    def jobs(self) -> List[Dict[str, object]]:
        with self._mu:
            return [self._jobs[jid].snapshot() for jid in sorted(self._jobs)]

    def stats(self) -> Dict[str, int]:
        with self._mu:
            counts = {"queued": 0, "running": 0, "done": 0, "failed": 0}
            for record in self._jobs.values():
                counts[record.status] = counts.get(record.status, 0) + 1
            counts["total"] = len(self._jobs)
            return counts

    def wait(self, job_id: str, timeout: Optional[float] = None) -> JobRecord:
        """Block until the job reaches a terminal state."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._terminal:
            while True:
                record = self.job(job_id)
                if record.terminal:
                    return record
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise JobError(f"timed out waiting for job {job_id}")
                self._terminal.wait(timeout=remaining if remaining is not None else 0.5)

    def events_path(self, job_id: str) -> Path:
        self.job(job_id)  # raises on unknown id
        return self.jobs_dir / job_id / "events.jsonl"

    def trace_paths(self, job_id: str) -> List[Path]:
        record = self.job(job_id)
        if not record.record_trace:
            raise JobError(f"job {job_id} did not record traces")
        root = self.jobs_dir / job_id / "traces"
        return sorted(path for path in root.glob("**/*.trace") if path.is_file())

    def result_payload(self, job_id: str) -> Dict[str, object]:
        """The finished job's summary: digest plus per-spec outcome rows."""
        record = self.job(job_id)
        if not record.terminal:
            raise JobError(f"job {job_id} is still {record.status}")
        return record.snapshot()

    def serialized_text(self, job_id: str) -> str:
        """The canonical serialized results, concatenated in spec order.

        Byte-identical across any two jobs (or a direct run) that produced
        the same results — the strongest equality the service exposes.
        """
        record = self.job(job_id)
        if not record.terminal:
            raise JobError(f"job {job_id} is still {record.status}")
        specs = self._specs_for(job_id)
        parts: List[str] = []
        for index, spec in enumerate(specs):
            outcome = record.outcomes.get(index, {})
            key = str(outcome.get("key", spec_key(spec)))
            if outcome.get("status") == "ok":
                result = load_cached(self.cache_dir, key)
                if result is None:
                    raise JobError(f"cached result for spec {index} (key {key}) was pruned")
                parts.append(f"# spec {index} key={key}\n{serialize_result(result)}\n")
            else:
                kind = outcome.get("kind", "unknown")
                message = outcome.get("message", "")
                parts.append(f"# spec {index} key={key} FAILED kind={kind} message={message}\n")
        return "".join(parts)

    # -- recovery ------------------------------------------------------------

    def _recover(self) -> None:
        """Rebuild job state from the journal; re-enqueue unfinished jobs."""
        submitted: Dict[str, Dict[str, object]] = {}
        spec_lines: Dict[str, Dict[int, Dict[str, object]]] = {}
        terminal: Dict[str, Dict[str, object]] = {}
        order: List[str] = []
        for entry in read_journal(self.journal_path):
            job_id = str(entry.get("id", ""))
            if not job_id:
                continue
            if entry.get("event") == "job":
                status = entry.get("status")
                if status == "submitted":
                    if job_id not in submitted:
                        order.append(job_id)
                    submitted[job_id] = entry
                elif status in ("done", "failed"):
                    terminal[job_id] = entry
            elif entry.get("event") == "spec":
                # Last record wins: a re-executed spec (cache pruned between
                # sessions) appends a fresh line that supersedes the old one.
                index = int(entry.get("index", -1))
                if index >= 0:
                    spec_lines.setdefault(job_id, {})[index] = entry
        highest = 0
        for job_id in order:
            try:
                highest = max(highest, int(job_id.split("-", 1)[1]))
            except (IndexError, ValueError):
                pass
            meta = submitted[job_id]
            record = JobRecord(
                id=job_id,
                name=str(meta.get("name", "")),
                scenario_digest=str(meta.get("scenario_digest", "")),
                total_specs=int(meta.get("total_specs", 0)),
                record_trace=bool(meta.get("record_trace", False)),
            )
            end = terminal.get(job_id)
            if end is not None:
                record.status = str(end.get("status", "done"))
                record.digest = str(end.get("digest", ""))
                record.executed = int(end.get("executed", 0))
                record.cache_hits = int(end.get("cache_hits", 0))
                record.dedup_waits = int(end.get("dedup_waits", 0))
                record.failed_specs = int(end.get("failed_specs", 0))
                record.error = str(end.get("error", ""))
                for index, line in spec_lines.get(job_id, {}).items():
                    record.outcomes[index] = self._outcome_from_line(line)
                record.done_specs = len(record.outcomes)
            else:
                # Non-terminal: adopt.  Prior spec lines become adopted
                # outcomes; the run loop skips them if their key still
                # matches (a code-version bump naturally invalidates).
                record.adopted = True
                record.status = "queued"
                for index, line in spec_lines.get(job_id, {}).items():
                    record.outcomes[index] = self._outcome_from_line(line, adopted=True)
            self._jobs[job_id] = record
        self._ids = itertools.count(highest + 1)
        for job_id in order:
            record = self._jobs[job_id]
            if record.terminal:
                continue
            if not self._load_specs(job_id):
                continue
            self._journal({"event": "job", "id": job_id, "status": "adopted"})
            self._emit(job_id, "job.adopted", {"prior_specs": len(record.outcomes)})
            self._queue.put(job_id)

    @staticmethod
    def _outcome_from_line(line: Dict[str, object], adopted: bool = False) -> Dict[str, object]:
        outcome = {
            "index": int(line.get("index", -1)),
            "key": str(line.get("key", "")),
            "status": str(line.get("status", "")),
            "cached": bool(line.get("cached", False)),
        }
        if adopted:
            outcome["adopted"] = True
        if outcome["status"] == "ok":
            outcome["digest"] = str(line.get("digest", ""))
        else:
            outcome["kind"] = str(line.get("kind", ""))
            outcome["message"] = str(line.get("message", ""))
        if "elapsed_s" in line:
            outcome["elapsed_s"] = line["elapsed_s"]
        return outcome

    def _load_specs(self, job_id: str) -> bool:
        """Recompile a recovered job's scenario document; False if lost."""
        if job_id in self._specs:
            return True
        path = self.jobs_dir / job_id / "scenario.json"
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
            compiled = compile_scenario(
                document, registry=self.registry, name=self._jobs[job_id].name
            )
        except Exception as exc:
            self._finish(job_id, "failed", error=f"scenario document unrecoverable: {exc}")
            return False
        self._specs[job_id] = compiled.specs
        return True

    def _specs_for(self, job_id: str) -> Tuple[ExperimentSpec, ...]:
        with self._mu:
            if job_id in self._specs:
                return self._specs[job_id]
        if not self._load_specs(job_id):
            raise JobError(f"scenario document for job {job_id} is unrecoverable")
        return self._specs[job_id]

    # -- execution -----------------------------------------------------------

    def _worker(self) -> None:
        while not self._stop.is_set():
            try:
                job_id = self._queue.get(timeout=0.2)
            except queue.Empty:
                continue
            try:
                self._run_job(job_id)
            except _ChaosDeath:
                self._dead = True
                self._stop.set()
            except Exception as exc:  # defensive: a worker must never die silently
                self._finish(job_id, "failed", error=f"internal error: {exc}")

    def _run_job(self, job_id: str) -> None:
        record = self.job(job_id)
        specs = self._specs.get(job_id)
        if specs is None:
            return  # _load_specs already failed the job during recovery
        with self._mu:
            record.status = "running"
        self._emit(job_id, "job.start", {"specs": len(specs), "adopted": record.adopted})
        digest = hashlib.sha256()
        try:
            for index, spec in enumerate(specs):
                if self._stop.is_set():
                    with self._mu:
                        record.status = "queued"  # abandoned: adoptable on restart
                    return
                key = spec_key(spec)
                serialized = self._run_spec(job_id, record, index, spec, key)
                digest.update(serialized.encode("utf-8"))
        except _ChaosDeath:
            raise
        except JobError as exc:
            self._finish(job_id, "failed", error=str(exc))
            return
        self._finish(job_id, "done", digest=digest.hexdigest())

    def _run_spec(self, job_id, record: JobRecord, index: int, spec, key: str) -> str:
        """Run (or adopt, or load) one spec; returns its digest line."""
        prior = record.outcomes.get(index)
        if prior is not None and prior.get("adopted") and prior.get("key") == key:
            if prior.get("status") == "ok":
                result = load_cached(self.cache_dir, key)
                if result is not None:
                    self._emit(job_id, "job.spec_adopted", {"index": index, "key": key})
                    with self._mu:
                        record.cache_hits += 1
                    return digest_ok_line(key, serialize_result(result))
                # Journaled ok but the cache was pruned: fall through and
                # re-execute; the fresh spec line supersedes (last wins).
            else:
                self._emit(job_id, "job.spec_adopted", {"index": index, "key": key})
                return digest_failure_line(
                    key, str(prior.get("kind", "")), str(prior.get("message", ""))
                )
        self._emit(job_id, "job.spec_start", {"index": index, "key": key})
        started = time.monotonic()
        with self._locks.hold(key) as held:
            cached = load_cached(self.cache_dir, key)
            if cached is not None:
                outcome: Union[ExperimentResult, ExperimentFailure] = cached
                was_cached = True
            else:
                outcome = self._execute(job_id, index, spec, key)
                store_cached(self.cache_dir, key, outcome)  # cache before journal
                was_cached = False
        elapsed = time.monotonic() - started
        line: Dict[str, object] = {
            "event": "spec",
            "id": job_id,
            "index": index,
            "key": key,
            "cached": was_cached,
            "elapsed_s": round(elapsed, 6),
        }
        if isinstance(outcome, ExperimentFailure):
            line.update({"status": "failure", "kind": outcome.kind, "message": outcome.message})
            digest_line = digest_failure_line(key, outcome.kind, outcome.message)
        else:
            serialized = serialize_result(outcome)
            line.update(
                {
                    "status": "ok",
                    "digest": hashlib.sha256(serialized.encode("utf-8")).hexdigest(),
                }
            )
            digest_line = digest_ok_line(key, serialized)
        self._journal(line)
        self._chaos_specs += 1
        with self._mu:
            record.outcomes[index] = self._outcome_from_line(line)
            record.done_specs = len(record.outcomes)
            if was_cached:
                record.cache_hits += 1
                if held.contended:
                    record.dedup_waits += 1
            else:
                record.executed += 1
            if line["status"] == "failure":
                record.failed_specs += 1
        self._emit(
            job_id,
            "job.spec_done",
            {"index": index, "key": key, "status": line["status"], "cached": was_cached},
        )
        if (
            self._chaos.die_after_specs is not None
            and self._chaos_specs >= self._chaos.die_after_specs
        ):
            raise _ChaosDeath()
        return digest_line

    def _execute(self, job_id, index, spec, key) -> Union[ExperimentResult, ExperimentFailure]:
        record = self._jobs[job_id]
        if not record.record_trace:
            # Route through the shared warm pool: job threads each lease a
            # worker, so interpreter startup is paid once per server, not
            # per job — and because pool workers run specs on their *main*
            # thread, the SIGALRM per-spec deadline works here, which it
            # never could on a JobManager thread.  REPRO_POOL=0 restores
            # the in-thread reference path.
            from repro.experiments import pool as pool_mod

            if pool_mod.pool_enabled():
                return pool_mod.get_pool(self._pool_workers).run_one(
                    spec, timeout_s=self._timeout_s, retries=self._retries
                )
            return execute_guarded(spec, timeout_s=self._timeout_s, retries=self._retries)
        # Trace scenarios run through the recorder so the op streams land
        # next to the job; the returned result is the normal live result.
        from repro.trace.record import record_experiment

        out_dir = self.jobs_dir / job_id / "traces" / str(index)
        try:
            result, _paths = record_experiment(spec, out_dir)
            result.from_cache = False
            return result
        except Exception as exc:
            return ExperimentFailure(spec, "error", str(exc))

    # -- bookkeeping ---------------------------------------------------------

    def _finish(self, job_id: str, status: str, digest: str = "", error: str = "") -> None:
        with self._mu:
            record = self._jobs.get(job_id)
            if record is None or record.terminal:
                return
            record.status = status
            record.digest = digest
            record.error = error
            record.finished_at = time.time()
            self._journal(
                {
                    "event": "job",
                    "id": job_id,
                    "status": status,
                    "digest": digest,
                    "executed": record.executed,
                    "cache_hits": record.cache_hits,
                    "dedup_waits": record.dedup_waits,
                    "failed_specs": record.failed_specs,
                    "error": error,
                }
            )
            self._terminal.notify_all()
        payload: Dict[str, object] = {"status": status}
        if digest:
            payload["digest"] = digest
        if error:
            payload["error"] = error
        self._emit(job_id, "job.finished", payload)

    def _journal(self, entry: Dict[str, object]) -> None:
        append_journal_line(self.journal_path, entry, fsync=self._fsync)

    def _emit(self, job_id: str, kind: str, payload: Dict[str, object]) -> None:
        """Append one lifecycle event to the job's events.jsonl."""
        path = self.jobs_dir / job_id / "events.jsonl"
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = dict(payload)
        entry["job"] = job_id
        try:
            Bus(WallClock(), [JsonlSink(path)]).emit(kind, entry)
        except OSError:
            pass  # events are best-effort observability, never correctness
