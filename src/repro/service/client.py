"""The urllib client for the experiment server.

``repro submit|jobs|watch|fetch`` and any user script speak the ``/v1``
API through this one class, so the CLI is an ordinary API consumer with
no private channel into the server.  Connection details come either from
an explicit URL or from the ``server.json`` discovery file a running
``repro serve`` maintains in its state directory.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Dict, Iterator, List, Optional

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """The server rejected a request or cannot be reached."""

    def __init__(self, message: str, status: int = 0, path: str = "") -> None:
        super().__init__(message)
        self.status = status
        self.path = path  # scenario path for validation errors, if any


class ServiceClient:
    """A thin JSON-over-HTTP client for one experiment server."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    @classmethod
    def discover(cls, state_dir: Path, timeout: float = 30.0) -> "ServiceClient":
        """Connect via the ``server.json`` a running server wrote."""
        path = Path(state_dir) / "server.json"
        try:
            meta = json.loads(path.read_text(encoding="utf-8"))
            url = str(meta["url"])
        except (OSError, ValueError, KeyError) as exc:
            raise ServiceError(
                f"no running server found at {path} (start one with 'repro serve'): {exc}"
            ) from exc
        return cls(url, timeout=timeout)

    # -- plumbing ------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, object]] = None,
        raw: bool = False,
    ):
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, headers=headers, method=method
        )
        try:
            response = urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode("utf-8", "replace")
            scenario_path = ""
            try:
                payload = json.loads(detail)
                detail = str(payload.get("error", detail))
                scenario_path = str(payload.get("path", ""))
            except ValueError:
                pass
            raise ServiceError(detail, status=exc.code, path=scenario_path) from None
        except urllib.error.URLError as exc:
            raise ServiceError(f"cannot reach {self.base_url}: {exc.reason}") from None
        if raw:
            return response
        with response:
            text = response.read().decode("utf-8")
        return json.loads(text) if text else {}

    # -- API surface ---------------------------------------------------------

    def healthz(self) -> Dict[str, object]:
        return self._request("GET", "/v1/healthz")

    def scenarios(self) -> List[Dict[str, object]]:
        return self._request("GET", "/v1/scenarios")["scenarios"]

    def submit(
        self,
        document: Optional[Dict[str, object]] = None,
        template: Optional[str] = None,
    ) -> Dict[str, object]:
        body: Dict[str, object] = {}
        if template is not None:
            body["template"] = template
        if document is not None:
            body["document"] = document
        return self._request("POST", "/v1/jobs", body=body)

    def jobs(self) -> List[Dict[str, object]]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def job(self, job_id: str) -> Dict[str, object]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> Dict[str, object]:
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def serialized(self, job_id: str) -> str:
        response = self._request("GET", f"/v1/jobs/{job_id}/serialized", raw=True)
        with response:
            return response.read().decode("utf-8")

    def figure(self, job_id: str) -> str:
        response = self._request("GET", f"/v1/jobs/{job_id}/figure", raw=True)
        with response:
            return response.read().decode("utf-8")

    def trace_manifest(self, job_id: str) -> List[str]:
        return self._request("GET", f"/v1/jobs/{job_id}/trace")["traces"]

    def trace(self, job_id: str, name: str) -> bytes:
        response = self._request("GET", f"/v1/jobs/{job_id}/trace?name={name}", raw=True)
        with response:
            return response.read()

    def stream_events(self, job_id: str, follow: bool = True) -> Iterator[Dict[str, object]]:
        """Yield events from the job's JSONL stream as they arrive.

        With ``follow`` the connection stays open until the job finishes
        (the server closes it); without, it is a snapshot of events so far.
        """
        suffix = "" if follow else "?follow=0"
        response = self._request("GET", f"/v1/jobs/{job_id}/events{suffix}", raw=True)
        with response:
            for line in response:
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))

    def wait(self, job_id: str, timeout: Optional[float] = None, poll: float = 0.2):
        """Poll until the job is terminal; returns the final snapshot."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            snapshot = self.job(job_id)
            if snapshot.get("status") in ("done", "failed"):
                return snapshot
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(f"timed out waiting for job {job_id}")
            time.sleep(poll)
