"""Simulation-as-a-service: the long-running experiment server.

The pieces every earlier PR built — frozen hashable
:class:`~repro.machine.ExperimentSpec`, the content-addressed runner
cache, guarded execution, JSONL journals, the obs bus — compose here into
a shared experiment facility:

- :mod:`repro.service.jobs` — the journaled job manager.  Scenario
  submissions compile to specs, dedupe through the shared result cache
  (one execution per spec content, no matter how many submitters), and
  survive server kills: the journal is written before dispatch and the
  cache before the done record, the same ordering contract as
  :mod:`repro.experiments.sweep`, so a restarted server adopts in-flight
  work instead of redoing or losing it.

- :mod:`repro.service.server` — the stdlib HTTP surface
  (``repro serve``): submit jobs, stream JSONL progress events, fetch
  results / serialized text / traces / rendered tables.

- :mod:`repro.service.client` — the urllib client the ``repro
  submit|jobs|watch|fetch`` commands speak, so scripts and the service
  share one code path.

No dependency beyond the standard library.
"""

from repro.service.jobs import (
    JobChaos,
    JobError,
    JobManager,
    JobRecord,
    run_direct,
)
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import ExperimentServer, serve

__all__ = [
    "ExperimentServer",
    "JobChaos",
    "JobError",
    "JobManager",
    "JobRecord",
    "ServiceClient",
    "ServiceError",
    "run_direct",
    "serve",
]
