"""Swap I/O substrate: disks, SCSI adapters, and the striped raw swap.

The paper's testbed striped system swap across ten Seagate Cheetah 4LP disks
using raw swap partitions, with five SCSI adapters each controlling two
disks.  This package reproduces that topology as a queueing model:

- :class:`~repro.disk.device.DiskDevice` — one disk with a FIFO queue and a
  seek/rotation/transfer service time that rewards sequential access;
- :class:`~repro.disk.adapter.ScsiAdapter` — a bounded-depth command channel
  shared by two disks;
- :class:`~repro.disk.swap.StripedSwap` — round-robin page striping and the
  async read/write interface the VM layer uses.

The property that matters for the reproduction is the *asymmetry* the paper
exploits: a demand fault is synchronous (one page at a time, full latency on
the critical path) while prefetches can keep all ten spindles busy at once.
"""

from repro.disk.adapter import ScsiAdapter
from repro.disk.device import DiskDevice, DiskRequest
from repro.disk.swap import StripedSwap, SwapStats

__all__ = [
    "DiskDevice",
    "DiskRequest",
    "ScsiAdapter",
    "StripedSwap",
    "SwapStats",
]
