"""SCSI adapter model: a bounded command channel in front of two disks.

Each of the five adapters adds a fixed per-command overhead and limits the
number of commands outstanding across its disks.  The limit only binds under
heavy prefetch fan-out, which is exactly when the paper's platform would have
seen adapter queueing.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.config import DiskParams
from repro.faults import DiskIOError
from repro.sim.engine import Engine
from repro.sim.sync import Resource

from repro.disk.device import DiskDevice, DiskRequest

__all__ = ["ScsiAdapter"]


class ScsiAdapter:
    """One SCSI channel: per-command overhead plus bounded concurrency."""

    def __init__(
        self,
        engine: Engine,
        params: DiskParams,
        adapter_id: int,
        disks: Sequence[DiskDevice],
    ) -> None:
        self.engine = engine
        self.params = params
        self.adapter_id = adapter_id
        self.disks: List[DiskDevice] = list(disks)
        self._slots = Resource(
            engine, params.adapter_queue_depth, name=f"scsi{adapter_id}"
        )
        self._overhead_s = params.adapter_overhead_s
        self.commands = 0
        self.errors = 0

    def owns(self, disk: DiskDevice) -> bool:
        return disk in self.disks

    def transfer(self, disk: DiskDevice, block: int, is_write: bool):
        """Process generator: run one transfer through the adapter.

        Yields engine events; returns the completed :class:`DiskRequest`.
        An injected transient failure propagates as
        :class:`~repro.faults.DiskIOError` — the command still held its
        channel slot for the full (wasted) service time, exactly like a real
        SCSI command that comes back CHECK CONDITION.
        """
        if disk not in self.disks:
            raise ValueError(
                f"disk {disk.disk_id} is not attached to adapter {self.adapter_id}"
            )
        yield self._slots.acquire()
        try:
            self.commands += 1
            # Command setup/teardown overhead on the channel.
            yield self.engine.timeout(self._overhead_s)
            request: DiskRequest = disk.submit(block, is_write)
            yield request.done
        except DiskIOError:
            self.errors += 1
            raise
        finally:
            self._slots.release()
        return request

    @property
    def outstanding(self) -> int:
        return self._slots.in_use

    @property
    def total_queue_wait(self) -> float:
        return self._slots.total_wait_time
