"""The striped raw swap: page-number striping over the disk array.

IRIX striped its raw swap partitions across the ten disks; a virtual page's
backing block is determined by its (process, page) identity, so consecutive
pages of an array land on consecutive disks — a sequential sweep keeps all
ten spindles busy.  The VM layer talks only to this class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.config import DiskParams
from repro.sim.engine import Engine, Process

from repro.disk.adapter import ScsiAdapter
from repro.disk.device import DiskDevice

__all__ = ["StripedSwap", "SwapStats"]


@dataclass
class SwapStats:
    """Aggregate swap traffic, split by purpose for the experiment reports."""

    demand_reads: int = 0
    prefetch_reads: int = 0
    writebacks: int = 0
    demand_read_time: float = 0.0
    prefetch_read_time: float = 0.0
    writeback_time: float = 0.0


class StripedSwap:
    """Round-robin page striping over ``DiskParams.disks`` spindles."""

    def __init__(self, engine: Engine, params: DiskParams) -> None:
        self.engine = engine
        self.params = params
        self.disks: List[DiskDevice] = [
            DiskDevice(engine, params, disk_id=i) for i in range(params.disks)
        ]
        per_adapter = params.disks_per_adapter
        self.adapters: List[ScsiAdapter] = [
            ScsiAdapter(
                engine,
                params,
                adapter_id=i,
                disks=self.disks[i * per_adapter : (i + 1) * per_adapter],
            )
            for i in range(params.adapters)
        ]
        self.stats = SwapStats()
        # Instrumentation bus (:mod:`repro.obs`), or None when disabled.
        self.obs = None
        # Within-disk block counters so sequential page streams map to
        # sequential blocks on each spindle.
        self._next_block = [0] * params.disks

    # -- placement --------------------------------------------------------
    def placement(self, pid: int, vpn: int) -> Tuple[int, int]:
        """Deterministic (disk, block) for a page.

        Consecutive vpns round-robin across disks; the block within the disk
        advances with the stripe row, so a straight-line sweep is sequential
        on every spindle.
        """
        n = self.params.disks
        disk_index = (vpn + pid) % n
        block = vpn // n
        return disk_index, block

    def _adapter_for(self, disk_index: int) -> ScsiAdapter:
        return self.adapters[disk_index // self.params.disks_per_adapter]

    # -- transfers --------------------------------------------------------
    def transfer(self, pid: int, vpn: int, is_write: bool, purpose: str) -> Process:
        """Start one page transfer; returns a Process to wait on.

        ``purpose`` is one of ``"demand"``, ``"prefetch"``, ``"writeback"``
        and only affects accounting.
        """
        disk_index, block = self.placement(pid, vpn)
        disk = self.disks[disk_index]
        adapter = self._adapter_for(disk_index)
        started = self.engine.now
        if self.obs is not None:
            self.obs.emit(
                "disk.issue",
                {"disk": disk_index, "purpose": purpose, "write": is_write},
            )

        def _run():
            request = yield from adapter.transfer(disk, block, is_write)
            elapsed = self.engine.now - started
            if self.obs is not None:
                self.obs.emit(
                    "disk.complete",
                    {
                        "disk": disk_index,
                        "purpose": purpose,
                        "write": is_write,
                        "latency_s": elapsed,
                    },
                )
            stats = self.stats
            if purpose == "demand":
                stats.demand_reads += 1
                stats.demand_read_time += elapsed
            elif purpose == "prefetch":
                stats.prefetch_reads += 1
                stats.prefetch_read_time += elapsed
            elif purpose == "writeback":
                stats.writebacks += 1
                stats.writeback_time += elapsed
            else:
                raise ValueError(f"unknown transfer purpose {purpose!r}")
            return request

        return self.engine.process(_run(), name=f"swap-{purpose}-{pid}:{vpn}")

    def read_page(self, pid: int, vpn: int, purpose: str = "demand") -> Process:
        return self.transfer(pid, vpn, is_write=False, purpose=purpose)

    def write_page(self, pid: int, vpn: int) -> Process:
        return self.transfer(pid, vpn, is_write=True, purpose="writeback")

    # -- reporting --------------------------------------------------------
    @property
    def total_reads(self) -> int:
        return self.stats.demand_reads + self.stats.prefetch_reads

    def mean_latency(self, purpose: str) -> float:
        stats = self.stats
        if purpose == "demand":
            return stats.demand_read_time / stats.demand_reads if stats.demand_reads else 0.0
        if purpose == "prefetch":
            return (
                stats.prefetch_read_time / stats.prefetch_reads
                if stats.prefetch_reads
                else 0.0
            )
        if purpose == "writeback":
            return stats.writeback_time / stats.writebacks if stats.writebacks else 0.0
        raise ValueError(f"unknown transfer purpose {purpose!r}")

    def utilization(self) -> float:
        """Mean utilization across spindles."""
        if not self.disks:
            return 0.0
        return sum(d.utilization() for d in self.disks) / len(self.disks)
