"""The striped raw swap: page-number striping over the disk array.

IRIX striped its raw swap partitions across the ten disks; a virtual page's
backing block is determined by its (process, page) identity, so consecutive
pages of an array land on consecutive disks — a sequential sweep keeps all
ten spindles busy.  The VM layer talks only to this class.

Under a fault plan (:mod:`repro.faults`) this layer is also where the
kernel's error handling lives: transient I/O errors and requests that
exceed ``DiskParams.request_timeout_s`` are retried with capped exponential
backoff; a spindle that keeps failing (or that the plan kills outright) is
taken offline and its pages deterministically remapped over the surviving
stripe members, so prefetch parallelism degrades instead of crashing.  With
the default empty plan none of that machinery is constructed and the
transfer path is byte-for-byte the fault-free one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.config import DiskParams
from repro.faults import DiskIOError, FaultInjector
from repro.sim.engine import Engine, Process

from repro.disk.adapter import ScsiAdapter
from repro.disk.device import DiskDevice

__all__ = ["StripedSwap", "SwapStats"]

_PURPOSES = ("demand", "prefetch", "writeback")
_PROC_NAMES = {purpose: f"swap-{purpose}" for purpose in _PURPOSES}


@dataclass
class SwapStats:
    """Aggregate swap traffic, split by purpose for the experiment reports."""

    demand_reads: int = 0
    prefetch_reads: int = 0
    writebacks: int = 0
    demand_read_time: float = 0.0
    prefetch_read_time: float = 0.0
    writeback_time: float = 0.0
    # Fault handling (all zero outside chaos experiments).
    io_errors: int = 0
    io_timeouts: int = 0
    io_retries: int = 0
    spindles_failed: int = 0


class StripedSwap:
    """Round-robin page striping over ``DiskParams.disks`` spindles."""

    def __init__(
        self,
        engine: Engine,
        params: DiskParams,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.engine = engine
        self.params = params
        # Disk faults only: a hint-only plan leaves the I/O path pristine.
        self.faults = faults if faults is not None and faults.disk_enabled else None
        if self.faults is not None:
            highest = self.faults.plan.disk.max_disk_id()
            if highest >= params.disks:
                raise ValueError(
                    f"fault plan names disk {highest}, but the stripe has "
                    f"only {params.disks} spindles"
                )
        self.disks: List[DiskDevice] = [
            DiskDevice(
                engine,
                params,
                disk_id=i,
                faults=self.faults.disk_model(i) if self.faults is not None else None,
            )
            for i in range(params.disks)
        ]
        per_adapter = params.disks_per_adapter
        self.adapters: List[ScsiAdapter] = [
            ScsiAdapter(
                engine,
                params,
                adapter_id=i,
                disks=self.disks[i * per_adapter : (i + 1) * per_adapter],
            )
            for i in range(params.adapters)
        ]
        self.stats = SwapStats()
        # Instrumentation bus (:mod:`repro.obs`), or None when disabled.
        self.obs = None
        # Spindles taken out of the stripe: scheduled failures from the
        # plan plus any disk the retry path gave up on.
        self._offline: Set[int] = set()
        self._failures_pending = (
            sorted(self.faults.plan.disk.failures, key=lambda f: f.at_s)
            if self.faults is not None
            else []
        )

    # -- placement --------------------------------------------------------
    def placement(self, pid: int, vpn: int) -> Tuple[int, int]:
        """Deterministic (disk, block) for a page.

        Consecutive vpns round-robin across disks; the block within the disk
        advances with the stripe row, so a straight-line sweep is sequential
        on every spindle.
        """
        n = self.params.disks
        disk_index = (vpn + pid) % n
        block = vpn // n
        return disk_index, block

    def _adapter_for(self, disk_index: int) -> ScsiAdapter:
        return self.adapters[disk_index // self.params.disks_per_adapter]

    # -- degraded-stripe placement ----------------------------------------
    def _check_scheduled_failures(self) -> None:
        """Lazily apply plan-scheduled spindle failures that are now due."""
        now = self.engine.now
        while self._failures_pending and self._failures_pending[0].at_s <= now:
            failure = self._failures_pending.pop(0)
            self._mark_offline(failure.disk, reason="scheduled")

    def _mark_offline(self, disk_index: int, reason: str) -> None:
        if disk_index in self._offline:
            return
        self._offline.add(disk_index)
        self.stats.spindles_failed += 1
        if self.obs is not None:
            self.obs.emit(
                "fault.disk_offline", {"disk": disk_index, "reason": reason}
            )

    def _live_placement(self, pid: int, vpn: int) -> Tuple[int, int]:
        """Placement over the spindles that are still in the stripe.

        Pages whose home spindle is offline remap deterministically across
        the survivors; the block number only shapes seek timing, so the
        remap needs no relocation table.
        """
        self._check_scheduled_failures()
        disk_index, block = self.placement(pid, vpn)
        if disk_index not in self._offline:
            return disk_index, block
        online = [d for d in range(self.params.disks) if d not in self._offline]
        if not online:
            raise DiskIOError(disk_index, block, False, detail="all spindles offline")
        return online[(vpn + pid) % len(online)], block

    @property
    def online_disks(self) -> int:
        return self.params.disks - len(self._offline)

    # -- transfers --------------------------------------------------------
    def transfer(self, pid: int, vpn: int, is_write: bool, purpose: str) -> Process:
        """Start one page transfer; returns a Process to wait on.

        ``purpose`` is one of ``"demand"``, ``"prefetch"``, ``"writeback"``
        and only affects accounting.  It is validated here, before any event
        is scheduled, so a bad caller fails immediately instead of
        mid-simulation after the I/O completed.
        """
        if purpose not in _PURPOSES:
            raise ValueError(f"unknown transfer purpose {purpose!r}")
        if self.faults is None:
            run = self._run_direct(pid, vpn, is_write, purpose)
        else:
            run = self._run_faulted(pid, vpn, is_write, purpose)
        # Constant per-purpose names: this path runs ~10^5 times per
        # experiment and a per-request f-string shows up in profiles.
        return self.engine.process(run, name=_PROC_NAMES[purpose])

    def _emit_issue(self, disk_index: int, purpose: str, is_write: bool) -> None:
        if self.obs is not None:
            self.obs.emit(
                "disk.issue",
                {"disk": disk_index, "purpose": purpose, "write": is_write},
            )

    def _complete(
        self, disk_index: int, purpose: str, is_write: bool, elapsed: float
    ) -> None:
        if self.obs is not None:
            self.obs.emit(
                "disk.complete",
                {
                    "disk": disk_index,
                    "purpose": purpose,
                    "write": is_write,
                    "latency_s": elapsed,
                },
            )
        stats = self.stats
        if purpose == "demand":
            stats.demand_reads += 1
            stats.demand_read_time += elapsed
        elif purpose == "prefetch":
            stats.prefetch_reads += 1
            stats.prefetch_read_time += elapsed
        else:
            stats.writebacks += 1
            stats.writeback_time += elapsed

    def _run_direct(self, pid: int, vpn: int, is_write: bool, purpose: str):
        """The fault-free transfer path (the only path without a plan).

        The placement arithmetic and per-purpose accounting are inlined:
        this generator runs for every page of swap traffic, and the helper
        calls it replaces were a measurable share of the I/O path.
        """
        n = self.params.disks
        disk_index = (vpn + pid) % n
        disk = self.disks[disk_index]
        adapter = self.adapters[disk_index // self.params.disks_per_adapter]
        engine = self.engine
        started = engine._now
        if self.obs is not None:
            self._emit_issue(disk_index, purpose, is_write)
        # adapter.transfer inlined (same slot/overhead/error accounting;
        # the ownership check is skipped because disk and adapter derive
        # from the same stripe index): one less generator frame on every
        # resume of every page of swap traffic.
        slots = adapter._slots
        yield slots.acquire()
        try:
            adapter.commands += 1
            yield engine.timeout(adapter._overhead_s)
            request = disk.submit(vpn // n, is_write)
            yield request.done
        except DiskIOError:
            adapter.errors += 1
            raise
        finally:
            slots.release()
        elapsed = engine._now - started
        if self.obs is not None:
            self._complete(disk_index, purpose, is_write, elapsed)
            return request
        stats = self.stats
        if purpose == "demand":
            stats.demand_reads += 1
            stats.demand_read_time += elapsed
        elif purpose == "prefetch":
            stats.prefetch_reads += 1
            stats.prefetch_read_time += elapsed
        else:
            stats.writebacks += 1
            stats.writeback_time += elapsed
        return request

    def _run_faulted(self, pid: int, vpn: int, is_write: bool, purpose: str):
        """Transfer with kernel-side error handling (chaos experiments).

        Each attempt races the adapter command against the per-request
        timeout.  An error or timeout backs off exponentially (capped) and
        reissues; ``retry_attempts`` consecutive failures on one spindle
        take it offline and the page fails over to the surviving stripe.  A
        timed-out command is not cancelled — it keeps its channel slot until
        the disk finishes, exactly like a real orphaned SCSI command.
        """
        params = self.params
        engine = self.engine
        stats = self.stats
        started = engine.now
        attempts = 0
        while True:
            disk_index, block = self._live_placement(pid, vpn)
            disk = self.disks[disk_index]
            adapter = self._adapter_for(disk_index)
            self._emit_issue(disk_index, purpose, is_write)
            command = engine.process(
                adapter.transfer(disk, block, is_write),
                name=f"cmd-{purpose}-{pid}:{vpn}",
            )
            deadline = engine.timeout(params.request_timeout_s)
            error: Optional[DiskIOError] = None
            try:
                yield engine.any_of([command, deadline])
            except DiskIOError as exc:
                error = exc
            if error is None and command.triggered and command.ok:
                request = command.value
                break
            if error is not None:
                reason = "error"
                stats.io_errors += 1
            else:
                reason = "timeout"
                stats.io_timeouts += 1
            attempts += 1
            stats.io_retries += 1
            if self.obs is not None:
                self.obs.emit(
                    "fault.disk_retry",
                    {
                        "disk": disk_index,
                        "purpose": purpose,
                        "reason": reason,
                        "attempt": attempts,
                    },
                )
            if attempts >= params.retry_attempts:
                # The spindle is not coming back: fail it out of the stripe
                # and start fresh against the survivors.
                self._mark_offline(disk_index, reason=reason)
                attempts = 0
                continue
            backoff = min(
                params.retry_backoff_cap_s,
                params.retry_backoff_s * (2 ** (attempts - 1)),
            )
            yield engine.timeout(backoff)
        self._complete(disk_index, purpose, is_write, engine.now - started)
        return request

    def read_page(self, pid: int, vpn: int, purpose: str = "demand") -> Process:
        return self.transfer(pid, vpn, is_write=False, purpose=purpose)

    def write_page(self, pid: int, vpn: int) -> Process:
        return self.transfer(pid, vpn, is_write=True, purpose="writeback")

    # -- reporting --------------------------------------------------------
    @property
    def total_reads(self) -> int:
        return self.stats.demand_reads + self.stats.prefetch_reads

    def mean_latency(self, purpose: str) -> float:
        stats = self.stats
        if purpose == "demand":
            return stats.demand_read_time / stats.demand_reads if stats.demand_reads else 0.0
        if purpose == "prefetch":
            return (
                stats.prefetch_read_time / stats.prefetch_reads
                if stats.prefetch_reads
                else 0.0
            )
        if purpose == "writeback":
            return stats.writeback_time / stats.writebacks if stats.writebacks else 0.0
        raise ValueError(f"unknown transfer purpose {purpose!r}")

    def utilization(self) -> float:
        """Mean utilization across spindles."""
        if not self.disks:
            return 0.0
        return sum(d.utilization() for d in self.disks) / len(self.disks)
