"""A single swap disk modelled as a FIFO queue with positional state.

Service time for a request is ``seek + rotation + transfer``.  The seek
component depends on where the head is: a request for the block immediately
following the previous one pays no seek and only a fraction of the average
rotational latency, which is what makes striped sequential prefetch streams
so much faster than random demand faults.

A device may carry a :class:`~repro.faults.DiskFaultModel` (chaos
experiments only): the model can stretch a request's service time or fail
the request outright, in which case ``request.done`` fails with
:class:`~repro.faults.DiskIOError` after the (wasted) service time — the
platters spun either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.config import DiskParams
from repro.faults import DiskFaultModel, DiskIOError
from repro.sim.engine import Engine, Event

__all__ = ["DiskDevice", "DiskRequest"]


@dataclass(slots=True)
class DiskRequest:
    """One page-sized transfer.

    ``done`` is required at construction — only :meth:`DiskDevice.submit`
    creates requests, and it always supplies the completion event, so a
    half-constructed request can never be awaited.
    """

    block: int
    is_write: bool
    issued_at: float
    done: Event = field(repr=False)
    start_time: float = 0.0
    finish_time: float = 0.0
    failed: bool = False

    @property
    def queue_delay(self) -> float:
        return self.start_time - self.issued_at

    @property
    def service_time(self) -> float:
        return self.finish_time - self.start_time


class DiskDevice:
    """One disk: positional head state plus a busy-until horizon.

    Rather than simulating the platter with a process, the device keeps a
    ``busy_until`` horizon: a request arriving at time *t* starts at
    ``max(t, busy_until)`` and completes after its service time.  This is
    exact for a FIFO queue and costs one heap event per request.
    """

    def __init__(
        self,
        engine: Engine,
        params: DiskParams,
        disk_id: int,
        faults: Optional[DiskFaultModel] = None,
    ) -> None:
        self.engine = engine
        self.params = params
        self.disk_id = disk_id
        self.faults = faults
        self._busy_until = 0.0
        self._last_block: Optional[int] = None
        # Service-time constants (submit runs once per page of swap traffic).
        self._seq_position_s = (
            params.average_seek_s * 0.3 + params.rotational_latency_s * 0.5
        )
        self._rand_position_s = params.average_seek_s + params.rotational_latency_s
        self._transfer_s = params.transfer_s_per_page
        # Statistics.
        self.requests = 0
        self.reads = 0
        self.writes = 0
        self.sequential_hits = 0
        self.errors = 0
        self.busy_time = 0.0
        self.total_queue_delay = 0.0

    def _service_time(self, block: int) -> float:
        if self._last_block is not None and block == self._last_block + 1:
            # Head is near: short seek (track-to-track-ish) plus an average
            # half rotation — raw swap partitions are not laid out for
            # zero-latency sequential reads.
            self.sequential_hits += 1
            return self._seq_position_s + self._transfer_s
        return self._rand_position_s + self._transfer_s

    def submit(self, block: int, is_write: bool) -> DiskRequest:
        """Queue one page transfer; ``request.done`` fires on completion.

        With an injected transient error the event *fails* with
        :class:`~repro.faults.DiskIOError` instead — after the same queueing
        and service delay a successful transfer would have taken.
        """
        now = self.engine._now
        # _service_time inlined: one method call per page of swap traffic.
        last = self._last_block
        if last is not None and block == last + 1:
            self.sequential_hits += 1
            service = self._seq_position_s + self._transfer_s
        else:
            service = self._rand_position_s + self._transfer_s
        failed = False
        if self.faults is not None:
            service, failed = self.faults.perturb(service)
        request = DiskRequest(
            block=block,
            is_write=is_write,
            issued_at=now,
            done=self.engine.event(),
        )
        start = max(now, self._busy_until)
        finish = start + service
        self._busy_until = finish
        self._last_block = block
        request.start_time = start
        request.finish_time = finish
        self.requests += 1
        if is_write:
            self.writes += 1
        else:
            self.reads += 1
        self.busy_time += service
        self.total_queue_delay += start - now
        if failed:
            self.errors += 1
            request.failed = True
            request.done.fail(
                DiskIOError(self.disk_id, block, is_write, detail="transient"),
                delay=finish - now,
            )
        else:
            request.done.succeed(request, delay=finish - now)
        return request

    @property
    def queue_horizon(self) -> float:
        """How far in the future this disk is already committed."""
        return max(0.0, self._busy_until - self.engine.now)

    def utilization(self) -> float:
        """Fraction of elapsed simulated time spent transferring."""
        if self.engine.now <= 0:
            return 0.0
        return min(1.0, self.busy_time / self.engine.now)
