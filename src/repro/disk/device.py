"""A single swap disk modelled as a FIFO queue with positional state.

Service time for a request is ``seek + rotation + transfer``.  The seek
component depends on where the head is: a request for the block immediately
following the previous one pays no seek and only a fraction of the average
rotational latency, which is what makes striped sequential prefetch streams
so much faster than random demand faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.config import DiskParams
from repro.sim.engine import Engine, Event

__all__ = ["DiskDevice", "DiskRequest"]


@dataclass
class DiskRequest:
    """One page-sized transfer."""

    block: int
    is_write: bool
    issued_at: float
    done: Event = field(repr=False, default=None)  # type: ignore[assignment]
    start_time: float = 0.0
    finish_time: float = 0.0

    @property
    def queue_delay(self) -> float:
        return self.start_time - self.issued_at

    @property
    def service_time(self) -> float:
        return self.finish_time - self.start_time


class DiskDevice:
    """One disk: positional head state plus a busy-until horizon.

    Rather than simulating the platter with a process, the device keeps a
    ``busy_until`` horizon: a request arriving at time *t* starts at
    ``max(t, busy_until)`` and completes after its service time.  This is
    exact for a FIFO queue and costs one heap event per request.
    """

    def __init__(self, engine: Engine, params: DiskParams, disk_id: int) -> None:
        self.engine = engine
        self.params = params
        self.disk_id = disk_id
        self._busy_until = 0.0
        self._last_block: Optional[int] = None
        # Statistics.
        self.requests = 0
        self.reads = 0
        self.writes = 0
        self.sequential_hits = 0
        self.busy_time = 0.0
        self.total_queue_delay = 0.0

    def _service_time(self, block: int) -> float:
        params = self.params
        if self._last_block is not None and block == self._last_block + 1:
            # Head is near: short seek (track-to-track-ish) plus an average
            # half rotation — raw swap partitions are not laid out for
            # zero-latency sequential reads.
            self.sequential_hits += 1
            positioning = (
                params.average_seek_s * 0.3 + params.rotational_latency_s * 0.5
            )
        else:
            positioning = params.average_seek_s + params.rotational_latency_s
        return positioning + params.transfer_s_per_page

    def submit(self, block: int, is_write: bool) -> DiskRequest:
        """Queue one page transfer; ``request.done`` fires on completion."""
        now = self.engine.now
        request = DiskRequest(
            block=block,
            is_write=is_write,
            issued_at=now,
            done=self.engine.event(),
        )
        start = max(now, self._busy_until)
        service = self._service_time(block)
        finish = start + service
        self._busy_until = finish
        self._last_block = block
        request.start_time = start
        request.finish_time = finish
        self.requests += 1
        if is_write:
            self.writes += 1
        else:
            self.reads += 1
        self.busy_time += service
        self.total_queue_delay += start - now
        request.done.succeed(request, delay=finish - now)
        return request

    @property
    def queue_horizon(self) -> float:
        """How far in the future this disk is already committed."""
        return max(0.0, self._busy_until - self.engine.now)

    def utilization(self) -> float:
        """Fraction of elapsed simulated time spent transferring."""
        if self.engine.now <= 0:
            return 0.0
        return min(1.0, self.busy_time / self.engine.now)
