"""repro — a full-system reproduction of "Taming the Memory Hogs" (OSDI 2000).

Compiler-inserted prefetch/release hints for out-of-core applications,
reproduced end to end on a simulated IRIX 6.5 / SGI Origin 200 platform:
the VM subsystem, the striped-swap disk array, the compiler pass, the
run-time layer, the six benchmarks, and every figure and table of the
paper's evaluation.

Typical entry points:

>>> from repro import small, run_multiprogram, VERSIONS, benchmark
>>> result = run_multiprogram(small(), benchmark("MATVEC"), VERSIONS["B"])
>>> result.elapsed_s            # the out-of-core app's completion time
>>> result.mean_response()      # the interactive task's response time

See README.md for the architecture tour, DESIGN.md for the paper-to-module
mapping, and EXPERIMENTS.md for paper-vs-measured results.
"""

from repro._version import __version__
from repro.config import SimScale, paper, small, tiny
from repro.core.compiler import compile_program
from repro.core.runtime.policies import VERSIONS, VersionConfig
from repro.experiments.harness import (
    MultiprogramResult,
    interactive_alone,
    run_multiprogram,
    run_version_suite,
)
from repro.experiments.runner import run_specs, spec_key
from repro.kernel import Kernel
from repro.machine import (
    ExperimentResult,
    ExperimentSpec,
    Machine,
    StepBudgetExceeded,
    WorkloadProcessSpec,
    run_experiment,
)
from repro.obs import Bus, MetricsAggregator, TraceRecorder
from repro.sim.engine import Engine
from repro.workloads import BENCHMARKS, benchmark

__all__ = [
    "BENCHMARKS",
    "Bus",
    "Engine",
    "ExperimentResult",
    "ExperimentSpec",
    "Kernel",
    "Machine",
    "MetricsAggregator",
    "MultiprogramResult",
    "SimScale",
    "StepBudgetExceeded",
    "TraceRecorder",
    "VERSIONS",
    "VersionConfig",
    "WorkloadProcessSpec",
    "__version__",
    "benchmark",
    "compile_program",
    "interactive_alone",
    "paper",
    "run_experiment",
    "run_multiprogram",
    "run_specs",
    "run_version_suite",
    "small",
    "spec_key",
    "tiny",
]
