"""VmSystem: the fault handler, allocator, and paging primitives.

This is the kernel's memory-management core.  All paths that the paper's
analysis distinguishes are implemented separately so their costs and counts
can be reported:

- **hard fault** — page not present anywhere; allocate a frame (possibly
  blocking on free memory) and read from swap;
- **soft fault** — page present but invalidated by the paging daemon's
  software reference-bit simulation; re-validate under the address-space
  lock (these are the faults in Figure 8);
- **prefetch validate** — first touch of a prefetched page, which was
  deliberately left unvalidated with no TLB entry (Section 3.1.2);
- **release revalidate** — touch of a page with a pending release request;
  the touch sets the in-memory bit again so the releaser will skip it;
- **rescue** — page found on the free list with its identity intact; pulled
  back without I/O.

Frames are addressed by integer index into the :class:`FrameTable` columns
throughout (see ``vm/frames.py`` for the layout); the fast path is a flat
page-table lookup plus one flags-word test.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import SimScale
from repro.disk.swap import StripedSwap
from repro.faults import DiskIOError
from repro.sim.engine import Engine
from repro.sim.task import SimTask
from repro.vm import fastlane
from repro.vm.fragmentation import DEFAULT_EXTENT_PAGES, measure_fragmentation
from repro.vm.frames import (
    F_DIRTY,
    F_FROM_PREFETCH,
    F_IN_TRANSIT,
    F_INVALIDATED,
    F_PRESENT,
    F_REFERENCED,
    F_RELEASE_PENDING,
    F_SW_VALID,
    F_WIRED,
    FREED_BY_DAEMON,
    FREED_BY_EXIT,
    FREED_BY_RELEASE,
    FrameTable,
    FreeList,
)
from repro.vm.pagetable import AddressSpace
from repro.vm.stats import VmStats

__all__ = ["FaultKind", "VmSystem"]


class FaultKind:
    """Symbolic names for the slow-path varieties (reporting only)."""

    HARD = "hard"
    SOFT = "soft"
    PREFETCH_VALIDATE = "prefetch_validate"
    RELEASE_REVALIDATE = "release_revalidate"
    RESCUE = "rescue"


class VmSystem:
    """Frame pool, fault handling, and the prefetch/release primitives."""

    def __init__(self, engine: Engine, scale: SimScale, swap: StripedSwap) -> None:
        self.engine = engine
        self.scale = scale
        self.machine = scale.machine
        self.tunables = scale.tunables
        self.swap = swap
        self.frame_table = FrameTable(self.machine.total_frames)
        self.freelist = FreeList(engine, self.frame_table)
        self.stats = VmStats()
        self.address_spaces: List[AddressSpace] = []
        self._next_asid = 1
        # Column aliases for the hot paths (the table never grows).
        self._flags = self.frame_table.flags
        self._vpns = self.frame_table.vpn
        self._in_transit = self.frame_table.in_transit
        # Per-fault cost constants, hoisted off the machine config: the
        # fault handler reads one of these on every slow-path entry.
        self._soft_fault_s = self.machine.soft_fault_cpu_s
        self._prefetch_validate_s = self.machine.prefetch_validate_s
        self._hard_fault_s = self.machine.hard_fault_cpu_s
        self._rescue_s = self.machine.rescue_cpu_s
        # Instrumentation bus (:mod:`repro.obs`), or None when disabled.
        self.obs = None
        # Wired in by the kernel after construction.
        self.paging_daemon = None
        self.releaser = None
        # "Large allocation" unit for the unusable-free index; policies may
        # override via the frag_extent parameter.
        self.frag_extent = DEFAULT_EXTENT_PAGES

    # -- address spaces -----------------------------------------------------
    def create_address_space(self, name: str) -> AddressSpace:
        aspace = AddressSpace(self.engine, self._next_asid, name, self.frame_table)
        self._next_asid += 1
        self.address_spaces.append(aspace)
        return aspace

    @property
    def free_pages(self) -> int:
        return self.freelist.free_count

    def _refresh_shared(self, aspace: AddressSpace) -> None:
        if aspace.shared_page is not None:
            aspace.shared_page.refresh()

    def _notify_daemon(self) -> None:
        if self.paging_daemon is not None:
            self.paging_daemon.notify()

    def _emit_fault(self, aspace: AddressSpace, vpn: int, kind: str) -> None:
        obs = self.obs
        if obs is not None and obs.wants("vm.fault"):
            obs.emit(
                "vm.fault", {"kind": kind, "aspace": aspace.name, "vpn": vpn}
            )

    # -- the fast path ------------------------------------------------------
    def touch_fast(self, aspace: AddressSpace, vpn: int, write: bool) -> bool:
        """Attempt a TLB-hit touch.  Returns True on hit, False if the
        caller must take the slow path (``fault``).

        This is deliberately not a generator: resident touches are the
        common case and must cost nothing but a list index and one
        flags-word test.  The in-flight check rides along in the flags word
        (``F_IN_TRANSIT`` mirrors the event column), so hit/miss is one
        mask compare.
        """
        try:
            index = aspace.pt[vpn]
        except IndexError:
            return False
        if index < 0:
            return False
        flags = self._flags
        fl = flags[index]
        if fl & (F_SW_VALID | F_IN_TRANSIT) == F_SW_VALID:
            flags[index] = (
                fl | (F_REFERENCED | F_DIRTY) if write else fl | F_REFERENCED
            )
            return True
        return False

    def touch_run(
        self, aspace: AddressSpace, start: int, count: int, write: bool
    ) -> int:
        """Bulk fast path: touch the longest hit prefix of a page run.

        Equivalent to calling :meth:`touch_fast` on ``start``,
        ``start + 1``, ... in order and stopping at the first miss — same
        hit test, same flag side effects on exactly the hit frames, and
        the first page that needs the slow path (unmapped, I/O in flight,
        invalidated, or release-pending) is left for the caller's fault
        path.  Returns the number of leading hits (0..count).

        Classification in one pass is exact because the simulation is
        cooperative: nothing can change frame state between the touches of
        a run that performs no yields.
        """
        pt = aspace.pt
        end = start + count
        npt = len(pt)
        if end > npt:
            end = npt
        if end <= start:
            return 0
        return fastlane.touch_segment(
            pt[start:end],
            self._flags,
            F_SW_VALID | F_IN_TRANSIT,
            F_SW_VALID,
            (F_REFERENCED | F_DIRTY) if write else F_REFERENCED,
            True,
        )

    # -- the slow path ------------------------------------------------------
    def fault(self, task: SimTask, aspace: AddressSpace, vpn: int, write: bool):
        """Process generator: resolve a touch that missed the fast path.

        Returns the :class:`FaultKind` taken, for callers that record fault
        mixes.
        """
        # The task.system/wait_io/lock_acquire helpers are inlined throughout
        # this generator: each one is another generator frame the engine must
        # resume through on every one of ~10^5 faults per experiment, and
        # flattening them measurably cuts the dispatch cost.  The inlined
        # forms replicate the helpers' accounting exactly.
        engine = self.engine
        buckets = task.buckets
        flags = self._flags
        in_transit = self._in_transit
        pt = aspace.pt
        lock = aspace.lock
        sp = aspace.shared_page
        obs = self.obs
        while True:
            index = pt[vpn] if vpn < len(pt) else -1
            if index < 0:
                break
            inflight = in_transit[index]
            if inflight is not None:
                # A prefetch for this page is in flight; wait for the I/O
                # rather than starting a duplicate read.
                io_started = engine._now
                yield inflight
                buckets.stall_io += engine._now - io_started
                continue  # re-examine: the world may have moved
            fl = flags[index]
            if fl & F_SW_VALID:
                # Raced to validity (e.g. the in-flight prefetch finished
                # and another touch validated it first).
                flags[index] = (
                    fl | (F_REFERENCED | F_DIRTY) if write else fl | F_REFERENCED
                )
                if obs is not None:
                    self._emit_fault(aspace, vpn, FaultKind.PREFETCH_VALIDATE)
                return FaultKind.PREFETCH_VALIDATE
            if fl & F_RELEASE_PENDING:
                kind = FaultKind.RELEASE_REVALIDATE
                cost = self._soft_fault_s
            elif fl & F_INVALIDATED:
                kind = FaultKind.SOFT
                cost = self._soft_fault_s
            else:
                kind = FaultKind.PREFETCH_VALIDATE
                cost = self._prefetch_validate_s
            started = engine._now
            yield lock.acquire(task)
            buckets.stall_memory += engine._now - started
            try:
                if pt[vpn] != index:
                    # The releaser or the paging daemon freed the page while
                    # we queued for the lock; retry from the top (it may now
                    # be rescuable from the free list).
                    continue
                if cost > 0:
                    yield engine.timeout(cost)
                    buckets.system += cost
                if kind == FaultKind.RELEASE_REVALIDATE:
                    aspace.stats.release_revalidates += 1
                elif kind == FaultKind.SOFT:
                    aspace.stats.soft_faults += 1
                else:
                    aspace.stats.prefetch_validates += 1
                # Lock-queueing time: everything between the fault start and
                # the end of the handler that wasn't the handler's own CPU
                # cost.  Uncontended acquisition makes this an exact zero in
                # theory, but float rounding of now - started - cost can land
                # a hair below it, so clamp rather than accumulate negatives.
                wait = engine._now - started - cost
                if wait > 0.0:
                    aspace.stats.fault_wait_time += wait
                fl = flags[index]
                fl = (fl | F_SW_VALID | F_REFERENCED) & ~(
                    F_INVALIDATED | F_FROM_PREFETCH
                )
                if fl & F_RELEASE_PENDING:
                    # The re-reference sets the in-memory bit again, which
                    # is exactly what the releaser checks before freeing.
                    fl &= ~F_RELEASE_PENDING
                    if sp is not None:
                        sp.set_bit(vpn)
                if write:
                    fl |= F_DIRTY
                flags[index] = fl
            finally:
                lock.release()
            if sp is not None:
                sp.refresh()
            if obs is not None:
                self._emit_fault(aspace, vpn, kind)
            return kind

        # Not mapped: try to rescue it from the free list.
        index = self.freelist.rescue(aspace, vpn)
        if index is not None:
            # Re-map immediately — before any yield — so no concurrent
            # prefetch can allocate a second frame for this vpn.
            flags[index] = (flags[index] | F_PRESENT) & ~(
                F_SW_VALID | F_INVALIDATED | F_FROM_PREFETCH | F_RELEASE_PENDING
            )
            aspace.reattach(vpn, index)
            aspace.stats.rescues += 1
            lock_started = engine._now
            yield lock.acquire(task)
            buckets.stall_memory += engine._now - lock_started
            try:
                cost = self._rescue_s
                if cost > 0:
                    yield engine.timeout(cost)
                    buckets.system += cost
            finally:
                lock.release()
            fl = flags[index] | F_SW_VALID | F_REFERENCED
            if write:
                fl |= F_DIRTY
            flags[index] = fl
            if sp is not None:
                sp.refresh()
            if obs is not None:
                self._emit_fault(aspace, vpn, FaultKind.RESCUE)
            return FaultKind.RESCUE

        # Hard fault: allocate and read from swap.
        aspace.stats.hard_faults += 1
        index = yield from self.allocate_blocking(task)
        aspace.attach(vpn, index)
        aspace.stats.allocations += 1
        inflight = engine.event()
        in_transit[index] = inflight
        flags[index] |= F_IN_TRANSIT
        lock_started = engine._now
        yield lock.acquire(task)
        buckets.stall_memory += engine._now - lock_started
        try:
            cost = self._hard_fault_s
            if cost > 0:
                yield engine.timeout(cost)
                buckets.system += cost
        finally:
            lock.release()
        io = self.swap.read_page(aspace.asid, vpn, purpose="demand")
        io_started = engine._now
        yield io
        buckets.stall_io += engine._now - io_started
        in_transit[index] = None
        inflight.succeed()
        fl = (flags[index] | F_SW_VALID | F_REFERENCED) & ~F_IN_TRANSIT
        if write:
            fl |= F_DIRTY
        flags[index] = fl
        if sp is not None:
            sp.refresh()
        if obs is not None:
            self._emit_fault(aspace, vpn, FaultKind.HARD)
        return FaultKind.HARD

    # -- allocation ---------------------------------------------------------
    def allocate_blocking(self, task: SimTask):
        """Process generator: pop a free frame index, blocking while memory
        is exhausted (the "stalled for unavailable resources" component)."""
        first = True
        while True:
            index = self.freelist.pop()
            if index is not None:
                self.stats.total_allocations += 1
                if self.freelist.free_count < self.tunables.min_freemem_pages:
                    self._notify_daemon()
                return index
            if first:
                self.stats.low_memory_stalls += 1
                first = False
            self._notify_daemon()
            yield from task.wait_memory(self.freelist.wait_for_free())

    def allocate_nowait(self) -> Optional[int]:
        """Pop a free frame index or None (prefetch path: never blocks)."""
        index = self.freelist.pop()
        if index is not None:
            self.stats.total_allocations += 1
            if self.freelist.free_count < self.tunables.min_freemem_pages:
                self._notify_daemon()
        return index

    # -- prefetch (Section 3.1.2) --------------------------------------------
    def prefetch_page(self, task: SimTask, aspace: AddressSpace, vpn: int):
        """Process generator: service one prefetch request.

        Mirrors the PagingDirected PM: if there is no free memory the
        request is discarded immediately (never steals to satisfy a
        prefetch); on completion the page is left unvalidated with no TLB
        entry.  Returns True if a page was brought in.
        """
        obs = self.obs
        flags = self._flags
        if aspace.is_present(vpn):
            # Already in memory (possibly with the I/O still in flight).
            aspace.stats.prefetches_duplicate += 1
            if obs is not None:
                obs.emit(
                    "vm.prefetch",
                    {"aspace": aspace.name, "vpn": vpn, "outcome": "duplicate"},
                )
            return False
        index = self.freelist.rescue(aspace, vpn)
        if index is not None:
            # Recoverable from the free list without any I/O.
            flags[index] = (
                flags[index] | F_PRESENT | F_FROM_PREFETCH
            ) & ~(F_SW_VALID | F_INVALIDATED | F_RELEASE_PENDING)
            aspace.reattach(vpn, index)
            aspace.stats.rescues += 1
            if obs is not None:
                obs.emit(
                    "vm.prefetch",
                    {"aspace": aspace.name, "vpn": vpn, "outcome": "rescued"},
                )
            return True
        index = self.allocate_nowait()
        if index is None:
            aspace.stats.prefetches_discarded += 1
            self._notify_daemon()
            if obs is not None:
                obs.emit(
                    "vm.prefetch",
                    {"aspace": aspace.name, "vpn": vpn, "outcome": "discarded"},
                )
            return False
        aspace.attach(vpn, index)
        aspace.stats.allocations += 1
        aspace.stats.prefetches_issued += 1
        if obs is not None:
            obs.emit(
                "vm.prefetch",
                {"aspace": aspace.name, "vpn": vpn, "outcome": "issued"},
            )
        flags[index] |= F_FROM_PREFETCH | F_IN_TRANSIT
        engine = self.engine
        inflight = engine.event()
        self._in_transit[index] = inflight
        io = self.swap.read_page(aspace.asid, vpn, purpose="prefetch")
        # task.wait_io inlined: one less generator frame on a path that runs
        # for every surviving prefetch (accounting is identical — a failed
        # wait charges nothing, exactly like the helper).
        io_started = engine._now
        try:
            yield io
        except DiskIOError:
            # Catastrophic I/O failure (the swap layer retries and fails
            # over internally, so this means no spindle is left).  A
            # prefetch is advisory: drop it and recycle the frame instead
            # of crashing the worker — if the page is really needed a
            # demand fault will surface the problem on the application.
            self._in_transit[index] = None
            inflight.succeed()
            aspace.detach(vpn)
            flags[index] &= ~(F_PRESENT | F_IN_TRANSIT)
            self.frame_table.reset_identity(index)
            self.freelist.push(index, FREED_BY_EXIT)
            aspace.stats.prefetches_failed += 1
            if obs is not None:
                obs.emit(
                    "vm.prefetch",
                    {"aspace": aspace.name, "vpn": vpn, "outcome": "failed"},
                )
            self._refresh_shared(aspace)
            return False
        task.buckets.stall_io += engine._now - io_started
        self._in_transit[index] = None
        flags[index] &= ~F_IN_TRANSIT
        inflight.succeed()
        # Deliberately NOT validated: sw_valid stays False so the first real
        # touch pays the cheap prefetch_validate cost instead of displacing
        # TLB entries now.
        self._refresh_shared(aspace)
        return True

    # -- release (Section 3.1.2) ----------------------------------------------
    def request_release(self, aspace: AddressSpace, vpns: List[int]) -> int:
        """PM-side half of a release request: clear the in-memory bits and
        hand the work to the releaser daemon.  Returns pages accepted.

        Clearing ``sw_valid`` is what lets a re-reference be *detected*: the
        touch takes a cheap revalidation fault that sets the bit again, and
        the releaser skips the page.
        """
        flags = self._flags
        in_transit = self._in_transit
        pt = aspace.pt
        npt = len(pt)
        shared = aspace.shared_page
        accepted: List[int] = []
        for vpn in vpns:
            index = pt[vpn] if vpn < npt else -1
            if index < 0 or in_transit[index] is not None:
                continue
            fl = flags[index]
            if fl & F_RELEASE_PENDING:
                continue
            flags[index] = (fl | F_RELEASE_PENDING) & ~(
                F_SW_VALID | F_REFERENCED
            )
            if shared is not None:
                shared.clear_bit(vpn)
            accepted.append(vpn)
        if accepted and self.releaser is not None:
            self.releaser.enqueue(aspace, accepted)
        self._refresh_shared(aspace)
        if self.obs is not None:
            self.obs.emit(
                "vm.release_request",
                {"aspace": aspace.name, "accepted": len(accepted)},
            )
        return len(accepted)

    def release_inline(self, task: SimTask, aspace: AddressSpace, vpns: List[int]):
        """Process generator: free released pages synchronously in the
        calling task (the ``user-mode`` policy's hint path).

        Unlike :meth:`request_release` there is no daemon hand-off: the
        caller holds its own request, takes the address-space lock in the
        same batch sizes the releaser would, and pays the same per-page free
        cost — user-mode page management in the style of Douglas.  Pages
        touched since the runtime layer filtered the hint are skipped only
        if they are wired or have I/O in flight; there is no
        release-pending window for a re-reference to cancel.  Returns pages
        freed.
        """
        tunables = self.tunables
        batch_size = tunables.releaser_lock_batch_pages
        per_page = tunables.releaser_per_page_free_s
        flags = self._flags
        in_transit = self._in_transit
        pt = aspace.pt
        npt = len(pt)
        stats = self.stats
        stats.releaser_requests += 1
        freed_total = 0
        for start in range(0, len(vpns), batch_size):
            batch = vpns[start : start + batch_size]
            yield from task.lock_acquire(aspace.lock)
            freed = 0
            try:
                for vpn in batch:
                    index = pt[vpn] if vpn < npt else -1
                    if index < 0 or not flags[index] & F_PRESENT:
                        stats.releaser_skipped_absent += 1
                        continue
                    if flags[index] & F_WIRED or in_transit[index] is not None:
                        stats.releaser_skipped_referenced += 1
                        continue
                    self.free_frame(aspace, index, FREED_BY_RELEASE)
                    freed += 1
                if freed:
                    yield from task.system(freed * per_page)
            finally:
                aspace.lock.release()
            stats.releaser_pages_freed += freed
            freed_total += freed
        self._refresh_shared(aspace)
        if self.obs is not None:
            self.obs.emit(
                "vm.release",
                {
                    "aspace": aspace.name,
                    "requested": len(vpns),
                    "freed": freed_total,
                },
            )
        return freed_total

    # -- freeing ------------------------------------------------------------
    def free_frame(self, aspace: AddressSpace, index: int, freed_by: int) -> None:
        """Detach a page and free its frame (writing back first if dirty).

        Called by the daemons with the address-space lock held; the dirty
        writeback itself happens off-lock in a spawned process, and the
        frame only reaches the free list once the write completes.
        """
        flags = self._flags
        aspace.detach(self._vpns[index])
        fl = flags[index] & ~(F_PRESENT | F_SW_VALID)
        flags[index] = fl
        if freed_by == FREED_BY_DAEMON:
            aspace.stats.pages_stolen += 1
        elif freed_by == FREED_BY_RELEASE:
            aspace.stats.pages_released += 1
        if fl & F_DIRTY:
            aspace.stats.writebacks += 1
            if freed_by == FREED_BY_DAEMON:
                self.stats.daemon_writebacks += 1
            else:
                self.stats.releaser_writebacks += 1
            self._writeback_then_free(aspace.asid, index, freed_by)
        else:
            self.freelist.push(index, freed_by)

    def _writeback_then_free(self, asid: int, index: int, freed_by: int) -> None:
        # The vpn column stays valid for the whole writeback: the frame is
        # not on the free list yet, so nothing can reallocate or rescue it.
        vpn = self._vpns[index]

        def run():
            io = self.swap.write_page(asid, vpn)
            try:
                yield io
            except DiskIOError:
                # Every spindle is gone: the copy cannot be persisted.  The
                # page's swap identity is now a lie, so destroy it before
                # recycling the frame — a later fault re-reads (and fails
                # loudly on the application path) instead of silently
                # rescuing data that was never written.
                self.stats.writeback_failures += 1
                self.frame_table.reset_identity(index)
            self._flags[index] &= ~F_DIRTY
            self.freelist.push(index, freed_by)

        self.engine.process(run(), name="writeback")

    # -- reporting ------------------------------------------------------------
    def sample_fragmentation(self):
        """Observe the free list's shape (pure measurement: no events, no
        simulated time, so it can never perturb the golden digests)."""
        sample = measure_fragmentation(self.frame_table, self.frag_extent)
        self.stats.frag.record(sample)
        obs = self.obs
        if obs is not None and obs.wants("policy.frag"):
            obs.emit(
                "policy.frag",
                {
                    "free": sample.free_frames,
                    "runs": sample.free_runs,
                    "largest": sample.largest_free_extent,
                    "unusable_free_index": sample.unusable_free_index,
                },
            )
        return sample

    def finalize_stats(self) -> VmStats:
        """Mirror free-list counters into the VmStats snapshot."""
        self.sample_fragmentation()
        stats = self.stats
        freelist = self.freelist
        stats.freed_by_daemon = freelist.pushes_by_daemon
        stats.freed_by_release = freelist.pushes_by_release
        stats.rescued_from_daemon = freelist.rescues_from_daemon
        stats.rescued_from_release = freelist.rescues_from_release
        return stats
