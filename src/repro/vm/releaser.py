"""The releaser daemon: specialised reclamation of pre-identified pages.

Section 3.1.2 of the paper: release requests are queued to a new system
daemon that "functions similarly to the paging daemon, but is specialized to
reclaim only the pages indicated by the application".  Before freeing each
page it re-checks that the page has not been referenced again (by a prefetch
or a real reference) since the request was made.  Because the pages are
pre-identified it works in much smaller lock batches and does far less work
per page than the paging daemon — which is why explicit releasing causes so
much less lock contention (Section 4.3).

Freed pages go to the *end* of the free list so that pages released too
early can still be rescued.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.config import OsTunables
from repro.sim.engine import Engine
from repro.sim.sync import Store
from repro.sim.task import SimTask
from repro.vm.frames import (
    F_PRESENT,
    F_REFERENCED,
    F_RELEASE_PENDING,
    F_SW_VALID,
    FREED_BY_RELEASE,
)
from repro.vm.pagetable import AddressSpace

__all__ = ["ReleaseWorkItem", "Releaser"]


@dataclass
class ReleaseWorkItem:
    """One release request handed from the PM to the releaser."""

    aspace: AddressSpace
    vpns: List[int]


class Releaser:
    """The releasing daemon and its work queue."""

    def __init__(self, engine: Engine, vm, tunables: OsTunables) -> None:
        self.engine = engine
        self.vm = vm
        self.tunables = tunables
        self.task = SimTask(engine, "releaser")
        self.queue = Store(engine, name="releaser-queue")
        self._process = None

    def start(self) -> None:
        if self._process is None:
            self._process = self.engine.process(self._run(), name="releaser")

    def enqueue(self, aspace: AddressSpace, vpns: List[int]) -> None:
        self.vm.stats.releaser_requests += 1
        self.queue.put(ReleaseWorkItem(aspace, list(vpns)))

    @property
    def backlog(self) -> int:
        return len(self.queue)

    def _run(self):
        batch_size = self.tunables.releaser_lock_batch_pages
        per_page = self.tunables.releaser_per_page_free_s
        vm = self.vm
        table = vm.frame_table
        flags = table.flags
        in_transit = table.in_transit
        # Freeable iff release still pending and neither referenced nor
        # revalidated since the request was queued.
        check_mask = F_RELEASE_PENDING | F_REFERENCED | F_SW_VALID
        engine = self.engine
        task = self.task
        buckets = task.buckets
        queue_get = self.queue.get
        free_frame = vm.free_frame
        stats = vm.stats
        while True:
            item: ReleaseWorkItem = yield queue_get()
            started = engine._now
            freed_before = stats.releaser_pages_freed
            aspace = item.aspace
            vpns = item.vpns
            pt = aspace.pt
            npt = len(pt)
            lock = aspace.lock
            for start in range(0, len(vpns), batch_size):
                batch = vpns[start : start + batch_size]
                # task.lock_acquire / task.system inlined: two fewer
                # generator frames per lock batch, identical accounting.
                lock_started = engine._now
                yield lock.acquire(task)
                buckets.stall_memory += engine._now - lock_started
                freed = 0
                try:
                    for vpn in batch:
                        index = pt[vpn] if vpn < npt else -1
                        if index < 0 or not flags[index] & F_PRESENT:
                            stats.releaser_skipped_absent += 1
                            continue
                        if (
                            flags[index] & check_mask != F_RELEASE_PENDING
                            or in_transit[index] is not None
                        ):
                            # Referenced again (the in-memory bit is set
                            # once more) since the request: leave it alone.
                            stats.releaser_skipped_referenced += 1
                            continue
                        free_frame(aspace, index, FREED_BY_RELEASE)
                        freed += 1
                    if freed:
                        cost = freed * per_page
                        if cost > 0:
                            yield engine.timeout(cost)
                            buckets.system += cost
                finally:
                    lock.release()
                stats.releaser_pages_freed += freed
            if aspace.shared_page is not None:
                aspace.shared_page.refresh()
            stats.releaser_active_time += engine._now - started
            if vm.obs is not None:
                vm.obs.emit(
                    "vm.release",
                    {
                        "aspace": aspace.name,
                        "requested": len(vpns),
                        "freed": vm.stats.releaser_pages_freed - freed_before,
                    },
                )
