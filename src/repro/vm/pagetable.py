"""Per-process address spaces: page table, memory lock, and layout.

An :class:`AddressSpace` is the unit the paging daemon and releaser take
locks on.  The paper attributes much of prefetching-without-releasing's
slowdown to contention on exactly these locks between the fault handler and
the paging daemon (Section 4.3), so the lock is a first-class object with
contention accounting.

The address space also provides a simple segment allocator so workloads can
lay out their arrays at stable virtual page numbers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.sim.engine import Engine
from repro.sim.sync import Lock
from repro.vm.frames import Frame
from repro.vm.stats import AddressSpaceStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.shared_page import SharedPage

__all__ = ["AddressSpace"]


class AddressSpace:
    """One process's virtual address space, at page granularity."""

    def __init__(self, engine: Engine, asid: int, name: str) -> None:
        self.engine = engine
        self.asid = asid
        self.name = name
        self.pages: Dict[int, Frame] = {}
        self.lock = Lock(engine, name=f"aslock:{name}")
        self.stats = AddressSpaceStats()
        self.shared_page: Optional["SharedPage"] = None
        self._next_vpn = 0
        self._segments: Dict[str, range] = {}

    # -- layout -----------------------------------------------------------
    def map_segment(self, label: str, pages: int) -> range:
        """Reserve a contiguous run of virtual pages for an array."""
        if pages < 1:
            raise ValueError(f"segment {label!r} needs at least one page")
        if label in self._segments:
            raise ValueError(f"segment {label!r} already mapped")
        segment = range(self._next_vpn, self._next_vpn + pages)
        self._segments[label] = segment
        self._next_vpn += pages
        return segment

    def segment(self, label: str) -> range:
        return self._segments[label]

    @property
    def mapped_pages(self) -> int:
        return self._next_vpn

    # -- residency --------------------------------------------------------
    @property
    def resident(self) -> int:
        return len(self.pages)

    def frame_for(self, vpn: int) -> Optional[Frame]:
        return self.pages.get(vpn)

    def attach(self, vpn: int, frame: Frame) -> None:
        """Install a frame for a virtual page."""
        if vpn in self.pages:
            raise ValueError(f"{self.name}: vpn {vpn} already mapped")
        frame.owner = self
        frame.vpn = vpn
        frame.present = True
        self.pages[vpn] = frame
        if self.shared_page is not None:
            self.shared_page.set_bit(vpn)

    def detach(self, vpn: int) -> Frame:
        """Remove the mapping for a virtual page (page being freed)."""
        frame = self.pages.pop(vpn)
        if self.shared_page is not None:
            self.shared_page.clear_bit(vpn)
        return frame

    def is_present(self, vpn: int) -> bool:
        return vpn in self.pages

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AddressSpace({self.name}, resident={self.resident})"
