"""Per-process address spaces: page table, memory lock, and layout.

An :class:`AddressSpace` is the unit the paging daemon and releaser take
locks on.  The paper attributes much of prefetching-without-releasing's
slowdown to contention on exactly these locks between the fault handler and
the paging daemon (Section 4.3), so the lock is a first-class object with
contention accounting.

The address space also provides a simple segment allocator so workloads can
lay out their arrays at stable virtual page numbers.

The page table itself is a flat list, ``pt``, indexed by virtual page
number: ``pt[vpn]`` is the backing frame index or ``-1`` when the page is
not resident.  ``map_segment`` pre-sizes the list, so the fault handler's
lookup is a single list index instead of a dict probe, and residency is a
maintained counter instead of ``len(dict)``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.sim.engine import Engine
from repro.sim.sync import Lock
from repro.vm.frames import F_PRESENT, Frame, FrameTable
from repro.vm.stats import AddressSpaceStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.shared_page import SharedPage

__all__ = ["AddressSpace"]


class AddressSpace:
    """One process's virtual address space, at page granularity."""

    def __init__(
        self, engine: Engine, asid: int, name: str, frame_table: FrameTable
    ) -> None:
        self.engine = engine
        self.asid = asid
        self.name = name
        self.frame_table = frame_table
        # Flat page table: pt[vpn] is a frame index, -1 means not resident.
        self.pt: List[int] = []
        self._resident = 0
        self.lock = Lock(engine, name=f"aslock:{name}")
        self.stats = AddressSpaceStats()
        self.shared_page: Optional["SharedPage"] = None
        self._next_vpn = 0
        self._segments: Dict[str, range] = {}

    # -- layout -----------------------------------------------------------
    def map_segment(self, label: str, pages: int) -> range:
        """Reserve a contiguous run of virtual pages for an array."""
        if pages < 1:
            raise ValueError(f"segment {label!r} needs at least one page")
        if label in self._segments:
            raise ValueError(f"segment {label!r} already mapped")
        segment = range(self._next_vpn, self._next_vpn + pages)
        self._segments[label] = segment
        self._next_vpn += pages
        if len(self.pt) < self._next_vpn:
            self.pt.extend([-1] * (self._next_vpn - len(self.pt)))
        return segment

    def segment(self, label: str) -> range:
        return self._segments[label]

    @property
    def mapped_pages(self) -> int:
        return self._next_vpn

    # -- residency --------------------------------------------------------
    @property
    def resident(self) -> int:
        return self._resident

    def frame_index(self, vpn: int) -> int:
        """Backing frame index for a vpn, or -1 when not resident."""
        pt = self.pt
        return pt[vpn] if 0 <= vpn < len(pt) else -1

    def frame_for(self, vpn: int) -> Optional[Frame]:
        """View of the backing frame, or None (tests / cold paths)."""
        index = self.frame_index(vpn)
        return Frame(self.frame_table, index) if index >= 0 else None

    def resident_vpns(self) -> List[int]:
        """All resident vpns, ascending (tests / reporting only)."""
        return [vpn for vpn, index in enumerate(self.pt) if index >= 0]

    def attach(self, vpn: int, index: int) -> None:
        """Install a frame for a virtual page."""
        pt = self.pt
        if vpn >= len(pt):
            pt.extend([-1] * (vpn + 1 - len(pt)))
        elif pt[vpn] >= 0:
            raise ValueError(f"{self.name}: vpn {vpn} already mapped")
        table = self.frame_table
        table.owner[index] = self
        table.vpn[index] = vpn
        table.flags[index] |= F_PRESENT
        pt[vpn] = index
        self._resident += 1
        if self.shared_page is not None:
            self.shared_page.set_bit(vpn)

    def reattach(self, vpn: int, index: int) -> None:
        """Re-install a rescued frame whose identity columns are intact."""
        pt = self.pt
        if pt[vpn] >= 0:  # pragma: no cover - defensive
            raise ValueError(f"{self.name}: vpn {vpn} already mapped")
        pt[vpn] = index
        self._resident += 1
        if self.shared_page is not None:
            self.shared_page.set_bit(vpn)

    def detach(self, vpn: int) -> int:
        """Remove the mapping for a virtual page (page being freed)."""
        pt = self.pt
        index = pt[vpn]
        if index < 0:
            raise KeyError(vpn)
        pt[vpn] = -1
        self._resident -= 1
        if self.shared_page is not None:
            self.shared_page.clear_bit(vpn)
        return index

    def is_present(self, vpn: int) -> bool:
        return self.frame_index(vpn) >= 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AddressSpace({self.name}, resident={self.resident})"
