"""Physical frames as parallel arrays, plus the free list with rescue.

The free list is the mechanism behind two of the paper's observations:

1. *"Released pages are placed at the end of the free list, giving pages
   that were released too early a chance to be rescued."* (Section 3.1.2)
2. Figure 9's breakdown of freed pages into daemon-freed vs. release-freed,
   each with a rescued fraction.

A frame pushed onto the list keeps its ``(address space, vpn)`` identity
until it is popped for reallocation; a fault on that page meanwhile can
*rescue* it — reattach it without any I/O.

Data layout
-----------
Frame state lives in :class:`FrameTable` as parallel columns indexed by
frame number: the nine per-frame bits are packed into one int per frame in
``flags``, the backing vpn and freed-by code are ``array`` columns, and the
owner/in-transit references are plain lists.  The clock hand, free list,
releaser, and fault handler all work on integer frame indices; the
:class:`Frame` class is only a *view* — a (table, index) proxy exposing the
old attribute API for tests and debugging, never used on hot paths.

``flags`` is a plain list rather than an ``array``: reading ``array('l')``
boxes a fresh int object on every access, while a list returns the stored
reference — measurably cheaper on the touch/fault/clock paths that read
flags millions of times per run.
"""

from __future__ import annotations

from array import array
from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

from repro.sim.engine import Engine, Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.vm.pagetable import AddressSpace

__all__ = [
    "Frame",
    "FrameTable",
    "FreeList",
    "F_PRESENT",
    "F_SW_VALID",
    "F_REFERENCED",
    "F_DIRTY",
    "F_INVALIDATED",
    "F_FROM_PREFETCH",
    "F_RELEASE_PENDING",
    "F_ON_FREE_LIST",
    "F_WIRED",
    "F_IN_TRANSIT",
]

# Per-frame state bits, packed into FrameTable.flags[index].
F_PRESENT = 1 << 0
F_SW_VALID = 1 << 1
F_REFERENCED = 1 << 2
F_DIRTY = 1 << 3
F_INVALIDATED = 1 << 4
F_FROM_PREFETCH = 1 << 5
F_RELEASE_PENDING = 1 << 6
F_ON_FREE_LIST = 1 << 7
F_WIRED = 1 << 8
# Mirror of ``in_transit[index] is not None``, kept in sync wherever the
# event column is written.  Folding the in-flight test into the flags word
# lets the touch fast path (and the bulk run classifier) decide hit/miss
# with a single mask compare over one column instead of two list reads.
F_IN_TRANSIT = 1 << 9

# reset_identity() clears the page-content bits but preserves the frame's
# lifecycle bits (present / on-free-list / wired).
_IDENTITY_BITS = (
    F_SW_VALID
    | F_REFERENCED
    | F_DIRTY
    | F_INVALIDATED
    | F_FROM_PREFETCH
    | F_RELEASE_PENDING
)

# Who freed a frame — needed for Figure 9's rescued-fraction breakdown.
# Small ints so the column packs into an array('b').
FREED_BY_INIT = 0
FREED_BY_DAEMON = 1
FREED_BY_RELEASE = 2
FREED_BY_EXIT = 3
FREED_BY_NAMES = ("init", "daemon", "release", "exit")


class FrameTable:
    """All physical frames, in clock-hand order, as parallel columns."""

    def __init__(self, total_frames: int) -> None:
        if total_frames < 1:
            raise ValueError("need at least one frame")
        self.nframes = total_frames
        self.flags: List[int] = [0] * total_frames
        self.vpn = array("l", [-1]) * total_frames
        self.freed_by = array("b", [FREED_BY_INIT]) * total_frames
        self.owner: List[Optional["AddressSpace"]] = [None] * total_frames
        self.in_transit: List[Optional[Event]] = [None] * total_frames

    def __len__(self) -> int:
        return self.nframes

    def __getitem__(self, index: int) -> "Frame":
        if index < 0 or index >= self.nframes:
            raise IndexError(index)
        return Frame(self, index)

    def __iter__(self):
        table = self
        return (Frame(table, i) for i in range(self.nframes))

    def is_active(self, index: int) -> bool:
        """Attached to an address space and eligible for the clock hand."""
        return (
            self.flags[index] & (F_PRESENT | F_WIRED) == F_PRESENT
            and self.owner[index] is not None
        )

    def active_count(self) -> int:
        return sum(1 for i in range(self.nframes) if self.is_active(i))

    def reset_identity(self, index: int) -> None:
        """Forget whose page this frame holds (content bits only)."""
        self.owner[index] = None
        self.vpn[index] = -1
        self.flags[index] &= ~_IDENTITY_BITS


def _flag_property(bit: int):
    def fget(self) -> bool:
        return bool(self.table.flags[self.index] & bit)

    def fset(self, value: bool) -> None:
        if value:
            self.table.flags[self.index] |= bit
        else:
            self.table.flags[self.index] &= ~bit

    return property(fget, fset)


class Frame:
    """A (table, index) *view* of one physical frame.

    Exposes the classic attribute API (``present``, ``sw_valid``, …) on top
    of the column layout.  Views are cheap throwaway proxies for tests,
    debugging, and cold paths; hot code indexes the columns directly.

    ``sw_valid`` models the MIPS software-managed valid bit: the paging
    daemon clears it to simulate a reference bit, and the next touch by the
    owner takes a *soft fault* to re-validate.  ``invalidated`` distinguishes
    a daemon invalidation from a never-validated prefetched page (which pays
    only the cheap ``prefetch_validate`` cost on first touch).
    """

    __slots__ = ("table", "index")

    def __init__(self, table: FrameTable, index: int) -> None:
        self.table = table
        self.index = index

    present = _flag_property(F_PRESENT)
    sw_valid = _flag_property(F_SW_VALID)
    referenced = _flag_property(F_REFERENCED)
    dirty = _flag_property(F_DIRTY)
    invalidated = _flag_property(F_INVALIDATED)
    from_prefetch = _flag_property(F_FROM_PREFETCH)
    release_pending = _flag_property(F_RELEASE_PENDING)
    on_free_list = _flag_property(F_ON_FREE_LIST)
    wired = _flag_property(F_WIRED)

    @property
    def owner(self) -> Optional["AddressSpace"]:
        return self.table.owner[self.index]

    @owner.setter
    def owner(self, value: Optional["AddressSpace"]) -> None:
        self.table.owner[self.index] = value

    @property
    def vpn(self) -> int:
        return self.table.vpn[self.index]

    @vpn.setter
    def vpn(self, value: int) -> None:
        self.table.vpn[self.index] = value

    @property
    def freed_by(self) -> int:
        return self.table.freed_by[self.index]

    @freed_by.setter
    def freed_by(self, value: int) -> None:
        self.table.freed_by[self.index] = value

    @property
    def in_transit(self) -> Optional[Event]:
        return self.table.in_transit[self.index]

    @in_transit.setter
    def in_transit(self, value: Optional[Event]) -> None:
        self.table.in_transit[self.index] = value
        if value is not None:
            self.table.flags[self.index] |= F_IN_TRANSIT
        else:
            self.table.flags[self.index] &= ~F_IN_TRANSIT

    @property
    def active(self) -> bool:
        return self.table.is_active(self.index)

    def reset_identity(self) -> None:
        self.table.reset_identity(self.index)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Frame)
            and other.table is self.table
            and other.index == self.index
        )

    def __hash__(self) -> int:
        return hash((id(self.table), self.index))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        owner = self.owner.name if self.owner is not None else None
        return f"Frame({self.index}, owner={owner}, vpn={self.vpn})"


class FreeList:
    """FIFO free list of frame *indices* with identity retention and rescue.

    Frames are appended at the tail and allocated from the head, so a freed
    page survives on the list for as long as it takes the allocation stream
    to consume everything ahead of it — the "rescue window".  Rescue removal
    from the middle is done lazily: the frame is marked off-list and skipped
    when the head reaches it.
    """

    def __init__(self, engine: Engine, frame_table: FrameTable) -> None:
        self.engine = engine
        self.table = frame_table
        self._queue: Deque[int] = deque(range(frame_table.nframes))
        self._identity: Dict[Tuple[int, int], int] = {}
        self._free_count = frame_table.nframes
        self._waiters: List[Event] = []
        # Statistics for Figure 9 / Table 3.
        self.pushes_by_daemon = 0
        self.pushes_by_release = 0
        self.rescues_from_daemon = 0
        self.rescues_from_release = 0
        self.allocations = 0
        self.identity_destroyed = 0
        flags = frame_table.flags
        for index in range(frame_table.nframes):
            flags[index] |= F_ON_FREE_LIST

    def __len__(self) -> int:
        return self._free_count

    @property
    def free_count(self) -> int:
        return self._free_count

    # -- freeing ----------------------------------------------------------
    def push(self, index: int, freed_by: int) -> None:
        """Append a frame at the tail, retaining its page identity."""
        table = self.table
        flags = table.flags
        fl = flags[index]
        if fl & F_ON_FREE_LIST:
            raise ValueError(f"frame {index} already free")
        flags[index] = (fl | F_ON_FREE_LIST) & ~(F_PRESENT | F_SW_VALID)
        table.freed_by[index] = freed_by
        if freed_by == FREED_BY_DAEMON:
            self.pushes_by_daemon += 1
        elif freed_by == FREED_BY_RELEASE:
            self.pushes_by_release += 1
        owner = table.owner[index]
        vpn = table.vpn[index]
        if owner is not None and vpn >= 0:
            if owner.frame_index(vpn) < 0:
                self._identity[(owner.asid, vpn)] = index
            else:
                # The vpn was re-faulted into a fresh frame while this one
                # sat in writeback: this copy is stale — stay anonymous.
                table.reset_identity(index)
        self._queue.append(index)
        self._free_count += 1
        if self._waiters:
            self._wake_waiters()

    # -- allocating -------------------------------------------------------
    def pop(self) -> Optional[int]:
        """Allocate the oldest free frame; destroys its old identity."""
        table = self.table
        flags = table.flags
        queue = self._queue
        while queue:
            index = queue.popleft()
            fl = flags[index]
            if not fl & F_ON_FREE_LIST:
                continue  # rescued earlier; lazy removal
            flags[index] = fl & ~F_ON_FREE_LIST
            self._free_count -= 1
            owner = table.owner[index]
            vpn = table.vpn[index]
            if owner is not None and vpn >= 0:
                key = (owner.asid, vpn)
                if self._identity.get(key) == index:
                    del self._identity[key]
                    self.identity_destroyed += 1
            table.reset_identity(index)
            self.allocations += 1
            return index
        return None

    def rescue(self, aspace: "AddressSpace", vpn: int) -> Optional[int]:
        """Pull a still-identified page back off the list, if present."""
        index = self._identity.pop((aspace.asid, vpn), None)
        if index is None:
            return None
        table = self.table
        fl = table.flags[index]
        if not fl & F_ON_FREE_LIST:  # pragma: no cover - defensive
            raise AssertionError("identity map out of sync with free list")
        table.flags[index] = fl & ~F_ON_FREE_LIST
        self._free_count -= 1
        freed_by = table.freed_by[index]
        if freed_by == FREED_BY_DAEMON:
            self.rescues_from_daemon += 1
        elif freed_by == FREED_BY_RELEASE:
            self.rescues_from_release += 1
        return index

    def rescuable(self, aspace: "AddressSpace", vpn: int) -> bool:
        return (aspace.asid, vpn) in self._identity

    def forget_identity(self, aspace: "AddressSpace", vpn: int) -> None:
        """Drop a stale identity: the page is being re-faulted into a new
        frame, so the free-list copy must never be rescued over it.  The
        frame itself stays queued and is later allocated as anonymous."""
        index = self._identity.pop((aspace.asid, vpn), None)
        if index is not None:
            self.table.reset_identity(index)

    # -- blocking ---------------------------------------------------------
    def wait_for_free(self) -> Event:
        """Event that fires the next time a frame is freed.

        If frames are free right now the event fires immediately, so callers
        can loop ``pop -> wait`` without races.
        """
        event = self.engine.event()
        if self._free_count > 0:
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def _wake_waiters(self) -> None:
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.succeed()
