"""Physical frames, the frame table, and the free list with rescue.

The free list is the mechanism behind two of the paper's observations:

1. *"Released pages are placed at the end of the free list, giving pages
   that were released too early a chance to be rescued."* (Section 3.1.2)
2. Figure 9's breakdown of freed pages into daemon-freed vs. release-freed,
   each with a rescued fraction.

A frame pushed onto the list keeps its ``(address space, vpn)`` identity
until it is popped for reallocation; a fault on that page meanwhile can
*rescue* it — reattach it without any I/O.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

from repro.sim.engine import Engine, Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.vm.pagetable import AddressSpace

__all__ = ["Frame", "FrameTable", "FreeList"]

# Who freed a frame — needed for Figure 9's rescued-fraction breakdown.
FREED_BY_INIT = "init"
FREED_BY_DAEMON = "daemon"
FREED_BY_RELEASE = "release"
FREED_BY_EXIT = "exit"


class Frame:
    """One physical page frame and all of its per-page state bits.

    ``sw_valid`` models the MIPS software-managed valid bit: the paging
    daemon clears it to simulate a reference bit, and the next touch by the
    owner takes a *soft fault* to re-validate.  ``invalidated`` distinguishes
    a daemon invalidation from a never-validated prefetched page (which pays
    only the cheap ``prefetch_validate`` cost on first touch).
    """

    __slots__ = (
        "index",
        "owner",
        "vpn",
        "present",
        "sw_valid",
        "referenced",
        "dirty",
        "invalidated",
        "from_prefetch",
        "release_pending",
        "on_free_list",
        "freed_by",
        "in_transit",
        "wired",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.owner: Optional["AddressSpace"] = None
        self.vpn: int = -1
        self.present = False
        self.sw_valid = False
        self.referenced = False
        self.dirty = False
        self.invalidated = False
        self.from_prefetch = False
        self.release_pending = False
        self.on_free_list = False
        self.freed_by = FREED_BY_INIT
        self.in_transit: Optional[Event] = None
        self.wired = False

    @property
    def active(self) -> bool:
        """Attached to an address space and eligible for the clock hand."""
        return self.present and self.owner is not None and not self.wired

    def reset_identity(self) -> None:
        self.owner = None
        self.vpn = -1
        self.dirty = False
        self.referenced = False
        self.sw_valid = False
        self.invalidated = False
        self.from_prefetch = False
        self.release_pending = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        owner = self.owner.name if self.owner is not None else None
        return f"Frame({self.index}, owner={owner}, vpn={self.vpn})"


class FrameTable:
    """All physical frames, in clock-hand order."""

    def __init__(self, total_frames: int) -> None:
        if total_frames < 1:
            raise ValueError("need at least one frame")
        self.frames: List[Frame] = [Frame(i) for i in range(total_frames)]

    def __len__(self) -> int:
        return len(self.frames)

    def __getitem__(self, index: int) -> Frame:
        return self.frames[index]

    def __iter__(self):
        return iter(self.frames)

    def active_count(self) -> int:
        return sum(1 for frame in self.frames if frame.active)


class FreeList:
    """FIFO free list with identity retention and rescue.

    Frames are appended at the tail and allocated from the head, so a freed
    page survives on the list for as long as it takes the allocation stream
    to consume everything ahead of it — the "rescue window".  Rescue removal
    from the middle is done lazily: the frame is marked off-list and skipped
    when the head reaches it.
    """

    def __init__(self, engine: Engine, frame_table: FrameTable) -> None:
        self.engine = engine
        self._queue: Deque[Frame] = deque()
        self._identity: Dict[Tuple[int, int], Frame] = {}
        self._free_count = 0
        self._waiters: List[Event] = []
        # Statistics for Figure 9 / Table 3.
        self.pushes_by_daemon = 0
        self.pushes_by_release = 0
        self.rescues_from_daemon = 0
        self.rescues_from_release = 0
        self.allocations = 0
        self.identity_destroyed = 0
        for frame in frame_table:
            frame.on_free_list = True
            self._queue.append(frame)
            self._free_count += 1

    def __len__(self) -> int:
        return self._free_count

    @property
    def free_count(self) -> int:
        return self._free_count

    # -- freeing ----------------------------------------------------------
    def push(self, frame: Frame, freed_by: str) -> None:
        """Append a frame at the tail, retaining its page identity."""
        if frame.on_free_list:
            raise ValueError(f"frame {frame.index} already free")
        frame.on_free_list = True
        frame.freed_by = freed_by
        frame.present = False
        frame.sw_valid = False
        if freed_by == FREED_BY_DAEMON:
            self.pushes_by_daemon += 1
        elif freed_by == FREED_BY_RELEASE:
            self.pushes_by_release += 1
        if frame.owner is not None and frame.vpn >= 0:
            if frame.vpn not in frame.owner.pages:
                self._identity[(frame.owner.asid, frame.vpn)] = frame
            else:
                # The vpn was re-faulted into a fresh frame while this one
                # sat in writeback: this copy is stale — stay anonymous.
                frame.reset_identity()
        self._queue.append(frame)
        self._free_count += 1
        self._wake_waiters()

    # -- allocating -------------------------------------------------------
    def pop(self) -> Optional[Frame]:
        """Allocate the oldest free frame; destroys its old identity."""
        while self._queue:
            frame = self._queue.popleft()
            if not frame.on_free_list:
                continue  # rescued earlier; lazy removal
            frame.on_free_list = False
            self._free_count -= 1
            if frame.owner is not None and frame.vpn >= 0:
                key = (frame.owner.asid, frame.vpn)
                if self._identity.get(key) is frame:
                    del self._identity[key]
                    self.identity_destroyed += 1
            frame.reset_identity()
            self.allocations += 1
            return frame
        return None

    def rescue(self, aspace: "AddressSpace", vpn: int) -> Optional[Frame]:
        """Pull a still-identified page back off the list, if present."""
        frame = self._identity.pop((aspace.asid, vpn), None)
        if frame is None:
            return None
        if not frame.on_free_list:  # pragma: no cover - defensive
            raise AssertionError("identity map out of sync with free list")
        frame.on_free_list = False
        self._free_count -= 1
        if frame.freed_by == FREED_BY_DAEMON:
            self.rescues_from_daemon += 1
        elif frame.freed_by == FREED_BY_RELEASE:
            self.rescues_from_release += 1
        return frame

    def rescuable(self, aspace: "AddressSpace", vpn: int) -> bool:
        return (aspace.asid, vpn) in self._identity

    def forget_identity(self, aspace: "AddressSpace", vpn: int) -> None:
        """Drop a stale identity: the page is being re-faulted into a new
        frame, so the free-list copy must never be rescued over it.  The
        frame itself stays queued and is later allocated as anonymous."""
        frame = self._identity.pop((aspace.asid, vpn), None)
        if frame is not None:
            frame.reset_identity()

    # -- blocking ---------------------------------------------------------
    def wait_for_free(self) -> Event:
        """Event that fires the next time a frame is freed.

        If frames are free right now the event fires immediately, so callers
        can loop ``pop -> wait`` without races.
        """
        event = self.engine.event()
        if self._free_count > 0:
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def _wake_waiters(self) -> None:
        if self._waiters:
            waiters, self._waiters = self._waiters, []
            for event in waiters:
                event.succeed()
