"""The paging daemon: IRIX's ``vhand`` as a two-handed clock.

The MIPS TLB has no hardware reference bits, so IRIX simulates them in
software: the leading clock hand *invalidates* mappings (clearing the valid
bit), and a page that gets re-referenced takes a soft fault which both
revalidates it and proves it is in use.  The trailing hand, a fixed spread
behind, steals pages that are still invalid and unreferenced.

Two properties of this design drive the paper's results:

1. Every invalidation of a live page turns into a **soft fault** for its
   owner (Figure 8), and the faults are served while the daemon may be
   holding the very address-space locks the fault handler needs.
2. The scan rate **scales with memory pressure**, so an aggressive
   prefetcher that keeps free memory pinned near zero makes the hands sweep
   at maximum speed — which is why prefetching-without-releasing evicts an
   idle interactive task's pages within a second or two, while plain demand
   paging takes many times longer (Figure 1).

Both hands sweep integer frame indices over the :class:`FrameTable`
columns: each candidate test is one flags-word mask compare, not a chain of
attribute loads.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.config import OsTunables
from repro.sim.engine import Engine, Event
from repro.sim.task import SimTask
from repro.vm.frames import (
    F_INVALIDATED,
    F_PRESENT,
    F_REFERENCED,
    F_SW_VALID,
    F_WIRED,
    FREED_BY_DAEMON,
)
from repro.vm.pagetable import AddressSpace

__all__ = ["PagingDaemon"]

# Clock-hand candidate masks over the packed frame flags.
_ACTIVE_MASK = F_PRESENT | F_WIRED  # active: present and not wired
_STEAL_MASK = F_PRESENT | F_WIRED | F_INVALIDATED | F_REFERENCED | F_SW_VALID
_STEAL_WANT = F_PRESENT | F_INVALIDATED


class PagingDaemon:
    """``vhand``: wakes under memory pressure and runs the clock."""

    def __init__(self, engine: Engine, vm, tunables: OsTunables) -> None:
        self.engine = engine
        self.vm = vm
        self.tunables = tunables
        self.task = SimTask(engine, "vhand")
        nframes = len(vm.frame_table)
        self._nframes = nframes
        self._hand = 0  # trailing (stealing) hand position
        self._spread = max(1, int(nframes * tunables.clock_hand_spread_fraction))
        self._wake: Optional[Event] = None
        self._process = None

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        if self._process is None:
            self._process = self.engine.process(self._run(), name="vhand")

    def notify(self) -> None:
        """Wake the daemon immediately (called on allocation pressure)."""
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    # -- pressure -----------------------------------------------------------
    def _shortage(self) -> bool:
        return self.vm.freelist.free_count < self.tunables.min_freemem_pages

    def _target(self) -> int:
        return self.tunables.min_freemem_pages + self.tunables.free_target_slack_pages

    def scan_rate(self) -> float:
        """Pages scanned per second, scaled by the shortfall against the
        replenish target (min_freemem + slack).

        Sustained allocation pressure therefore keeps the hands sweeping
        near the maximum rate, which is what evicts an idle task's pages
        within seconds under an aggressive prefetcher.
        """
        tunables = self.tunables
        free = self.vm.freelist.free_count
        target = self._target()
        if target <= 0:
            return tunables.daemon_base_scan_rate_pages_s
        pressure = max(0.0, min(1.0, (target - free) / target))
        return tunables.daemon_base_scan_rate_pages_s + pressure * (
            tunables.daemon_max_scan_rate_pages_s
            - tunables.daemon_base_scan_rate_pages_s
        )

    # -- main loop -----------------------------------------------------------
    def _run(self):
        while True:
            if not self._shortage():
                self._wake = self.engine.event()
                yield self.engine.any_of(
                    [self._wake, self.engine.timeout(self.tunables.daemon_wake_interval_s)]
                )
                self._wake = None
                continue
            self.vm.stats.daemon_runs += 1
            started = self.engine.now
            stolen = yield from self._clock_pass()
            self.vm.stats.daemon_active_time += self.engine.now - started
            # Fragmentation is sampled right after every sweep: that is when
            # the free list's shape just changed, and the measurement is pure
            # (no events), so the sweep's own timing is untouched.
            self.vm.sample_fragmentation()
            if self.vm.obs is not None:
                self.vm.obs.emit("vm.clock_pass", {"stolen": stolen})

    def _clock_pass(self):
        """Advance the hands until free memory reaches the target or a full
        revolution completes."""
        vm = self.vm
        tunables = self.tunables
        target = self._target()
        batch = tunables.daemon_lock_batch_pages
        steps = 0
        stolen_total = 0
        while vm.freelist.free_count < target and steps < self._nframes:
            lead_frames, steal_candidates = self._collect_batch(batch)
            stolen = yield from self._process_batch(lead_frames, steal_candidates)
            stolen_total += stolen
            steps += batch
            # Pacing: the hands move at the pressure-scaled scan rate.  The
            # pacing delay happens with no locks held; only the PTE work
            # above is done under the address-space locks.
            rate = self.scan_rate()
            work_time = batch * tunables.daemon_per_page_scan_s + (
                stolen * tunables.daemon_per_page_steal_s
            )
            pace = max(0.0, batch / rate - work_time)
            if pace > 0:
                yield self.engine.timeout(pace)
        return stolen_total

    def _collect_batch(self, batch: int):
        """Gather the frame indices the two hands will pass over this batch."""
        table = self.vm.frame_table
        flags = table.flags
        in_transit = table.in_transit
        nframes = self._nframes
        hand = self._hand
        spread = self._spread
        lead_frames: List[int] = []
        steal_candidates: List[int] = []
        for offset in range(batch):
            trail_index = (hand + offset) % nframes
            lead_index = (trail_index + spread) % nframes
            if (
                flags[lead_index] & _ACTIVE_MASK == F_PRESENT
                and in_transit[lead_index] is None
            ):
                lead_frames.append(lead_index)
            if (
                flags[trail_index] & _STEAL_MASK == _STEAL_WANT
                and in_transit[trail_index] is None
            ):
                steal_candidates.append(trail_index)
        self._hand = (hand + batch) % nframes
        return lead_frames, steal_candidates

    def _process_batch(self, lead_frames: List[int], steal_candidates: List[int]):
        """Invalidate and steal, holding each owner's lock once per batch."""
        vm = self.vm
        tunables = self.tunables
        table = vm.frame_table
        flags = table.flags
        in_transit = table.in_transit
        owner_col = table.owner
        by_owner: Dict[AddressSpace, List[int]] = {}
        for index in lead_frames:
            owner = owner_col[index]
            if owner is not None:
                by_owner.setdefault(owner, []).append(index)
        steals_by_owner: Dict[AddressSpace, List[int]] = {}
        for index in steal_candidates:
            owner = owner_col[index]
            if owner is not None:
                steals_by_owner.setdefault(owner, []).append(index)
        owners = sorted(
            set(by_owner) | set(steals_by_owner), key=lambda a: a.asid
        )
        stolen_total = 0
        for owner in owners:
            yield from self.task.lock_acquire(owner.lock)
            try:
                invalidate = by_owner.get(owner, ())
                steals = steals_by_owner.get(owner, ())
                work = (
                    len(invalidate) * tunables.daemon_per_page_scan_s
                    + len(steals) * tunables.daemon_per_page_steal_s
                )
                for index in invalidate:
                    if owner_col[index] is not owner or in_transit[index] is not None:
                        continue  # reallocated while we waited for the lock
                    # Simulate the reference bit: clear validity; a live
                    # page will come back via a soft fault.
                    fl = flags[index]
                    if fl & F_SW_VALID or not fl & F_INVALIDATED:
                        vm.stats.daemon_invalidations += 1
                    flags[index] = (fl | F_INVALIDATED) & ~(
                        F_SW_VALID | F_REFERENCED
                    )
                for index in steals:
                    if (
                        owner_col[index] is not owner
                        or flags[index] & _STEAL_MASK != _STEAL_WANT
                        or in_transit[index] is not None
                    ):
                        continue  # revalidated/reallocated while we waited
                    vm.free_frame(owner, index, FREED_BY_DAEMON)
                    vm.stats.daemon_pages_stolen += 1
                    stolen_total += 1
                vm.stats.daemon_pages_scanned += len(invalidate) + len(steals)
                if work > 0:
                    yield from self.task.system(work)
            finally:
                owner.lock.release()
            if owner.shared_page is not None:
                owner.shared_page.refresh()
        return stolen_total
