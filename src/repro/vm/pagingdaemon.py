"""The paging daemon: IRIX's ``vhand`` as a two-handed clock.

The MIPS TLB has no hardware reference bits, so IRIX simulates them in
software: the leading clock hand *invalidates* mappings (clearing the valid
bit), and a page that gets re-referenced takes a soft fault which both
revalidates it and proves it is in use.  The trailing hand, a fixed spread
behind, steals pages that are still invalid and unreferenced.

Two properties of this design drive the paper's results:

1. Every invalidation of a live page turns into a **soft fault** for its
   owner (Figure 8), and the faults are served while the daemon may be
   holding the very address-space locks the fault handler needs.
2. The scan rate **scales with memory pressure**, so an aggressive
   prefetcher that keeps free memory pinned near zero makes the hands sweep
   at maximum speed — which is why prefetching-without-releasing evicts an
   idle interactive task's pages within a second or two, while plain demand
   paging takes many times longer (Figure 1).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional

from repro.config import OsTunables
from repro.sim.engine import Engine, Event
from repro.sim.task import SimTask
from repro.vm.frames import FREED_BY_DAEMON, Frame
from repro.vm.pagetable import AddressSpace

__all__ = ["PagingDaemon"]


class PagingDaemon:
    """``vhand``: wakes under memory pressure and runs the clock."""

    def __init__(self, engine: Engine, vm, tunables: OsTunables) -> None:
        self.engine = engine
        self.vm = vm
        self.tunables = tunables
        self.task = SimTask(engine, "vhand")
        nframes = len(vm.frame_table)
        self._nframes = nframes
        self._hand = 0  # trailing (stealing) hand position
        self._spread = max(1, int(nframes * tunables.clock_hand_spread_fraction))
        self._wake: Optional[Event] = None
        self._process = None

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        if self._process is None:
            self._process = self.engine.process(self._run(), name="vhand")

    def notify(self) -> None:
        """Wake the daemon immediately (called on allocation pressure)."""
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    # -- pressure -----------------------------------------------------------
    def _shortage(self) -> bool:
        return self.vm.freelist.free_count < self.tunables.min_freemem_pages

    def _target(self) -> int:
        return self.tunables.min_freemem_pages + self.tunables.free_target_slack_pages

    def scan_rate(self) -> float:
        """Pages scanned per second, scaled by the shortfall against the
        replenish target (min_freemem + slack).

        Sustained allocation pressure therefore keeps the hands sweeping
        near the maximum rate, which is what evicts an idle task's pages
        within seconds under an aggressive prefetcher.
        """
        tunables = self.tunables
        free = self.vm.freelist.free_count
        target = self._target()
        if target <= 0:
            return tunables.daemon_base_scan_rate_pages_s
        pressure = max(0.0, min(1.0, (target - free) / target))
        return tunables.daemon_base_scan_rate_pages_s + pressure * (
            tunables.daemon_max_scan_rate_pages_s
            - tunables.daemon_base_scan_rate_pages_s
        )

    # -- main loop -----------------------------------------------------------
    def _run(self):
        while True:
            if not self._shortage():
                self._wake = self.engine.event()
                yield self.engine.any_of(
                    [self._wake, self.engine.timeout(self.tunables.daemon_wake_interval_s)]
                )
                self._wake = None
                continue
            self.vm.stats.daemon_runs += 1
            started = self.engine.now
            stolen = yield from self._clock_pass()
            self.vm.stats.daemon_active_time += self.engine.now - started
            if self.vm.obs is not None:
                self.vm.obs.emit("vm.clock_pass", {"stolen": stolen})

    def _clock_pass(self):
        """Advance the hands until free memory reaches the target or a full
        revolution completes."""
        vm = self.vm
        tunables = self.tunables
        target = self._target()
        batch = tunables.daemon_lock_batch_pages
        steps = 0
        stolen_total = 0
        while vm.freelist.free_count < target and steps < self._nframes:
            lead_frames, steal_candidates = self._collect_batch(batch)
            stolen = yield from self._process_batch(lead_frames, steal_candidates)
            stolen_total += stolen
            steps += batch
            # Pacing: the hands move at the pressure-scaled scan rate.  The
            # pacing delay happens with no locks held; only the PTE work
            # above is done under the address-space locks.
            rate = self.scan_rate()
            work_time = batch * tunables.daemon_per_page_scan_s + (
                stolen * tunables.daemon_per_page_steal_s
            )
            pace = max(0.0, batch / rate - work_time)
            if pace > 0:
                yield self.engine.timeout(pace)
        return stolen_total

    def _collect_batch(self, batch: int):
        """Gather the frames the two hands will pass over this batch."""
        frames = self.vm.frame_table.frames
        nframes = self._nframes
        hand = self._hand
        lead_frames: List[Frame] = []
        steal_candidates: List[Frame] = []
        for offset in range(batch):
            trail_index = (hand + offset) % nframes
            lead_index = (trail_index + self._spread) % nframes
            lead = frames[lead_index]
            if lead.active and lead.in_transit is None:
                lead_frames.append(lead)
            trail = frames[trail_index]
            if (
                trail.active
                and trail.in_transit is None
                and trail.invalidated
                and not trail.referenced
                and not trail.sw_valid
            ):
                steal_candidates.append(trail)
        self._hand = (hand + batch) % nframes
        return lead_frames, steal_candidates

    def _process_batch(self, lead_frames: List[Frame], steal_candidates: List[Frame]):
        """Invalidate and steal, holding each owner's lock once per batch."""
        vm = self.vm
        tunables = self.tunables
        by_owner: Dict[AddressSpace, List[Frame]] = defaultdict(list)
        for frame in lead_frames:
            by_owner[frame.owner].append(frame)
        steals_by_owner: Dict[AddressSpace, List[Frame]] = defaultdict(list)
        for frame in steal_candidates:
            steals_by_owner[frame.owner].append(frame)
        owners = sorted(
            set(by_owner) | set(steals_by_owner), key=lambda a: a.asid
        )
        stolen_total = 0
        for owner in owners:
            yield from self.task.lock_acquire(owner.lock)
            try:
                invalidate = by_owner.get(owner, ())
                steals = steals_by_owner.get(owner, ())
                work = (
                    len(invalidate) * tunables.daemon_per_page_scan_s
                    + len(steals) * tunables.daemon_per_page_steal_s
                )
                for frame in invalidate:
                    if frame.owner is not owner or frame.in_transit is not None:
                        continue  # reallocated while we waited for the lock
                    # Simulate the reference bit: clear validity; a live
                    # page will come back via a soft fault.
                    if frame.sw_valid or not frame.invalidated:
                        vm.stats.daemon_invalidations += 1
                    frame.sw_valid = False
                    frame.invalidated = True
                    frame.referenced = False
                for frame in steals:
                    if (
                        frame.owner is not owner
                        or not frame.active
                        or frame.in_transit is not None
                        or not frame.invalidated
                        or frame.referenced
                        or frame.sw_valid
                    ):
                        continue  # revalidated/reallocated while we waited
                    vm.free_frame(owner, frame, FREED_BY_DAEMON)
                    vm.stats.daemon_pages_stolen += 1
                    stolen_total += 1
                vm.stats.daemon_pages_scanned += len(invalidate) + len(steals)
                if work > 0:
                    yield from self.task.system(work)
            finally:
                owner.lock.release()
            if owner.shared_page is not None:
                owner.shared_page.refresh()
        return stolen_total
