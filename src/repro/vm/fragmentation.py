"""Physical-memory fragmentation metrics over the frame table.

Policies that free the *right* pages (compiler-directed release) and
policies that free *whatever the clock hand finds* (global clock) can show
identical fault counts while leaving physical memory in very different
shapes.  Following Mansi & Swift's characterization of physical-memory
fragmentation, we measure the free list's shape directly:

- **free-run-length histogram** — power-of-two buckets of contiguous free
  frame runs (bucket ``i`` counts runs with ``2**i <= length < 2**(i+1)``);
- **largest free extent** — the longest contiguous run of free frames;
- **unusable free index** — ``1 - usable/free`` where *usable* counts the
  free frames inside extent-aligned, extent-sized blocks that are entirely
  free.  0 means every free frame could back an aligned large allocation;
  1 means the free memory is pure confetti.

Sampling is pure computation over the flags column — no engine events, no
simulated time — so it can never perturb event ordering (the golden-digest
byte-identity gate relies on that).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.vm.frames import F_ON_FREE_LIST, FrameTable

__all__ = [
    "DEFAULT_EXTENT_PAGES",
    "FragmentationSample",
    "FragmentationStats",
    "measure_fragmentation",
]

#: Default "large allocation" unit for the unusable-free index, in frames.
#: 16 frames = 64 KiB at the simulated 4 KiB page — the superpage-ish extent
#: Mansi & Swift use as their headline unit.
DEFAULT_EXTENT_PAGES = 16


@dataclass
class FragmentationSample:
    """One instantaneous measurement of the frame table's free-space shape."""

    free_frames: int = 0
    free_runs: int = 0
    largest_free_extent: int = 0
    unusable_free_index: float = 0.0
    #: ``run_histogram[i]`` counts runs with ``2**i <= length < 2**(i+1)``.
    run_histogram: List[int] = field(default_factory=list)

    def snapshot(self) -> Dict[str, object]:
        return {
            "free_frames": self.free_frames,
            "free_runs": self.free_runs,
            "largest_free_extent": self.largest_free_extent,
            "unusable_free_index": self.unusable_free_index,
            "run_histogram": list(self.run_histogram),
        }


@dataclass
class FragmentationStats:
    """Accumulated fragmentation samples for one run (lives on VmStats)."""

    samples: int = 0
    last: FragmentationSample = field(default_factory=FragmentationSample)
    peak_unusable_free_index: float = 0.0
    mean_unusable_free_index: float = 0.0
    min_largest_free_extent: int = -1
    _ufi_sum: float = 0.0

    def record(self, sample: FragmentationSample) -> None:
        self.samples += 1
        self.last = sample
        self._ufi_sum += sample.unusable_free_index
        self.mean_unusable_free_index = self._ufi_sum / self.samples
        if sample.unusable_free_index > self.peak_unusable_free_index:
            self.peak_unusable_free_index = sample.unusable_free_index
        if (
            self.min_largest_free_extent < 0
            or sample.largest_free_extent < self.min_largest_free_extent
        ):
            self.min_largest_free_extent = sample.largest_free_extent

    def snapshot(self) -> Dict[str, object]:
        return {
            "samples": self.samples,
            "peak_unusable_free_index": self.peak_unusable_free_index,
            "mean_unusable_free_index": self.mean_unusable_free_index,
            "min_largest_free_extent": max(0, self.min_largest_free_extent),
            "last": self.last.snapshot(),
        }


def measure_fragmentation(
    table: FrameTable, extent_pages: int = DEFAULT_EXTENT_PAGES
) -> FragmentationSample:
    """One pass over the flags column: find free runs, bucket them, and
    compute the unusable-free index for the given extent size."""
    if extent_pages < 1:
        raise ValueError(f"extent_pages must be >= 1, got {extent_pages}")
    flags = table.flags
    total = len(flags)
    sample = FragmentationSample()
    histogram: List[int] = []
    free = 0
    runs = 0
    largest = 0
    usable = 0
    index = 0
    while index < total:
        if not flags[index] & F_ON_FREE_LIST:
            index += 1
            continue
        start = index
        index += 1
        while index < total and flags[index] & F_ON_FREE_LIST:
            index += 1
        length = index - start
        free += length
        runs += 1
        if length > largest:
            largest = length
        bucket = length.bit_length() - 1
        while len(histogram) <= bucket:
            histogram.append(0)
        histogram[bucket] += 1
        # Extent-aligned, extent-sized blocks wholly inside [start, index).
        first_block = -(-start // extent_pages)  # ceil
        last_block = index // extent_pages  # floor
        if last_block > first_block:
            usable += (last_block - first_block) * extent_pages
    sample.free_frames = free
    sample.free_runs = runs
    sample.largest_free_extent = largest
    sample.run_histogram = histogram
    sample.unusable_free_index = 1.0 - usable / free if free else 0.0
    return sample
