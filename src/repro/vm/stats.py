"""VM statistics: every counter the paper's tables and figures report.

Two levels:

- :class:`AddressSpaceStats` — per-process fault and paging counters (the
  interactive task's hard faults per sweep for Figure 10(c), the out-of-core
  task's soft faults for Figure 8);
- :class:`VmStats` — system-wide daemon/releaser/free-list activity
  (Table 3's daemon runs and pages stolen, Figure 9's freed-page breakdown).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.vm.fragmentation import FragmentationStats

__all__ = ["AddressSpaceStats", "VmStats"]


@dataclass
class AddressSpaceStats:
    """Per-address-space paging activity."""

    hard_faults: int = 0
    soft_faults: int = 0  # daemon-invalidation revalidations (Figure 8)
    prefetch_validates: int = 0
    release_revalidates: int = 0  # touched a release-pending page in time
    rescues: int = 0
    allocations: int = 0  # frames newly allocated to this space
    pages_stolen: int = 0  # taken by the paging daemon
    pages_released: int = 0  # freed via explicit release
    prefetches_issued: int = 0
    prefetches_discarded: int = 0  # no free memory at request time
    prefetches_duplicate: int = 0  # page already present/in transit
    prefetches_failed: int = 0  # I/O never completed (chaos experiments)
    writebacks: int = 0
    fault_wait_time: float = 0.0  # time spent blocked on memory locks

    def snapshot(self) -> Dict[str, float]:
        return dict(self.__dict__)


@dataclass
class VmStats:
    """System-wide VM activity."""

    daemon_runs: int = 0  # times the paging daemon had to operate (Table 3)
    daemon_pages_scanned: int = 0
    daemon_invalidations: int = 0
    daemon_pages_stolen: int = 0  # Table 3
    daemon_writebacks: int = 0
    daemon_active_time: float = 0.0
    releaser_requests: int = 0
    releaser_pages_freed: int = 0
    releaser_skipped_referenced: int = 0  # re-referenced since the request
    releaser_skipped_absent: int = 0  # already gone when the request ran
    releaser_writebacks: int = 0
    releaser_active_time: float = 0.0
    total_allocations: int = 0  # Table 3 "total page allocations"
    low_memory_stalls: int = 0  # allocators that had to block
    writeback_failures: int = 0  # dirty page lost to total I/O failure

    # Figure 9 inputs come from the free list itself; these mirror them so a
    # single object carries everything the reports need.
    freed_by_daemon: int = 0
    freed_by_release: int = 0
    rescued_from_daemon: int = 0
    rescued_from_release: int = 0

    # Free-space shape over time (sampled on daemon sweeps and once at
    # finalize).  Excluded from the dataclass repr: the canonical result
    # serialization hashes ``repr(VmStats)`` and fragmentation sampling is
    # observational, so it must never move the byte-identity goldens.
    frag: FragmentationStats = field(default_factory=FragmentationStats, repr=False)

    def freed_total(self) -> int:
        return self.freed_by_daemon + self.freed_by_release

    def rescue_fraction(self, source: str) -> float:
        """Fraction of ``source``-freed pages later rescued."""
        if source == "daemon":
            freed, rescued = self.freed_by_daemon, self.rescued_from_daemon
        elif source == "release":
            freed, rescued = self.freed_by_release, self.rescued_from_release
        else:
            raise ValueError(f"unknown free source {source!r}")
        return rescued / freed if freed else 0.0

    def snapshot(self) -> Dict[str, object]:
        data: Dict[str, object] = dict(self.__dict__)
        data["frag"] = self.frag.snapshot()
        return data
