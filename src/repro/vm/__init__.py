"""The simulated IRIX 6.5 virtual-memory subsystem.

This package reproduces the pieces of the IRIX VM that the paper's results
hinge on:

- a global frame pool with a FIFO **free list** whose pages retain their
  identity until reallocated, so pages freed too early can be *rescued*
  (Section 4.4, Figure 9);
- per-process **address spaces** guarded by memory locks whose contention
  between daemons and the fault handler inflates fault service times
  (Section 4.3);
- a **paging daemon** (``vhand``) running a two-handed clock that simulates
  reference bits in software by invalidating mappings — the source of the
  soft page faults in Figure 8;
- a **releaser daemon** specialised to free pre-identified pages in small
  lock batches (Section 3.1.2).
"""

from repro.vm.frames import Frame, FrameTable, FreeList
from repro.vm.pagetable import AddressSpace
from repro.vm.pagingdaemon import PagingDaemon
from repro.vm.releaser import Releaser, ReleaseWorkItem
from repro.vm.stats import AddressSpaceStats, VmStats
from repro.vm.system import FaultKind, VmSystem

__all__ = [
    "AddressSpace",
    "AddressSpaceStats",
    "FaultKind",
    "Frame",
    "FrameTable",
    "FreeList",
    "PagingDaemon",
    "ReleaseWorkItem",
    "Releaser",
    "VmStats",
    "VmSystem",
]
