"""The bulk execution lane: classify whole resident runs in one pass.

The per-page touch path costs a method call, a page-table probe, and a
flags test per page; a run-length ``('T', start, count, ...)`` op at small
scale covers hundreds of pages, almost all of them resident in steady
state.  This module supplies the primitives that let
:meth:`repro.vm.system.VmSystem.touch_run` and
:meth:`repro.kernel.kernel.KernelProcess.run_touches` advance such a run
as a handful of array operations instead:

- :func:`touch_segment` — classify-and-touch the longest hit prefix of a
  page-table slice in one pass over the flat ``flags`` column (the
  ``F_IN_TRANSIT`` mirror bit makes hit/miss a single mask compare);
- :func:`charge_plan` — the quantum-flush arithmetic for a window of
  all-hit pages as one ``cumsum`` + ``searchsorted`` (NumPy's cumulative
  sum is a strict left-to-right reduction, so every prefix value is
  bit-identical to the sequential Python adds it replaces — asserted by
  the lane property tests).

Lane selection:

- ``REPRO_FAST_LANE=0`` (or ``off``/``false``) disables the lane: drivers
  fall back to the historical per-page ``touch_fast`` loop.
- With the lane on, NumPy is used when importable and the run is long
  enough to amortise array setup (:data:`NUMPY_MIN_RUN`); otherwise a
  tight pure-Python slice scan runs.  ``pip install repro[fast]`` pulls
  NumPy in; without it the pure lane is the permanent fallback.

Everything here is trajectory-neutral by construction: resident touches
emit no events, flush boundaries are computed with bit-identical float
arithmetic, and the first page that needs the slow path (unmapped page,
in-flight I/O, invalidated or release-pending frame) is handed back to
the caller untouched.  The frozen golden digests and the lane-equivalence
suite hold the lane to byte identity with the per-page path.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

__all__ = [
    "COUNTERS",
    "LANE_OFF",
    "LANE_NUMPY",
    "LANE_PURE",
    "NUMPY_MIN_RUN",
    "charge_plan",
    "lane_mode",
    "lane_name",
    "refresh_from_env",
    "reset_counters",
    "snapshot_counters",
    "touch_segment",
]

LANE_OFF = 0
LANE_PURE = 1
LANE_NUMPY = 2

_LANE_NAMES = {LANE_OFF: "off", LANE_PURE: "pure", LANE_NUMPY: "numpy"}

#: Below this run length the array setup costs more than the scan saves;
#: measured crossover on CPython 3.11 is ~32-48 pages.
NUMPY_MIN_RUN = 48

try:  # optional: the repro[fast] extra
    import numpy as np
except ImportError:  # pragma: no cover - exercised via monkeypatching
    np = None  # type: ignore[assignment]

#: Process-wide lane telemetry (bench reads deltas around a case; nothing
#: here feeds serialized results, so the counters can never perturb the
#: golden digests).
COUNTERS = {
    "ops": 0,           # driver ops dispatched
    "bulk_pages": 0,    # pages advanced through the bulk lane
    "slow_pages": 0,    # run pages that dropped to the fault slow path
    "runs": 0,          # ('T', ...) ops handled
    "windows": 0,       # bulk windows classified
}


def reset_counters() -> None:
    for key in COUNTERS:
        COUNTERS[key] = 0


def snapshot_counters() -> dict:
    return dict(COUNTERS)


def _enabled_from_env() -> bool:
    value = os.environ.get("REPRO_FAST_LANE", "1").strip().lower()
    return value not in ("0", "off", "false", "no")


_ENABLED = _enabled_from_env()


def refresh_from_env() -> int:
    """Re-read ``REPRO_FAST_LANE`` (tests flip the knob mid-process)."""
    global _ENABLED
    _ENABLED = _enabled_from_env()
    return lane_mode()


def lane_mode() -> int:
    """The lane this process runs: LANE_OFF, LANE_PURE, or LANE_NUMPY."""
    if not _ENABLED:
        return LANE_OFF
    return LANE_NUMPY if np is not None else LANE_PURE


def lane_name() -> str:
    return _LANE_NAMES[lane_mode()]


def touch_segment(
    seg: List[int],
    flags: List[int],
    valid_mask: int,
    valid_value: int,
    bits: int,
    use_numpy: bool,
) -> int:
    """Touch the longest hit prefix of one page-table slice.

    ``seg`` is ``pt[start:start+n]`` (frame indices, -1 for unmapped);
    a page hits when its index is mapped and
    ``flags[index] & valid_mask == valid_value``.  Every hit frame gets
    ``bits`` OR-ed into its flags word — exactly ``touch_fast``'s side
    effect — and the first miss stops the scan with the frame untouched.
    Returns the hit count.
    """
    if use_numpy and np is not None and len(seg) >= NUMPY_MIN_RUN:
        idx = np.array(seg, dtype=np.intp)
        # Gather the flags words at C speed; unmapped (-1) entries wrap to
        # flags[-1], which is harmless because the mapped test cuts the
        # prefix off at the first negative index anyway.
        words = np.array(list(map(flags.__getitem__, seg)), dtype=np.int64)
        ok = (idx >= 0) & ((words & valid_mask) == valid_value)
        hits = len(seg) if bool(ok.all()) else int(ok.argmin())
        if hits:
            # Only frames still missing a bit need a write-back; in steady
            # state a rescanned run has referenced/dirty already set and
            # this loop is empty.
            pend = idx[:hits][(words[:hits] & bits) != bits]
            for i in pend.tolist():
                flags[i] |= bits
        return hits
    hits = 0
    for i in seg:
        if i >= 0:
            fl = flags[i]
            if fl & valid_mask == valid_value:
                flags[i] = fl | bits
                hits += 1
                continue
        break
    return hits


def charge_plan(
    pending: float, s: float, r: float, n: float, quantum: float
):
    """Flush plan for a window of ``n`` all-hit pages.

    Models the per-page accounting ``pending += s; check; pending += r;
    check`` as one cumulative sum and finds the first checkpoint that
    reaches ``quantum``.  Returns ``(cum, m)``: ``cum[0] == pending``,
    ``cum[k]`` is the value after the k-th add (bit-identical to the
    sequential Python adds), and ``m`` is the index of the first add whose
    checkpoint crosses (``m >= 2n`` when none does).  Requires NumPy.
    """
    full = np.empty(2 * n + 1, dtype=np.float64)
    full[0] = pending
    full[1::2] = s
    full[2::2] = r
    cum = np.cumsum(full)
    m = int(np.searchsorted(cum[1:], quantum, side="left"))
    return cum, m
