"""Platform configuration: the simulated SGI Origin 200 and IRIX tunables.

The paper's Table 1 summarises the hardware: a 4-processor SGI Origin 200
(MIPS R10000) configured with ~75 MB of memory available to user programs,
16 KB pages, and system swap striped across ten Seagate Cheetah 4LP disks
behind five SCSI adapters.  Every timing constant in the simulation lives
here, with the source of each value noted, so experiments never bury magic
numbers.

Three scale presets are provided.  ``paper()`` reproduces the paper's
proportions exactly (75 MB memory, 400 MB out-of-core data set, 1 MB
interactive data set).  ``small()`` and ``tiny()`` shrink everything while
preserving the ratios that drive the results (data set >> memory >>
interactive working set); tests use them to keep event counts low.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

__all__ = [
    "CompilerParams",
    "DiskParams",
    "MachineConfig",
    "OsTunables",
    "RuntimeParams",
    "SimScale",
    "paper",
    "small",
    "tiny",
]

KB = 1024
MB = 1024 * 1024


@dataclass(frozen=True)
class DiskParams:
    """One Seagate Cheetah 4LP and its share of the SCSI fabric.

    Values from the public Cheetah 4LP (ST34501) datasheet: 10 025 RPM
    (2.99 ms average rotational latency), ~7.7 ms average seek, and a
    sustained media rate that moves a 16 KB page in about 1 ms.  Raw swap
    partitions see mostly short seeks, so the *effective* seek used for a
    queued request is lower than the datasheet average.
    """

    average_seek_s: float = 0.0054
    rotational_latency_s: float = 0.0030
    transfer_s_per_page: float = 0.0011
    adapter_overhead_s: float = 0.0004
    disks: int = 10
    adapters: int = 5
    adapter_queue_depth: int = 8
    # Kernel-side error handling (only exercised under a fault plan —
    # :mod:`repro.faults`): a request that errors or exceeds
    # ``request_timeout_s`` is retried with capped exponential backoff;
    # after ``retry_attempts`` consecutive failures the spindle is declared
    # dead and its pages fail over to the surviving stripe members.
    retry_attempts: int = 4
    retry_backoff_s: float = 0.002
    retry_backoff_cap_s: float = 0.05
    request_timeout_s: float = 0.25

    @property
    def page_service_s(self) -> float:
        """Mean service time for one random 16 KB page on one disk."""
        return (
            self.average_seek_s
            + self.rotational_latency_s
            + self.transfer_s_per_page
        )

    @property
    def disks_per_adapter(self) -> int:
        return self.disks // self.adapters


@dataclass(frozen=True)
class MachineConfig:
    """CPU-side constants for the simulated Origin 200."""

    cpus: int = 4
    page_size: int = 16 * KB
    element_size: int = 8  # double-precision data throughout the benchmarks
    user_memory_bytes: int = 75 * MB
    # CPU work per data element (per unit of Stmt.flops) for out-of-core
    # inner loops: ~25 cycles per element-flop on a ~200 MHz R10000.
    cpu_s_per_element: float = 1.2e-7
    # Kernel path costs (order-of-magnitude IRIX fault-path numbers).
    hard_fault_cpu_s: float = 150e-6  # kernel work, excludes the disk wait
    soft_fault_cpu_s: float = 25e-6  # revalidation after daemon invalidation
    prefetch_validate_s: float = 8e-6  # first touch of a prefetched page
    rescue_cpu_s: float = 120e-6  # reattach a page from the free list
    resident_touch_s: float = 0.2e-6  # TLB-hit page crossing cost
    syscall_s: float = 6e-6  # user/kernel crossing for PM requests

    @property
    def page_elements(self) -> int:
        return self.page_size // self.element_size

    @property
    def total_frames(self) -> int:
        return self.user_memory_bytes // self.page_size


@dataclass(frozen=True)
class OsTunables:
    """IRIX VM tunables the PagingDirected PM reads (Section 3.1.3).

    ``min_freemem_pages`` — if total free memory falls below this, the paging
    daemon steals from all processes (approximate LRU).
    ``maxrss_pages`` — per-process resident-set cap; exceeding it makes the
    daemon trim that process.
    """

    min_freemem_pages: int = 96
    free_target_slack_pages: int = 64  # daemon steals until free >= min + slack
    maxrss_fraction: float = 0.95  # maxrss as a fraction of total frames
    daemon_wake_interval_s: float = 0.1
    # Two-handed clock: the hand spread determines how long an unreferenced
    # page survives; the scan rate scales with memory pressure (vhand runs
    # faster as free memory drops), which is what makes prefetching-without-
    # releasing so much more hostile to idle tasks than demand paging.
    clock_hand_spread_fraction: float = 0.5
    daemon_base_scan_rate_pages_s: float = 400.0
    daemon_max_scan_rate_pages_s: float = 8000.0
    daemon_lock_batch_pages: int = 64  # pages handled per lock hold (large)
    daemon_per_page_scan_s: float = 3e-6
    daemon_per_page_steal_s: float = 20e-6
    releaser_lock_batch_pages: int = 16  # specialised daemon: small batches
    releaser_per_page_free_s: float = 15e-6

    def maxrss_pages(self, total_frames: int) -> int:
        return int(total_frames * self.maxrss_fraction)


@dataclass(frozen=True)
class CompilerParams:
    """What the compiler is told about the target (Section 3.2).

    The compiler receives the size of main memory, the page size, and the
    page fault latency.  Following Sections 2.3.2 and 2.4, on a shared
    machine compile-time assumptions about available memory "may be wildly
    inaccurate", so the locality analysis only counts on a small fraction of
    stated memory (``memory_confidence``) — effectively the paper's
    "assume only the smallest working set will fit" rule.  Setting the
    confidence to 1.0 reproduces the dedicated-machine assumption of the
    authors' earlier prefetching paper, under which far fewer releases are
    inserted (an ablation benchmark sweeps this).
    """

    memory_bytes: int = 75 * MB
    page_size: int = 16 * KB
    page_fault_latency_s: float = 0.012
    memory_confidence: float = 0.02
    estimated_s_per_element: float = 1.2e-7
    min_prefetch_distance_pages: int = 4
    max_prefetch_distance_pages: int = 64


@dataclass(frozen=True)
class RuntimeParams:
    """Run-time layer knobs (Section 3.3)."""

    prefetch_threads: int = 10  # one per swap disk, like the aio library
    release_batch_pages: int = 100  # "attempts to release a total of 100 pages"
    limit_headroom_pages: int = 128  # "close to the limit" threshold
    hint_filter_s: float = 0.8e-6  # user-time cost to filter one hint
    buffer_insert_s: float = 1.2e-6  # extra user time for priority buffering
    # Pressure drains issue the most-recently-buffered pages first: the MRU
    # replacement of Section 2.3, which keeps the first portion of a
    # cyclically-reused array in memory.  (Ablation: set False for FIFO.)
    drain_newest_first: bool = True
    # Hysteresis on the pressure trigger, implementing Section 2.3.2's
    # "desire to perform release operations as infrequently as possible":
    # after a drain fires, the trigger re-arms only once headroom recovers
    # by a full release batch.  A workload whose buffered (positive-
    # priority) releases are its *only* release traffic — FFTPDE — can
    # therefore fall behind and hand the job back to the paging daemon,
    # which is precisely the paper's FFTPDE-with-buffering failure.
    # (Ablation: 0 disables the hysteresis and buffering self-heals.)
    drain_rearm_batches: int = 1


@dataclass(frozen=True)
class SimScale:
    """A complete, mutually-consistent set of platform parameters."""

    name: str
    machine: MachineConfig
    disk: DiskParams
    tunables: OsTunables
    compiler: CompilerParams
    runtime: RuntimeParams
    out_of_core_bytes: int = 400 * MB
    interactive_bytes: int = 1 * MB + 16 * KB  # 65 pages, per Figure 10(c)
    time_quantum_s: float = 0.02  # app-side batching of resident compute time
    rng_seed: int = 20001023  # OSDI 2000 conference date
    # Sleep-time sweep for the Figure 1 / Figure 10(a) experiments, and the
    # fixed "intermediate" sleep used by Figure 10(b)/(c).  Smaller scales
    # turn memory over proportionally faster (the disks are not scaled), so
    # their sweeps cover proportionally shorter sleeps.
    figure_sleep_times_s: tuple = (0.0, 1.0, 2.0, 3.0, 5.0, 7.0, 10.0)
    intermediate_sleep_s: float = 5.0
    # Hard ceiling on engine events per experiment so a badly-tuned
    # configuration cannot spin forever; generous relative to any experiment
    # in the suite.  Exceeding it raises
    # :class:`repro.machine.StepBudgetExceeded`.
    max_engine_steps: int = 200_000_000

    @property
    def out_of_core_pages(self) -> int:
        return self.out_of_core_bytes // self.machine.page_size

    @property
    def interactive_pages(self) -> int:
        return self.interactive_bytes // self.machine.page_size

    def with_overrides(self, **kwargs) -> "SimScale":
        """Return a copy with top-level fields replaced."""
        return replace(self, **kwargs)

    def describe(self) -> Dict[str, object]:
        """Human-readable summary (used by the Table 1 benchmark)."""
        return {
            "scale": self.name,
            "cpus": self.machine.cpus,
            "page_size_kb": self.machine.page_size // KB,
            "user_memory_mb": self.machine.user_memory_bytes // MB,
            "frames": self.machine.total_frames,
            "swap_disks": self.disk.disks,
            "scsi_adapters": self.disk.adapters,
            "page_service_ms": round(self.disk.page_service_s * 1e3, 2),
            "out_of_core_mb": self.out_of_core_bytes // MB,
            "interactive_pages": self.interactive_pages,
        }


def paper() -> SimScale:
    """Full paper-scale configuration: 75 MB memory, 400 MB data sets."""
    return SimScale(
        name="paper",
        machine=MachineConfig(),
        disk=DiskParams(),
        tunables=OsTunables(),
        compiler=CompilerParams(),
        runtime=RuntimeParams(),
    )


def _scaled(name: str, divisor: int, seed_offset: int) -> SimScale:
    """Shrink memory and data sets by ``divisor`` with ratios preserved.

    Memory-proportional thresholds (min_freemem, lock batches, release
    batches) shrink with memory; the daemon scan *rates* do not, because the
    disks are not scaled either — so memory turns over proportionally faster
    and the sleep-time sweeps cover proportionally shorter sleeps.
    """
    machine = MachineConfig(user_memory_bytes=(75 * MB) // divisor)
    tunables = OsTunables(
        min_freemem_pages=max(8, 96 // divisor),
        free_target_slack_pages=max(6, 64 // divisor),
        daemon_lock_batch_pages=max(8, 64 // divisor),
        releaser_lock_batch_pages=max(4, 16 // divisor),
    )
    compiler = CompilerParams(memory_bytes=(75 * MB) // divisor)
    sleep_times = tuple(round(t / divisor, 4) for t in (0.0, 1.0, 2.0, 3.0, 5.0, 7.0, 10.0))
    return SimScale(
        name=name,
        machine=machine,
        disk=DiskParams(),
        tunables=tunables,
        compiler=compiler,
        runtime=RuntimeParams(
            release_batch_pages=max(10, 100 // divisor),
            limit_headroom_pages=max(16, 128 // divisor),
        ),
        out_of_core_bytes=(400 * MB) // divisor,
        interactive_bytes=max(4, 65 // divisor) * 16 * KB,
        rng_seed=20001023 + seed_offset,
        figure_sleep_times_s=sleep_times,
        intermediate_sleep_s=round(5.0 / divisor, 4),
    )


def small() -> SimScale:
    """~1/8 scale: quick integration runs (≈600 frames, 3 200-page data)."""
    return _scaled("small", 8, seed_offset=1)


def tiny() -> SimScale:
    """~1/64 scale: unit and property tests (75 frames, 400-page data)."""
    return _scaled("tiny", 64, seed_offset=2)
